#include "drm/distribution_network.h"

#include <utility>

#include "core/instance_validator.h"

namespace geolic {

const char* PartyRoleName(PartyRole role) {
  switch (role) {
    case PartyRole::kOwner:
      return "owner";
    case PartyRole::kDistributor:
      return "distributor";
    case PartyRole::kConsumer:
      return "consumer";
  }
  return "unknown";
}

DistributionNetwork::DistributionNetwork(const ConstraintSchema* schema,
                                         std::string content_key,
                                         Permission permission)
    : schema_(schema),
      content_key_(std::move(content_key)),
      permission_(permission) {}

Result<int> DistributionNetwork::AddOwner(std::string name) {
  if (owner_id_ != -1) {
    return Status::AlreadyExists("network already has an owner");
  }
  Party party;
  party.id = party_count();
  party.role = PartyRole::kOwner;
  party.name = std::move(name);
  parties_.push_back(party);
  states_.push_back(nullptr);
  owner_id_ = party.id;
  return party.id;
}

Result<int> DistributionNetwork::AddDistributor(std::string name, int parent) {
  if (parent < 0 || parent >= party_count()) {
    return Status::OutOfRange("unknown parent party");
  }
  const PartyRole parent_role = parties_[static_cast<size_t>(parent)].role;
  if (parent_role == PartyRole::kConsumer) {
    return Status::InvalidArgument("consumers cannot have sub-parties");
  }
  Party party;
  party.id = party_count();
  party.role = PartyRole::kDistributor;
  party.name = std::move(name);
  party.parent = parent;
  parties_.push_back(party);

  auto state = std::make_unique<DistributorState>();
  state->received = std::make_unique<LicenseCatalog>(schema_);
  states_.push_back(std::move(state));
  return party.id;
}

Result<int> DistributionNetwork::AddConsumer(std::string name, int parent) {
  if (parent < 0 || parent >= party_count()) {
    return Status::OutOfRange("unknown parent party");
  }
  if (parties_[static_cast<size_t>(parent)].role != PartyRole::kDistributor) {
    return Status::InvalidArgument(
        "consumers must attach to a distributor");
  }
  Party party;
  party.id = party_count();
  party.role = PartyRole::kConsumer;
  party.name = std::move(name);
  party.parent = parent;
  parties_.push_back(party);
  states_.push_back(nullptr);
  return party.id;
}

Status DistributionNetwork::CheckLicenseShape(const License& license,
                                              LicenseType type) const {
  if (license.type() != type) {
    return Status::InvalidArgument(
        std::string("expected a ") + LicenseTypeName(type) + " license, got " +
        LicenseTypeName(license.type()));
  }
  if (license.content_key() != content_key_) {
    return Status::InvalidArgument("license is for content " +
                                   license.content_key() +
                                   ", network distributes " + content_key_);
  }
  if (license.permission() != permission_) {
    return Status::InvalidArgument("permission mismatch");
  }
  if (license.rect().dimensions() != schema_->dimensions()) {
    return Status::InvalidArgument("constraint dimensionality mismatch");
  }
  return Status::Ok();
}

Result<DistributionNetwork::DistributorState*>
DistributionNetwork::MutableDistributorState(int party_id) {
  if (party_id < 0 || party_id >= party_count()) {
    return Status::OutOfRange("unknown party");
  }
  if (parties_[static_cast<size_t>(party_id)].role !=
      PartyRole::kDistributor) {
    return Status::InvalidArgument(
        parties_[static_cast<size_t>(party_id)].name +
        " is not a distributor");
  }
  return states_[static_cast<size_t>(party_id)].get();
}

Status DistributionNetwork::ReceiveRedistribution(int recipient,
                                                  License license) {
  GEOLIC_ASSIGN_OR_RETURN(DistributorState * state,
                          MutableDistributorState(recipient));
  const Result<int> added = state->received->Add(std::move(license));
  if (!added.ok()) {
    return added.status();
  }
  // The grouping changed; rebuild the online validator around the new set
  // while keeping the already-validated issuance history.
  const LogStore history =
      state->validator == nullptr ? LogStore() : state->validator->log();
  GEOLIC_ASSIGN_OR_RETURN(
      OnlineValidator rebuilt,
      OnlineValidator::CreateWithHistory(state->received.get(),
                                         OnlineValidatorOptions(), history));
  state->validator =
      std::make_unique<OnlineValidator>(std::move(rebuilt));
  return Status::Ok();
}

Status DistributionNetwork::GrantFromOwner(int distributor, License license) {
  if (owner_id_ == -1) {
    return Status::FailedPrecondition("network has no owner yet");
  }
  GEOLIC_RETURN_IF_ERROR(
      CheckLicenseShape(license, LicenseType::kRedistribution));
  return ReceiveRedistribution(distributor, std::move(license));
}

Result<OnlineDecision> DistributionNetwork::Issue(int issuer, int recipient,
                                                  const License& license) {
  GEOLIC_ASSIGN_OR_RETURN(DistributorState * state,
                          MutableDistributorState(issuer));
  if (state->validator == nullptr) {
    return Status::FailedPrecondition(
        parties_[static_cast<size_t>(issuer)].name +
        " holds no redistribution licenses");
  }
  if (recipient < 0 || recipient >= party_count()) {
    return Status::OutOfRange("unknown recipient");
  }
  const PartyRole recipient_role =
      parties_[static_cast<size_t>(recipient)].role;
  if (license.type() == LicenseType::kRedistribution) {
    GEOLIC_RETURN_IF_ERROR(
        CheckLicenseShape(license, LicenseType::kRedistribution));
    if (recipient_role != PartyRole::kDistributor) {
      return Status::InvalidArgument(
          "redistribution licenses go to distributors");
    }
  } else {
    GEOLIC_RETURN_IF_ERROR(CheckLicenseShape(license, LicenseType::kUsage));
    if (recipient_role != PartyRole::kConsumer) {
      return Status::InvalidArgument("usage licenses go to consumers");
    }
  }

  GEOLIC_ASSIGN_OR_RETURN(const OnlineDecision decision,
                          state->validator->TryIssue(license));
  if (decision.accepted() && license.type() == LicenseType::kRedistribution) {
    GEOLIC_RETURN_IF_ERROR(ReceiveRedistribution(recipient, license));
  }
  return decision;
}

Result<LicenseSet> DistributionNetwork::IssueUnchecked(
    int issuer, int recipient, const License& license) {
  GEOLIC_ASSIGN_OR_RETURN(DistributorState * state,
                          MutableDistributorState(issuer));
  if (state->received->empty()) {
    return Status::FailedPrecondition("issuer holds no licenses");
  }
  (void)recipient;  // Rogue issues bypass recipient checks by design.
  const LinearInstanceValidator instance_validator(state->received.get());
  const LicenseSet set = instance_validator.SatisfyingSet(license);
  if (set.Empty()) {
    return Status::InvalidArgument(
        "license fails instance-based validation against every received "
        "redistribution license");
  }
  // Force the record into the validator's history, bypassing aggregate
  // checks — this is the rights violation the offline audit must detect.
  LogStore history = state->validator->log();
  LogRecord record;
  record.issued_license_id = license.id();
  record.set = set;
  record.count = license.aggregate_count();
  GEOLIC_RETURN_IF_ERROR(history.Append(std::move(record)));
  GEOLIC_ASSIGN_OR_RETURN(
      OnlineValidator rebuilt,
      OnlineValidator::CreateWithHistory(state->received.get(),
                                         OnlineValidatorOptions(), history));
  state->validator = std::make_unique<OnlineValidator>(std::move(rebuilt));
  return set;
}

const LicenseCatalog& DistributionNetwork::ReceivedLicenses(int party_id) const {
  GEOLIC_CHECK(party_id >= 0 && party_id < party_count());
  const auto& state = states_[static_cast<size_t>(party_id)];
  GEOLIC_CHECK(state != nullptr);
  return *state->received;
}

const LogStore& DistributionNetwork::IssuanceLog(int party_id) const {
  GEOLIC_CHECK(party_id >= 0 && party_id < party_count());
  const auto& state = states_[static_cast<size_t>(party_id)];
  GEOLIC_CHECK(state != nullptr && state->validator != nullptr);
  return state->validator->log();
}

Result<DistributorAudit> DistributionNetwork::AuditDistributor(
    int party_id) const {
  if (party_id < 0 || party_id >= party_count()) {
    return Status::OutOfRange("unknown party");
  }
  const Party& party = parties_[static_cast<size_t>(party_id)];
  if (party.role != PartyRole::kDistributor) {
    return Status::InvalidArgument(party.name + " is not a distributor");
  }
  const auto& state = states_[static_cast<size_t>(party_id)];
  DistributorAudit audit;
  audit.party_id = party_id;
  audit.party_name = party.name;
  if (state->received->empty() || state->validator == nullptr) {
    return audit;  // Nothing to audit.
  }
  GEOLIC_ASSIGN_OR_RETURN(
      audit.result,
      ValidateGroupedFromLog(*state->received, state->validator->log()));
  return audit;
}

Result<NetworkAudit> DistributionNetwork::AuditAll() const {
  NetworkAudit audit;
  for (const Party& party : parties_) {
    if (party.role != PartyRole::kDistributor) {
      continue;
    }
    const auto& state = states_[static_cast<size_t>(party.id)];
    if (state->received->empty()) {
      continue;
    }
    GEOLIC_ASSIGN_OR_RETURN(DistributorAudit one,
                            AuditDistributor(party.id));
    audit.distributors.push_back(std::move(one));
  }
  return audit;
}

}  // namespace geolic
