#ifndef GEOLIC_DRM_DISTRIBUTION_NETWORK_H_
#define GEOLIC_DRM_DISTRIBUTION_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "core/grouped_validator.h"
#include "core/online_validator.h"
#include "drm/party.h"
#include "licensing/license_catalog.h"
#include "validation/log_store.h"
#include "util/status.h"

namespace geolic {

// Offline audit outcome for one distributor.
struct DistributorAudit {
  int party_id = -1;
  std::string party_name;
  // Empty licence set / log ⇒ trivially clean (zero equations).
  GroupedValidationResult result;
};

// Audit of the whole network: one entry per distributor with ≥ 1 received
// license.
struct NetworkAudit {
  std::vector<DistributorAudit> distributors;

  bool clean() const {
    for (const DistributorAudit& audit : distributors) {
      if (!audit.result.report.all_valid()) {
        return false;
      }
    }
    return true;
  }
};

// A multi-level DRM distribution network for one content and permission —
// the system the paper's introduction describes. The owner issues
// redistribution licenses to distributors; distributors use their received
// licenses to generate redistribution licenses for sub-distributors and
// usage licenses for consumers. Every generated license is validated
// against the issuer's received set (instance-based geometrically,
// aggregate via the grouped online validator); the authority can also audit
// any distributor's full log offline with the paper's efficient method.
//
// For rights-violation detection experiments, IssueUnchecked lets a rogue
// distributor bypass aggregate validation; the offline audit then flags the
// violated equations.
class DistributionNetwork {
 public:
  // `schema` must outlive the network.
  DistributionNetwork(const ConstraintSchema* schema, std::string content_key,
                      Permission permission);

  DistributionNetwork(const DistributionNetwork&) = delete;
  DistributionNetwork& operator=(const DistributionNetwork&) = delete;

  // Registers the owner (exactly one, before any distributor).
  Result<int> AddOwner(std::string name);
  // Registers a distributor under `parent` (the owner or a distributor).
  Result<int> AddDistributor(std::string name, int parent);
  // Registers a consumer under a distributor.
  Result<int> AddConsumer(std::string name, int parent);

  int party_count() const { return static_cast<int>(parties_.size()); }
  const Party& party(int id) const {
    return parties_[static_cast<size_t>(id)];
  }

  // Owner grants a redistribution license to a distributor. Owner grants
  // are not validated (the owner holds the original rights) but must be
  // well-formed for the network's content/permission/schema.
  Status GrantFromOwner(int distributor, License license);

  // A distributor issues `license` to `recipient`: redistribution licenses
  // go to distributors, usage licenses to consumers. Returns the validation
  // decision; the license takes effect only when accepted.
  Result<OnlineDecision> Issue(int issuer, int recipient,
                               const License& license);

  // Rogue issue: instance-validates (to obtain the log set S) but skips
  // aggregate validation and records the issuance regardless. Returns the
  // set S; fails if even instance validation fails (such a license can
  // never be attributed to a redistribution license and is rejected on
  // sight per Section 3.1).
  Result<LicenseSet> IssueUnchecked(int issuer, int recipient,
                                     const License& license);

  // Redistribution licenses received by a party (empty set for consumers).
  const LicenseCatalog& ReceivedLicenses(int party_id) const;
  // Issuance log of a distributor.
  const LogStore& IssuanceLog(int party_id) const;

  // Offline audit of one distributor using the paper's grouped validation.
  Result<DistributorAudit> AuditDistributor(int party_id) const;

  // Audits every distributor that holds licenses.
  Result<NetworkAudit> AuditAll() const;

 private:
  struct DistributorState {
    std::unique_ptr<LicenseCatalog> received;
    std::unique_ptr<OnlineValidator> validator;  // Null until first grant.
  };

  Status CheckLicenseShape(const License& license, LicenseType type) const;
  Status ReceiveRedistribution(int recipient, License license);
  Result<DistributorState*> MutableDistributorState(int party_id);

  const ConstraintSchema* schema_;
  std::string content_key_;
  Permission permission_;
  std::vector<Party> parties_;
  std::vector<std::unique_ptr<DistributorState>> states_;  // Per party id.
  int owner_id_ = -1;
  int64_t license_sequence_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_DRM_DISTRIBUTION_NETWORK_H_
