#include "drm/validation_authority.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "licensing/license_serialization.h"

namespace geolic {
namespace {

constexpr char kCheckpointMagic[8] = {'G', 'L', 'A', 'U', 'T', 'H', '1',
                                      '\0'};

void WriteString(std::ostream* out, const std::string& text) {
  const uint32_t size = static_cast<uint32_t>(text.size());
  out->write(reinterpret_cast<const char*>(&size), sizeof(size));
  out->write(text.data(), size);
}

Result<std::string> ReadString(std::istream* in, uint32_t max_size) {
  uint32_t size = 0;
  in->read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!*in || size > max_size) {
    return Status::ParseError("bad string in checkpoint");
  }
  std::string text(size, '\0');
  in->read(text.data(), size);
  if (!*in) {
    return Status::ParseError("truncated string in checkpoint");
  }
  return text;
}

}  // namespace

Status ValidationAuthority::RebuildService(Domain* domain,
                                           const LogStore& history) {
  GEOLIC_ASSIGN_OR_RETURN(
      domain->service,
      IssuanceService::CreateWithHistory(domain->licenses.get(),
                                         service_options_, history));
  return Status::Ok();
}

Status ValidationAuthority::RegisterRedistribution(License license) {
  if (license.type() != LicenseType::kRedistribution) {
    return Status::InvalidArgument(
        "only redistribution licenses can be registered: " + license.id());
  }
  if (license.rect().dimensions() != schema_->dimensions()) {
    return Status::InvalidArgument("schema dimensionality mismatch for " +
                                   license.id());
  }
  const ContentKey key = KeyOf(license);
  Domain& domain = domains_[key];
  if (domain.licenses == nullptr) {
    domain.licenses = std::make_unique<LicenseCatalog>(schema_);
  }
  const Result<int> added = domain.licenses->Add(std::move(license));
  if (!added.ok()) {
    if (domain.licenses->empty()) {
      domains_.erase(key);  // Don't leave an empty shell behind.
    }
    return added.status();
  }
  const LogStore history =
      domain.service == nullptr ? LogStore() : domain.service->CollectLog();
  return RebuildService(&domain, history);
}

Result<OnlineDecision> ValidationAuthority::ValidateIssue(
    const License& issued) {
  const auto it = domains_.find(KeyOf(issued));
  if (it == domains_.end()) {
    return Status::NotFound("no redistribution licenses registered for "
                            "content " +
                            issued.content_key());
  }
  return it->second.service->TryIssue(issued);
}

Result<std::vector<OnlineDecision>> ValidationAuthority::ValidateIssueBatch(
    const ContentKey& key, const std::vector<License>& batch) {
  const auto it = domains_.find(key);
  if (it == domains_.end()) {
    return Status::NotFound("unknown content domain: " + key.content);
  }
  for (const License& license : batch) {
    if (KeyOf(license) != key) {
      return Status::InvalidArgument(
          "batch license " + license.id() + " belongs to another domain");
    }
  }
  return it->second.service->TryIssueBatch(batch);
}

std::vector<ValidationAuthority::ContentKey> ValidationAuthority::Keys()
    const {
  std::vector<ContentKey> keys;
  keys.reserve(domains_.size());
  for (const auto& [key, domain] : domains_) {
    keys.push_back(key);
  }
  return keys;
}

Result<const LicenseCatalog*> ValidationAuthority::LicensesFor(
    const ContentKey& key) const {
  const auto it = domains_.find(key);
  if (it == domains_.end()) {
    return Status::NotFound("unknown content domain: " + key.content);
  }
  return static_cast<const LicenseCatalog*>(it->second.licenses.get());
}

Result<LogStore> ValidationAuthority::LogFor(const ContentKey& key) const {
  const auto it = domains_.find(key);
  if (it == domains_.end()) {
    return Status::NotFound("unknown content domain: " + key.content);
  }
  return it->second.service->CollectLog();
}

Result<const IssuanceService*> ValidationAuthority::ServiceFor(
    const ContentKey& key) const {
  const auto it = domains_.find(key);
  if (it == domains_.end()) {
    return Status::NotFound("unknown content domain: " + key.content);
  }
  return static_cast<const IssuanceService*>(it->second.service.get());
}

Result<ValidationAuthority::ContentAudit> ValidationAuthority::Audit(
    const ContentKey& key) const {
  const auto it = domains_.find(key);
  if (it == domains_.end()) {
    return Status::NotFound("unknown content domain: " + key.content);
  }
  ContentAudit audit;
  audit.key = key;
  GEOLIC_ASSIGN_OR_RETURN(
      audit.result, ValidateGroupedFromLog(*it->second.licenses,
                                           it->second.service->CollectLog()));
  return audit;
}

Result<std::vector<ValidationAuthority::ContentAudit>>
ValidationAuthority::AuditAll() const {
  std::vector<ContentAudit> audits;
  audits.reserve(domains_.size());
  for (const auto& [key, domain] : domains_) {
    GEOLIC_ASSIGN_OR_RETURN(ContentAudit audit, Audit(key));
    audits.push_back(std::move(audit));
  }
  return audits;
}

Result<ValidationAuthority::PeriodClose> ValidationAuthority::ClosePeriod(
    const ContentKey& key) {
  const auto it = domains_.find(key);
  if (it == domains_.end()) {
    return Status::NotFound("unknown content domain: " + key.content);
  }
  Domain& domain = it->second;
  PeriodClose close;
  close.audit.key = key;
  close.archived_log = domain.service->CollectLog();
  GEOLIC_ASSIGN_OR_RETURN(
      close.audit.result,
      ValidateGroupedFromLog(*domain.licenses, close.archived_log));
  if (close.audit.result.report.all_valid()) {
    GEOLIC_ASSIGN_OR_RETURN(
        close.settlement,
        ComputeSettlement(*domain.licenses, close.archived_log));
    close.settled = true;
  }
  // Fresh period: same licenses, empty history.
  GEOLIC_RETURN_IF_ERROR(RebuildService(&domain, LogStore()));
  return close;
}

Status ValidationAuthority::CheckpointLogs(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  const uint32_t domain_count = static_cast<uint32_t>(domains_.size());
  out.write(reinterpret_cast<const char*>(&domain_count),
            sizeof(domain_count));
  for (const auto& [key, domain] : domains_) {
    WriteString(&out, key.content);
    const int32_t permission = static_cast<int32_t>(key.permission);
    out.write(reinterpret_cast<const char*>(&permission),
              sizeof(permission));
    const LogStore log = domain.service->CollectLog();
    const uint64_t records = log.size();
    out.write(reinterpret_cast<const char*>(&records), sizeof(records));
    for (const LogRecord& record : log.records()) {
      out.write(reinterpret_cast<const char*>(&record.set),
                sizeof(record.set));
      out.write(reinterpret_cast<const char*>(&record.count),
                sizeof(record.count));
      WriteString(&out, record.issued_license_id);
    }
  }
  if (!out) {
    return Status::IoError("checkpoint write failed: " + path);
  }
  return Status::Ok();
}

Status ValidationAuthority::RestoreLogs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[sizeof(kCheckpointMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a geolic authority checkpoint: " + path);
  }
  uint32_t domain_count = 0;
  in.read(reinterpret_cast<char*>(&domain_count), sizeof(domain_count));
  if (!in || domain_count > 1u << 20) {
    return Status::ParseError("bad domain count in checkpoint");
  }

  // Stage everything first so a bad checkpoint leaves state untouched.
  std::vector<std::pair<ContentKey, LogStore>> staged;
  for (uint32_t d = 0; d < domain_count; ++d) {
    GEOLIC_ASSIGN_OR_RETURN(std::string content, ReadString(&in, 1u << 16));
    int32_t permission = 0;
    uint64_t records = 0;
    in.read(reinterpret_cast<char*>(&permission), sizeof(permission));
    in.read(reinterpret_cast<char*>(&records), sizeof(records));
    if (!in || permission < 0 || permission >= kNumPermissions ||
        records > uint64_t{1} << 32) {
      return Status::ParseError("bad domain header in checkpoint");
    }
    ContentKey key{std::move(content), static_cast<Permission>(permission)};
    LogStore log;
    for (uint64_t r = 0; r < records; ++r) {
      LogRecord record;
      in.read(reinterpret_cast<char*>(&record.set), sizeof(record.set));
      in.read(reinterpret_cast<char*>(&record.count), sizeof(record.count));
      if (!in) {
        return Status::ParseError("truncated record in checkpoint");
      }
      GEOLIC_ASSIGN_OR_RETURN(record.issued_license_id,
                              ReadString(&in, 1u << 12));
      GEOLIC_RETURN_IF_ERROR(log.Append(std::move(record)));
    }
    const auto it = domains_.find(key);
    if (it == domains_.end()) {
      return Status::FailedPrecondition(
          "checkpoint references unregistered content: " + key.content);
    }
    LicenseSet mentioned;
    for (const LogRecord& record : log.records()) {
      mentioned |= record.set;
    }
    if (!mentioned.IsSubsetOf(it->second.licenses->AllMask())) {
      return Status::FailedPrecondition(
          "checkpoint log references unknown license indexes for " +
          key.content);
    }
    staged.emplace_back(std::move(key), std::move(log));
  }

  for (auto& [key, log] : staged) {
    Domain& domain = domains_[key];
    GEOLIC_RETURN_IF_ERROR(RebuildService(&domain, log));
  }
  return Status::Ok();
}

namespace {

constexpr char kFullCheckpointMagic[8] = {'G', 'L', 'A', 'U', 'T', 'H', '2',
                                          '\0'};

}  // namespace

Status ValidationAuthority::CheckpointFull(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kFullCheckpointMagic, sizeof(kFullCheckpointMagic));
  const uint32_t domain_count = static_cast<uint32_t>(domains_.size());
  out.write(reinterpret_cast<const char*>(&domain_count),
            sizeof(domain_count));
  for (const auto& [key, domain] : domains_) {
    WriteString(&out, key.content);
    const int32_t permission = static_cast<int32_t>(key.permission);
    out.write(reinterpret_cast<const char*>(&permission),
              sizeof(permission));
    const uint32_t license_count =
        static_cast<uint32_t>(domain.licenses->size());
    out.write(reinterpret_cast<const char*>(&license_count),
              sizeof(license_count));
    for (int i = 0; i < domain.licenses->size(); ++i) {
      GEOLIC_RETURN_IF_ERROR(
          WriteLicenseBinary(domain.licenses->at(i), &out));
    }
    const LogStore log = domain.service->CollectLog();
    const uint64_t records = log.size();
    out.write(reinterpret_cast<const char*>(&records), sizeof(records));
    for (const LogRecord& record : log.records()) {
      out.write(reinterpret_cast<const char*>(&record.set),
                sizeof(record.set));
      out.write(reinterpret_cast<const char*>(&record.count),
                sizeof(record.count));
      WriteString(&out, record.issued_license_id);
    }
  }
  if (!out) {
    return Status::IoError("checkpoint write failed: " + path);
  }
  return Status::Ok();
}

Status ValidationAuthority::RestoreFull(const std::string& path) {
  if (!domains_.empty()) {
    return Status::FailedPrecondition(
        "RestoreFull requires an empty authority");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[sizeof(kFullCheckpointMagic)];
  in.read(magic, sizeof(magic));
  if (!in ||
      std::memcmp(magic, kFullCheckpointMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a geolic full checkpoint: " + path);
  }
  uint32_t domain_count = 0;
  in.read(reinterpret_cast<char*>(&domain_count), sizeof(domain_count));
  if (!in || domain_count > 1u << 20) {
    return Status::ParseError("bad domain count in checkpoint");
  }

  // Stage into a local map first; commit only on full success.
  std::map<ContentKey, Domain> staged;
  for (uint32_t d = 0; d < domain_count; ++d) {
    GEOLIC_ASSIGN_OR_RETURN(std::string content, ReadString(&in, 1u << 16));
    int32_t permission = 0;
    uint32_t license_count = 0;
    in.read(reinterpret_cast<char*>(&permission), sizeof(permission));
    in.read(reinterpret_cast<char*>(&license_count), sizeof(license_count));
    if (!in || permission < 0 || permission >= kNumPermissions ||
        license_count > static_cast<uint32_t>(kMaxLicensesLarge)) {
      return Status::ParseError("bad domain header in checkpoint");
    }
    const ContentKey key{std::move(content),
                         static_cast<Permission>(permission)};
    Domain domain;
    domain.licenses = std::make_unique<LicenseCatalog>(schema_);
    for (uint32_t i = 0; i < license_count; ++i) {
      GEOLIC_ASSIGN_OR_RETURN(License license, ReadLicenseBinary(&in));
      if (license.rect().dimensions() != schema_->dimensions()) {
        return Status::ParseError(
            "checkpoint license dimensionality disagrees with schema");
      }
      const Result<int> added = domain.licenses->Add(std::move(license));
      if (!added.ok()) {
        return added.status();
      }
    }
    uint64_t records = 0;
    in.read(reinterpret_cast<char*>(&records), sizeof(records));
    if (!in || records > uint64_t{1} << 32) {
      return Status::ParseError("bad record count in checkpoint");
    }
    LogStore log;
    for (uint64_t r = 0; r < records; ++r) {
      LogRecord record;
      in.read(reinterpret_cast<char*>(&record.set), sizeof(record.set));
      in.read(reinterpret_cast<char*>(&record.count), sizeof(record.count));
      if (!in) {
        return Status::ParseError("truncated record in checkpoint");
      }
      GEOLIC_ASSIGN_OR_RETURN(record.issued_license_id,
                              ReadString(&in, 1u << 12));
      if (!record.set.IsSubsetOf(domain.licenses->AllMask())) {
        return Status::ParseError(
            "checkpoint record references unknown license indexes");
      }
      GEOLIC_RETURN_IF_ERROR(log.Append(std::move(record)));
    }
    GEOLIC_RETURN_IF_ERROR(RebuildService(&domain, log));
    if (!staged.emplace(key, std::move(domain)).second) {
      return Status::ParseError("duplicate domain in checkpoint");
    }
  }
  domains_ = std::move(staged);
  return Status::Ok();
}

}  // namespace geolic
