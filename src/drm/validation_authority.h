#ifndef GEOLIC_DRM_VALIDATION_AUTHORITY_H_
#define GEOLIC_DRM_VALIDATION_AUTHORITY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/assignment.h"
#include "core/grouped_validator.h"
#include "core/online_validator.h"
#include "licensing/license_catalog.h"
#include "service/issuance_service.h"
#include "validation/log_store.h"
#include "util/status.h"

namespace geolic {

// A multi-content validation authority: the party the paper charges with
// validating "all the newly generated licenses". It routes each license to
// the per-(content, permission) state — a LicenseCatalog of registered
// redistribution licenses plus a sharded IssuanceService holding the
// running tree/log — validates issues online, runs offline grouped audits,
// and can checkpoint its accumulated logs to disk between audit periods.
//
// Thread-safety: ValidateIssue calls may run concurrently with each other
// (they delegate to the lock-sharded service). Everything that mutates the
// domain map or rebuilds services — RegisterRedistribution, ClosePeriod,
// Restore* — must be externally serialized against all other calls.
class ValidationAuthority {
 public:
  // Key of one validation domain.
  struct ContentKey {
    std::string content;
    Permission permission = Permission::kPlay;

    friend bool operator<(const ContentKey& a, const ContentKey& b) {
      if (a.content != b.content) {
        return a.content < b.content;
      }
      return static_cast<int>(a.permission) < static_cast<int>(b.permission);
    }
    friend bool operator==(const ContentKey& a,
                           const ContentKey& b) = default;
  };

  // Audit of one content/permission domain.
  struct ContentAudit {
    ContentKey key;
    GroupedValidationResult result;
  };

  // Outcome of closing one domain's validation period.
  struct PeriodClose {
    ContentAudit audit;
    // Set iff the audit was clean: the per-license billing of the period.
    bool settled = false;
    SettlementAssignment settlement;
    // The period's log, archived out of the live validator.
    LogStore archived_log;
  };

  // `schema` applies to every content handled by this authority and must
  // outlive it. `service_options` configures every domain's
  // IssuanceService (grouping, shard hint, and the metrics/tracer sinks —
  // which must outlive the authority when set; note a shared metrics block
  // or tracer aggregates across all domains).
  explicit ValidationAuthority(const ConstraintSchema* schema,
                               const OnlineValidatorOptions& service_options =
                                   OnlineValidatorOptions{})
      : schema_(schema), service_options_(service_options) {}

  ValidationAuthority(const ValidationAuthority&) = delete;
  ValidationAuthority& operator=(const ValidationAuthority&) = delete;

  // Registers a redistribution license a distributor acquired; creates the
  // content domain on first sight. Already-validated history is preserved
  // across the grouping rebuild.
  Status RegisterRedistribution(License license);

  // Online-validates a newly generated license (usage or redistribution)
  // against its content domain and records it when accepted.
  Result<OnlineDecision> ValidateIssue(const License& issued);

  // Number of content domains.
  int domain_count() const { return static_cast<int>(domains_.size()); }
  std::vector<ContentKey> Keys() const;

  // Registered redistribution licenses of one domain.
  Result<const LicenseCatalog*> LicensesFor(const ContentKey& key) const;
  // Snapshot of the domain's accumulated issuance log (by value: the live
  // log is sharded inside the service, so there is no single object to
  // point at). Safe while other threads issue.
  Result<LogStore> LogFor(const ContentKey& key) const;
  // The domain's live issuance service (metrics, batch admission).
  Result<const IssuanceService*> ServiceFor(const ContentKey& key) const;

  // Batched admission for one domain (single lock acquisition per shard
  // touched); decisions in input order. All licenses must belong to `key`.
  Result<std::vector<OnlineDecision>> ValidateIssueBatch(
      const ContentKey& key, const std::vector<License>& batch);

  // Offline grouped audit of one domain / all domains.
  Result<ContentAudit> Audit(const ContentKey& key) const;
  Result<std::vector<ContentAudit>> AuditAll() const;

  // Closes the domain's validation period: audits the accumulated log,
  // settles it to concrete licenses when clean (max-flow witness), archives
  // the log, and resets the online validator so the licenses' full budgets
  // are available for the next period. A dirty audit still closes the
  // period (the report carries the violations; settlement is skipped).
  Result<PeriodClose> ClosePeriod(const ContentKey& key);

  // Checkpoints every domain's issuance log into one binary file. Licenses
  // are not persisted — on restart the operator re-registers them (they
  // live in the licensing backend) and calls RestoreLogs.
  Status CheckpointLogs(const std::string& path) const;

  // Restores logs from CheckpointLogs output. Every checkpointed domain
  // must already have its redistribution licenses registered (the history
  // replay needs the license indexes to resolve). Fails without modifying
  // state if any domain is missing or any record is inconsistent.
  Status RestoreLogs(const std::string& path);

  // Self-contained checkpoint: registered licenses *and* issuance logs.
  // RestoreFull rebuilds an authority from it without any prior
  // registration; it requires this authority to be empty and leaves it
  // untouched on failure.
  Status CheckpointFull(const std::string& path) const;
  Status RestoreFull(const std::string& path);

 private:
  struct Domain {
    std::unique_ptr<LicenseCatalog> licenses;
    std::unique_ptr<IssuanceService> service;  // Null until first license.
  };

  static ContentKey KeyOf(const License& license) {
    return ContentKey{license.content_key(), license.permission()};
  }

  Status RebuildService(Domain* domain, const LogStore& history);

  const ConstraintSchema* schema_;
  OnlineValidatorOptions service_options_;
  std::map<ContentKey, Domain> domains_;
};

}  // namespace geolic

#endif  // GEOLIC_DRM_VALIDATION_AUTHORITY_H_
