#ifndef GEOLIC_DRM_PARTY_H_
#define GEOLIC_DRM_PARTY_H_

#include <cstdint>
#include <string>

namespace geolic {

// Role of a participant in the content distribution chain (paper Section 1:
// owner → multiple levels of distributors → consumers).
enum class PartyRole : int32_t {
  kOwner = 0,        // Rights holder; issues licenses without restriction.
  kDistributor = 1,  // Holds redistribution licenses; issues new ones.
  kConsumer = 2,     // Receives usage licenses only.
};

const char* PartyRoleName(PartyRole role);

// One participant in the distribution network.
struct Party {
  int id = -1;
  PartyRole role = PartyRole::kConsumer;
  std::string name;
  // The party this one obtains licenses from (-1 for the owner).
  int parent = -1;
};

}  // namespace geolic

#endif  // GEOLIC_DRM_PARTY_H_
