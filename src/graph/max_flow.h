#ifndef GEOLIC_GRAPH_MAX_FLOW_H_
#define GEOLIC_GRAPH_MAX_FLOW_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace geolic {

// Dinic's maximum-flow algorithm on a directed graph with int64 capacities.
//
// In this library it backs the *feasibility* view of aggregate validation:
// assigning issued counts to redistribution licenses is a transportation
// problem (source → log-set nodes with demand capacity, set → member
// licenses with ∞, license → sink with aggregate capacity). By the
// Gale–Hoffman conditions, a feasible assignment exists iff the paper's
// validation equations C⟨S⟩ ≤ A[S] all hold — tested in
// tests/validation/feasibility_test.cc, which pins the reproduction to the
// underlying combinatorics rather than just the paper's algorithms.
class MaxFlow {
 public:
  // Creates a network with `num_nodes` nodes (0-based ids).
  explicit MaxFlow(int num_nodes);

  // Adds a directed edge with the given capacity (≥ 0); returns the edge
  // id, usable with flow_on() after Compute.
  int AddEdge(int from, int to, int64_t capacity);

  // Computes the maximum flow from `source` to `sink`. May be called once.
  Result<int64_t> Compute(int source, int sink);

  // Flow routed through edge `edge_id` (valid after Compute).
  int64_t flow_on(int edge_id) const;

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }

  // Practically-infinite capacity for "uncapacitated" edges.
  static constexpr int64_t kInfinity = int64_t{1} << 60;

 private:
  struct Edge {
    int to;
    int64_t capacity;   // Remaining capacity.
    int reverse_index;  // Index of the reverse edge in adjacency_[to].
  };

  bool BuildLevels(int source, int sink);
  int64_t Augment(int node, int sink, int64_t limit);

  std::vector<std::vector<Edge>> adjacency_;
  // (node, index in adjacency_[node]) per public edge id.
  std::vector<std::pair<int, int>> edge_handles_;
  std::vector<int64_t> original_capacity_;
  std::vector<int> level_;
  std::vector<int> next_edge_;
  bool computed_ = false;
};

}  // namespace geolic

#endif  // GEOLIC_GRAPH_MAX_FLOW_H_
