#include "graph/adjacency_matrix.h"

namespace geolic {

int AdjacencyMatrix::Degree(int i) const {
  CheckVertex(i);
  int degree = 0;
  for (int j = 0; j < num_vertices_; ++j) {
    if (cells_[Cell(i, j)]) {
      ++degree;
    }
  }
  return degree;
}

int AdjacencyMatrix::EdgeCount() const {
  int twice_edges = 0;
  for (int i = 0; i < num_vertices_; ++i) {
    twice_edges += Degree(i);
  }
  return twice_edges / 2;
}

std::string AdjacencyMatrix::ToString() const {
  std::string out;
  for (int i = 0; i < num_vertices_; ++i) {
    for (int j = 0; j < num_vertices_; ++j) {
      if (j > 0) {
        out += ' ';
      }
      out += cells_[Cell(i, j)] ? '1' : '0';
    }
    out += '\n';
  }
  return out;
}

}  // namespace geolic
