#ifndef GEOLIC_GRAPH_ADJACENCY_MATRIX_H_
#define GEOLIC_GRAPH_ADJACENCY_MATRIX_H_

#include <string>
#include <vector>

#include "util/check.h"

namespace geolic {

// Dense undirected graph over vertices 0..n-1 — the paper represents the
// license overlap graph "using an adjacency matrix Adj of size N × N"
// (Section 3.3). Self-loops are not stored (Adj[i][i] stays 0, matching the
// paper's figure 3).
class AdjacencyMatrix {
 public:
  explicit AdjacencyMatrix(int num_vertices)
      : num_vertices_(num_vertices),
        cells_(static_cast<size_t>(num_vertices) *
                   static_cast<size_t>(num_vertices),
               false) {
    GEOLIC_CHECK(num_vertices >= 0);
  }

  int num_vertices() const { return num_vertices_; }

  // Adds the undirected edge {i, j}. Self-loops are ignored.
  void AddEdge(int i, int j) {
    CheckVertex(i);
    CheckVertex(j);
    if (i == j) {
      return;
    }
    cells_[Cell(i, j)] = true;
    cells_[Cell(j, i)] = true;
  }

  bool HasEdge(int i, int j) const {
    CheckVertex(i);
    CheckVertex(j);
    return cells_[Cell(i, j)];
  }

  // Number of neighbours of `i`.
  int Degree(int i) const;

  // Total number of undirected edges.
  int EdgeCount() const;

  // Multi-line 0/1 matrix rendering (as in the paper's figure 3).
  std::string ToString() const;

 private:
  size_t Cell(int i, int j) const {
    return static_cast<size_t>(i) * static_cast<size_t>(num_vertices_) +
           static_cast<size_t>(j);
  }
  void CheckVertex(int v) const {
    GEOLIC_DCHECK(v >= 0 && v < num_vertices_);
    (void)v;
  }

  int num_vertices_;
  std::vector<bool> cells_;
};

}  // namespace geolic

#endif  // GEOLIC_GRAPH_ADJACENCY_MATRIX_H_
