#include "graph/connected_components.h"

#include <algorithm>
#include <numeric>

namespace geolic {
namespace {

// Subroutine Depth_first(i, k) of Algorithm 3: marks vertex i as visited,
// adds it to group k, and recurses into unvisited neighbours.
//
// Note: the paper's pseudo-code scans neighbours "for j=i+1 to N". Read
// literally that drops components connected only through a lower-indexed
// hub (edges 2-0 and 2-1 with no 0-1 edge: the walk 0→2 never looks back
// down to 1, wrongly splitting {0,1,2}). A DFS must scan *all* neighbours,
// so we treat the bound as a transcription slip and scan j = 1..N; the
// iterative-DFS and union-find implementations cross-check this in tests.
void DepthFirst(const AdjacencyMatrix& graph, int i, int k,
                std::vector<int>* visited, ComponentSet* out) {
  out->components[static_cast<size_t>(k)] |= LicenseSet::Singleton(i);
  out->component_of[static_cast<size_t>(i)] = k;
  (*visited)[static_cast<size_t>(i)] = 1;
  for (int j = 0; j < graph.num_vertices(); ++j) {
    if (graph.HasEdge(i, j) && (*visited)[static_cast<size_t>(j)] == 0) {
      DepthFirst(graph, j, k, visited, out);
    }
  }
}

}  // namespace

ComponentSet FindComponentsDfs(const AdjacencyMatrix& graph) {
  const int n = graph.num_vertices();
  GEOLIC_CHECK(n <= kMaxLicensesLarge);
  ComponentSet out;
  out.component_of.assign(static_cast<size_t>(n), -1);
  std::vector<int> visited(static_cast<size_t>(n), 0);
  int g = 0;
  for (int i = 0; i < n; ++i) {
    if (visited[static_cast<size_t>(i)] == 0) {
      out.components.push_back(LicenseSet());
      DepthFirst(graph, i, g, &visited, &out);
      ++g;
    }
  }
  return out;
}

ComponentSet FindComponentsIterative(const AdjacencyMatrix& graph) {
  const int n = graph.num_vertices();
  GEOLIC_CHECK(n <= kMaxLicensesLarge);
  ComponentSet out;
  out.component_of.assign(static_cast<size_t>(n), -1);
  std::vector<bool> visited(static_cast<size_t>(n), false);
  std::vector<int> stack;
  for (int start = 0; start < n; ++start) {
    if (visited[static_cast<size_t>(start)]) {
      continue;
    }
    const int k = static_cast<int>(out.components.size());
    out.components.push_back(LicenseSet());
    stack.push_back(start);
    visited[static_cast<size_t>(start)] = true;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      out.components[static_cast<size_t>(k)] |= LicenseSet::Singleton(v);
      out.component_of[static_cast<size_t>(v)] = k;
      for (int j = 0; j < n; ++j) {
        if (graph.HasEdge(v, j) && !visited[static_cast<size_t>(j)]) {
          visited[static_cast<size_t>(j)] = true;
          stack.push_back(j);
        }
      }
    }
  }
  return out;
}

UnionFind::UnionFind(int n)
    : parent_(static_cast<size_t>(n)),
      rank_(static_cast<size_t>(n), 0),
      set_count_(n) {
  GEOLIC_CHECK(n >= 0);
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::Find(int x) {
  int root = x;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  // Path compression.
  while (parent_[static_cast<size_t>(x)] != root) {
    const int next = parent_[static_cast<size_t>(x)];
    parent_[static_cast<size_t>(x)] = root;
    x = next;
  }
  return root;
}

int UnionFind::FindRoot(int x) const {
  int root = x;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  return root;
}

int UnionFind::AddElement() {
  const int index = static_cast<int>(parent_.size());
  parent_.push_back(index);
  rank_.push_back(0);
  ++set_count_;
  return index;
}

bool UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) {
    return false;
  }
  if (rank_[static_cast<size_t>(ra)] < rank_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<size_t>(rb)] = ra;
  if (rank_[static_cast<size_t>(ra)] == rank_[static_cast<size_t>(rb)]) {
    ++rank_[static_cast<size_t>(ra)];
  }
  --set_count_;
  return true;
}

ComponentSet FindComponentsUnionFind(const AdjacencyMatrix& graph) {
  const int n = graph.num_vertices();
  GEOLIC_CHECK(n <= kMaxLicensesLarge);
  UnionFind uf(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (graph.HasEdge(i, j)) {
        uf.Union(i, j);
      }
    }
  }
  ComponentSet out;
  out.component_of.assign(static_cast<size_t>(n), -1);
  // Number components by their smallest member to match the DFS ordering.
  std::vector<int> component_of_root(static_cast<size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    const int root = uf.Find(v);
    int& k = component_of_root[static_cast<size_t>(root)];
    if (k == -1) {
      k = static_cast<int>(out.components.size());
      out.components.push_back(LicenseSet());
    }
    out.components[static_cast<size_t>(k)] |= LicenseSet::Singleton(v);
    out.component_of[static_cast<size_t>(v)] = k;
  }
  return out;
}

}  // namespace geolic
