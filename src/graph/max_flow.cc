#include "graph/max_flow.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace geolic {

MaxFlow::MaxFlow(int num_nodes)
    : adjacency_(static_cast<size_t>(num_nodes)) {
  GEOLIC_CHECK(num_nodes >= 0);
}

int MaxFlow::AddEdge(int from, int to, int64_t capacity) {
  GEOLIC_CHECK(from >= 0 && from < num_nodes());
  GEOLIC_CHECK(to >= 0 && to < num_nodes());
  GEOLIC_CHECK(capacity >= 0);
  GEOLIC_CHECK(!computed_);
  auto& forward_list = adjacency_[static_cast<size_t>(from)];
  auto& backward_list = adjacency_[static_cast<size_t>(to)];
  const int forward_index = static_cast<int>(forward_list.size());
  const int backward_index = static_cast<int>(backward_list.size()) +
                             (from == to ? 1 : 0);
  forward_list.push_back(Edge{to, capacity, backward_index});
  adjacency_[static_cast<size_t>(to)].push_back(
      Edge{from, 0, forward_index});
  edge_handles_.emplace_back(from, forward_index);
  original_capacity_.push_back(capacity);
  return static_cast<int>(edge_handles_.size()) - 1;
}

bool MaxFlow::BuildLevels(int source, int sink) {
  level_.assign(adjacency_.size(), -1);
  std::queue<int> frontier;
  level_[static_cast<size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    for (const Edge& edge : adjacency_[static_cast<size_t>(node)]) {
      if (edge.capacity > 0 && level_[static_cast<size_t>(edge.to)] == -1) {
        level_[static_cast<size_t>(edge.to)] =
            level_[static_cast<size_t>(node)] + 1;
        frontier.push(edge.to);
      }
    }
  }
  return level_[static_cast<size_t>(sink)] != -1;
}

int64_t MaxFlow::Augment(int node, int sink, int64_t limit) {
  if (node == sink) {
    return limit;
  }
  auto& edges = adjacency_[static_cast<size_t>(node)];
  for (int& index = next_edge_[static_cast<size_t>(node)];
       index < static_cast<int>(edges.size()); ++index) {
    Edge& edge = edges[static_cast<size_t>(index)];
    if (edge.capacity <= 0 ||
        level_[static_cast<size_t>(edge.to)] !=
            level_[static_cast<size_t>(node)] + 1) {
      continue;
    }
    const int64_t pushed =
        Augment(edge.to, sink, std::min(limit, edge.capacity));
    if (pushed > 0) {
      edge.capacity -= pushed;
      adjacency_[static_cast<size_t>(edge.to)]
          [static_cast<size_t>(edge.reverse_index)]
              .capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

Result<int64_t> MaxFlow::Compute(int source, int sink) {
  if (source < 0 || source >= num_nodes() || sink < 0 ||
      sink >= num_nodes()) {
    return Status::OutOfRange("source/sink out of range");
  }
  if (source == sink) {
    return Status::InvalidArgument("source equals sink");
  }
  if (computed_) {
    return Status::FailedPrecondition("Compute may be called once");
  }
  computed_ = true;
  int64_t total = 0;
  while (BuildLevels(source, sink)) {
    next_edge_.assign(adjacency_.size(), 0);
    while (true) {
      const int64_t pushed = Augment(source, sink, kInfinity);
      if (pushed == 0) {
        break;
      }
      total += pushed;
    }
  }
  return total;
}

int64_t MaxFlow::flow_on(int edge_id) const {
  GEOLIC_CHECK(edge_id >= 0 &&
               edge_id < static_cast<int>(edge_handles_.size()));
  const auto& [node, index] = edge_handles_[static_cast<size_t>(edge_id)];
  const Edge& edge =
      adjacency_[static_cast<size_t>(node)][static_cast<size_t>(index)];
  return original_capacity_[static_cast<size_t>(edge_id)] - edge.capacity;
}

}  // namespace geolic
