#ifndef GEOLIC_GRAPH_CONNECTED_COMPONENTS_H_
#define GEOLIC_GRAPH_CONNECTED_COMPONENTS_H_

#include <vector>

#include "graph/adjacency_matrix.h"
#include "util/license_set.h"

namespace geolic {

// Result of grouping the vertices of an undirected graph into connected
// components. Components are numbered in order of their smallest vertex
// (the paper's Algorithm 3 scans vertices ascending, so component 0 holds
// vertex 0, etc.).
struct ComponentSet {
  // Bitmask of vertices per component; size = number of components g.
  std::vector<LicenseSet> components;
  // Component index of each vertex; size = number of vertices.
  std::vector<int> component_of;

  int count() const { return static_cast<int>(components.size()); }
  int SizeOf(int component) const {
    return components[static_cast<size_t>(component)].Size();
  }
};

// Paper Algorithm 3 ("Group Formation"): recursive depth-first search over
// the adjacency matrix producing the Group / GroupSize arrays. This is the
// faithful transcription; the returned ComponentSet packages the same
// information (`components[k]` is row k of Group as a bitmask,
// `SizeOf(k)` is GroupSize[k]). Requires ≤ 64 vertices.
ComponentSet FindComponentsDfs(const AdjacencyMatrix& graph);

// Same result via an explicit-stack DFS — no recursion depth limits; used
// to cross-check the faithful algorithm and for the ablation bench.
ComponentSet FindComponentsIterative(const AdjacencyMatrix& graph);

// Same result via union-find with path compression (ablation alternative).
ComponentSet FindComponentsUnionFind(const AdjacencyMatrix& graph);

// Disjoint-set forest over 0..n-1 with union by rank and path compression.
class UnionFind {
 public:
  UnionFind() : UnionFind(0) {}
  explicit UnionFind(int n);

  // Representative of x's set.
  int Find(int x);

  // Representative of x's set without path compression — usable from const
  // contexts. Union by rank bounds the walk to O(log n) even when no
  // compressing Find has run.
  int FindRoot(int x) const;

  // Merges the sets of a and b; returns true if they were distinct.
  bool Union(int a, int b);

  // Appends a new element as a singleton set; returns its index.
  int AddElement();

  // Number of elements in the forest.
  int ElementCount() const { return static_cast<int>(parent_.size()); }

  // Number of disjoint sets remaining.
  int SetCount() const { return set_count_; }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  int set_count_;
};

}  // namespace geolic

#endif  // GEOLIC_GRAPH_CONNECTED_COMPONENTS_H_
