#include "catalog/catalog_service.h"

#include <filesystem>
#include <map>
#include <sstream>
#include <utility>

#include "licensing/license_serialization.h"
#include "persist/checkpoint.h"
#include "persist/framing.h"

namespace geolic {

namespace {

// Approximate residency cost of a materialized tenant. Deliberately
// coarse: the budget bounds the cache, it does not meter the allocator.
constexpr size_t kTenantBaseBytes = 16 * 1024;
constexpr size_t kLicenseBytes = 1024;
constexpr size_t kRecordBytes = 128;

constexpr uint32_t kSpillVersion = 1;

// SplitMix64 finalizer — tenant ids may be dense (0, 1, 2, ...), so both
// the LRU-shard and journal-writer routes need real mixing.
uint64_t MixId(uint64_t id) {
  uint64_t z = id + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

size_t ApproxTenantBytes(size_t licenses, size_t records) {
  return kTenantBaseBytes + licenses * kLicenseBytes + records * kRecordBytes;
}

std::string TenantLabel(uint64_t tenant_id) {
  return "tenant " + std::to_string(tenant_id);
}

}  // namespace

Status CatalogOptions::Validate() const {
  if (dir.empty()) {
    return Status::InvalidArgument("catalog dir must be set");
  }
  if (memory_budget_bytes == 0) {
    return Status::InvalidArgument("memory_budget_bytes must be > 0");
  }
  if (lru_shards < 1 || lru_shards > 1024) {
    return Status::InvalidArgument("lru_shards must be in [1, 1024]");
  }
  if (journal_writers < 1 || journal_writers > 256) {
    return Status::InvalidArgument("journal_writers must be in [1, 256]");
  }
  if (fsync_interval < 0) {
    return Status::InvalidArgument("fsync_interval must be >= 0");
  }
  return Status::Ok();
}

CatalogService::CatalogService(TenantSource* source,
                               const CatalogOptions& options)
    : source_(source), options_(options) {
  shard_budget_bytes_ =
      options_.memory_budget_bytes / static_cast<size_t>(options_.lru_shards);
  if (shard_budget_bytes_ == 0) {
    shard_budget_bytes_ = 1;
  }
  shards_.reserve(static_cast<size_t>(options_.lru_shards));
  for (int i = 0; i < options_.lru_shards; ++i) {
    shards_.push_back(std::make_unique<LruShard>());
  }
  writers_.reserve(static_cast<size_t>(options_.journal_writers));
  for (int i = 0; i < options_.journal_writers; ++i) {
    writers_.push_back(std::make_unique<PoolWriter>());
  }
}

CatalogService::~CatalogService() { Close(); }

Result<std::unique_ptr<CatalogService>> CatalogService::Create(
    TenantSource* source, const CatalogOptions& options) {
  GEOLIC_RETURN_IF_ERROR(options.Validate());
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create catalog dir " + options.dir + ": " +
                           ec.message());
  }
  // Fresh means fresh: a reused directory may hold spills (and interrupted
  // spill temp files) from an earlier catalog generation, and lazy
  // materialization would transparently resurrect that evolved state. Purge
  // them before the journals truncate so Create never mixes old tenant
  // state with an empty journal pool.
  GEOLIC_RETURN_IF_ERROR(RemoveSpillFiles(options.dir));
  auto service =
      std::unique_ptr<CatalogService>(new CatalogService(source, options));
  GEOLIC_RETURN_IF_ERROR(service->OpenJournals());
  return service;
}

Status CatalogService::RemoveSpillFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IoError("cannot list catalog dir " + dir + ": " +
                           ec.message());
  }
  const auto has_suffix = [](const std::string& name,
                             std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("tenant-", 0) != 0 ||
        (!has_suffix(name, ".spill") && !has_suffix(name, ".spill.tmp"))) {
      continue;
    }
    std::error_code remove_ec;
    if (!std::filesystem::remove(entry.path(), remove_ec) || remove_ec) {
      return Status::IoError("cannot delete stale spill " +
                             entry.path().string() + ": " +
                             remove_ec.message());
    }
  }
  return Status::Ok();
}

Status CatalogService::OpenJournals() {
  for (int k = 0; k < options_.journal_writers; ++k) {
    const std::string path = JournalPath(k);
    std::unique_ptr<SyncFile> file;
    if (options_.journal_file_factory) {
      GEOLIC_ASSIGN_OR_RETURN(file, options_.journal_file_factory(path, k));
    } else {
      GEOLIC_ASSIGN_OR_RETURN(file, PosixSyncFile::Create(path));
    }
    JournalOptions journal_options;
    journal_options.fsync_interval = options_.fsync_interval;
    GEOLIC_ASSIGN_OR_RETURN(writers_[static_cast<size_t>(k)]->writer,
                            JournalWriter::Create(std::move(file),
                                                  journal_options));
    if (options_.tracer != nullptr) {
      writers_[static_cast<size_t>(k)]->writer->set_tracer(options_.tracer);
    }
    writers_[static_cast<size_t>(k)]->next_seq = 0;
  }
  journaling_enabled_ = true;
  return Status::Ok();
}

std::string CatalogService::JournalPath(int writer_index) const {
  return options_.dir + "/catalog-journal-" + std::to_string(writer_index) +
         ".wal";
}

std::string CatalogService::SpillPath(uint64_t tenant_id) const {
  return options_.dir + "/tenant-" + std::to_string(tenant_id) + ".spill";
}

int CatalogService::WriterIndexForTenant(uint64_t tenant_id) const {
  return static_cast<int>(MixId(tenant_id) %
                          static_cast<uint64_t>(options_.journal_writers));
}

CatalogService::LruShard& CatalogService::ShardFor(uint64_t tenant_id) {
  // Decorrelated from the writer route (different hash bits) so journal
  // and cache load spread independently.
  return *shards_[(MixId(tenant_id) >> 32) %
                  static_cast<uint64_t>(options_.lru_shards)];
}

CatalogService::PoolWriter& CatalogService::WriterFor(uint64_t tenant_id) {
  return *writers_[static_cast<size_t>(WriterIndexForTenant(tenant_id))];
}

std::shared_ptr<CatalogService::Tenant> CatalogService::GetTenant(
    uint64_t tenant_id) {
  LruShard& shard = ShardFor(tenant_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  std::shared_ptr<Tenant>& slot = shard.tenants[tenant_id];
  if (slot == nullptr) {
    slot = std::make_shared<Tenant>(tenant_id);
  }
  return slot;
}

void CatalogService::TouchLru(LruShard& shard, uint64_t tenant_id) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.lru_pos.find(tenant_id);
  if (it != shard.lru_pos.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  }
}

Status CatalogService::CompileLocked(Tenant* tenant) {
  GEOLIC_ASSIGN_OR_RETURN(Workload baseline,
                          source_->MakeTenant(tenant->tenant_id));
  tenant->schema = std::move(baseline.schema);
  tenant->licenses = std::move(baseline.licenses);
  GEOLIC_ASSIGN_OR_RETURN(
      tenant->service,
      IssuanceService::Create(tenant->licenses.get(),
                              options_.service_options));
  tenant->epoch_base = 0;
  return Status::Ok();
}

Status CatalogService::LoadSpillLocked(Tenant* tenant,
                                       const std::string& payload) {
  auto fail = [&](const std::string& message) {
    return Status::ParseError(TenantLabel(tenant->tenant_id) + " spill " +
                              SpillPath(tenant->tenant_id) + ": " + message);
  };
  size_t pos = 0;
  uint32_t version = 0;
  uint64_t stored_id = 0;
  uint64_t covered_seq = 0;
  uint64_t epoch = 0;
  uint32_t license_count = 0;
  if (!framing::GetScalar(payload, &pos, &version) ||
      !framing::GetScalar(payload, &pos, &stored_id) ||
      !framing::GetScalar(payload, &pos, &covered_seq) ||
      !framing::GetScalar(payload, &pos, &epoch) ||
      !framing::GetScalar(payload, &pos, &license_count)) {
    return fail("truncated spill header");
  }
  if (version != kSpillVersion) {
    return fail("unsupported spill version " + std::to_string(version));
  }
  if (stored_id != tenant->tenant_id) {
    return fail("payload holds tenant " + std::to_string(stored_id) +
                " — spill file misplaced");
  }
  if (license_count == 0) {
    return fail("spill carries no licenses");
  }

  // The schema is a pure function of the tenant id; only the evolved
  // license set and log need the disk bytes.
  GEOLIC_ASSIGN_OR_RETURN(Workload baseline,
                          source_->MakeTenant(tenant->tenant_id));
  std::unique_ptr<ConstraintSchema> schema = std::move(baseline.schema);
  auto catalog = std::make_unique<LicenseCatalog>(schema.get());

  std::istringstream in(payload.substr(pos));
  for (uint32_t i = 0; i < license_count; ++i) {
    auto license = ReadLicenseBinary(&in);
    if (!license.ok()) {
      return fail("license " + std::to_string(i) + ": " +
                  license.status().message());
    }
    auto added = catalog->Add(std::move(license).value());
    if (!added.ok()) {
      return fail("license " + std::to_string(i) + ": " +
                  added.status().message());
    }
  }
  const std::streampos consumed = in.tellg();
  if (consumed < 0) {
    return fail("license section lost stream position");
  }
  pos += static_cast<size_t>(consumed);

  uint64_t record_count = 0;
  if (!framing::GetScalar(payload, &pos, &record_count)) {
    return fail("truncated record count");
  }
  LogStore history;
  for (uint64_t i = 0; i < record_count; ++i) {
    LogRecord record;
    Status decoded = DecodeLogRecord(payload, &pos, &record);
    if (!decoded.ok()) {
      return fail("record " + std::to_string(i) + ": " + decoded.message());
    }
    Status appended = history.Append(std::move(record));
    if (!appended.ok()) {
      return fail("record " + std::to_string(i) + ": " + appended.message());
    }
  }
  if (pos != payload.size()) {
    return fail(std::to_string(payload.size() - pos) +
                " trailing bytes after the record section");
  }

  GEOLIC_ASSIGN_OR_RETURN(
      std::unique_ptr<IssuanceService> service,
      IssuanceService::CreateWithHistory(catalog.get(),
                                         options_.service_options, history));
  tenant->schema = std::move(schema);
  tenant->licenses = std::move(catalog);
  tenant->service = std::move(service);
  tenant->epoch_base = epoch;
  tenant->tenant_seq = covered_seq;
  return Status::Ok();
}

Status CatalogService::EnsureResidentLocked(Tenant* tenant) {
  if (tenant->resident) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    TouchLru(ShardFor(tenant->tenant_id), tenant->tenant_id);
    return Status::Ok();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  ScopedTracerSpan span(options_.tracer, TraceStage::kCatalogCompile);

  const std::string spill_path = SpillPath(tenant->tenant_id);
  std::error_code ec;
  const bool has_spill = std::filesystem::exists(spill_path, ec);
  if (has_spill) {
    auto payload =
        ReadCheckpointFile(CheckpointKind::kTenantSnapshot, spill_path);
    if (!payload.ok()) {
      return Status(payload.status().code(),
                    TenantLabel(tenant->tenant_id) + " spill " + spill_path +
                        ": " + payload.status().message());
    }
    GEOLIC_RETURN_IF_ERROR(LoadSpillLocked(tenant, *payload));
    loads_.fetch_add(1, std::memory_order_relaxed);
  } else {
    GEOLIC_RETURN_IF_ERROR(CompileLocked(tenant));
    compiles_.fetch_add(1, std::memory_order_relaxed);
  }

  tenant->resident = true;
  tenant->approx_bytes = ApproxTenantBytes(
      static_cast<size_t>(tenant->licenses->size()),
      tenant->service->CollectLog().size());
  LruShard& shard = ShardFor(tenant->tenant_id);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.push_front(tenant->tenant_id);
    shard.lru_pos[tenant->tenant_id] = shard.lru.begin();
  }
  shard.resident_bytes.fetch_add(tenant->approx_bytes,
                                 std::memory_order_relaxed);
  resident_tenants_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Result<std::string> CatalogService::EncodeSpillLocked(
    const Tenant& tenant) const {
  std::string payload;
  framing::PutScalar<uint32_t>(&payload, kSpillVersion);
  framing::PutScalar<uint64_t>(&payload, tenant.tenant_id);
  framing::PutScalar<uint64_t>(&payload, tenant.tenant_seq);
  framing::PutScalar<uint64_t>(
      &payload, tenant.epoch_base + tenant.service->catalog_epoch());

  const std::vector<License>& licenses =
      tenant.service->licenses().licenses();
  framing::PutScalar<uint32_t>(&payload,
                               static_cast<uint32_t>(licenses.size()));
  std::ostringstream blob;
  for (const License& license : licenses) {
    GEOLIC_RETURN_IF_ERROR(WriteLicenseBinary(license, &blob));
  }
  payload += blob.str();

  const LogStore log = tenant.service->CollectLog();
  framing::PutScalar<uint64_t>(&payload, static_cast<uint64_t>(log.size()));
  for (const LogRecord& record : log.records()) {
    EncodeLogRecord(record, &payload);
  }
  return payload;
}

Status CatalogService::SpillLocked(Tenant* tenant, bool evicting) {
  if (!tenant->resident) {
    return Status::Ok();
  }
  ScopedTracerSpan span(options_.tracer, TraceStage::kCatalogEvict);
  GEOLIC_ASSIGN_OR_RETURN(std::string payload, EncodeSpillLocked(*tenant));
  // Durable atomic publish (temp + fsync + rename + dir fsync): recovery
  // truncates the journal pool on the strength of these files, and live
  // eviction replaces the previous good spill — a torn or page-cache-only
  // in-place overwrite would silently lose the tenant.
  GEOLIC_RETURN_IF_ERROR(WriteCheckpointFileDurable(
      CheckpointKind::kTenantSnapshot, payload,
      SpillPath(tenant->tenant_id)));
  tenant->service.reset();
  tenant->licenses.reset();
  tenant->schema.reset();
  tenant->resident = false;

  LruShard& shard = ShardFor(tenant->tenant_id);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.lru_pos.find(tenant->tenant_id);
    if (it != shard.lru_pos.end()) {
      shard.lru.erase(it->second);
      shard.lru_pos.erase(it);
    }
  }
  shard.resident_bytes.fetch_sub(tenant->approx_bytes,
                                 std::memory_order_relaxed);
  tenant->approx_bytes = 0;
  resident_tenants_.fetch_sub(1, std::memory_order_relaxed);
  spills_.fetch_add(1, std::memory_order_relaxed);
  if (evicting) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

void CatalogService::MaybeEvict(LruShard& shard) {
  // Bounded sweep: budget pressure from a single op is at most one
  // tenant's worth, so a short loop always catches up; the guard only
  // protects against pathological interleavings.
  for (int guard = 0; guard < 64; ++guard) {
    uint64_t victim_id = 0;
    std::shared_ptr<Tenant> victim;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.resident_bytes.load(std::memory_order_relaxed) <=
              shard_budget_bytes_ ||
          shard.lru.size() <= 1) {
        return;
      }
      victim_id = shard.lru.back();
      auto it = shard.tenants.find(victim_id);
      if (it == shard.tenants.end()) {
        return;
      }
      victim = it->second;
    }
    std::lock_guard<std::mutex> tenant_lock(victim->mutex);
    {
      // Re-check under the shard lock: the victim may have been touched
      // to the front (or spilled) while we waited for its mutex.
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.lru.size() <= 1 || shard.lru.back() != victim_id) {
        continue;
      }
    }
    if (!victim->resident) {
      continue;
    }
    if (!SpillLocked(victim.get(), /*evicting=*/true).ok()) {
      // Spill I/O trouble: stop evicting rather than spin. The tenant
      // stays resident (and over budget) — better than losing state.
      return;
    }
    {
      // Drop the cold shell when nobody else holds it: map size stays
      // bounded by residents + in-flight lookups, not total tenants ever
      // seen. New references are only handed out under the shard lock, so
      // use_count == 2 (map + our local) is a stable "nobody else" proof.
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.tenants.find(victim_id);
      if (it != shard.tenants.end() && it->second.use_count() == 2 &&
          !it->second->resident) {
        shard.tenants.erase(it);
      }
    }
  }
}

Status CatalogService::CheckAcceptingOps() const {
  if (failed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "catalog fail-stopped: a pool journal writer was poisoned by an "
        "I/O error; mutating ops are rejected until a restart through "
        "CatalogService::Recover");
  }
  return Status::Ok();
}

void CatalogService::NotePoisonedWriterLocked(PoolWriter& pool) {
  if (!pool.counted_poisoned) {
    pool.counted_poisoned = true;
    poisoned_writers_.fetch_add(1, std::memory_order_relaxed);
  }
  failed_.store(true, std::memory_order_release);
}

Status CatalogService::JournalOpLocked(Tenant* tenant, TenantOpFrame* frame) {
  frame->tenant_id = tenant->tenant_id;
  frame->tenant_seq = tenant->tenant_seq + 1;
  if (options_.sim_misroute_frames && frame->tenant_seq % 7 == 5) {
    // Planted bug (sim harness): stamp a sibling tenant's id on the frame.
    // Routing still uses the true id, so recovery must notice the lie.
    frame->tenant_id = tenant->tenant_id ^ 1;
  }
  if (!journaling_enabled_) {
    ++tenant->tenant_seq;
    return Status::Ok();
  }
  PoolWriter& pool = WriterFor(tenant->tenant_id);
  std::lock_guard<std::mutex> lock(pool.mutex);
  if (pool.writer == nullptr) {
    return Status::FailedPrecondition("catalog journal pool is closed");
  }
  Status appended = pool.writer->AppendTenantOp(pool.next_seq + 1, *frame);
  if (!appended.ok()) {
    // Maybe-persisted: the frame may or may not have reached the disk.
    // The op is rejected with tenant state unchanged; recovery is allowed
    // to replay at most this one extra frame. An I/O error poisons the
    // writer for good, and a catalog that keeps serving tenants it can no
    // longer journal is a silent durability hole — fail-stop the whole
    // catalog instead. (Argument rejections do not poison and stay
    // per-op.)
    if (pool.writer->poisoned()) {
      NotePoisonedWriterLocked(pool);
    }
    return appended;
  }
  ++pool.next_seq;
  ++tenant->tenant_seq;
  journal_frames_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Result<OnlineDecision> CatalogService::TryIssue(uint64_t tenant_id,
                                                const License& usage) {
  GEOLIC_RETURN_IF_ERROR(CheckAcceptingOps());
  std::shared_ptr<Tenant> tenant = GetTenant(tenant_id);
  Result<OnlineDecision> result = [&]() -> Result<OnlineDecision> {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    GEOLIC_RETURN_IF_ERROR(EnsureResidentLocked(tenant.get()));
    TenantOpFrame frame;
    frame.op = TenantOpKind::kIssue;
    frame.license = usage;
    GEOLIC_RETURN_IF_ERROR(JournalOpLocked(tenant.get(), &frame));
    GEOLIC_ASSIGN_OR_RETURN(OnlineDecision decision,
                            tenant->service->TryIssue(usage));
    decision.catalog_epoch += tenant->epoch_base;
    if (decision.accepted()) {
      tenant->approx_bytes += kRecordBytes;
      ShardFor(tenant_id).resident_bytes.fetch_add(kRecordBytes,
                                                   std::memory_order_relaxed);
    }
    return decision;
  }();
  MaybeEvict(ShardFor(tenant_id));
  return result;
}

Result<int> CatalogService::AcquireLicense(uint64_t tenant_id,
                                           const License& license) {
  GEOLIC_RETURN_IF_ERROR(CheckAcceptingOps());
  std::shared_ptr<Tenant> tenant = GetTenant(tenant_id);
  Result<int> result = [&]() -> Result<int> {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    GEOLIC_RETURN_IF_ERROR(EnsureResidentLocked(tenant.get()));
    TenantOpFrame frame;
    frame.op = TenantOpKind::kAcquire;
    frame.license = license;
    GEOLIC_RETURN_IF_ERROR(JournalOpLocked(tenant.get(), &frame));
    GEOLIC_ASSIGN_OR_RETURN(int index,
                            tenant->service->AcquireLicense(license));
    tenant->approx_bytes += kLicenseBytes;
    ShardFor(tenant_id).resident_bytes.fetch_add(kLicenseBytes,
                                                 std::memory_order_relaxed);
    return index;
  }();
  MaybeEvict(ShardFor(tenant_id));
  return result;
}

Status CatalogService::RevokeLicenseById(uint64_t tenant_id,
                                         const std::string& id) {
  GEOLIC_RETURN_IF_ERROR(CheckAcceptingOps());
  std::shared_ptr<Tenant> tenant = GetTenant(tenant_id);
  Status result = [&]() -> Status {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    GEOLIC_RETURN_IF_ERROR(EnsureResidentLocked(tenant.get()));
    TenantOpFrame frame;
    frame.op = TenantOpKind::kRevoke;
    frame.revoke_id = id;
    GEOLIC_RETURN_IF_ERROR(JournalOpLocked(tenant.get(), &frame));
    return tenant->service->RevokeLicenseById(id);
  }();
  MaybeEvict(ShardFor(tenant_id));
  return result;
}

Result<int> CatalogService::ExpireDimensionBelow(uint64_t tenant_id, int dim,
                                                 int64_t cutoff) {
  GEOLIC_RETURN_IF_ERROR(CheckAcceptingOps());
  std::shared_ptr<Tenant> tenant = GetTenant(tenant_id);
  Result<int> result = [&]() -> Result<int> {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    GEOLIC_RETURN_IF_ERROR(EnsureResidentLocked(tenant.get()));
    TenantOpFrame frame;
    frame.op = TenantOpKind::kExpire;
    frame.expire_dim = dim;
    frame.expire_cutoff = cutoff;
    GEOLIC_RETURN_IF_ERROR(JournalOpLocked(tenant.get(), &frame));
    return tenant->service->ExpireDimensionBelow(dim, cutoff);
  }();
  MaybeEvict(ShardFor(tenant_id));
  return result;
}

Result<uint64_t> CatalogService::TenantEpoch(uint64_t tenant_id) {
  std::shared_ptr<Tenant> tenant = GetTenant(tenant_id);
  Result<uint64_t> result = [&]() -> Result<uint64_t> {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    GEOLIC_RETURN_IF_ERROR(EnsureResidentLocked(tenant.get()));
    return tenant->epoch_base + tenant->service->catalog_epoch();
  }();
  MaybeEvict(ShardFor(tenant_id));
  return result;
}

Status CatalogService::SpillTenant(uint64_t tenant_id) {
  LruShard& shard = ShardFor(tenant_id);
  std::shared_ptr<Tenant> tenant;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.tenants.find(tenant_id);
    if (it == shard.tenants.end()) {
      return Status::Ok();
    }
    tenant = it->second;
  }
  std::lock_guard<std::mutex> lock(tenant->mutex);
  return SpillLocked(tenant.get(), /*evicting=*/false);
}

Result<CatalogService::TenantSnapshot> CatalogService::SnapshotTenant(
    uint64_t tenant_id) {
  std::shared_ptr<Tenant> tenant = GetTenant(tenant_id);
  Result<TenantSnapshot> result = [&]() -> Result<TenantSnapshot> {
    std::lock_guard<std::mutex> lock(tenant->mutex);
    GEOLIC_RETURN_IF_ERROR(EnsureResidentLocked(tenant.get()));
    TenantSnapshot snapshot;
    snapshot.licenses = tenant->service->licenses().licenses();
    snapshot.log = tenant->service->CollectLog();
    snapshot.epoch = tenant->epoch_base + tenant->service->catalog_epoch();
    snapshot.tenant_seq = tenant->tenant_seq;
    return snapshot;
  }();
  MaybeEvict(ShardFor(tenant_id));
  return result;
}

Status CatalogService::SyncJournals() {
  for (auto& pool : writers_) {
    std::lock_guard<std::mutex> lock(pool->mutex);
    if (pool->writer != nullptr) {
      Status synced = pool->writer->Sync();
      if (!synced.ok()) {
        // A failed fsync may have lost acknowledged frames; the writer is
        // poisoned, so the catalog fail-stops just as on an append error.
        if (pool->writer->poisoned()) {
          NotePoisonedWriterLocked(*pool);
        }
        return synced;
      }
    }
  }
  return Status::Ok();
}

Status CatalogService::Close() {
  Status first_error;
  for (auto& pool : writers_) {
    std::lock_guard<std::mutex> lock(pool->mutex);
    if (pool->writer != nullptr) {
      Status closed = pool->writer->Close();
      if (!closed.ok() && first_error.ok()) {
        first_error = closed;
      }
      pool->writer.reset();
    }
  }
  return first_error;
}

CatalogStats CatalogService::stats() const {
  CatalogStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.compiles = compiles_.load(std::memory_order_relaxed);
  stats.loads = loads_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.spills = spills_.load(std::memory_order_relaxed);
  stats.recovered_tenants = recovered_tenants_.load(std::memory_order_relaxed);
  stats.journal_frames = journal_frames_.load(std::memory_order_relaxed);
  stats.resident_tenants = resident_tenants_.load(std::memory_order_relaxed);
  stats.poisoned_writers = poisoned_writers_.load(std::memory_order_relaxed);
  size_t resident_bytes = 0;
  for (const auto& shard : shards_) {
    resident_bytes += shard->resident_bytes.load(std::memory_order_relaxed);
  }
  stats.resident_bytes = resident_bytes;
  return stats;
}

ExpositionInput CatalogService::Snap() const {
  ExpositionInput input;
  if (options_.service_options.metrics != nullptr) {
    input.metrics = options_.service_options.metrics->Snap();
  }
  if (options_.tracer != nullptr) {
    input.has_stages = true;
    input.stages = options_.tracer->ProfileSnapshot();
  }
  input.has_catalog = true;
  input.catalog = stats();
  return input;
}

Status CatalogService::ReplayOpLocked(Tenant* tenant,
                                      const TenantOpFrame& frame,
                                      CatalogRecoveryStats* stats) {
  switch (frame.op) {
    case TenantOpKind::kIssue: {
      if (!frame.license.has_value()) {
        return Status::Internal("issue frame without a license");
      }
      auto decision = tenant->service->TryIssue(*frame.license);
      if (!decision.ok()) {
        // The live op was journaled as an intent and then rejected with
        // this same (deterministic) error; the rejection replays as-is.
        ++stats->replayed_rejections;
      }
      return Status::Ok();
    }
    case TenantOpKind::kAcquire: {
      if (!frame.license.has_value()) {
        return Status::Internal("acquire frame without a license");
      }
      auto index = tenant->service->AcquireLicense(*frame.license);
      if (!index.ok()) {
        ++stats->replayed_rejections;
      }
      return Status::Ok();
    }
    case TenantOpKind::kRevoke: {
      Status revoked = tenant->service->RevokeLicenseById(frame.revoke_id);
      if (!revoked.ok()) {
        ++stats->replayed_rejections;
      }
      return Status::Ok();
    }
    case TenantOpKind::kExpire: {
      auto removed = tenant->service->ExpireDimensionBelow(
          frame.expire_dim, frame.expire_cutoff);
      if (!removed.ok()) {
        ++stats->replayed_rejections;
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown tenant op kind in replay");
}

Result<std::unique_ptr<CatalogService>> CatalogService::Recover(
    TenantSource* source, const CatalogOptions& options,
    CatalogRecoveryStats* stats) {
  GEOLIC_RETURN_IF_ERROR(options.Validate());
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create catalog dir " + options.dir + ": " +
                           ec.message());
  }
  CatalogRecoveryStats local_stats;
  if (stats == nullptr) {
    stats = &local_stats;
  }
  *stats = CatalogRecoveryStats();

  auto service =
      std::unique_ptr<CatalogService>(new CatalogService(source, options));

  // Phase 1: parse the whole pool before touching any state. Frames are
  // validated for kind and routing here; per-tenant sequence checks run in
  // phase 2 against each tenant's spill coverage.
  struct PendingFrame {
    TenantOpFrame frame;
    int journal_index;
    uint64_t writer_seq;
  };
  std::map<uint64_t, std::vector<PendingFrame>> by_tenant;
  for (int k = 0; k < options.journal_writers; ++k) {
    const std::string path = service->JournalPath(k);
    std::error_code exists_ec;
    if (!std::filesystem::exists(path, exists_ec)) {
      continue;
    }
    auto replay = JournalReader::ReadFile(path);
    if (!replay.ok()) {
      return Status(replay.status().code(),
                    "catalog journal " + path + ": " +
                        replay.status().message());
    }
    if (replay->torn_tail) {
      ++stats->torn_tails;
    }
    for (JournalEntry& entry : replay->entries) {
      if (entry.kind != JournalEntryKind::kTenantOp) {
        return Status::ParseError(
            "catalog journal " + path + " frame " +
            std::to_string(entry.seq) +
            ": not a tenant-tagged frame — single-service journal in the "
            "catalog pool?");
      }
      const int expected_index =
          service->WriterIndexForTenant(entry.tenant.tenant_id);
      if (expected_index != k) {
        return Status::ParseError(
            "catalog journal " + path + " frame " +
            std::to_string(entry.seq) + ": " +
            TenantLabel(entry.tenant.tenant_id) +
            " routes to catalog-journal-" + std::to_string(expected_index) +
            " — misrouted or corrupt frame");
      }
      ++stats->journal_frames;
      by_tenant[entry.tenant.tenant_id].push_back(
          {std::move(entry.tenant), k, entry.seq});
    }
  }

  // Phase 2: rebuild touched tenants one at a time (spill-or-compile plus
  // the journaled tail), re-spill each, free it — memory stays bounded no
  // matter how many tenants the crash left dirty.
  for (auto& [tenant_id, frames] : by_tenant) {
    std::shared_ptr<Tenant> tenant = service->GetTenant(tenant_id);
    std::lock_guard<std::mutex> lock(tenant->mutex);
    std::error_code spill_ec;
    const bool had_spill =
        std::filesystem::exists(service->SpillPath(tenant_id), spill_ec);
    GEOLIC_RETURN_IF_ERROR(service->EnsureResidentLocked(tenant.get()));
    if (had_spill) {
      ++stats->spill_loads;
    } else {
      ++stats->compiles;
    }

    uint64_t previous_seq = 0;
    for (const PendingFrame& pending : frames) {
      const uint64_t seq = pending.frame.tenant_seq;
      if (previous_seq != 0 && seq != previous_seq + 1) {
        return Status::ParseError(
            TenantLabel(tenant_id) + ": journal op sequence jumps from " +
            std::to_string(previous_seq) + " to " + std::to_string(seq) +
            " in catalog-journal-" + std::to_string(pending.journal_index) +
            " (writer frame " + std::to_string(pending.writer_seq) +
            ") — frames lost, duplicated or misrouted");
      }
      previous_seq = seq;
      if (seq <= tenant->tenant_seq) {
        ++stats->frames_skipped;  // The spill already covers this op.
        continue;
      }
      if (seq != tenant->tenant_seq + 1) {
        return Status::ParseError(
            TenantLabel(tenant_id) + ": spill covers op " +
            std::to_string(tenant->tenant_seq) + " but the journal resumes " +
            "at op " + std::to_string(seq) + " in catalog-journal-" +
            std::to_string(pending.journal_index) +
            " — frames lost or misrouted");
      }
      GEOLIC_RETURN_IF_ERROR(
          service->ReplayOpLocked(tenant.get(), pending.frame, stats));
      tenant->tenant_seq = seq;
      ++stats->frames_replayed;
    }

    GEOLIC_RETURN_IF_ERROR(
        service->SpillLocked(tenant.get(), /*evicting=*/false));
    ++stats->tenants_recovered;
    service->recovered_tenants_.fetch_add(1, std::memory_order_relaxed);
  }

  // Phase 3: every touched tenant is checkpointed — now (and only now) the
  // journals may truncate. A crash before this point re-runs recovery off
  // the same journals; a crash after it finds the spills authoritative.
  GEOLIC_RETURN_IF_ERROR(service->OpenJournals());
  return service;
}

}  // namespace geolic
