#ifndef GEOLIC_CATALOG_CATALOG_SERVICE_H_
#define GEOLIC_CATALOG_CATALOG_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/tenant_source.h"
#include "core/online_validator.h"
#include "licensing/license.h"
#include "licensing/license_catalog.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "persist/journal.h"
#include "persist/sync_file.h"
#include "service/issuance_service.h"
#include "validation/log_store.h"
#include "util/status.h"

namespace geolic {

// Multi-tenant catalog front door: one CatalogService serves millions of
// contents ("tenants"), each validated by its own IssuanceService, without
// ever holding more than a memory budget's worth of them.
//
// The paper validates one (content, permission) domain at a time; a real
// distributor holds licenses for a whole catalog of contents, of which
// only a popularity head is hot at any moment. The catalog layer exploits
// that: tenants are *compiled* lazily — the first request for a content
// materializes its baseline from the TenantSource, builds the grouping /
// instance geometry / shards, and caches the resulting service in a
// sharded LRU. When resident bytes exceed the budget, cold tenants are
// *spilled*: their evolved catalog + accepted log + epoch are written to a
// per-tenant checkpoint (persist/checkpoint.h, kind = tenant-snapshot) and
// the in-memory service is freed. Re-access reloads the spill
// transparently; decisions are bit-identical to a never-evicted twin
// (including `catalog_epoch`: the reloaded service restarts at epoch 0, so
// the catalog adds a per-tenant epoch base to every decision).
//
// Durability multiplexes every tenant onto a small pool of shared
// journals: each op appends one tenant-tagged v3 frame (tenant_id +
// per-tenant contiguous tenant_seq + the op) to the writer the tenant
// hashes to, *before* the op executes — intent logging, replayed by
// re-execution. Catalog-wide Recover parses the pool, groups frames by
// tenant, verifies routing and per-tenant seq contiguity (a misrouted
// frame fails loudly instead of replaying into the wrong tenant), rebuilds
// every touched tenant sequentially (spill + tail re-execution), re-spills
// it, and only then truncates the journals — the checkpoint-then-truncate
// cutover.
//
// Lock order (strict): tenant mutex → { LRU-shard mutex | journal-writer
// mutex } (both leaves). No code path holds two tenant mutexes, so
// eviction (which locks the victim) runs only after the requester's tenant
// mutex is released.

// Counters snapshot — the exposition section doubles as the plain stats
// carrier so bench/CI asserts read the same numbers Prometheus exports.
using CatalogStats = ExpositionInput::CatalogSection;

struct CatalogOptions {
  // Directory holding the journal pool ("catalog-journal-<k>.wal") and the
  // per-tenant spill checkpoints ("tenant-<id>.spill"). Created if absent.
  std::string dir;

  // Resident-tenant memory budget (approximate accounting: a fixed base
  // per tenant + per-license + per-record costs). Split evenly across the
  // LRU shards; each shard always keeps at least its most recent tenant
  // resident, so the effective floor is `lru_shards` tenants.
  size_t memory_budget_bytes = 64ull << 20;

  // LRU shards (popularity cache stripes). More shards = less lock
  // contention on the hot lookup path, coarser budget enforcement.
  int lru_shards = 8;

  // Shared journal writers; tenants route by hash, so one tenant's frames
  // always land in one journal, in order.
  int journal_writers = 4;

  // Passed through to each pool writer (see persist/journal.h).
  int fsync_interval = 1;

  // Per-tenant service options (grouping, shard hint, metrics, tracer —
  // shared by every tenant service the catalog builds).
  OnlineValidatorOptions service_options;

  // Catalog-layer span sink (kCatalogCompile / kCatalogEvict); may alias
  // service_options.tracer. Must outlive the service when set.
  Tracer* tracer = nullptr;

  // Test hook: builds the SyncFile a pool journal writes through (fault
  // injection wraps PosixSyncFile in a FaultyFile). Defaults to
  // PosixSyncFile::Create(path).
  std::function<Result<std::unique_ptr<SyncFile>>(const std::string& path,
                                                  int writer_index)>
      journal_file_factory;

  // Planted bug for the sim harness's misrouting mutation: periodically
  // stamps a frame with a sibling tenant's id. Recovery must catch it.
  bool sim_misroute_frames = false;

  Status Validate() const;
};

// What catalog-wide Recover did.
struct CatalogRecoveryStats {
  size_t journal_frames = 0;       // Tenant frames parsed from the pool.
  size_t tenants_recovered = 0;    // Distinct tenants rebuilt.
  size_t frames_replayed = 0;      // Frames past each tenant's spill.
  size_t frames_skipped = 0;       // Frames a spill already covered.
  size_t replayed_rejections = 0;  // Replayed ops that (deterministically)
                                   // failed, exactly as they did live.
  size_t spill_loads = 0;          // Tenants rebuilt starting from a spill.
  size_t compiles = 0;             // Tenants rebuilt from the source alone.
  int torn_tails = 0;              // Journals ending in a torn write.
};

class CatalogService {
 public:
  // Fresh catalog: empty LRU, truncated journal pool, and any tenant
  // spill files left in a reused directory deleted — Create never
  // resurrects an earlier generation's evolved tenant state (use Recover
  // after a crash). `source` must outlive the service.
  static Result<std::unique_ptr<CatalogService>> Create(
      TenantSource* source, const CatalogOptions& options);

  // Crash recovery: rebuilds every tenant the journal pool touched (spill
  // + replay, one at a time — memory stays bounded no matter how many
  // tenants the crash left dirty), re-spills each, then opens fresh
  // journals. Tenants whose state is fully covered by their spill are left
  // cold on disk. Fails loudly on any corruption that is not a clean torn
  // tail: CRC damage, a frame in the wrong pool journal, a per-tenant
  // sequence gap or duplicate.
  static Result<std::unique_ptr<CatalogService>> Recover(
      TenantSource* source, const CatalogOptions& options,
      CatalogRecoveryStats* stats = nullptr);

  CatalogService(const CatalogService&) = delete;
  CatalogService& operator=(const CatalogService&) = delete;
  ~CatalogService();

  // --- Tenant-addressed ops (any thread) ---
  // Each op materializes the tenant if needed, journals the intent frame,
  // executes, and may evict colder tenants afterwards. A journal append
  // failure rejects the op with tenant state unchanged (the frame is
  // maybe-persisted; recovery may replay it — the documented allowance),
  // and if the failure poisoned the pool writer the catalog *fail-stops*:
  // every subsequent mutating op on every tenant is rejected with
  // FailedPrecondition until the process restarts via Recover. Limping on
  // with one dead writer would silently stop journaling the tenants that
  // hash to it — a sticky partial outage — so the whole catalog goes
  // loudly read-only instead (spills/snapshots still work; they do not
  // journal). The `poisoned_writers` stat counts poisoned writers.

  // Online admission for tenant `tenant_id`. The decision's catalog_epoch
  // is in the tenant's cumulative numbering (spill/reload-invariant).
  Result<OnlineDecision> TryIssue(uint64_t tenant_id, const License& usage);

  // Lifecycle ops, forwarded to the tenant's service (see
  // service/issuance_service.h for semantics).
  Result<int> AcquireLicense(uint64_t tenant_id, const License& license);
  Status RevokeLicenseById(uint64_t tenant_id, const std::string& id);
  Result<int> ExpireDimensionBelow(uint64_t tenant_id, int dim,
                                   int64_t cutoff);

  // Cumulative catalog epoch of a tenant (materializes it if needed).
  Result<uint64_t> TenantEpoch(uint64_t tenant_id);

  // --- Maintenance / test hooks ---

  // Forces tenant `tenant_id` out of memory through the normal spill path
  // (write checkpoint, free service). No-op if the tenant is not resident.
  Status SpillTenant(uint64_t tenant_id);

  // Point-in-time copy of a tenant's evolved state (materializes it if
  // needed): the current-epoch licenses, the accepted log, the cumulative
  // epoch, and the tenant's op counter.
  struct TenantSnapshot {
    std::vector<License> licenses;
    LogStore log;
    uint64_t epoch = 0;
    uint64_t tenant_seq = 0;
  };
  Result<TenantSnapshot> SnapshotTenant(uint64_t tenant_id);

  // Forces every pool journal to stable storage.
  Status SyncJournals();

  // Flushes and closes the journal pool. Idempotent; called by the
  // destructor best-effort.
  Status Close();

  // Counter snapshot (also embedded in Snap()).
  CatalogStats stats() const;

  // Observability snapshot: catalog counters, the shared issuance metrics
  // when options.service_options.metrics was set, and the stage profile
  // when a tracer is attached.
  ExpositionInput Snap() const;

  const CatalogOptions& options() const { return options_; }

  // Journal / spill paths (exposed so tests can corrupt them).
  std::string JournalPath(int writer_index) const;
  std::string SpillPath(uint64_t tenant_id) const;

  // The pool writer index tenant `tenant_id` routes to.
  int WriterIndexForTenant(uint64_t tenant_id) const;

 private:
  // One content's cached state. `mutex` serializes ops, materialization
  // and spill; everything below it is guarded by it.
  struct Tenant {
    explicit Tenant(uint64_t id) : tenant_id(id) {}
    const uint64_t tenant_id;
    std::mutex mutex;
    bool resident = false;
    std::unique_ptr<ConstraintSchema> schema;
    std::unique_ptr<LicenseCatalog> licenses;
    std::unique_ptr<IssuanceService> service;
    // Cumulative epochs from before the last reload: decision epochs are
    // service->catalog_epoch() + epoch_base.
    uint64_t epoch_base = 0;
    // Last journaled per-tenant op sequence (0 = none yet).
    uint64_t tenant_seq = 0;
    size_t approx_bytes = 0;
  };

  struct LruShard {
    mutable std::mutex mutex;
    // All known tenants of this stripe (resident or spilled shells).
    std::unordered_map<uint64_t, std::shared_ptr<Tenant>> tenants;
    // Resident tenants only, most recent first.
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_pos;
    // Approximate resident bytes (atomic so the op path can grow it
    // without the shard lock).
    std::atomic<size_t> resident_bytes{0};
  };

  struct PoolWriter {
    std::mutex mutex;
    std::unique_ptr<JournalWriter> writer;  // Guarded by mutex.
    uint64_t next_seq = 0;                  // Frames appended; guarded.
    bool counted_poisoned = false;          // Health counter dedup; guarded.
  };

  CatalogService(TenantSource* source, const CatalogOptions& options);

  // Deletes every tenant-*.spill (and interrupted .spill.tmp) in `dir` —
  // Create's fresh-catalog guarantee for reused directories.
  static Status RemoveSpillFiles(const std::string& dir);

  // Truncates and opens the journal pool; flips journaling on.
  Status OpenJournals();

  LruShard& ShardFor(uint64_t tenant_id);
  PoolWriter& WriterFor(uint64_t tenant_id);

  // Fetches (or creates) the tenant entry; shard lock only.
  std::shared_ptr<Tenant> GetTenant(uint64_t tenant_id);

  // Makes `tenant` resident (spill reload or first-touch compile) and
  // registers it with its LRU shard. Caller holds tenant->mutex.
  Status EnsureResidentLocked(Tenant* tenant);

  // Builds the tenant's in-memory state from a spill payload. Caller holds
  // tenant->mutex.
  Status LoadSpillLocked(Tenant* tenant, const std::string& payload);

  // Builds the tenant's in-memory state from the source baseline. Caller
  // holds tenant->mutex.
  Status CompileLocked(Tenant* tenant);

  // Appends the intent frame for the op about to execute; advances
  // tenant->tenant_seq on success. Caller holds tenant->mutex and fills
  // every frame field except tenant_id / tenant_seq. A failure that
  // poisoned the pool writer fail-stops the catalog.
  Status JournalOpLocked(Tenant* tenant, TenantOpFrame* frame);

  // Non-OK once the catalog has fail-stopped (a pool writer poisoned);
  // mutating ops check it on entry.
  Status CheckAcceptingOps() const;

  // Records `pool`'s writer as poisoned (once) and fail-stops the
  // catalog. Caller holds pool.mutex.
  void NotePoisonedWriterLocked(PoolWriter& pool);

  // Writes the spill checkpoint and frees the tenant's in-memory state.
  // Caller holds tenant->mutex. `evicting` selects the evict vs explicit
  // spill counters/trace stage.
  Status SpillLocked(Tenant* tenant, bool evicting);

  // Serializes a resident tenant's state into a spill payload. Caller
  // holds tenant->mutex.
  Result<std::string> EncodeSpillLocked(const Tenant& tenant) const;

  // Moves `tenant_id` to its shard's LRU front (must be resident).
  void TouchLru(LruShard& shard, uint64_t tenant_id);

  // Spills LRU-tail tenants of `shard` until it fits its budget slice
  // (always keeping one resident). Never called with a tenant mutex held.
  void MaybeEvict(LruShard& shard);

  // Replays one journaled op during recovery (no journaling). Caller holds
  // tenant->mutex; deterministic op-level failures are counted, not
  // errors.
  Status ReplayOpLocked(Tenant* tenant, const TenantOpFrame& frame,
                        CatalogRecoveryStats* stats);

  TenantSource* source_;
  CatalogOptions options_;
  size_t shard_budget_bytes_ = 0;  // memory_budget_bytes / lru_shards.
  bool journaling_enabled_ = false;
  // Fail-stop latch: set when any pool writer poisons, never cleared —
  // recovery builds a new service.
  std::atomic<bool> failed_{false};
  std::vector<std::unique_ptr<LruShard>> shards_;
  std::vector<std::unique_ptr<PoolWriter>> writers_;

  // Counters (CatalogStats is the snapshot form).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> compiles_{0};
  std::atomic<uint64_t> loads_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> spills_{0};
  std::atomic<uint64_t> recovered_tenants_{0};
  std::atomic<uint64_t> journal_frames_{0};
  std::atomic<uint64_t> resident_tenants_{0};
  std::atomic<uint64_t> poisoned_writers_{0};
};

}  // namespace geolic

#endif  // GEOLIC_CATALOG_CATALOG_SERVICE_H_
