#include "licensing/license.h"

namespace geolic {

const char* LicenseTypeName(LicenseType type) {
  switch (type) {
    case LicenseType::kRedistribution:
      return "redistribution";
    case LicenseType::kUsage:
      return "usage";
  }
  return "unknown";
}

std::string License::ToString(const ConstraintSchema& schema) const {
  std::string out = "(" + content_key_ + "; ";
  out += PermissionName(permission_);
  for (int dim = 0; dim < rect_.dimensions(); ++dim) {
    out += "; ";
    if (dim < schema.dimensions()) {
      out += schema.name(dim);
      out += "=";
      out += schema.FormatRange(dim, rect_.dim(dim));
    } else {
      out += rect_.dim(dim).ToString();
    }
  }
  out += "; A=" + std::to_string(aggregate_count_) + ")";
  return out;
}

LicenseBuilder::LicenseBuilder(const ConstraintSchema* schema)
    : schema_(schema),
      ranges_(static_cast<size_t>(schema->dimensions())),
      assigned_(static_cast<size_t>(schema->dimensions()), false) {}

LicenseBuilder& LicenseBuilder::SetId(std::string id) {
  id_ = std::move(id);
  return *this;
}

LicenseBuilder& LicenseBuilder::SetContentKey(std::string content_key) {
  content_key_ = std::move(content_key);
  return *this;
}

LicenseBuilder& LicenseBuilder::SetType(LicenseType type) {
  type_ = type;
  return *this;
}

LicenseBuilder& LicenseBuilder::SetPermission(Permission permission) {
  permission_ = permission;
  return *this;
}

LicenseBuilder& LicenseBuilder::SetAggregateCount(int64_t count) {
  aggregate_count_ = count;
  return *this;
}

LicenseBuilder& LicenseBuilder::SetRange(std::string_view name,
                                         ConstraintRange range) {
  const Result<int> dim = schema_->IndexOf(name);
  if (!dim.ok()) {
    if (deferred_error_.ok()) {
      deferred_error_ = dim.status();
    }
    return *this;
  }
  const Status valid = schema_->ValidateRange(*dim, range);
  if (!valid.ok()) {
    if (deferred_error_.ok()) {
      deferred_error_ = valid;
    }
    return *this;
  }
  ranges_[static_cast<size_t>(*dim)] = std::move(range);
  assigned_[static_cast<size_t>(*dim)] = true;
  return *this;
}

LicenseBuilder& LicenseBuilder::SetInterval(std::string_view name, int64_t lo,
                                            int64_t hi) {
  return SetRange(name, ConstraintRange(Interval(lo, hi)));
}

LicenseBuilder& LicenseBuilder::SetIntervalUnion(
    std::string_view name,
    const std::vector<std::pair<int64_t, int64_t>>& windows) {
  std::vector<Interval> pieces;
  pieces.reserve(windows.size());
  for (const auto& [lo, hi] : windows) {
    pieces.push_back(Interval(lo, hi));
  }
  const MultiInterval multi = MultiInterval::FromIntervals(std::move(pieces));
  if (multi.piece_count() == 1) {
    return SetRange(name, ConstraintRange(multi.pieces().front()));
  }
  return SetRange(name, ConstraintRange(multi));
}

LicenseBuilder& LicenseBuilder::SetCategories(
    std::string_view name, const std::vector<std::string>& categories) {
  const Result<int> dim = schema_->IndexOf(name);
  if (!dim.ok()) {
    if (deferred_error_.ok()) {
      deferred_error_ = dim.status();
    }
    return *this;
  }
  if (schema_->kind(*dim) != DimensionKind::kCategorical) {
    if (deferred_error_.ok()) {
      deferred_error_ = Status::InvalidArgument(
          "dimension is not categorical: " + std::string(name));
    }
    return *this;
  }
  const Result<CategorySet> set =
      schema_->universe(*dim).ResolveAll(categories);
  if (!set.ok()) {
    if (deferred_error_.ok()) {
      deferred_error_ = set.status();
    }
    return *this;
  }
  return SetRange(name, ConstraintRange(*set));
}

Result<License> LicenseBuilder::Build() const {
  if (!deferred_error_.ok()) {
    return deferred_error_;
  }
  if (id_.empty()) {
    return Status::InvalidArgument("license id must be set");
  }
  if (content_key_.empty()) {
    return Status::InvalidArgument("content key must be set");
  }
  if (aggregate_count_ <= 0) {
    return Status::InvalidArgument(
        "aggregate count must be positive, got " +
        std::to_string(aggregate_count_));
  }
  for (int dim = 0; dim < schema_->dimensions(); ++dim) {
    if (!assigned_[static_cast<size_t>(dim)]) {
      return Status::InvalidArgument("dimension not assigned: " +
                                     schema_->name(dim));
    }
  }
  return License(id_, content_key_, type_, permission_, HyperRect(ranges_),
                 aggregate_count_);
}

}  // namespace geolic
