#ifndef GEOLIC_LICENSING_CONSTRAINT_SCHEMA_H_
#define GEOLIC_LICENSING_CONSTRAINT_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "geometry/category_set.h"
#include "geometry/constraint_range.h"
#include "util/status.h"

namespace geolic {

// How an interval dimension's endpoints are written in license text.
enum class IntervalFormat : int32_t {
  kInteger = 0,  // "Q=[100, 5000]"
  kDate = 1,     // "T=[2009-03-10, 2009-03-20]" (stored as day numbers)
};

// The kind of one instance-based constraint dimension.
enum class DimensionKind : int32_t {
  kInterval = 0,
  kCategorical = 1,
};

// Declares the M instance-based constraint dimensions all licenses of a
// content share: dimension order, names ("T", "R", ...), kinds, and — for
// categorical dimensions — the category universe. Every license's
// hyper-rectangle lists its ranges in schema order, which is what makes the
// geometric operations (containment, overlap) well-defined across licenses.
class ConstraintSchema {
 public:
  ConstraintSchema() = default;

  // Appends an interval dimension. Names must be unique within the schema.
  Status AddIntervalDimension(std::string_view name,
                              IntervalFormat format = IntervalFormat::kInteger);

  // Appends a categorical dimension backed by `universe` (copied in).
  Status AddCategoricalDimension(std::string_view name,
                                 CategoryUniverse universe);

  int dimensions() const { return static_cast<int>(specs_.size()); }

  const std::string& name(int dim) const {
    return specs_[static_cast<size_t>(dim)].name;
  }
  DimensionKind kind(int dim) const {
    return specs_[static_cast<size_t>(dim)].kind;
  }
  IntervalFormat format(int dim) const {
    return specs_[static_cast<size_t>(dim)].format;
  }
  const CategoryUniverse& universe(int dim) const {
    return specs_[static_cast<size_t>(dim)].universe;
  }

  // Index of the dimension called `name`, or NOT_FOUND.
  Result<int> IndexOf(std::string_view name) const;

  // Parses the textual value of dimension `dim`:
  //   interval      "[10, 20]" (or "[2009-03-10, 2009-03-20]" for kDate),
  //                 or a single value "10" → the point interval,
  //   categorical   "{Asia, Europe}" or a single name "India".
  Result<ConstraintRange> ParseRange(int dim, std::string_view text) const;

  // Renders a range of dimension `dim` in the same textual form.
  std::string FormatRange(int dim, const ConstraintRange& range) const;

  // Verifies `range` is usable as dimension `dim` of a license: matching
  // kind and non-empty.
  Status ValidateRange(int dim, const ConstraintRange& range) const;

  // The schema used throughout the paper's examples: validity period
  // T (dates) and region R (world-regions universe).
  static ConstraintSchema PaperExampleSchema();

 private:
  struct DimensionSpec {
    std::string name;
    DimensionKind kind = DimensionKind::kInterval;
    IntervalFormat format = IntervalFormat::kInteger;
    CategoryUniverse universe;  // Meaningful for kCategorical only.
  };

  Status AddDimension(DimensionSpec spec);

  std::vector<DimensionSpec> specs_;
};

}  // namespace geolic

#endif  // GEOLIC_LICENSING_CONSTRAINT_SCHEMA_H_
