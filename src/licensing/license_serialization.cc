#include "licensing/license_serialization.h"

#include <istream>
#include <ostream>

namespace geolic {
namespace {

constexpr uint32_t kMaxStringSize = 1u << 16;
constexpr uint32_t kMaxDimensions = 1u << 10;

void WriteString(std::ostream* out, const std::string& text) {
  const uint32_t size = static_cast<uint32_t>(text.size());
  out->write(reinterpret_cast<const char*>(&size), sizeof(size));
  out->write(text.data(), size);
}

Result<std::string> ReadString(std::istream* in) {
  uint32_t size = 0;
  in->read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!*in || size > kMaxStringSize) {
    return Status::ParseError("bad string in license blob");
  }
  std::string text(size, '\0');
  in->read(text.data(), size);
  if (!*in) {
    return Status::ParseError("truncated string in license blob");
  }
  return text;
}

}  // namespace

Status WriteLicenseBinary(const License& license, std::ostream* out) {
  WriteString(out, license.id());
  WriteString(out, license.content_key());
  const int32_t type = static_cast<int32_t>(license.type());
  const int32_t permission = static_cast<int32_t>(license.permission());
  const int64_t aggregate = license.aggregate_count();
  const uint32_t dims = static_cast<uint32_t>(license.rect().dimensions());
  out->write(reinterpret_cast<const char*>(&type), sizeof(type));
  out->write(reinterpret_cast<const char*>(&permission), sizeof(permission));
  out->write(reinterpret_cast<const char*>(&aggregate), sizeof(aggregate));
  out->write(reinterpret_cast<const char*>(&dims), sizeof(dims));
  for (int d = 0; d < license.rect().dimensions(); ++d) {
    const ConstraintRange& range = license.rect().dim(d);
    uint8_t kind = 1;
    if (range.is_interval()) {
      kind = 0;
    } else if (range.is_multi_interval()) {
      kind = 2;
    }
    out->write(reinterpret_cast<const char*>(&kind), sizeof(kind));
    if (range.is_interval()) {
      const Interval& interval = range.interval();
      // Serialise empty intervals canonically as [0, -1].
      const int64_t lo = interval.empty() ? 0 : interval.lo();
      const int64_t hi = interval.empty() ? -1 : interval.hi();
      out->write(reinterpret_cast<const char*>(&lo), sizeof(lo));
      out->write(reinterpret_cast<const char*>(&hi), sizeof(hi));
    } else if (range.is_multi_interval()) {
      const MultiInterval& multi = range.multi_interval();
      const uint32_t piece_count = static_cast<uint32_t>(multi.piece_count());
      out->write(reinterpret_cast<const char*>(&piece_count),
                 sizeof(piece_count));
      for (const Interval& piece : multi.pieces()) {
        const int64_t lo = piece.lo();
        const int64_t hi = piece.hi();
        out->write(reinterpret_cast<const char*>(&lo), sizeof(lo));
        out->write(reinterpret_cast<const char*>(&hi), sizeof(hi));
      }
    } else {
      const uint64_t mask = range.categories().mask();
      out->write(reinterpret_cast<const char*>(&mask), sizeof(mask));
    }
  }
  if (!*out) {
    return Status::IoError("license serialization write failed");
  }
  return Status::Ok();
}

Result<License> ReadLicenseBinary(std::istream* in) {
  GEOLIC_ASSIGN_OR_RETURN(std::string id, ReadString(in));
  GEOLIC_ASSIGN_OR_RETURN(std::string content_key, ReadString(in));
  int32_t type = 0;
  int32_t permission = 0;
  int64_t aggregate = 0;
  uint32_t dims = 0;
  in->read(reinterpret_cast<char*>(&type), sizeof(type));
  in->read(reinterpret_cast<char*>(&permission), sizeof(permission));
  in->read(reinterpret_cast<char*>(&aggregate), sizeof(aggregate));
  in->read(reinterpret_cast<char*>(&dims), sizeof(dims));
  if (!*in) {
    return Status::ParseError("truncated license header");
  }
  if (type < 0 || type > 1) {
    return Status::ParseError("bad license type in blob");
  }
  if (permission < 0 || permission >= kNumPermissions) {
    return Status::ParseError("bad permission in blob");
  }
  if (dims > kMaxDimensions) {
    return Status::ParseError("implausible dimension count in blob");
  }
  HyperRect rect;
  for (uint32_t d = 0; d < dims; ++d) {
    uint8_t kind = 0;
    in->read(reinterpret_cast<char*>(&kind), sizeof(kind));
    if (!*in || kind > 2) {
      return Status::ParseError("bad dimension kind in blob");
    }
    if (kind == 0) {
      int64_t lo = 0;
      int64_t hi = 0;
      in->read(reinterpret_cast<char*>(&lo), sizeof(lo));
      in->read(reinterpret_cast<char*>(&hi), sizeof(hi));
      if (!*in) {
        return Status::ParseError("truncated interval dimension");
      }
      rect.AddDim(ConstraintRange(Interval(lo, hi)));
    } else if (kind == 2) {
      uint32_t piece_count = 0;
      in->read(reinterpret_cast<char*>(&piece_count), sizeof(piece_count));
      if (!*in || piece_count > kMaxDimensions) {
        return Status::ParseError("bad piece count in blob");
      }
      std::vector<Interval> pieces;
      for (uint32_t p = 0; p < piece_count; ++p) {
        int64_t lo = 0;
        int64_t hi = 0;
        in->read(reinterpret_cast<char*>(&lo), sizeof(lo));
        in->read(reinterpret_cast<char*>(&hi), sizeof(hi));
        if (!*in) {
          return Status::ParseError("truncated multi-interval dimension");
        }
        pieces.push_back(Interval(lo, hi));
      }
      rect.AddDim(ConstraintRange(MultiInterval::FromIntervals(pieces)));
    } else {
      uint64_t mask = 0;
      in->read(reinterpret_cast<char*>(&mask), sizeof(mask));
      if (!*in) {
        return Status::ParseError("truncated category dimension");
      }
      rect.AddDim(ConstraintRange(CategorySet(mask)));
    }
  }
  return License(std::move(id), std::move(content_key),
                 static_cast<LicenseType>(type),
                 static_cast<Permission>(permission), std::move(rect),
                 aggregate);
}

}  // namespace geolic
