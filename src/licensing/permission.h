#ifndef GEOLIC_LICENSING_PERMISSION_H_
#define GEOLIC_LICENSING_PERMISSION_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace geolic {

// The permission P carried by a license: what the licensee may do with the
// content (play, copy, rip, ... — the paper cites the MPEG-21/ODRL-style
// verbs of [4][9]). Each license grants exactly one permission; a content
// with several permissions has several licenses.
enum class Permission : int32_t {
  kPlay = 0,
  kCopy = 1,
  kRip = 2,
  kPrint = 3,
  kStream = 4,
  kDownload = 5,
  kExport = 6,
  kEmbed = 7,
};

inline constexpr int kNumPermissions = 8;

// Canonical name ("Play", "Copy", ...).
const char* PermissionName(Permission permission);

// Parses a permission name, case-insensitively.
Result<Permission> ParsePermission(std::string_view text);

}  // namespace geolic

#endif  // GEOLIC_LICENSING_PERMISSION_H_
