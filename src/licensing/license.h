#ifndef GEOLIC_LICENSING_LICENSE_H_
#define GEOLIC_LICENSING_LICENSE_H_

#include <string>
#include <utility>

#include "geometry/hyper_rect.h"
#include "licensing/constraint_schema.h"
#include "licensing/permission.h"
#include "util/status.h"

namespace geolic {

// Whether a license authorises further distribution or end use.
enum class LicenseType : int32_t {
  kRedistribution = 0,  // L_D: lets a distributor generate new licenses.
  kUsage = 1,           // L_U: lets a consumer exercise the permission.
};

const char* LicenseTypeName(LicenseType type);

// One license in the paper's format (K; P; I_1..I_M; A): content key K,
// permission P, M instance-based constraints (a hyper-rectangle in schema
// order), and the aggregate constraint A (how many permission counts this
// license may hand out / consume). Immutable once built; construct through
// LicenseBuilder or ParseLicense.
class License {
 public:
  License() = default;
  License(std::string id, std::string content_key, LicenseType type,
          Permission permission, HyperRect rect, int64_t aggregate_count)
      : id_(std::move(id)),
        content_key_(std::move(content_key)),
        type_(type),
        permission_(permission),
        rect_(std::move(rect)),
        aggregate_count_(aggregate_count) {}

  const std::string& id() const { return id_; }
  const std::string& content_key() const { return content_key_; }
  LicenseType type() const { return type_; }
  Permission permission() const { return permission_; }
  const HyperRect& rect() const { return rect_; }
  int64_t aggregate_count() const { return aggregate_count_; }

  // The paper's instance-based validation test: true iff `issued` asks for
  // the same content and permission and its hyper-rectangle lies completely
  // inside this license's hyper-rectangle.
  bool InstanceContains(const License& issued) const {
    return content_key_ == issued.content_key_ &&
           permission_ == issued.permission_ &&
           rect_.Contains(issued.rect_);
  }

  // The paper's overlap predicate (Section 3.2): all constraint dimensions
  // of the two licenses intersect. Content/permission must match too —
  // licenses for different contents never interact.
  bool OverlapsWith(const License& other) const {
    return content_key_ == other.content_key_ &&
           permission_ == other.permission_ && rect_.Overlaps(other.rect_);
  }

  // Paper-style rendering using `schema` for dimension names/formats:
  //   (K; Play; T=[2009-03-10, 2009-03-20]; R={Asia, Europe}; A=2000)
  std::string ToString(const ConstraintSchema& schema) const;

 private:
  std::string id_;
  std::string content_key_;
  LicenseType type_ = LicenseType::kUsage;
  Permission permission_ = Permission::kPlay;
  HyperRect rect_;
  int64_t aggregate_count_ = 0;
};

// Fluent constructor for License with schema validation. Example:
//
//   LicenseBuilder builder(&schema);
//   builder.SetId("LD1").SetContentKey("K")
//       .SetType(LicenseType::kRedistribution)
//       .SetPermission(Permission::kPlay)
//       .SetRange("T", date_range)
//       .SetCategories("R", {"Asia", "Europe"})
//       .SetAggregateCount(2000);
//   Result<License> license = builder.Build();
//
// Build fails unless every schema dimension was assigned a valid range and
// the aggregate count is positive.
class LicenseBuilder {
 public:
  // `schema` must outlive the builder.
  explicit LicenseBuilder(const ConstraintSchema* schema);

  LicenseBuilder& SetId(std::string id);
  LicenseBuilder& SetContentKey(std::string content_key);
  LicenseBuilder& SetType(LicenseType type);
  LicenseBuilder& SetPermission(Permission permission);
  LicenseBuilder& SetAggregateCount(int64_t count);

  // Assigns dimension `name` (errors are deferred to Build so the fluent
  // chain stays unbroken).
  LicenseBuilder& SetRange(std::string_view name, ConstraintRange range);
  // Convenience: interval dimension from endpoints.
  LicenseBuilder& SetInterval(std::string_view name, int64_t lo, int64_t hi);
  // Convenience: non-contiguous interval dimension from windows
  // ({{1, 5}, {10, 20}} = [1,5] ∪ [10,20]).
  LicenseBuilder& SetIntervalUnion(
      std::string_view name,
      const std::vector<std::pair<int64_t, int64_t>>& windows);
  // Convenience: categorical dimension from names in the dimension's
  // universe.
  LicenseBuilder& SetCategories(std::string_view name,
                                const std::vector<std::string>& categories);

  Result<License> Build() const;

 private:
  const ConstraintSchema* schema_;
  std::string id_;
  std::string content_key_;
  LicenseType type_ = LicenseType::kUsage;
  Permission permission_ = Permission::kPlay;
  int64_t aggregate_count_ = 0;
  std::vector<ConstraintRange> ranges_;
  std::vector<bool> assigned_;
  Status deferred_error_;  // First SetRange/SetCategories error, if any.
};

}  // namespace geolic

#endif  // GEOLIC_LICENSING_LICENSE_H_
