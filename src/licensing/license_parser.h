#ifndef GEOLIC_LICENSING_LICENSE_PARSER_H_
#define GEOLIC_LICENSING_LICENSE_PARSER_H_

#include <string>
#include <string_view>

#include "licensing/constraint_schema.h"
#include "licensing/license.h"
#include "util/status.h"

namespace geolic {

// Parses the paper's textual license form
//
//   (K; Play; T=[2009-03-10, 2009-03-20]; R={Asia, Europe}; A=2000)
//
// against `schema`: the first field is the content key, the second the
// permission, then one `name=value` assignment per schema dimension (any
// order, all required), and finally the aggregate constraint `A=count`.
// Dates also parse in the paper's DD/MM/YY style. `type` and `id` are not
// part of the textual form and are supplied by the caller.
Result<License> ParseLicense(std::string_view text,
                             const ConstraintSchema& schema, LicenseType type,
                             std::string id);

// Inverse of ParseLicense (same as License::ToString with `schema`).
std::string SerializeLicense(const License& license,
                             const ConstraintSchema& schema);

}  // namespace geolic

#endif  // GEOLIC_LICENSING_LICENSE_PARSER_H_
