#include "licensing/constraint_schema.h"

#include <utility>

#include "util/check.h"
#include "util/date.h"
#include "util/str_util.h"

namespace geolic {
namespace {

// Parses one interval endpoint in the dimension's format.
Result<int64_t> ParseEndpoint(IntervalFormat format, std::string_view text) {
  if (format == IntervalFormat::kDate) {
    GEOLIC_ASSIGN_OR_RETURN(const Date date, Date::Parse(text));
    return date.day_number();
  }
  return ParseInt64(text);
}

std::string FormatEndpoint(IntervalFormat format, int64_t value) {
  if (format == IntervalFormat::kDate) {
    return Date::FromDayNumber(value).ToString();
  }
  return std::to_string(value);
}

}  // namespace

Status ConstraintSchema::AddIntervalDimension(std::string_view name,
                                              IntervalFormat format) {
  DimensionSpec spec;
  spec.name = std::string(name);
  spec.kind = DimensionKind::kInterval;
  spec.format = format;
  return AddDimension(std::move(spec));
}

Status ConstraintSchema::AddCategoricalDimension(std::string_view name,
                                                 CategoryUniverse universe) {
  DimensionSpec spec;
  spec.name = std::string(name);
  spec.kind = DimensionKind::kCategorical;
  spec.universe = std::move(universe);
  return AddDimension(std::move(spec));
}

Status ConstraintSchema::AddDimension(DimensionSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("dimension name must be non-empty");
  }
  for (const DimensionSpec& existing : specs_) {
    if (existing.name == spec.name) {
      return Status::AlreadyExists("dimension already defined: " + spec.name);
    }
  }
  specs_.push_back(std::move(spec));
  return Status::Ok();
}

Result<int> ConstraintSchema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return Status::NotFound("no dimension named " + std::string(name));
}

Result<ConstraintRange> ConstraintSchema::ParseRange(
    int dim, std::string_view text) const {
  if (dim < 0 || dim >= dimensions()) {
    return Status::OutOfRange("dimension index out of range: " +
                              std::to_string(dim));
  }
  const DimensionSpec& spec = specs_[static_cast<size_t>(dim)];
  text = StripWhitespace(text);
  if (text.empty()) {
    return Status::ParseError("empty range for dimension " + spec.name);
  }

  if (spec.kind == DimensionKind::kCategorical) {
    std::vector<std::string> names;
    if (text.front() == '{' || text.front() == '[') {
      const char close = text.front() == '{' ? '}' : ']';
      if (text.back() != close) {
        return Status::ParseError("unbalanced braces in categorical range: " +
                                  std::string(text));
      }
      for (std::string_view piece :
           SplitAndTrim(text.substr(1, text.size() - 2), ',')) {
        if (!piece.empty()) {
          names.emplace_back(piece);
        }
      }
    } else {
      names.emplace_back(text);
    }
    if (names.empty()) {
      return Status::ParseError("empty category list for dimension " +
                                spec.name);
    }
    GEOLIC_ASSIGN_OR_RETURN(const CategorySet set,
                            spec.universe.ResolveAll(names));
    return ConstraintRange(set);
  }

  // Interval dimension: "[lo, hi]", a bare single value, or a union of
  // windows "[a, b]|[c, d]" (blackout gaps).
  const std::vector<std::string_view> windows = SplitAndTrim(text, '|');
  std::vector<Interval> pieces;
  pieces.reserve(windows.size());
  for (const std::string_view window : windows) {
    if (window.empty()) {
      return Status::ParseError("empty window in interval union: " +
                                std::string(text));
    }
    if (window.front() == '[') {
      if (window.back() != ']') {
        return Status::ParseError("unbalanced brackets in interval: " +
                                  std::string(window));
      }
      const std::vector<std::string_view> parts =
          SplitAndTrim(window.substr(1, window.size() - 2), ',');
      if (parts.size() != 2) {
        return Status::ParseError("interval must have two endpoints: " +
                                  std::string(window));
      }
      GEOLIC_ASSIGN_OR_RETURN(const int64_t lo,
                              ParseEndpoint(spec.format, parts[0]));
      GEOLIC_ASSIGN_OR_RETURN(const int64_t hi,
                              ParseEndpoint(spec.format, parts[1]));
      if (lo > hi) {
        return Status::ParseError("interval endpoints reversed: " +
                                  std::string(window));
      }
      pieces.push_back(Interval(lo, hi));
    } else {
      GEOLIC_ASSIGN_OR_RETURN(const int64_t value,
                              ParseEndpoint(spec.format, window));
      pieces.push_back(Interval::Point(value));
    }
  }
  if (pieces.size() == 1) {
    return ConstraintRange(pieces.front());
  }
  const MultiInterval multi = MultiInterval::FromIntervals(pieces);
  // Normalisation may merge touching windows back into one interval.
  if (multi.piece_count() == 1) {
    return ConstraintRange(multi.pieces().front());
  }
  return ConstraintRange(multi);
}

std::string ConstraintSchema::FormatRange(int dim,
                                          const ConstraintRange& range) const {
  const DimensionSpec& spec = specs_[static_cast<size_t>(dim)];
  if (range.is_categories()) {
    return spec.universe.ToString(range.categories());
  }
  const MultiInterval multi = range.AsMultiInterval();
  if (multi.empty()) {
    return "[]";
  }
  std::string out;
  for (int i = 0; i < multi.piece_count(); ++i) {
    const Interval& piece = multi.pieces()[static_cast<size_t>(i)];
    if (i > 0) {
      out += "|";
    }
    out += "[" + FormatEndpoint(spec.format, piece.lo()) + ", " +
           FormatEndpoint(spec.format, piece.hi()) + "]";
  }
  return out;
}

Status ConstraintSchema::ValidateRange(int dim,
                                       const ConstraintRange& range) const {
  if (dim < 0 || dim >= dimensions()) {
    return Status::OutOfRange("dimension index out of range: " +
                              std::to_string(dim));
  }
  const DimensionSpec& spec = specs_[static_cast<size_t>(dim)];
  const bool kind_matches =
      (spec.kind == DimensionKind::kInterval && range.is_ordered()) ||
      (spec.kind == DimensionKind::kCategorical && range.is_categories());
  if (!kind_matches) {
    return Status::InvalidArgument("range kind does not match dimension " +
                                   spec.name);
  }
  if (range.empty()) {
    return Status::InvalidArgument("empty range for dimension " + spec.name);
  }
  return Status::Ok();
}

ConstraintSchema ConstraintSchema::PaperExampleSchema() {
  ConstraintSchema schema;
  GEOLIC_CHECK(schema.AddIntervalDimension("T", IntervalFormat::kDate).ok());
  GEOLIC_CHECK(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  return schema;
}

}  // namespace geolic
