#ifndef GEOLIC_LICENSING_LICENSE_CATALOG_H_
#define GEOLIC_LICENSING_LICENSE_CATALOG_H_

#include <string>
#include <vector>

#include "licensing/constraint_schema.h"
#include "licensing/license.h"
#include "util/license_set.h"
#include "util/status.h"

namespace geolic {

// The N redistribution licenses a distributor holds for one content and
// permission — the paper's S^N = [L_D^1 .. L_D^N]. Licenses are addressed by
// their 0-based index (the paper's L_D^{index+1}); sets of them are
// LicenseSet bitsets. Enforces a uniform content key, permission, schema
// dimensionality, and the kMaxLicensesLarge cap.
class LicenseCatalog {
 public:
  // `schema` must outlive the set.
  explicit LicenseCatalog(const ConstraintSchema* schema) : schema_(schema) {}

  // Adds a redistribution license and returns its index. Fails if the
  // license is not a redistribution license, disagrees with the set's
  // content/permission/dimensionality, duplicates an existing id, or would
  // exceed kMaxLicensesLarge licenses.
  Result<int> Add(License license);

  int size() const { return static_cast<int>(licenses_.size()); }
  bool empty() const { return licenses_.empty(); }

  const License& at(int index) const {
    return licenses_[static_cast<size_t>(index)];
  }
  const std::vector<License>& licenses() const { return licenses_; }
  const ConstraintSchema& schema() const { return *schema_; }

  // Mask of all N licenses.
  LicenseSet AllMask() const { return LicenseSet::Full(size()); }

  // The paper's array A: aggregate constraint count per license, by index.
  std::vector<int64_t> AggregateCounts() const;

  // Sum of aggregate counts over the licenses in `mask` — the paper's A[S],
  // the RHS of the validation equation for S.
  int64_t AggregateSum(const LicenseSet& mask) const;

  // Index of the license with `id`, or NOT_FOUND.
  Result<int> IndexOfId(const std::string& id) const;

 private:
  const ConstraintSchema* schema_;
  std::vector<License> licenses_;
};

}  // namespace geolic

#endif  // GEOLIC_LICENSING_LICENSE_CATALOG_H_
