#ifndef GEOLIC_LICENSING_LICENSE_SERIALIZATION_H_
#define GEOLIC_LICENSING_LICENSE_SERIALIZATION_H_

#include <iosfwd>

#include "licensing/license.h"
#include "util/status.h"

namespace geolic {

// Binary (de)serialization of individual licenses, schema-independent:
// constraint ranges are stored raw (interval endpoints / category bitmask),
// so the reader needs no ConstraintSchema. Used by checkpointing; the
// textual form in license_parser.h remains the human-facing format.
//
// Layout (little-endian): id, content key (both length-prefixed), type,
// permission, aggregate count, dimension count, then per dimension a kind
// byte (0 = interval, 1 = categories) and its payload (two int64 endpoints
// or one uint64 mask).

// Appends one license to the stream.
Status WriteLicenseBinary(const License& license, std::ostream* out);

// Reads one license written by WriteLicenseBinary.
Result<License> ReadLicenseBinary(std::istream* in);

}  // namespace geolic

#endif  // GEOLIC_LICENSING_LICENSE_SERIALIZATION_H_
