#include "licensing/permission.h"

#include "util/str_util.h"

namespace geolic {
namespace {

constexpr const char* kNames[kNumPermissions] = {
    "Play", "Copy", "Rip", "Print", "Stream", "Download", "Export", "Embed",
};

}  // namespace

const char* PermissionName(Permission permission) {
  const int index = static_cast<int>(permission);
  if (index < 0 || index >= kNumPermissions) {
    return "Unknown";
  }
  return kNames[index];
}

Result<Permission> ParsePermission(std::string_view text) {
  const std::string lowered = AsciiToLower(StripWhitespace(text));
  for (int i = 0; i < kNumPermissions; ++i) {
    if (lowered == AsciiToLower(kNames[i])) {
      return static_cast<Permission>(i);
    }
  }
  return Status::ParseError("unknown permission: " + std::string(text));
}

}  // namespace geolic
