#include "licensing/license_catalog.h"

namespace geolic {

Result<int> LicenseCatalog::Add(License license) {
  if (license.type() != LicenseType::kRedistribution) {
    return Status::InvalidArgument(
        "only redistribution licenses belong in a LicenseCatalog: " +
        license.id());
  }
  if (license.rect().dimensions() != schema_->dimensions()) {
    return Status::InvalidArgument(
        "license dimensionality disagrees with schema: " + license.id());
  }
  if (size() >= kMaxLicensesLarge) {
    return Status::CapacityExceeded(
        "LicenseCatalog supports at most " +
        std::to_string(kMaxLicensesLarge) + " redistribution licenses");
  }
  if (!licenses_.empty()) {
    const License& first = licenses_.front();
    if (license.content_key() != first.content_key()) {
      return Status::InvalidArgument(
          "content key mismatch: expected " + first.content_key() + ", got " +
          license.content_key());
    }
    if (license.permission() != first.permission()) {
      return Status::InvalidArgument("permission mismatch in license " +
                                     license.id());
    }
  }
  for (const License& existing : licenses_) {
    if (existing.id() == license.id()) {
      return Status::AlreadyExists("duplicate license id: " + license.id());
    }
  }
  licenses_.push_back(std::move(license));
  return size() - 1;
}

std::vector<int64_t> LicenseCatalog::AggregateCounts() const {
  std::vector<int64_t> counts;
  counts.reserve(licenses_.size());
  for (const License& license : licenses_) {
    counts.push_back(license.aggregate_count());
  }
  return counts;
}

int64_t LicenseCatalog::AggregateSum(const LicenseSet& mask) const {
  int64_t sum = 0;
  for (int index : mask.Indexes()) {
    if (index < size()) {
      sum += licenses_[static_cast<size_t>(index)].aggregate_count();
    }
  }
  return sum;
}

Result<int> LicenseCatalog::IndexOfId(const std::string& id) const {
  for (size_t i = 0; i < licenses_.size(); ++i) {
    if (licenses_[i].id() == id) {
      return static_cast<int>(i);
    }
  }
  return Status::NotFound("no license with id " + id);
}

}  // namespace geolic
