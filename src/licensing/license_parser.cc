#include "licensing/license_parser.h"

#include <vector>

#include "util/str_util.h"

namespace geolic {

Result<License> ParseLicense(std::string_view text,
                             const ConstraintSchema& schema, LicenseType type,
                             std::string id) {
  text = StripWhitespace(text);
  if (text.size() < 2 || text.front() != '(' || text.back() != ')') {
    return Status::ParseError("license must be parenthesised: " +
                              std::string(text));
  }
  const std::vector<std::string_view> fields =
      SplitAndTrim(text.substr(1, text.size() - 2), ';');
  // Content key, permission, M constraints, aggregate.
  const size_t expected =
      2 + static_cast<size_t>(schema.dimensions()) + 1;
  if (fields.size() != expected) {
    return Status::ParseError(
        "license has " + std::to_string(fields.size()) + " fields, expected " +
        std::to_string(expected));
  }

  const std::string content_key(fields[0]);
  if (content_key.empty()) {
    return Status::ParseError("empty content key");
  }
  GEOLIC_ASSIGN_OR_RETURN(const Permission permission,
                          ParsePermission(fields[1]));

  LicenseBuilder builder(&schema);
  builder.SetId(std::move(id))
      .SetContentKey(content_key)
      .SetType(type)
      .SetPermission(permission);

  bool saw_aggregate = false;
  std::vector<bool> saw_dimension(static_cast<size_t>(schema.dimensions()),
                                  false);
  for (size_t i = 2; i < fields.size(); ++i) {
    const std::string_view field = fields[i];
    const size_t equals = field.find('=');
    if (equals == std::string_view::npos) {
      return Status::ParseError("expected name=value, got: " +
                                std::string(field));
    }
    const std::string_view name = StripWhitespace(field.substr(0, equals));
    const std::string_view value = StripWhitespace(field.substr(equals + 1));
    if (name == "A") {
      if (saw_aggregate) {
        return Status::ParseError("duplicate aggregate constraint");
      }
      if (i + 1 != fields.size()) {
        return Status::ParseError(
            "aggregate constraint must be the last field");
      }
      GEOLIC_ASSIGN_OR_RETURN(const int64_t count, ParseInt64(value));
      builder.SetAggregateCount(count);
      saw_aggregate = true;
      continue;
    }
    GEOLIC_ASSIGN_OR_RETURN(const int dim, schema.IndexOf(name));
    if (saw_dimension[static_cast<size_t>(dim)]) {
      return Status::ParseError("duplicate constraint: " + std::string(name));
    }
    saw_dimension[static_cast<size_t>(dim)] = true;
    GEOLIC_ASSIGN_OR_RETURN(ConstraintRange range,
                            schema.ParseRange(dim, value));
    builder.SetRange(name, std::move(range));
  }
  if (!saw_aggregate) {
    return Status::ParseError("missing aggregate constraint (A=...)");
  }
  return builder.Build();
}

std::string SerializeLicense(const License& license,
                             const ConstraintSchema& schema) {
  return license.ToString(schema);
}

}  // namespace geolic
