#ifndef GEOLIC_UTIL_CRC32C_H_
#define GEOLIC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace geolic {

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected) — the checksum used
// by the persist layer's journal frames and checkpoint containers. Chosen
// over plain CRC32 for its better burst-error detection and because it is
// the de-facto standard for storage framing (iSCSI, ext4, leveldb).

// Extends `crc` (the running value returned by a previous call, or 0 for a
// fresh computation) with `size` bytes at `data`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

// One-shot CRC32C of `data`.
inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace geolic

#endif  // GEOLIC_UTIL_CRC32C_H_
