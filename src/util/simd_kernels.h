#ifndef GEOLIC_UTIL_SIMD_KERNELS_H_
#define GEOLIC_UTIL_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace geolic {
namespace simd {

// The data-parallel inner loops of the instance fast-reject over the SoA
// license geometry (geometry/soa_rects.h), factored into per-ISA kernels
// behind function pointers — the call granularity is one whole column
// scan, so the indirection amortizes. (The flat tree's batched equation
// scan needs per-node granularity instead and therefore compiles whole
// per tier in validation/flat_tree_batch_*.cc, sharing this module's
// dispatch probe.) Each kernel exists in three tiers (scalar,
// SSE4.2, AVX2), compiled into separate translation units with per-source
// ISA flags so the rest of the tree never emits an instruction the host may
// lack; util/cpu_dispatch.h probes the CPU once and hands out the widest
// supported tier. Every tier computes the same pure integer predicate, so
// results are bit-identical across tiers by construction — the equivalence
// tests and ablation gates run all available tiers over the same inputs.
//
// Bit layout contract: item j of a column maps to bit (j % 64) of
// inout[j / 64], little-endian across words. Kernels AND their predicate
// into `inout` (they never set a bit that was clear), so multi-dimension
// filters chain without scratch masks. Bits at or beyond `n` are left
// unspecified; callers mask the tail.
struct Kernels {
  // inout[j/64] bit j keeps its value only when the closed interval
  // [q_lo, q_hi] is contained in [lo[j], hi[j]] (lo[j] <= q_lo and
  // q_hi <= hi[j]). An empty item cell is encoded (INT64_MAX, INT64_MIN),
  // which fails for every query.
  void (*interval_contain)(const int64_t* lo, const int64_t* hi, size_t n,
                           int64_t q_lo, int64_t q_hi, uint64_t* inout);

  // Same layout for closed-interval overlap: lo[j] <= q_hi and
  // q_lo <= hi[j]. Callers must pre-mask empty item cells — the
  // (INT64_MAX, INT64_MIN) sentinel would pass against a full-range query.
  void (*interval_overlap)(const int64_t* lo, const int64_t* hi, size_t n,
                           int64_t q_lo, int64_t q_hi, uint64_t* inout);

  // Bit j survives only when q_mask ⊆ masks[j] ((q_mask & ~masks[j]) == 0)
  // — the category-set containment test.
  void (*mask_superset)(const uint64_t* masks, size_t n, uint64_t q_mask,
                        uint64_t* inout);

  // Bit j survives only when q_mask ∩ masks[j] ≠ ∅ — category overlap.
  void (*mask_intersects)(const uint64_t* masks, size_t n, uint64_t q_mask,
                          uint64_t* inout);

  // "scalar", "sse4.2" or "avx2".
  const char* name;
};

// Column padding: per-item arrays are padded to a multiple of this many
// entries so a full-width vector load starting below `n` never reads
// unowned memory. Pad cells must hold fail-closed sentinel values.
inline constexpr size_t kColumnPad = 8;

// The three tiers. Scalar always runs; the SSE4.2/AVX2 kernels must only
// be *called* on hosts where cpu_dispatch reports the tier available
// (calling them merely returns the table — safe everywhere).
const Kernels& ScalarKernels();
const Kernels& Sse42Kernels();
const Kernels& Avx2Kernels();

}  // namespace simd
}  // namespace geolic

#endif  // GEOLIC_UTIL_SIMD_KERNELS_H_
