#ifndef GEOLIC_UTIL_STATUS_H_
#define GEOLIC_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace geolic {

// Error categories used across the library. The library is exception-free:
// every fallible operation reports failure through `Status` (or `Result<T>`
// for value-returning operations).
enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,   // Caller passed a malformed value.
  kNotFound = 2,          // Requested entity does not exist.
  kAlreadyExists = 3,     // Entity being created already exists.
  kOutOfRange = 4,        // Index/size outside the supported domain.
  kFailedPrecondition = 5,// Object not in the required state.
  kParseError = 6,        // License/text input could not be parsed.
  kIoError = 7,           // Filesystem read/write failure.
  kCapacityExceeded = 8,  // A hard library limit (e.g. 64 licenses) was hit.
  kInternal = 9,          // Invariant violation inside the library.
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// Value-or-error result of a fallible operation. Cheap to copy when OK
// (empty message string).
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status CapacityExceeded(std::string message) {
    return Status(StatusCode::kCapacityExceeded, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "PARSE_ERROR: unexpected token ')'".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Minimal expected-like holder: either a value of type T or a non-OK Status.
// Mirrors the subset of absl::StatusOr the library needs.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // in functions returning Result<T> (the same convenience absl::StatusOr
  // provides).
  Result(const T& value) : value_(value) {}          // NOLINT
  Result(T&& value) : value_(std::move(value)) {}    // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  // Returns the contained value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

// Propagates a non-OK status to the caller.
#define GEOLIC_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::geolic::Status geolic_status_tmp_ = (expr);   \
    if (!geolic_status_tmp_.ok()) {                 \
      return geolic_status_tmp_;                    \
    }                                               \
  } while (false)

#define GEOLIC_INTERNAL_CONCAT_IMPL(a, b) a##b
#define GEOLIC_INTERNAL_CONCAT(a, b) GEOLIC_INTERNAL_CONCAT_IMPL(a, b)

#define GEOLIC_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) {                                       \
    return tmp.status();                                 \
  }                                                      \
  lhs = std::move(tmp).value()

// Evaluates a Result<T> expression; assigns the value on success and
// propagates the Status on failure.
#define GEOLIC_ASSIGN_OR_RETURN(lhs, expr)                             \
  GEOLIC_INTERNAL_ASSIGN_OR_RETURN(                                    \
      GEOLIC_INTERNAL_CONCAT(geolic_result_tmp_, __LINE__), lhs, expr)

}  // namespace geolic

#endif  // GEOLIC_UTIL_STATUS_H_
