#include "util/metrics.h"

#include <bit>
#include <cstdio>

namespace geolic {

void LatencyHistogram::Record(int64_t nanos) {
  if (nanos < 0) {
    nanos = 0;
  }
  const uint64_t value = static_cast<uint64_t>(nanos);
  int bucket = value == 0 ? 0 : 63 - std::countl_zero(value);
  if (bucket >= kBuckets) {
    bucket = kBuckets - 1;
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(value, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snapshot;
  for (int i = 0; i < kBuckets; ++i) {
    snapshot.counts[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  snapshot.total_count = total_count_.load(std::memory_order_relaxed);
  snapshot.total_nanos = total_nanos_.load(std::memory_order_relaxed);
  return snapshot;
}

double LatencyHistogram::Snapshot::MeanNanos() const {
  if (total_count == 0) {
    return 0.0;
  }
  return static_cast<double>(total_nanos) / static_cast<double>(total_count);
}

int64_t LatencyHistogram::Snapshot::QuantileUpperBoundNanos(double p) const {
  if (total_count == 0) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 1.0) {
    p = 1.0;
  }
  const uint64_t rank = static_cast<uint64_t>(
      p * static_cast<double>(total_count - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[static_cast<size_t>(i)];
    if (seen > rank) {
      return int64_t{1} << (i + 1);
    }
  }
  return int64_t{1} << kBuckets;
}

std::string LatencyHistogram::Snapshot::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "count=%llu, mean=%.0fns, p50<=%lldns, p99<=%lldns",
                static_cast<unsigned long long>(total_count), MeanNanos(),
                static_cast<long long>(QuantileUpperBoundNanos(0.5)),
                static_cast<long long>(QuantileUpperBoundNanos(0.99)));
  return buffer;
}

void IssuanceMetrics::RecordAccepted(uint64_t equations, int64_t nanos) {
  accepted_.fetch_add(1, std::memory_order_relaxed);
  equations_checked_.fetch_add(equations, std::memory_order_relaxed);
  latency_.Record(nanos);
}

void IssuanceMetrics::RecordRejectedInstance(int64_t nanos) {
  rejected_instance_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(nanos);
}

void IssuanceMetrics::RecordRejectedAggregate(uint64_t equations,
                                              int64_t nanos) {
  rejected_aggregate_.fetch_add(1, std::memory_order_relaxed);
  equations_checked_.fetch_add(equations, std::memory_order_relaxed);
  latency_.Record(nanos);
}

void IssuanceMetrics::RecordBatch(uint64_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
}

IssuanceMetrics::Snapshot IssuanceMetrics::Snap() const {
  Snapshot snapshot;
  snapshot.accepted = accepted_.load(std::memory_order_relaxed);
  snapshot.rejected_instance =
      rejected_instance_.load(std::memory_order_relaxed);
  snapshot.rejected_aggregate =
      rejected_aggregate_.load(std::memory_order_relaxed);
  snapshot.equations_checked =
      equations_checked_.load(std::memory_order_relaxed);
  snapshot.batches = batches_.load(std::memory_order_relaxed);
  snapshot.batched_requests =
      batched_requests_.load(std::memory_order_relaxed);
  snapshot.latency = latency_.Snap();
  return snapshot;
}

std::string IssuanceMetrics::Snapshot::ToString() const {
  char buffer[256];
  std::snprintf(
      buffer, sizeof(buffer),
      "accepted=%llu, rejected_instance=%llu, rejected_aggregate=%llu, "
      "equations=%llu, batches=%llu (%llu reqs), latency: %s",
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(rejected_instance),
      static_cast<unsigned long long>(rejected_aggregate),
      static_cast<unsigned long long>(equations_checked),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batched_requests),
      latency.ToString().c_str());
  return buffer;
}

}  // namespace geolic
