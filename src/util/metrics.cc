#include "util/metrics.h"

#include <bit>
#include <cstdio>

namespace geolic {

void LatencyHistogram::Record(int64_t nanos) {
  if (nanos < 0) {
    clamped_negative_.fetch_add(1, std::memory_order_relaxed);
    nanos = 0;
  }
  const uint64_t value = static_cast<uint64_t>(nanos);
  int bucket = value == 0 ? 0 : 63 - std::countl_zero(value);
  if (bucket >= kBuckets) {
    bucket = kBuckets - 1;
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(value, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snapshot;
  for (int i = 0; i < kBuckets; ++i) {
    snapshot.counts[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  snapshot.total_count = total_count_.load(std::memory_order_relaxed);
  snapshot.total_nanos = total_nanos_.load(std::memory_order_relaxed);
  snapshot.clamped_negative = clamped_negative_.load(std::memory_order_relaxed);
  return snapshot;
}

double LatencyHistogram::Snapshot::MeanNanos() const {
  if (total_count == 0) {
    return 0.0;
  }
  return static_cast<double>(total_nanos) / static_cast<double>(total_count);
}

int64_t LatencyHistogram::Snapshot::QuantileUpperBoundNanos(double p) const {
  // Rank against the snapshotted bucket sum, not total_count: Record bumps
  // the bucket and total_count in separate relaxed RMWs, so a concurrent
  // Snap can observe sum(counts) < total_count. A rank derived from the
  // larger total would fall off the end of the scan and report the 2^40 ns
  // top bucket for an otherwise microsecond-scale histogram.
  uint64_t bucket_total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    bucket_total += counts[static_cast<size_t>(i)];
  }
  if (bucket_total == 0) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 1.0) {
    p = 1.0;
  }
  const uint64_t rank = static_cast<uint64_t>(
      p * static_cast<double>(bucket_total - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[static_cast<size_t>(i)];
    if (seen > rank) {
      return int64_t{1} << (i + 1);
    }
  }
  return int64_t{1} << kBuckets;  // Unreachable: rank < bucket_total.
}

std::string LatencyHistogram::Snapshot::ToString() const {
  char mean[32];
  std::snprintf(mean, sizeof(mean), "%.0f", MeanNanos());
  std::string out = "count=" + std::to_string(total_count);
  out += ", mean=";
  out += mean;
  out += "ns, p50<=" + std::to_string(QuantileUpperBoundNanos(0.5));
  out += "ns, p99<=" + std::to_string(QuantileUpperBoundNanos(0.99));
  out += "ns";
  if (clamped_negative != 0) {
    out += ", clamped_negative=" + std::to_string(clamped_negative);
  }
  return out;
}

void IssuanceMetrics::RecordAccepted(uint64_t equations, int64_t nanos) {
  accepted_.fetch_add(1, std::memory_order_relaxed);
  equations_checked_.fetch_add(equations, std::memory_order_relaxed);
  latency_.Record(nanos);
}

void IssuanceMetrics::RecordRejectedInstance(int64_t nanos) {
  rejected_instance_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(nanos);
}

void IssuanceMetrics::RecordRejectedAggregate(uint64_t equations,
                                              int64_t nanos) {
  rejected_aggregate_.fetch_add(1, std::memory_order_relaxed);
  equations_checked_.fetch_add(equations, std::memory_order_relaxed);
  latency_.Record(nanos);
}

void IssuanceMetrics::RecordBatch(uint64_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(size, std::memory_order_relaxed);
}

IssuanceMetrics::Snapshot IssuanceMetrics::Snap() const {
  Snapshot snapshot;
  snapshot.accepted = accepted_.load(std::memory_order_relaxed);
  snapshot.rejected_instance =
      rejected_instance_.load(std::memory_order_relaxed);
  snapshot.rejected_aggregate =
      rejected_aggregate_.load(std::memory_order_relaxed);
  snapshot.equations_checked =
      equations_checked_.load(std::memory_order_relaxed);
  snapshot.batches = batches_.load(std::memory_order_relaxed);
  snapshot.batched_requests =
      batched_requests_.load(std::memory_order_relaxed);
  snapshot.latency = latency_.Snap();
  return snapshot;
}

std::string IssuanceMetrics::Snapshot::ToString() const {
  // Built by string append, not a fixed buffer: six 20-digit counters plus
  // the embedded latency line overflow any reasonable snprintf buffer and
  // would silently truncate the tail of the log line.
  std::string out = "accepted=" + std::to_string(accepted);
  out += ", rejected_instance=" + std::to_string(rejected_instance);
  out += ", rejected_aggregate=" + std::to_string(rejected_aggregate);
  out += ", equations=" + std::to_string(equations_checked);
  out += ", batches=" + std::to_string(batches);
  out += " (" + std::to_string(batched_requests) + " reqs)";
  out += ", latency: " + latency.ToString();
  return out;
}

}  // namespace geolic
