// SSE4.2 tier: 2 × int64 lanes per operation (PCMPGTQ arrived with
// SSE4.2). The mid tier for hosts without AVX2; same bit-exactness
// contract as the other tiers. Only this translation unit is compiled with
// -msse4.2.

#include "util/simd_kernels.h"

#if defined(__SSE4_2__)

#include <nmmintrin.h>

namespace geolic {
namespace simd {
namespace {

inline uint64_t PassBits2(__m128i fail, size_t shift) {
  const unsigned fail_bits =
      static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(fail)));
  return static_cast<uint64_t>(~fail_bits & 0x3u) << shift;
}

void IntervalContainSse42(const int64_t* lo, const int64_t* hi, size_t n,
                          int64_t q_lo, int64_t q_hi, uint64_t* inout) {
  const __m128i v_qlo = _mm_set1_epi64x(q_lo);
  const __m128i v_qhi = _mm_set1_epi64x(q_hi);
  for (size_t base = 0; base < n; base += 64) {
    const size_t limit = n - base < 64 ? n - base : 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; j += 2) {
      const __m128i v_lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo + base + j));
      const __m128i v_hi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi + base + j));
      const __m128i fail = _mm_or_si128(_mm_cmpgt_epi64(v_lo, v_qlo),
                                        _mm_cmpgt_epi64(v_qhi, v_hi));
      bits |= PassBits2(fail, j);
    }
    inout[base / 64] &= bits;
  }
}

void IntervalOverlapSse42(const int64_t* lo, const int64_t* hi, size_t n,
                          int64_t q_lo, int64_t q_hi, uint64_t* inout) {
  const __m128i v_qlo = _mm_set1_epi64x(q_lo);
  const __m128i v_qhi = _mm_set1_epi64x(q_hi);
  for (size_t base = 0; base < n; base += 64) {
    const size_t limit = n - base < 64 ? n - base : 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; j += 2) {
      const __m128i v_lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo + base + j));
      const __m128i v_hi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi + base + j));
      const __m128i fail = _mm_or_si128(_mm_cmpgt_epi64(v_lo, v_qhi),
                                        _mm_cmpgt_epi64(v_qlo, v_hi));
      bits |= PassBits2(fail, j);
    }
    inout[base / 64] &= bits;
  }
}

void MaskSupersetSse42(const uint64_t* masks, size_t n, uint64_t q_mask,
                       uint64_t* inout) {
  const __m128i v_q = _mm_set1_epi64x(static_cast<int64_t>(q_mask));
  const __m128i v_zero = _mm_setzero_si128();
  for (size_t base = 0; base < n; base += 64) {
    const size_t limit = n - base < 64 ? n - base : 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; j += 2) {
      const __m128i v_m =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(masks + base + j));
      const __m128i stray = _mm_andnot_si128(v_m, v_q);
      const __m128i pass = _mm_cmpeq_epi64(stray, v_zero);
      bits |= static_cast<uint64_t>(static_cast<unsigned>(
                  _mm_movemask_pd(_mm_castsi128_pd(pass))))
              << j;
    }
    inout[base / 64] &= bits;
  }
}

void MaskIntersectsSse42(const uint64_t* masks, size_t n, uint64_t q_mask,
                         uint64_t* inout) {
  const __m128i v_q = _mm_set1_epi64x(static_cast<int64_t>(q_mask));
  const __m128i v_zero = _mm_setzero_si128();
  for (size_t base = 0; base < n; base += 64) {
    const size_t limit = n - base < 64 ? n - base : 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; j += 2) {
      const __m128i v_m =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(masks + base + j));
      const __m128i fail = _mm_cmpeq_epi64(_mm_and_si128(v_m, v_q), v_zero);
      bits |= PassBits2(fail, j);
    }
    inout[base / 64] &= bits;
  }
}

}  // namespace

const Kernels& Sse42Kernels() {
  static const Kernels kernels = {
      IntervalContainSse42, IntervalOverlapSse42, MaskSupersetSse42,
      MaskIntersectsSse42,  "sse4.2",
  };
  return kernels;
}

}  // namespace simd
}  // namespace geolic

#else  // !defined(__SSE4_2__)

namespace geolic {
namespace simd {
const Kernels& Sse42Kernels() { return ScalarKernels(); }
}  // namespace simd
}  // namespace geolic

#endif  // defined(__SSE4_2__)
