#include "util/bits.h"

#include <string>

namespace geolic {

std::vector<int> MaskToIndexes(LicenseMask mask) {
  std::vector<int> indexes;
  indexes.reserve(static_cast<size_t>(MaskSize(mask)));
  while (mask != 0) {
    const int index = LowestLicense(mask);
    indexes.push_back(index);
    mask &= mask - 1;
  }
  return indexes;
}

LicenseMask IndexesToMask(const std::vector<int>& indexes) {
  LicenseMask mask = 0;
  for (int index : indexes) {
    mask |= SingletonMask(index);
  }
  return mask;
}

std::string MaskToString(LicenseMask mask) {
  std::string out = "{";
  bool first = true;
  for (int index : MaskToIndexes(mask)) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "L";
    out += std::to_string(index + 1);
  }
  out += "}";
  return out;
}

}  // namespace geolic
