#ifndef GEOLIC_UTIL_THREAD_POOL_H_
#define GEOLIC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace geolic {

// Fixed-size worker pool for the parallel validators. Tasks are void
// closures; Wait() blocks until every scheduled task has finished. The pool
// joins its workers on destruction.
//
// Deliberately minimal: no futures, no priorities, no work stealing — the
// validators schedule a handful of coarse, balanced shards.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Must not be called concurrently with destruction.
  void Schedule(std::function<void()> task);

  // Blocks until all scheduled tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // A reasonable default parallelism for this machine (hardware threads,
  // at least 1).
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;   // Tasks popped but not yet finished.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace geolic

#endif  // GEOLIC_UTIL_THREAD_POOL_H_
