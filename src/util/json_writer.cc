#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace geolic {

std::string JsonWriter::Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    GEOLIC_CHECK(out_.empty());  // Only one top-level value.
    return;
  }
  if (stack_.back() == Scope::kObject) {
    GEOLIC_CHECK(pending_key_);
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) {
    out_ += ',';
  }
  has_items_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  GEOLIC_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  GEOLIC_CHECK(!pending_key_);
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  GEOLIC_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
}

void JsonWriter::Key(std::string_view name) {
  GEOLIC_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  GEOLIC_CHECK(!pending_key_);
  if (has_items_.back()) {
    out_ += ',';
  }
  has_items_.back() = true;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN.
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

std::string JsonWriter::Take() && {
  GEOLIC_CHECK(stack_.empty());
  GEOLIC_CHECK(!pending_key_);
  return std::move(out_);
}

}  // namespace geolic
