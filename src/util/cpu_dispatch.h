#ifndef GEOLIC_UTIL_CPU_DISPATCH_H_
#define GEOLIC_UTIL_CPU_DISPATCH_H_

#include "util/simd_kernels.h"

namespace geolic {
namespace simd {

// Vector ISA tiers the kernels are built for, widest last. The dispatcher
// probes the host once (first call) and every hot path reads the cached
// result — requests never re-probe.
enum class Tier {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

const char* TierName(Tier tier);

// True when the host can execute `tier` (kScalar is always true). Reports
// raw hardware capability — forcing scalar does not change it.
bool TierAvailable(Tier tier);

// The tier the hot paths will use: the widest available one, unless scalar
// is forced. Scalar is forced by either the GEOLIC_FORCE_SCALAR compile
// definition (CMake -DGEOLIC_FORCE_SCALAR=ON) or a non-empty, non-"0"
// GEOLIC_FORCE_SCALAR environment variable at first use — the CI fallback
// row and the A/B rows of the ablations use the env form on an ordinary
// build. Cached after the first call; changing the env later has no
// effect.
Tier ActiveTier();

// Kernel table for ActiveTier().
const Kernels& ActiveKernels();

// Kernel table for an explicit tier — the equivalence tests and ablation
// A/B rows run every available tier over the same inputs. Callers must
// check TierAvailable first for kSse42/kAvx2.
const Kernels& KernelsForTier(Tier tier);

}  // namespace simd
}  // namespace geolic

#endif  // GEOLIC_UTIL_CPU_DISPATCH_H_
