#ifndef GEOLIC_UTIL_RANDOM_H_
#define GEOLIC_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"

namespace geolic {

// Deterministic xoshiro256** PRNG seeded via SplitMix64. All randomness in
// the library (workload generation, simulations, property tests) flows
// through this so every run is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n);

 private:
  uint64_t state_[4];
};

}  // namespace geolic

#endif  // GEOLIC_UTIL_RANDOM_H_
