#ifndef GEOLIC_UTIL_STOPWATCH_H_
#define GEOLIC_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace geolic {

// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction / last Reset.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace geolic

#endif  // GEOLIC_UTIL_STOPWATCH_H_
