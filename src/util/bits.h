#ifndef GEOLIC_UTIL_BITS_H_
#define GEOLIC_UTIL_BITS_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace geolic {

// A set of redistribution licenses encoded as a bitmask: bit i set means the
// i-th redistribution license (0-based internally; the paper's L_D^{i+1}) is
// in the set. Caps the library at 64 redistribution licenses per content —
// the paper's evaluation stops at N = 35.
using LicenseMask = uint64_t;

inline constexpr int kMaxLicenses = 64;

// Number of licenses in the set.
inline int MaskSize(LicenseMask mask) { return std::popcount(mask); }

// Mask with the single license `index` (0-based). Requires index in [0, 64).
inline LicenseMask SingletonMask(int index) {
  GEOLIC_DCHECK(index >= 0 && index < kMaxLicenses);
  return LicenseMask{1} << index;
}

// Mask of the full set {0, .., n-1}. Requires n in [0, 64].
inline LicenseMask FullMask(int n) {
  GEOLIC_DCHECK(n >= 0 && n <= kMaxLicenses);
  if (n == 0) {
    return 0;
  }
  if (n == kMaxLicenses) {
    return ~LicenseMask{0};
  }
  return (LicenseMask{1} << n) - 1;
}

// True iff `subset` ⊆ `superset`.
inline bool IsSubsetOf(LicenseMask subset, LicenseMask superset) {
  return (subset & ~superset) == 0;
}

// True iff license `index` is in `mask`.
inline bool MaskContains(LicenseMask mask, int index) {
  return (mask >> index) & 1;
}

// 0-based index of the lowest license in `mask`. Requires mask != 0.
inline int LowestLicense(LicenseMask mask) {
  GEOLIC_DCHECK(mask != 0);
  return std::countr_zero(mask);
}

// 0-based index of the highest license in `mask`. Requires mask != 0.
inline int HighestLicense(LicenseMask mask) {
  GEOLIC_DCHECK(mask != 0);
  return 63 - std::countl_zero(mask);
}

// Ascending list of license indexes in `mask` (how the validation tree and
// the paper's log table spell a set: {L1, L2, L4} with increasing indexes).
std::vector<int> MaskToIndexes(LicenseMask mask);

// Builds a mask from 0-based indexes. Duplicates collapse.
LicenseMask IndexesToMask(const std::vector<int>& indexes);

// Iterates every non-empty subset of `set` in the standard descending
// submask order:
//
//   for (SubsetIterator it(set); !it.Done(); it.Next()) { use it.subset(); }
//
// Enumerates 2^|set| − 1 subsets (the null set is skipped, matching the
// summation limits of validation equation 1).
class SubsetIterator {
 public:
  explicit SubsetIterator(LicenseMask set)
      : set_(set), subset_(set), done_(set == 0) {}

  bool Done() const { return done_; }
  LicenseMask subset() const { return subset_; }

  void Next() {
    GEOLIC_DCHECK(!done_);
    if (subset_ == 0) {
      done_ = true;
      return;
    }
    subset_ = (subset_ - 1) & set_;
    if (subset_ == 0) {
      done_ = true;
    }
  }

 private:
  LicenseMask set_;
  LicenseMask subset_;
  bool done_;
};

// Renders a mask as the paper writes sets: "{L1, L2, L4}" with 1-based
// license numbers. "{}" for the empty mask.
std::string MaskToString(LicenseMask mask);

}  // namespace geolic

#endif  // GEOLIC_UTIL_BITS_H_
