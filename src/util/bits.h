#ifndef GEOLIC_UTIL_BITS_H_
#define GEOLIC_UTIL_BITS_H_

// DEPRECATION SHIM — scheduled for deletion after the next PR (target:
// 2026-09). The bare `LicenseMask = uint64_t` bitmask API grew into the
// value-type LicenseSet (util/license_set.h): a small-size-optimized
// multi-word bitset whose inline-word representation is bit-identical to
// the old masks for indexes < 64, and which spills past the historical
// 64-license ceiling up to kMaxLicensesLarge.
//
// Every free function below forwards to the equivalent LicenseSet member
// and is annotated [[deprecated]] so out-of-tree/bench code migrates on a
// clean compile signal. See API.md for the old-name → new-member table.
// New code must include util/license_set.h directly.

#include <string>
#include <vector>

#include "util/license_set.h"

namespace geolic {

// The historical mask typedef. LicenseSet's inline word IS the old
// representation; the alias keeps old spellings compiling while they last.
using LicenseMask [[deprecated("spell it LicenseSet")]] = LicenseSet;

// The historical 64-license ceiling — now only the inline fast-path width.
// Capacity checks should compare against kMaxLicensesLarge.
[[deprecated("use kMaxLicensesInline (fast path) or kMaxLicensesLarge "
             "(capacity)")]] inline constexpr int kMaxLicenses =
    kMaxLicensesInline;

[[deprecated("use LicenseSet::Size()")]]
inline int MaskSize(const LicenseSet& mask) { return mask.Size(); }

[[deprecated("use LicenseSet::Singleton(index)")]]
inline LicenseSet SingletonMask(int index) {
  return LicenseSet::Singleton(index);
}

[[deprecated("use LicenseSet::Full(n)")]]
inline LicenseSet FullMask(int n) { return LicenseSet::Full(n); }

[[deprecated("use subset.IsSubsetOf(superset)")]]
inline bool IsSubsetOf(const LicenseSet& subset, const LicenseSet& superset) {
  return subset.IsSubsetOf(superset);
}

[[deprecated("use LicenseSet::Contains(index)")]]
inline bool MaskContains(const LicenseSet& mask, int index) {
  return mask.Contains(index);
}

[[deprecated("use LicenseSet::Lowest()")]]
inline int LowestLicense(const LicenseSet& mask) { return mask.Lowest(); }

[[deprecated("use LicenseSet::Highest()")]]
inline int HighestLicense(const LicenseSet& mask) { return mask.Highest(); }

[[deprecated("use LicenseSet::ToIndexes()")]]
inline std::vector<int> MaskToIndexes(const LicenseSet& mask) {
  return mask.ToIndexes();
}

[[deprecated("use LicenseSet::FromIndexes(indexes)")]]
inline LicenseSet IndexesToMask(const std::vector<int>& indexes) {
  return LicenseSet::FromIndexes(indexes);
}

[[deprecated("use LicenseSet::ToString()")]]
inline std::string MaskToString(const LicenseSet& mask) {
  return mask.ToString();
}

// SubsetIterator moved to util/license_set.h unchanged in name and
// semantics; including this shim keeps it visible.

}  // namespace geolic

#endif  // GEOLIC_UTIL_BITS_H_
