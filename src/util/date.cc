#include "util/date.h"

#include <cstdio>

namespace geolic {
namespace {

// Howard Hinnant's days_from_civil / civil_from_days algorithms
// (public-domain chrono date algorithms), adapted to int64.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                            // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;    // [0, 146096]
  return era * 146097 + doe - 719468;
}

struct Civil {
  int64_t year;
  int month;
  int day;
};

Civil CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                         // [0, 146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;    // [0, 399]
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                       // [0, 11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  return Civil{y + (m <= 2), static_cast<int>(m), static_cast<int>(d)};
}

bool ParseInt(std::string_view text, size_t begin, size_t end, int* out) {
  if (begin >= end || end > text.size()) {
    return false;
  }
  int value = 0;
  for (size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

bool Date::IsLeapYear(int year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int Date::DaysInMonth(int year, int month) {
  static constexpr int kDays[13] = {0,  31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) {
    return 0;
  }
  if (month == 2 && IsLeapYear(year)) {
    return 29;
  }
  return kDays[month];
}

Result<Date> Date::FromCivil(int year, int month, int day) {
  if (year < -9999 || year > 9999) {
    return Status::InvalidArgument("year out of range: " +
                                   std::to_string(year));
  }
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  return Date(DaysFromCivil(year, month, day));
}

Date Date::FromDayNumber(int64_t day_number) { return Date(day_number); }

Result<Date> Date::Parse(std::string_view text) {
  // ISO form: YYYY-MM-DD (fixed widths).
  if (text.size() == 10 && text[4] == '-' && text[7] == '-') {
    int year = 0;
    int month = 0;
    int day = 0;
    if (ParseInt(text, 0, 4, &year) && ParseInt(text, 5, 7, &month) &&
        ParseInt(text, 8, 10, &day)) {
      return FromCivil(year, month, day);
    }
    return Status::ParseError("malformed ISO date: " + std::string(text));
  }
  // Paper form: DD/MM/YY, e.g. "15/03/09".
  if (text.size() == 8 && text[2] == '/' && text[5] == '/') {
    int day = 0;
    int month = 0;
    int yy = 0;
    if (ParseInt(text, 0, 2, &day) && ParseInt(text, 3, 5, &month) &&
        ParseInt(text, 6, 8, &yy)) {
      const int year = yy <= 68 ? 2000 + yy : 1900 + yy;
      return FromCivil(year, month, day);
    }
    return Status::ParseError("malformed DD/MM/YY date: " + std::string(text));
  }
  return Status::ParseError("unrecognised date format: " + std::string(text));
}

int Date::year() const {
  return static_cast<int>(CivilFromDays(day_number_).year);
}

int Date::month() const { return CivilFromDays(day_number_).month; }

int Date::day() const { return CivilFromDays(day_number_).day; }

std::string Date::ToString() const {
  const Civil c = CivilFromDays(day_number_);
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%04lld-%02d-%02d",
                static_cast<long long>(c.year), c.month, c.day);
  return buffer;
}

std::ostream& operator<<(std::ostream& os, Date date) {
  return os << date.ToString();
}

}  // namespace geolic
