#ifndef GEOLIC_UTIL_METRICS_H_
#define GEOLIC_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace geolic {

// Lock-free power-of-two latency histogram: bucket i counts observations
// with floor(log2(nanos)) == i (bucket 0 additionally absorbs 0 ns). 40
// buckets cover 1 ns .. ~18 min, which bounds any single issuance. All
// methods are safe to call concurrently; Record is two relaxed atomic RMWs.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void Record(int64_t nanos);

  // Consistent-enough copy of the counters (relaxed loads; buckets recorded
  // concurrently with the snapshot may or may not be included).
  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t total_count = 0;
    uint64_t total_nanos = 0;  // Sum of recorded latencies.
    // Observations that arrived negative (cross-thread timestamp math can
    // produce deltas < 0) and were clamped into bucket 0. They are included
    // in counts/total_count; this counter makes the clamping observable
    // instead of silently misfiling them.
    uint64_t clamped_negative = 0;

    double MeanNanos() const;
    // Upper bound of the bucket holding the p-quantile (p in [0, 1]); the
    // histogram's resolution is the power-of-two bucket width.
    int64_t QuantileUpperBoundNanos(double p) const;
    // "count=…, mean=…, p50≤…, p99≤…" one-liner for logs and benches.
    std::string ToString() const;
  };
  Snapshot Snap() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> total_count_{0};
  std::atomic<uint64_t> total_nanos_{0};
  std::atomic<uint64_t> clamped_negative_{0};
};

// Atomic metrics block for the online issuance path, shared by
// OnlineValidator (optional sink) and IssuanceService (always on). Every
// method is thread-safe; counters use relaxed ordering — they are
// statistics, not synchronization.
class IssuanceMetrics {
 public:
  // One decision outcome. `equations` is the number of validation equations
  // checked for the request; `nanos` the request's wall latency.
  void RecordAccepted(uint64_t equations, int64_t nanos);
  void RecordRejectedInstance(int64_t nanos);
  void RecordRejectedAggregate(uint64_t equations, int64_t nanos);
  // One TryIssueBatch call admitting `size` requests.
  void RecordBatch(uint64_t size);

  struct Snapshot {
    uint64_t accepted = 0;
    uint64_t rejected_instance = 0;
    uint64_t rejected_aggregate = 0;
    uint64_t equations_checked = 0;
    uint64_t batches = 0;
    uint64_t batched_requests = 0;
    LatencyHistogram::Snapshot latency;

    uint64_t total_requests() const {
      return accepted + rejected_instance + rejected_aggregate;
    }
    std::string ToString() const;
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_instance_{0};
  std::atomic<uint64_t> rejected_aggregate_{0};
  std::atomic<uint64_t> equations_checked_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  LatencyHistogram latency_;
};

}  // namespace geolic

#endif  // GEOLIC_UTIL_METRICS_H_
