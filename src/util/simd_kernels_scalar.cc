// Scalar tier: the portable reference the vector tiers are gated against.
// Compiled with the project's baseline flags (no ISA extensions), always
// linked, and the tier GEOLIC_FORCE_SCALAR pins the dispatcher to.

#include "util/simd_kernels.h"

namespace geolic {
namespace simd {
namespace {

void IntervalContainScalar(const int64_t* lo, const int64_t* hi, size_t n,
                           int64_t q_lo, int64_t q_hi, uint64_t* inout) {
  for (size_t base = 0; base < n; base += 64) {
    uint64_t bits = 0;
    const size_t limit = n - base < 64 ? n - base : 64;
    for (size_t j = 0; j < limit; ++j) {
      const size_t item = base + j;
      if (lo[item] <= q_lo && q_hi <= hi[item]) {
        bits |= uint64_t{1} << j;
      }
    }
    inout[base / 64] &= bits;
  }
}

void IntervalOverlapScalar(const int64_t* lo, const int64_t* hi, size_t n,
                           int64_t q_lo, int64_t q_hi, uint64_t* inout) {
  for (size_t base = 0; base < n; base += 64) {
    uint64_t bits = 0;
    const size_t limit = n - base < 64 ? n - base : 64;
    for (size_t j = 0; j < limit; ++j) {
      const size_t item = base + j;
      if (lo[item] <= q_hi && q_lo <= hi[item]) {
        bits |= uint64_t{1} << j;
      }
    }
    inout[base / 64] &= bits;
  }
}

void MaskSupersetScalar(const uint64_t* masks, size_t n, uint64_t q_mask,
                        uint64_t* inout) {
  for (size_t base = 0; base < n; base += 64) {
    uint64_t bits = 0;
    const size_t limit = n - base < 64 ? n - base : 64;
    for (size_t j = 0; j < limit; ++j) {
      if ((q_mask & ~masks[base + j]) == 0) {
        bits |= uint64_t{1} << j;
      }
    }
    inout[base / 64] &= bits;
  }
}

void MaskIntersectsScalar(const uint64_t* masks, size_t n, uint64_t q_mask,
                          uint64_t* inout) {
  for (size_t base = 0; base < n; base += 64) {
    uint64_t bits = 0;
    const size_t limit = n - base < 64 ? n - base : 64;
    for (size_t j = 0; j < limit; ++j) {
      if ((q_mask & masks[base + j]) != 0) {
        bits |= uint64_t{1} << j;
      }
    }
    inout[base / 64] &= bits;
  }
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels kernels = {
      IntervalContainScalar, IntervalOverlapScalar, MaskSupersetScalar,
      MaskIntersectsScalar,  "scalar",
  };
  return kernels;
}

}  // namespace simd
}  // namespace geolic
