#ifndef GEOLIC_UTIL_SIM_HOOKS_H_
#define GEOLIC_UTIL_SIM_HOOKS_H_

#include <cstdint>

namespace geolic {

// Hooks the deterministic simulation harness (src/sim/) threads through
// the request path. Production code never sets them: every call site is a
// branch on a null pointer (the same zero-cost-default pattern as
// OnlineValidatorOptions::tracer), so the service pays one predictable
// branch per hook point when simulation is off.
//
// Yield points mark spots where a cooperative scheduler may suspend the
// calling task and run another — the mechanism that lets the simulator
// replay chosen interleavings of concurrent operations from a single seed.
// Contract for adding a hook point: the caller must hold NO locks at a
// Yield (a suspended lock holder would deadlock the single-token
// scheduler), which is also why the points sit at the lock-free seams of
// the request path rather than inside critical sections.
//
// NowNanos is the simulation's virtual clock. When hooks are installed the
// service timestamps request latency from it instead of the wall clock, so
// metrics become a deterministic function of the seed too.
class SimHooks {
 public:
  virtual ~SimHooks() = default;

  // Possible suspension point; `point` names the seam (e.g.
  // "pre_shard_lock") for interleaving traces. Must be called lock-free.
  virtual void Yield(const char* point) = 0;

  // Virtual time in nanoseconds; monotonically non-decreasing.
  virtual uint64_t NowNanos() = 0;
};

}  // namespace geolic

#endif  // GEOLIC_UTIL_SIM_HOOKS_H_
