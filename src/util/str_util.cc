#include "util/str_util.h"

#include <cctype>
#include <limits>

namespace geolic {

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           char delimiter) {
  std::vector<std::string_view> pieces;
  if (text.empty()) {
    return pieces;
  }
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(StripWhitespace(text.substr(start)));
      break;
    }
    pieces.push_back(StripWhitespace(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += separator;
    }
    out += pieces[i];
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return Status::ParseError("empty integer");
  }
  bool negative = false;
  size_t i = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) {
    return Status::ParseError("sign without digits: " + std::string(text));
  }
  uint64_t magnitude = 0;
  constexpr uint64_t kMaxPositive =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  const uint64_t limit = negative ? kMaxPositive + 1 : kMaxPositive;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return Status::ParseError("non-digit in integer: " + std::string(text));
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (magnitude > (limit - digit) / 10) {
      return Status::ParseError("integer overflow: " + std::string(text));
    }
    magnitude = magnitude * 10 + digit;
  }
  if (negative) {
    return static_cast<int64_t>(~magnitude + 1);
  }
  return static_cast<int64_t>(magnitude);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace geolic
