// AVX2 tier: 4 × int64 lanes per operation. This translation unit is the
// only one compiled with -mavx2 (see util/CMakeLists.txt), so AVX2
// instructions never leak into code that runs before the dispatch probe.
// Only the 64-bit compare/blend/add units are used — no floating point, so
// the results are exact and bit-identical to the scalar tier.

#include "util/simd_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace geolic {
namespace simd {
namespace {

inline uint64_t PassBits4(__m256i fail, size_t shift) {
  const unsigned fail_bits =
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(fail)));
  return static_cast<uint64_t>(~fail_bits & 0xFu) << shift;
}

void IntervalContainAvx2(const int64_t* lo, const int64_t* hi, size_t n,
                         int64_t q_lo, int64_t q_hi, uint64_t* inout) {
  const __m256i v_qlo = _mm256_set1_epi64x(q_lo);
  const __m256i v_qhi = _mm256_set1_epi64x(q_hi);
  for (size_t base = 0; base < n; base += 64) {
    const size_t limit = n - base < 64 ? n - base : 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; j += 4) {
      const __m256i v_lo = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lo + base + j));
      const __m256i v_hi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(hi + base + j));
      // Containment fails iff lo[j] > q_lo or q_hi > hi[j].
      const __m256i fail = _mm256_or_si256(_mm256_cmpgt_epi64(v_lo, v_qlo),
                                           _mm256_cmpgt_epi64(v_qhi, v_hi));
      bits |= PassBits4(fail, j);
    }
    inout[base / 64] &= bits;
  }
}

void IntervalOverlapAvx2(const int64_t* lo, const int64_t* hi, size_t n,
                         int64_t q_lo, int64_t q_hi, uint64_t* inout) {
  const __m256i v_qlo = _mm256_set1_epi64x(q_lo);
  const __m256i v_qhi = _mm256_set1_epi64x(q_hi);
  for (size_t base = 0; base < n; base += 64) {
    const size_t limit = n - base < 64 ? n - base : 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; j += 4) {
      const __m256i v_lo = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lo + base + j));
      const __m256i v_hi = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(hi + base + j));
      // Overlap fails iff lo[j] > q_hi or q_lo > hi[j].
      const __m256i fail = _mm256_or_si256(_mm256_cmpgt_epi64(v_lo, v_qhi),
                                           _mm256_cmpgt_epi64(v_qlo, v_hi));
      bits |= PassBits4(fail, j);
    }
    inout[base / 64] &= bits;
  }
}

void MaskSupersetAvx2(const uint64_t* masks, size_t n, uint64_t q_mask,
                      uint64_t* inout) {
  const __m256i v_q = _mm256_set1_epi64x(static_cast<int64_t>(q_mask));
  const __m256i v_zero = _mm256_setzero_si256();
  for (size_t base = 0; base < n; base += 64) {
    const size_t limit = n - base < 64 ? n - base : 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; j += 4) {
      const __m256i v_m = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(masks + base + j));
      // Pass iff q_mask & ~masks[j] == 0 (andnot computes ~m & q).
      const __m256i stray = _mm256_andnot_si256(v_m, v_q);
      const __m256i pass = _mm256_cmpeq_epi64(stray, v_zero);
      bits |= static_cast<uint64_t>(static_cast<unsigned>(
                  _mm256_movemask_pd(_mm256_castsi256_pd(pass))))
              << j;
    }
    inout[base / 64] &= bits;
  }
}

void MaskIntersectsAvx2(const uint64_t* masks, size_t n, uint64_t q_mask,
                        uint64_t* inout) {
  const __m256i v_q = _mm256_set1_epi64x(static_cast<int64_t>(q_mask));
  const __m256i v_zero = _mm256_setzero_si256();
  for (size_t base = 0; base < n; base += 64) {
    const size_t limit = n - base < 64 ? n - base : 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < limit; j += 4) {
      const __m256i v_m = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(masks + base + j));
      const __m256i fail =
          _mm256_cmpeq_epi64(_mm256_and_si256(v_m, v_q), v_zero);
      bits |= PassBits4(fail, j);
    }
    inout[base / 64] &= bits;
  }
}

}  // namespace

const Kernels& Avx2Kernels() {
  static const Kernels kernels = {
      IntervalContainAvx2, IntervalOverlapAvx2, MaskSupersetAvx2,
      MaskIntersectsAvx2,  "avx2",
  };
  return kernels;
}

}  // namespace simd
}  // namespace geolic

#else  // !defined(__AVX2__)

// Non-x86 (or AVX2-less) toolchain: the tier still links but degrades to
// the scalar table; cpu_dispatch never selects it on such hosts.
namespace geolic {
namespace simd {
const Kernels& Avx2Kernels() { return ScalarKernels(); }
}  // namespace simd
}  // namespace geolic

#endif  // defined(__AVX2__)
