#include "util/license_set.h"

#include <algorithm>
#include <cstring>

namespace geolic {
namespace {

#ifndef GEOLIC_LICENSE_SET_NO_POOL

// Thread-local pool of heap word spans, bucketed by exact word count.
// Spilled sets are the per-equation currency of wide-catalog request
// traffic (every `s | subset` in the scan allocates one), so recycling
// spans makes the steady-state admission path allocation-free. Free lists
// are intrusive: a cached span's first 8 bytes hold the next pointer.
// Spans may migrate between threads (allocated on one, freed into
// another's pool) — they are plain new[] memory either way.
struct SpanPool {
  // Bounds per-thread retention to ~1 MiB at the widest bucket.
  static constexpr uint32_t kMaxPerBucket = 1024;

  void* head[kMaxLicenseWords + 1] = {};
  uint32_t count[kMaxLicenseWords + 1] = {};

  ~SpanPool();
};

// Guard against static-destruction-order races: a static LicenseSet that
// outlives the thread_local pool must fall back to plain delete[], not
// touch the destroyed pool.
thread_local SpanPool* tls_pool = nullptr;
thread_local bool tls_pool_dead = false;

SpanPool::~SpanPool() {
  for (uint32_t w = 2; w <= static_cast<uint32_t>(kMaxLicenseWords); ++w) {
    void* span = head[w];
    while (span != nullptr) {
      void* next;
      std::memcpy(&next, span, sizeof(next));
      delete[] static_cast<uint64_t*>(span);
      span = next;
    }
  }
  tls_pool = nullptr;
  tls_pool_dead = true;
}

SpanPool* GetPool() {
  if (tls_pool != nullptr) {
    return tls_pool;
  }
  if (tls_pool_dead) {
    return nullptr;
  }
  thread_local SpanPool pool;
  tls_pool = &pool;
  return tls_pool;
}

#endif  // GEOLIC_LICENSE_SET_NO_POOL

}  // namespace

uint64_t* LicenseSet::AllocWords(uint32_t num_words) {
#ifndef GEOLIC_LICENSE_SET_NO_POOL
  SpanPool* pool = GetPool();
  if (pool != nullptr && pool->head[num_words] != nullptr) {
    uint64_t* span = static_cast<uint64_t*>(pool->head[num_words]);
    std::memcpy(&pool->head[num_words], span, sizeof(void*));
    --pool->count[num_words];
    return span;
  }
#endif
  return new uint64_t[num_words];
}

void LicenseSet::FreeWords(uint64_t* span,
                           [[maybe_unused]] uint32_t num_words) {
#ifndef GEOLIC_LICENSE_SET_NO_POOL
  SpanPool* pool = GetPool();
  if (pool != nullptr && pool->count[num_words] < SpanPool::kMaxPerBucket) {
    std::memcpy(span, &pool->head[num_words], sizeof(void*));
    pool->head[num_words] = span;
    ++pool->count[num_words];
    return;
  }
#endif
  delete[] span;
}

LicenseSet LicenseSet::FromWords(std::span<const uint64_t> words) {
  size_t top = words.size();
  while (top > 1 && words[top - 1] == 0) {
    --top;
  }
  GEOLIC_DCHECK(top <= static_cast<size_t>(kMaxLicenseWords));
  LicenseSet set;
  if (top <= 1) {
    set.inline_word_ = words.empty() ? 0 : words[0];
    return set;
  }
  set.num_words_ = static_cast<uint32_t>(top);
  set.heap_ = AllocWords(set.num_words_);
  std::copy_n(words.data(), top, set.heap_);
  return set;
}

LicenseSet LicenseSet::SingletonSlow(int index) {
  const uint32_t w = static_cast<uint32_t>(index) / 64;
  LicenseSet set;
  set.num_words_ = w + 1;
  set.heap_ = AllocWords(w + 1);
  std::fill_n(set.heap_, w, uint64_t{0});
  set.heap_[w] = uint64_t{1} << (static_cast<uint32_t>(index) % 64);
  return set;
}

LicenseSet LicenseSet::Full(int n) {
  GEOLIC_DCHECK(n >= 0 && n <= kMaxLicensesLarge);
  if (n <= kMaxLicensesInline) {
    if (n == 0) {
      return LicenseSet();
    }
    if (n == kMaxLicensesInline) {
      return FromWord(~uint64_t{0});
    }
    return FromWord((uint64_t{1} << n) - 1);
  }
  const uint32_t full_words = static_cast<uint32_t>(n) / 64;
  const uint32_t spare_bits = static_cast<uint32_t>(n) % 64;
  const uint32_t total = full_words + (spare_bits != 0 ? 1 : 0);
  LicenseSet set;
  set.num_words_ = total;
  set.heap_ = AllocWords(total);
  for (uint32_t w = 0; w < full_words; ++w) {
    set.heap_[w] = ~uint64_t{0};
  }
  if (spare_bits != 0) {
    set.heap_[full_words] = (uint64_t{1} << spare_bits) - 1;
  }
  return set;
}

LicenseSet LicenseSet::FromIndexes(const std::vector<int>& indexes) {
  LicenseSet set;
  for (int index : indexes) {
    set.Add(index);
  }
  return set;
}

void LicenseSet::AddSlow(int index) {
  const uint32_t w = static_cast<uint32_t>(index) / 64;
  uint64_t* grown = AllocWords(w + 1);
  std::copy_n(words(), num_words_, grown);
  std::fill_n(grown + num_words_, w + 1 - num_words_, uint64_t{0});
  grown[w] |= uint64_t{1} << (static_cast<uint32_t>(index) % 64);
  DestroyHeap();
  num_words_ = w + 1;
  heap_ = grown;
}

void LicenseSet::CopyFrom(const LicenseSet& other) {
  num_words_ = other.num_words_;
  if (num_words_ == 1) {
    inline_word_ = other.inline_word_;
    return;
  }
  heap_ = AllocWords(num_words_);
  std::copy_n(other.heap_, num_words_, heap_);
}

void LicenseSet::Normalize() {
  if (num_words_ == 1) {
    return;
  }
  uint32_t top = num_words_;
  while (top > 1 && heap_[top - 1] == 0) {
    --top;
  }
  if (top == num_words_) {
    return;
  }
  if (top == 1) {
    const uint64_t word = heap_[0];
    FreeWords(heap_, num_words_);
    num_words_ = 1;
    inline_word_ = word;
    return;
  }
  uint64_t* shrunk = AllocWords(top);
  std::copy_n(heap_, top, shrunk);
  FreeWords(heap_, num_words_);
  num_words_ = top;
  heap_ = shrunk;
}

LicenseSet& LicenseSet::operator|=(const LicenseSet& other) {
  if (other.num_words_ <= num_words_) {
    uint64_t* a = mutable_words();
    const uint64_t* b = other.words();
    for (uint32_t w = 0; w < other.num_words_; ++w) {
      a[w] |= b[w];
    }
    return *this;
  }
  uint64_t* grown = AllocWords(other.num_words_);
  const uint64_t* a = words();
  const uint64_t* b = other.heap_;
  for (uint32_t w = 0; w < other.num_words_; ++w) {
    grown[w] = (w < num_words_ ? a[w] : 0) | b[w];
  }
  DestroyHeap();
  num_words_ = other.num_words_;
  heap_ = grown;
  return *this;
}

LicenseSet& LicenseSet::operator&=(const LicenseSet& other) {
  if (num_words_ == 1) {
    inline_word_ &= other.words()[0];
    return *this;
  }
  uint64_t* a = heap_;
  const uint64_t* b = other.words();
  for (uint32_t w = 0; w < num_words_; ++w) {
    a[w] &= w < other.num_words_ ? b[w] : 0;
  }
  Normalize();
  return *this;
}

LicenseSet& LicenseSet::operator-=(const LicenseSet& other) {
  uint64_t* a = mutable_words();
  const uint64_t* b = other.words();
  const uint32_t common =
      num_words_ < other.num_words_ ? num_words_ : other.num_words_;
  for (uint32_t w = 0; w < common; ++w) {
    a[w] &= ~b[w];
  }
  Normalize();
  return *this;
}

LicenseSet LicenseSet::WithIndexErased(int index) const {
  GEOLIC_DCHECK(index >= 0 && index < kMaxLicensesLarge);
  LicenseSet out;
  for (int i : Indexes()) {
    if (i == index) {
      continue;
    }
    out.Add(i > index ? i - 1 : i);
  }
  return out;
}

std::vector<int> LicenseSet::ToIndexes() const {
  std::vector<int> indexes;
  indexes.reserve(static_cast<size_t>(Size()));
  for (int index : Indexes()) {
    indexes.push_back(index);
  }
  return indexes;
}

std::string LicenseSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int index : Indexes()) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "L";
    out += std::to_string(index + 1);
  }
  out += "}";
  return out;
}

std::string LicenseSet::ToHex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = "0x";
  bool significant = false;
  for (uint32_t w = num_words_; w-- > 0;) {
    const uint64_t word = words()[w];
    for (int nibble = 15; nibble >= 0; --nibble) {
      const unsigned digit =
          static_cast<unsigned>((word >> (nibble * 4)) & 0xf);
      if (!significant && digit == 0) {
        continue;
      }
      significant = true;
      out += kDigits[digit];
    }
  }
  if (!significant) {
    out += '0';
  }
  return out;
}

bool LicenseSet::FromHex(std::string_view text, LicenseSet* out) {
  if (text.size() >= 2 && text[0] == '0' &&
      (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > kMaxLicenseWords * 16) {
    return false;
  }
  uint64_t words[kMaxLicenseWords] = {};
  // Nibble i from the right lands in word i/16 at shift (i%16)*4.
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[text.size() - 1 - i];
    unsigned digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<unsigned>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<unsigned>(c - 'A') + 10;
    } else {
      return false;
    }
    words[i / 16] |= uint64_t{digit} << ((i % 16) * 4);
  }
  *out = FromWords(words);
  return true;
}

namespace {

// dst = (dst - 1) mod 2^(64*num_words).
void BigDecrement(uint64_t* dst, uint32_t num_words) {
  for (uint32_t w = 0; w < num_words; ++w) {
    if (dst[w]-- != 0) {
      return;  // No borrow past a non-zero word.
    }
  }
}

// dst = (dst - sub) mod 2^(64*num_words).
void BigSubtract(uint64_t* dst, const uint64_t* sub, uint32_t num_words) {
  uint64_t borrow = 0;
  for (uint32_t w = 0; w < num_words; ++w) {
    const uint64_t before = dst[w];
    const uint64_t after = before - sub[w] - borrow;
    borrow = (before < sub[w] || (borrow != 0 && before == sub[w])) ? 1 : 0;
    dst[w] = after;
  }
}

bool AllZero(const uint64_t* words, uint32_t num_words) {
  for (uint32_t w = 0; w < num_words; ++w) {
    if (words[w] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

SubsetIterator::SubsetIterator(const LicenseSet& set)
    : num_words_(static_cast<uint32_t>(set.WordCount())),
      done_(set.Empty()) {
  GEOLIC_DCHECK(num_words_ <= static_cast<uint32_t>(kMaxLicenseWords));
  for (uint32_t w = 0; w < num_words_; ++w) {
    set_[w] = set.Word(static_cast<int>(w));
    subset_[w] = set_[w];
  }
}

void SubsetIterator::Next() {
  GEOLIC_DCHECK(!done_);
  if (AllZero(subset_, num_words_)) {
    done_ = true;
    return;
  }
  BigDecrement(subset_, num_words_);
  for (uint32_t w = 0; w < num_words_; ++w) {
    subset_[w] &= set_[w];
  }
  if (AllZero(subset_, num_words_)) {
    done_ = true;
  }
}

AscendingSubsetIterator::AscendingSubsetIterator(const LicenseSet& universe)
    : num_words_(static_cast<uint32_t>(universe.WordCount())),
      at_last_(universe.Empty()),
      done_(false) {
  GEOLIC_DCHECK(num_words_ <= static_cast<uint32_t>(kMaxLicenseWords));
  for (uint32_t w = 0; w < num_words_; ++w) {
    universe_[w] = universe.Word(static_cast<int>(w));
    subset_[w] = 0;
  }
}

void AscendingSubsetIterator::Next() {
  GEOLIC_DCHECK(!done_);
  if (at_last_) {
    done_ = true;
    return;
  }
  // next = (x − universe) & universe, the ascending-superset step.
  BigSubtract(subset_, universe_, num_words_);
  bool equals_universe = true;
  for (uint32_t w = 0; w < num_words_; ++w) {
    subset_[w] &= universe_[w];
    equals_universe = equals_universe && subset_[w] == universe_[w];
  }
  at_last_ = equals_universe;
}

}  // namespace geolic
