#include "util/cpu_dispatch.h"

#include <cstdlib>
#include <cstring>

namespace geolic {
namespace simd {
namespace {

bool ForceScalar() {
#ifdef GEOLIC_FORCE_SCALAR
  return true;
#else
  const char* env = std::getenv("GEOLIC_FORCE_SCALAR");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
#endif
}

Tier Detect() {
  if (ForceScalar()) {
    return Tier::kScalar;
  }
  if (TierAvailable(Tier::kAvx2)) {
    return Tier::kAvx2;
  }
  if (TierAvailable(Tier::kSse42)) {
    return Tier::kSse42;
  }
  return Tier::kScalar;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse42:
      return "sse4.2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool TierAvailable(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kSse42:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse4.2") != 0;
#else
      return false;
#endif
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

Tier ActiveTier() {
  static const Tier tier = Detect();
  return tier;
}

const Kernels& ActiveKernels() {
  static const Kernels& kernels = KernelsForTier(ActiveTier());
  return kernels;
}

const Kernels& KernelsForTier(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return ScalarKernels();
    case Tier::kSse42:
      return Sse42Kernels();
    case Tier::kAvx2:
      return Avx2Kernels();
  }
  return ScalarKernels();
}

}  // namespace simd
}  // namespace geolic
