#ifndef GEOLIC_UTIL_LICENSE_SET_H_
#define GEOLIC_UTIL_LICENSE_SET_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace geolic {

// Inline fast-path width: sets whose highest license index is below 64 are
// stored in one word with no allocation — the representation (and exact
// semantics) of the historical `LicenseMask = uint64_t`. Grouping keeps
// per-group sets this small on every catalog the paper evaluates.
inline constexpr int kMaxLicensesInline = 64;

// Hard cap on license indexes per (content, permission) domain. Dense
// catalogs can exceed 64 redistribution licenses; sets up to this bound
// spill to a heap-allocated word span.
inline constexpr int kMaxLicensesLarge = 1024;

// Words needed for a full-width set.
inline constexpr int kMaxLicenseWords = kMaxLicensesLarge / 64;

// A set of redistribution licenses: bit i set means the i-th redistribution
// license (0-based internally; the paper's L_D^{i+1}) is in the set.
//
// Value type with small-size optimization: one inline uint64_t while every
// member index is < 64 (no allocation, bit-identical semantics to the seed
// uint64_t mask), spilling to an owned word span for indexes up to
// kMaxLicensesLarge. The canonical form trims trailing zero words, so a set
// whose members all fit in one word is ALWAYS inline — equality, ordering
// and hashing never depend on how a set was built.
//
// Ordering (operator<) is numeric big-integer order, identical to uint64_t
// comparison for inline sets, so containers keyed by sets iterate in the
// same order the seed code did.
class LicenseSet {
 public:
  constexpr LicenseSet() noexcept : num_words_(1), inline_word_(0) {}

  LicenseSet(const LicenseSet& other) { CopyFrom(other); }
  LicenseSet(LicenseSet&& other) noexcept
      : num_words_(other.num_words_), inline_word_(other.inline_word_) {
    other.num_words_ = 1;
    other.inline_word_ = 0;
  }
  LicenseSet& operator=(const LicenseSet& other) {
    if (this != &other) {
      DestroyHeap();
      CopyFrom(other);
    }
    return *this;
  }
  LicenseSet& operator=(LicenseSet&& other) noexcept {
    if (this != &other) {
      DestroyHeap();
      num_words_ = other.num_words_;
      inline_word_ = other.inline_word_;
      other.num_words_ = 1;
      other.inline_word_ = 0;
    }
    return *this;
  }
  ~LicenseSet() { DestroyHeap(); }

  // ---- Factories -----------------------------------------------------------

  // The set whose bits are exactly `word` (indexes 0..63) — the seed
  // LicenseMask representation, and the fast path everywhere.
  static LicenseSet FromWord(uint64_t word) {
    LicenseSet set;
    set.inline_word_ = word;
    return set;
  }

  // Little-endian word span; trailing zero words are trimmed.
  static LicenseSet FromWords(std::span<const uint64_t> words);

  // Set with the single license `index`. Requires index in
  // [0, kMaxLicensesLarge).
  static LicenseSet Singleton(int index) {
    GEOLIC_DCHECK(index >= 0 && index < kMaxLicensesLarge);
    if (index < kMaxLicensesInline) {
      return FromWord(uint64_t{1} << index);
    }
    return SingletonSlow(index);
  }

  // The full set {0, .., n-1}. Requires n in [0, kMaxLicensesLarge].
  static LicenseSet Full(int n);

  // Builds a set from 0-based indexes. Duplicates collapse.
  static LicenseSet FromIndexes(const std::vector<int>& indexes);

  // ---- Observers -----------------------------------------------------------

  bool Empty() const { return num_words_ == 1 && inline_word_ == 0; }

  // Number of licenses in the set (popcount).
  int Size() const {
    if (num_words_ == 1) {
      return std::popcount(inline_word_);
    }
    int size = 0;
    for (uint32_t w = 0; w < num_words_; ++w) {
      size += std::popcount(heap_[w]);
    }
    return size;
  }

  // True iff license `index` is in the set. Indexes beyond the stored
  // width are simply absent (no precondition).
  bool Contains(int index) const {
    GEOLIC_DCHECK(index >= 0);
    const uint32_t w = static_cast<uint32_t>(index) / 64;
    if (w >= num_words_) {
      return false;
    }
    return (words()[w] >> (static_cast<uint32_t>(index) % 64)) & 1;
  }

  // True iff this ⊆ `superset`.
  bool IsSubsetOf(const LicenseSet& superset) const {
    if (num_words_ == 1 && superset.num_words_ == 1) {
      return (inline_word_ & ~superset.inline_word_) == 0;
    }
    if (num_words_ > superset.num_words_) {
      return false;  // Canonical form: the top word is non-zero.
    }
    const uint64_t* a = words();
    const uint64_t* b = superset.words();
    for (uint32_t w = 0; w < num_words_; ++w) {
      if ((a[w] & ~b[w]) != 0) {
        return false;
      }
    }
    return true;
  }

  // True iff the sets share a license.
  bool Intersects(const LicenseSet& other) const {
    const uint32_t common = num_words_ < other.num_words_ ? num_words_
                                                          : other.num_words_;
    const uint64_t* a = words();
    const uint64_t* b = other.words();
    for (uint32_t w = 0; w < common; ++w) {
      if ((a[w] & b[w]) != 0) {
        return true;
      }
    }
    return false;
  }

  // 0-based index of the lowest license. Requires a non-empty set.
  int Lowest() const {
    GEOLIC_DCHECK(!Empty());
    const uint64_t* a = words();
    for (uint32_t w = 0;; ++w) {
      if (a[w] != 0) {
        return static_cast<int>(w) * 64 + std::countr_zero(a[w]);
      }
    }
  }

  // 0-based index of the highest license. Requires a non-empty set.
  int Highest() const {
    GEOLIC_DCHECK(!Empty());
    // Canonical form: the top word of a spilled set is non-zero.
    const uint32_t top = num_words_ - 1;
    return static_cast<int>(top) * 64 + 63 - std::countl_zero(words()[top]);
  }

  // Number of stored words (>= 1). 1 ⇔ inline representation.
  int WordCount() const { return static_cast<int>(num_words_); }

  // Word `w` of the set, zero-extended beyond the stored width.
  uint64_t Word(int w) const {
    GEOLIC_DCHECK(w >= 0);
    return static_cast<uint32_t>(w) < num_words_
               ? words()[static_cast<uint32_t>(w)]
               : 0;
  }

  // The inline word. Requires every member index < 64 (WordCount() == 1);
  // used where sets index dense tables or meet fixed-width formats.
  uint64_t AsWord() const {
    GEOLIC_DCHECK(num_words_ == 1);
    return inline_word_;
  }

  std::span<const uint64_t> WordSpan() const { return {words(), num_words_}; }

  // Ascending list of license indexes (how the validation tree and the
  // paper's log table spell a set: {L1, L2, L4} with increasing indexes).
  std::vector<int> ToIndexes() const;

  // Renders the set as the paper writes it: "{L1, L2, L4}" with 1-based
  // license numbers. "{}" for the empty set.
  std::string ToString() const;

  // Lowercase hex with "0x" prefix and no leading zeros ("0x0" for the
  // empty set) — identical to the seed's printf("0x%" PRIx64) for inline
  // sets, arbitrary width beyond.
  std::string ToHex() const;

  // Parses ToHex output (case-insensitive, "0x" prefix optional).
  // Rejects sets wider than kMaxLicensesLarge.
  static bool FromHex(std::string_view text, LicenseSet* out);

  // ---- Mutators ------------------------------------------------------------

  void Clear() {
    DestroyHeap();
    num_words_ = 1;
    inline_word_ = 0;
  }

  // Adds license `index`. Requires index in [0, kMaxLicensesLarge).
  void Add(int index) {
    GEOLIC_DCHECK(index >= 0 && index < kMaxLicensesLarge);
    const uint32_t w = static_cast<uint32_t>(index) / 64;
    if (w < num_words_) {
      mutable_words()[w] |= uint64_t{1} << (static_cast<uint32_t>(index) % 64);
      return;
    }
    AddSlow(index);
  }

  // Removes license `index` if present.
  void Remove(int index) {
    GEOLIC_DCHECK(index >= 0);
    const uint32_t w = static_cast<uint32_t>(index) / 64;
    if (w >= num_words_) {
      return;
    }
    mutable_words()[w] &=
        ~(uint64_t{1} << (static_cast<uint32_t>(index) % 64));
    if (w == num_words_ - 1) {
      Normalize();
    }
  }

  // Returns a copy with position `index` deleted from the index space:
  // bit `index` is dropped and every higher bit shifts down by one. This is
  // the renumbering primitive for license removal (paper Algorithm 5 keeps
  // indexes dense, so revoking license r shifts r+1..N-1 down). O(Size()).
  LicenseSet WithIndexErased(int index) const;

  // Removes the lowest license. Requires a non-empty set (the classic
  // `mask &= mask - 1` step of index-iteration loops).
  void RemoveLowest() {
    GEOLIC_DCHECK(!Empty());
    uint64_t* a = mutable_words();
    for (uint32_t w = 0;; ++w) {
      if (a[w] != 0) {
        a[w] &= a[w] - 1;
        if (w == num_words_ - 1) {
          Normalize();
        }
        return;
      }
    }
  }

  LicenseSet& operator|=(const LicenseSet& other);
  LicenseSet& operator&=(const LicenseSet& other);
  // Set difference: this \ other.
  LicenseSet& operator-=(const LicenseSet& other);

  friend LicenseSet operator|(LicenseSet a, const LicenseSet& b) {
    a |= b;
    return a;
  }
  friend LicenseSet operator&(LicenseSet a, const LicenseSet& b) {
    a &= b;
    return a;
  }
  friend LicenseSet operator-(LicenseSet a, const LicenseSet& b) {
    a -= b;
    return a;
  }

  // ---- Comparisons ---------------------------------------------------------

  friend bool operator==(const LicenseSet& a, const LicenseSet& b) {
    if (a.num_words_ != b.num_words_) {
      return false;  // Canonical form.
    }
    if (a.num_words_ == 1) {
      return a.inline_word_ == b.inline_word_;
    }
    return std::memcmp(a.heap_, b.heap_, a.num_words_ * sizeof(uint64_t)) ==
           0;
  }
  friend bool operator!=(const LicenseSet& a, const LicenseSet& b) {
    return !(a == b);
  }
  // Numeric big-integer order (equals uint64_t order for inline sets).
  friend bool operator<(const LicenseSet& a, const LicenseSet& b) {
    if (a.num_words_ != b.num_words_) {
      return a.num_words_ < b.num_words_;  // Canonical: top word non-zero.
    }
    const uint64_t* wa = a.words();
    const uint64_t* wb = b.words();
    for (uint32_t w = a.num_words_; w-- > 0;) {
      if (wa[w] != wb[w]) {
        return wa[w] < wb[w];
      }
    }
    return false;
  }

  size_t Hash() const {
    // splitmix64-style per-word mix, order-dependent combine.
    uint64_t h = 0x9e3779b97f4a7c15ull ^ num_words_;
    const uint64_t* a = words();
    for (uint32_t w = 0; w < num_words_; ++w) {
      uint64_t x = a[w] + 0x9e3779b97f4a7c15ull + h;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      h = x ^ (x >> 31);
    }
    return static_cast<size_t>(h);
  }

  // ---- Index iteration -----------------------------------------------------

  // Forward iterator over the ascending license indexes of a set. The set
  // must outlive the iteration.
  class IndexIterator {
   public:
    using value_type = int;
    IndexIterator() : words_(nullptr), num_words_(0), word_(0), bits_(0) {}
    IndexIterator(const uint64_t* words, uint32_t num_words)
        : words_(words), num_words_(num_words), word_(0), bits_(words[0]) {
      SkipEmptyWords();
    }

    int operator*() const {
      return static_cast<int>(word_) * 64 + std::countr_zero(bits_);
    }
    IndexIterator& operator++() {
      bits_ &= bits_ - 1;
      SkipEmptyWords();
      return *this;
    }
    friend bool operator==(const IndexIterator& a, const IndexIterator& b) {
      // Only end-comparison is meaningful; end ⇔ exhausted.
      return a.Exhausted() == b.Exhausted();
    }
    friend bool operator!=(const IndexIterator& a, const IndexIterator& b) {
      return !(a == b);
    }

   private:
    bool Exhausted() const { return bits_ == 0 && word_ + 1 >= num_words_; }
    void SkipEmptyWords() {
      while (bits_ == 0 && word_ + 1 < num_words_) {
        bits_ = words_[++word_];
      }
    }
    const uint64_t* words_;
    uint32_t num_words_;
    uint32_t word_;
    uint64_t bits_;
  };

  struct IndexRange {
    IndexIterator begin_it;
    IndexIterator begin() const { return begin_it; }
    IndexIterator end() const { return IndexIterator(); }
  };

  // `for (int index : set.Indexes()) { ... }` — ascending.
  IndexRange Indexes() const {
    return IndexRange{IndexIterator(words(), num_words_)};
  }

 private:
  static LicenseSet SingletonSlow(int index);
  void AddSlow(int index);

  // All heap word spans go through these: a thread-local free-list pool
  // (bucketed by exact word count) recycles spans so steady-state request
  // traffic on wide catalogs performs no heap allocation. Compiled down to
  // plain new[]/delete[] when GEOLIC_LICENSE_SET_NO_POOL is defined
  // (sanitizer builds — the pool would mask use-after-free).
  static uint64_t* AllocWords(uint32_t num_words);
  static void FreeWords(uint64_t* span, uint32_t num_words);

  const uint64_t* words() const {
    return num_words_ == 1 ? &inline_word_ : heap_;
  }
  uint64_t* mutable_words() { return num_words_ == 1 ? &inline_word_ : heap_; }

  void DestroyHeap() {
    if (num_words_ > 1) {
      FreeWords(heap_, num_words_);
    }
  }
  void CopyFrom(const LicenseSet& other);
  // Restores the canonical form after a mutation that may have zeroed the
  // top word(s): trims, collapsing to inline when one word remains.
  void Normalize();

  uint32_t num_words_;  // >= 1; == 1 ⇔ inline representation.
  union {
    uint64_t inline_word_;  // num_words_ == 1.
    uint64_t* heap_;        // num_words_ > 1; owned, [num_words_] words.
  };
};

// Streams as the paper's {L1, L2, ...} notation; also what gtest prints
// on assertion failures.
inline std::ostream& operator<<(std::ostream& os, const LicenseSet& set) {
  return os << set.ToString();
}

// Iterates every non-empty subset of `set` in the standard descending
// submask order (big-integer `subset = (subset − 1) & set`):
//
//   for (SubsetIterator it(set); !it.Done(); it.Next()) { use it.subset(); }
//
// Enumerates 2^|set| − 1 subsets (the null set is skipped, matching the
// summation limits of validation equation 1). Identical order to the seed
// uint64_t iterator for inline sets.
class SubsetIterator {
 public:
  explicit SubsetIterator(const LicenseSet& set);

  bool Done() const { return done_; }
  LicenseSet subset() const {
    return LicenseSet::FromWords({subset_, num_words_});
  }

  void Next();

 private:
  uint64_t set_[kMaxLicenseWords];
  uint64_t subset_[kMaxLicenseWords];
  uint32_t num_words_;
  bool done_;
};

// Iterates every subset of `universe` — the empty set included — in
// ascending big-integer order (`x = (x − universe) & universe`): the
// enumeration the online equation scan and the reference model walk
// extensions with. Enumerates 2^|universe| subsets.
class AscendingSubsetIterator {
 public:
  explicit AscendingSubsetIterator(const LicenseSet& universe);

  bool Done() const { return done_; }
  LicenseSet subset() const {
    return LicenseSet::FromWords({subset_, num_words_});
  }
  // True on the final subset (== universe); lets callers that already hold
  // the universe skip materializing it again.
  bool AtLast() const { return at_last_; }

  void Next();

 private:
  uint64_t universe_[kMaxLicenseWords];
  uint64_t subset_[kMaxLicenseWords];
  uint32_t num_words_;
  bool at_last_;
  bool done_;
};

}  // namespace geolic

template <>
struct std::hash<geolic::LicenseSet> {
  size_t operator()(const geolic::LicenseSet& set) const noexcept {
    return set.Hash();
  }
};

#endif  // GEOLIC_UTIL_LICENSE_SET_H_
