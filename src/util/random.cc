#include "util/random.h"

namespace geolic {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotateLeft(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotateLeft(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotateLeft(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GEOLIC_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == UINT64_MAX) {
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling for an unbiased draw in [0, span].
  const uint64_t bound = span + 1;
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t draw = Next();
  while (draw >= limit) {
    draw = Next();
  }
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + draw % bound);
}

double Rng::UniformDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

size_t Rng::UniformIndex(size_t n) {
  GEOLIC_CHECK(n > 0);
  return static_cast<size_t>(
      UniformInt(0, static_cast<int64_t>(n) - 1));
}

}  // namespace geolic
