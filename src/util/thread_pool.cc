#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace geolic {

ThreadPool::ThreadPool(int num_threads) {
  GEOLIC_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    GEOLIC_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

int ThreadPool::DefaultThreadCount() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace geolic
