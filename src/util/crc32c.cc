#include "util/crc32c.h"

#include <array>

namespace geolic {
namespace {

constexpr uint32_t kPolynomial = 0x82F63B78u;  // Reflected 0x1EDC6F41.

// Slicing-by-4 lookup tables: table[0] is the classic byte-at-a-time table,
// tables 1..3 shift it so four input bytes fold into the CRC per iteration.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPolynomial : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const Tables& tables = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFF] ^ tables.t[2][(crc >> 8) & 0xFF] ^
          tables.t[1][(crc >> 16) & 0xFF] ^ tables.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p) & 0xFF];
    ++p;
    --size;
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace geolic
