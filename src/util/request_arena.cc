#include "util/request_arena.h"

#include <algorithm>

#include "util/check.h"

namespace geolic {
namespace {

inline size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

RequestArena::RequestArena(size_t first_block_bytes) {
  const size_t size = std::max<size_t>(first_block_bytes, 64);
  blocks_.push_back(Block{std::make_unique<char[]>(size), size});
  capacity_bytes_ = size;
}

void* RequestArena::Allocate(size_t bytes, size_t align) {
  GEOLIC_DCHECK(align != 0 && (align & (align - 1)) == 0);
  Block& block = blocks_[mark_.block];
  const size_t offset = AlignUp(mark_.offset, align);
  if (offset + bytes <= block.size) {
    mark_.offset = offset + bytes;
    return block.data.get() + offset;
  }
  return AllocateSlow(bytes, align);
}

void* RequestArena::AllocateSlow(size_t bytes, size_t align) {
  // Block starts are operator-new[] storage, aligned to max_align_t —
  // enough for every type the hot path allocates, so offset 0 satisfies
  // any supported `align`.
  (void)align;
  // Move to the next retained block that fits; allocate a doubled block
  // only when none does.
  while (mark_.block + 1 < blocks_.size()) {
    ++mark_.block;
    mark_.offset = 0;
    if (bytes <= blocks_[mark_.block].size) {
      mark_.offset = bytes;
      return blocks_[mark_.block].data.get();
    }
  }
  const size_t last_size = blocks_.back().size;
  const size_t size = std::max(bytes, last_size * 2);
  blocks_.push_back(Block{std::make_unique<char[]>(size), size});
  capacity_bytes_ += size;
  mark_.block = blocks_.size() - 1;
  mark_.offset = bytes;
  return blocks_.back().data.get();
}

RequestArena& ThreadLocalRequestArena() {
  thread_local RequestArena arena;
  return arena;
}

}  // namespace geolic
