#ifndef GEOLIC_UTIL_CHECK_H_
#define GEOLIC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace geolic::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "GEOLIC_CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::abort();
}

}  // namespace geolic::internal_check

// Aborts on programmer error (invariant violations that indicate a bug in
// the calling code, never data-dependent failures — those go through
// Status). Active in all build modes.
#define GEOLIC_CHECK(condition)                                            \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::geolic::internal_check::CheckFailed(__FILE__, __LINE__,            \
                                            #condition);                   \
    }                                                                      \
  } while (false)

// Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define GEOLIC_DCHECK(condition) \
  do {                           \
  } while (false)
#else
#define GEOLIC_DCHECK(condition) GEOLIC_CHECK(condition)
#endif

#endif  // GEOLIC_UTIL_CHECK_H_
