#ifndef GEOLIC_UTIL_JSON_WRITER_H_
#define GEOLIC_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace geolic {

// Minimal streaming JSON writer for report/stat export — no DOM, no
// parsing, just correctly escaped output. Usage:
//
//   JsonWriter json;
//   json.BeginObject();
//   json.Key("violations");
//   json.BeginArray();
//   ...
//   json.EndArray();
//   json.EndObject();
//   std::string out = std::move(json).Take();
//
// Structural misuse (e.g. a value with no pending key inside an object)
// trips a GEOLIC_CHECK.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Emits an object key; the next value belongs to it.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Convenience: Key + value.
  void KeyValue(std::string_view name, std::string_view value) {
    Key(name);
    String(value);
  }
  // Without this overload a literal value would pick the bool overload
  // (const char* → bool is a standard conversion and outranks the
  // user-defined conversion to string_view).
  void KeyValue(std::string_view name, const char* value) {
    Key(name);
    String(value);
  }
  void KeyValue(std::string_view name, int64_t value) {
    Key(name);
    Int(value);
  }
  void KeyValue(std::string_view name, uint64_t value) {
    Key(name);
    UInt(value);
  }
  void KeyValue(std::string_view name, double value) {
    Key(name);
    Double(value);
  }
  void KeyValue(std::string_view name, bool value) {
    Key(name);
    Bool(value);
  }

  // Finishes and returns the document. All containers must be closed.
  std::string Take() &&;

  // Escapes `text` as JSON string contents (no surrounding quotes).
  static std::string Escape(std::string_view text);

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace geolic

#endif  // GEOLIC_UTIL_JSON_WRITER_H_
