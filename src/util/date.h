#ifndef GEOLIC_UTIL_DATE_H_
#define GEOLIC_UTIL_DATE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "util/status.h"

namespace geolic {

// Proleptic-Gregorian civil date. Licenses express validity periods as date
// ranges ("T=[2009-03-10, 2009-03-20]"); internally a date is a day number
// (days since 1970-01-01, negative before), so date ranges become plain
// int64 intervals that plug into the geometry layer.
class Date {
 public:
  // Default-constructs the epoch (1970-01-01).
  Date() : day_number_(0) {}

  // Builds a date from civil components. Returns INVALID_ARGUMENT for
  // out-of-range components (month not in 1..12, day not valid for the
  // month/year, year outside ±9999).
  static Result<Date> FromCivil(int year, int month, int day);

  // Builds a date from a day number (days since 1970-01-01).
  static Date FromDayNumber(int64_t day_number);

  // Parses "YYYY-MM-DD" or the paper's "DD/MM/YY" style ("15/03/09", years
  // 00..68 map to 2000..2068, 69..99 to 1969..1999).
  static Result<Date> Parse(std::string_view text);

  int64_t day_number() const { return day_number_; }

  int year() const;
  int month() const;   // 1..12
  int day() const;     // 1..31

  // ISO "YYYY-MM-DD".
  std::string ToString() const;

  // Date arithmetic in whole days.
  Date AddDays(int64_t days) const { return FromDayNumber(day_number_ + days); }
  int64_t DaysUntil(Date other) const {
    return other.day_number_ - day_number_;
  }

  friend bool operator==(Date a, Date b) {
    return a.day_number_ == b.day_number_;
  }
  friend auto operator<=>(Date a, Date b) {
    return a.day_number_ <=> b.day_number_;
  }

  // True iff `year` is a Gregorian leap year.
  static bool IsLeapYear(int year);
  // Days in `month` (1..12) of `year`; 0 for invalid months.
  static int DaysInMonth(int year, int month);

 private:
  explicit Date(int64_t day_number) : day_number_(day_number) {}

  int64_t day_number_;
};

std::ostream& operator<<(std::ostream& os, Date date);

}  // namespace geolic

#endif  // GEOLIC_UTIL_DATE_H_
