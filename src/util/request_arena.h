#ifndef GEOLIC_UTIL_REQUEST_ARENA_H_
#define GEOLIC_UTIL_REQUEST_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace geolic {

// Monotonic bump allocator for per-request scratch on the admission hot
// path. Blocks are retained across Reset(), so after the first request has
// warmed a thread's arena to its high-water mark, steady-state requests
// perform zero heap allocations: every AllocateArray is a pointer bump.
//
// Lifetime rules (see docs/DESIGN.md):
//  * An arena is single-threaded; share via ThreadLocalRequestArena().
//  * Allocations are valid until the enclosing ArenaScope rewinds (or
//    Reset() is called) — never hand arena memory to anything that
//    outlives the request.
//  * Only trivially-destructible types: nothing runs destructors.
class RequestArena {
 public:
  explicit RequestArena(size_t first_block_bytes = 4096);

  RequestArena(const RequestArena&) = delete;
  RequestArena& operator=(const RequestArena&) = delete;

  // Uninitialized storage for `count` objects of T, aligned for T.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  // Raw aligned storage. `align` must be a power of two.
  void* Allocate(size_t bytes, size_t align);

  // Rewinds everything; keeps every block for reuse.
  void Reset() { mark_ = Mark{0, 0}; }

  // Watermark for nested scopes (ArenaScope).
  struct Mark {
    size_t block;
    size_t offset;
  };
  Mark mark() const { return mark_; }
  void Rewind(Mark mark) { mark_ = mark; }

  // Observers for the allocation tests.
  size_t block_count() const { return blocks_.size(); }
  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  // Grows to a block that fits `bytes` and retries the bump.
  void* AllocateSlow(size_t bytes, size_t align);

  std::vector<Block> blocks_;
  Mark mark_{0, 0};
  size_t capacity_bytes_ = 0;
};

// The calling thread's arena (created on first use, grows to the thread's
// request high-water mark, lives until thread exit).
RequestArena& ThreadLocalRequestArena();

// RAII request scope: captures the arena watermark and rewinds on exit, so
// nested users (a batch admission calling per-request helpers) stack.
class ArenaScope {
 public:
  explicit ArenaScope(RequestArena* arena)
      : arena_(arena), mark_(arena->mark()) {}
  ~ArenaScope() { arena_->Rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  RequestArena* arena_;
  RequestArena::Mark mark_;
};

}  // namespace geolic

#endif  // GEOLIC_UTIL_REQUEST_ARENA_H_
