#ifndef GEOLIC_UTIL_STR_UTIL_H_
#define GEOLIC_UTIL_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace geolic {

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Splits on `delimiter`, trimming whitespace from each piece. Empty pieces
// are kept ("a,,b" → {"a", "", "b"}); an empty input yields {}.
std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           char delimiter);

// Joins pieces with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

// Parses a decimal (optionally signed) int64. Rejects trailing garbage,
// empty input, and overflow.
Result<int64_t> ParseInt64(std::string_view text);

// True iff `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// ASCII lower-casing (license keywords are matched case-insensitively).
std::string AsciiToLower(std::string_view text);

}  // namespace geolic

#endif  // GEOLIC_UTIL_STR_UTIL_H_
