#ifndef GEOLIC_CORE_GREEDY_VALIDATOR_H_
#define GEOLIC_CORE_GREEDY_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "core/instance_validator.h"
#include "licensing/license_catalog.h"
#include "util/random.h"
#include "util/status.h"

namespace geolic {

// How the greedy validator picks one redistribution license out of the
// satisfying set S to charge for an issuance.
enum class GreedyPolicy : int32_t {
  kFirst = 0,             // Lowest license index in S.
  kRandom = 1,            // Uniform among S (the paper's "randomly picks").
  kLargestRemaining = 2,  // Most remaining budget (best-effort greedy).
  kSmallestRemaining = 3, // Least remaining budget that still fits.
};

const char* GreedyPolicyName(GreedyPolicy policy);

// Decision of one greedy issuance attempt.
struct GreedyDecision {
  bool instance_valid = false;
  bool accepted = false;
  LicenseSet satisfying_set;
  // License charged on acceptance (-1 otherwise).
  int charged_license = -1;
};

// The naive validation regime the paper's Example 1 argues against: when a
// new license satisfies several redistribution licenses, pick ONE of them
// and deduct the full count from its budget. Correct (never oversells) but
// lossy — a bad pick strands budget and later issuances are wrongly
// rejected, even though an assignment satisfying everyone exists. The
// equation-based OnlineValidator accepts a superset of any greedy
// validator's stream; bench/ablation_greedy quantifies the utilisation
// gap per policy.
class GreedyOnlineValidator {
 public:
  // `licenses` must be non-empty and outlive the validator. `seed` drives
  // the kRandom policy.
  static Result<GreedyOnlineValidator> Create(const LicenseCatalog* licenses,
                                              GreedyPolicy policy,
                                              uint64_t seed = 1);

  // Validates and, on acceptance, charges one license of the satisfying
  // set per `policy`.
  Result<GreedyDecision> TryIssue(const License& issued);

  // Remaining budget per license index.
  const std::vector<int64_t>& remaining() const { return remaining_; }
  int64_t accepted_counts() const { return accepted_counts_; }

 private:
  GreedyOnlineValidator(const LicenseCatalog* licenses, GreedyPolicy policy,
                        uint64_t seed);

  const LicenseCatalog* licenses_;
  GreedyPolicy policy_;
  Rng rng_;
  LinearInstanceValidator instance_validator_;
  std::vector<int64_t> remaining_;
  int64_t accepted_counts_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_CORE_GREEDY_VALIDATOR_H_
