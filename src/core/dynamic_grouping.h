#ifndef GEOLIC_CORE_DYNAMIC_GROUPING_H_
#define GEOLIC_CORE_DYNAMIC_GROUPING_H_

#include <vector>

#include "geometry/hyper_rect.h"
#include "graph/connected_components.h"
#include "util/license_set.h"
#include "util/status.h"

namespace geolic {

// Incrementally maintained license grouping. The paper's Figure 6
// discussion: when a distributor acquires redistribution license L_D^{N+1},
// the group count stays (connects to one group), grows (connects to none),
// or shrinks (bridges several). Rebuilding the overlap graph and re-running
// DFS on every acquisition costs O(N²) overlap tests; this class maintains
// the components under insertion with union-find, paying only O(N) overlap
// tests per new license. Ablated against full recomputation in
// bench/ablation_dynamic_grouping.
//
// Removal (revoke / expiry) renumbers the survivors densely — license
// `index` disappears and every higher index shifts down by one, matching
// the paper's Algorithm 5 index convention. The overlap edges discovered at
// insertion time are cached per license, so a removal rebuilds the
// union-find from the cached adjacency masks without re-running any
// geometry tests.
class DynamicGrouping {
 public:
  // Dimensionality is fixed by the first license added.
  DynamicGrouping() = default;

  // Dimensionality is fixed up front; every AddLicense — including the
  // first — is validated against it.
  explicit DynamicGrouping(int expected_dimensions);

  // Registers the next license's hyper-rectangle; returns its index.
  // The number of overlap tests performed equals the current size.
  Result<int> AddLicense(const HyperRect& rect);

  // Removes license `index`; indexes above it shift down by one. No
  // geometry retests: components are rebuilt from cached adjacency.
  Status RemoveLicense(int index);

  int size() const { return static_cast<int>(rects_.size()); }

  // Current number of groups.
  int group_count() const { return groups_; }

  // Mask of the group containing license `index`.
  LicenseSet GroupMaskOf(int index) const;

  // All groups, ordered by smallest member — identical to what
  // FindComponentsDfs would produce on the full overlap graph.
  ComponentSet Components() const;

  // Total group merges performed so far (a bridge license causes ≥ 1).
  int merges() const { return merges_; }

  const std::vector<HyperRect>& rects() const { return rects_; }

 private:
  // -1 until fixed by the constructor argument or the first license.
  int expected_dimensions_ = -1;
  std::vector<HyperRect> rects_;
  // Overlap neighbours of each license (no self bit), maintained
  // symmetrically by AddLicense and compacted by RemoveLicense.
  std::vector<LicenseSet> neighbors_;
  // Sized to `size()` — grown one element per AddLicense, rebuilt from
  // `neighbors_` on removal.
  UnionFind union_find_;
  int groups_ = 0;
  int merges_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_CORE_DYNAMIC_GROUPING_H_
