#ifndef GEOLIC_CORE_DYNAMIC_GROUPING_H_
#define GEOLIC_CORE_DYNAMIC_GROUPING_H_

#include <vector>

#include "geometry/hyper_rect.h"
#include "graph/connected_components.h"
#include "util/license_set.h"
#include "util/status.h"

namespace geolic {

// Incrementally maintained license grouping. The paper's Figure 6
// discussion: when a distributor acquires redistribution license L_D^{N+1},
// the group count stays (connects to one group), grows (connects to none),
// or shrinks (bridges several). Rebuilding the overlap graph and re-running
// DFS on every acquisition costs O(N²) overlap tests; this class maintains
// the components under insertion with union-find, paying only O(N) overlap
// tests per new license. Ablated against full recomputation in
// bench/ablation_dynamic_grouping.
//
// Licenses are append-only (licenses are acquired, not returned, within a
// validation period; a period reset starts a fresh grouping).
class DynamicGrouping {
 public:
  DynamicGrouping() : union_find_(kMaxLicensesLarge) {}

  // Registers the next license's hyper-rectangle; returns its index.
  // The number of overlap tests performed equals the current size.
  Result<int> AddLicense(const HyperRect& rect);

  int size() const { return static_cast<int>(rects_.size()); }

  // Current number of groups.
  int group_count() const { return groups_; }

  // Mask of the group containing license `index`.
  LicenseSet GroupMaskOf(int index) const;

  // All groups, ordered by smallest member — identical to what
  // FindComponentsDfs would produce on the full overlap graph.
  ComponentSet Components() const;

  // Total group merges performed so far (a bridge license causes ≥ 1).
  int merges() const { return merges_; }

  const std::vector<HyperRect>& rects() const { return rects_; }

 private:
  std::vector<HyperRect> rects_;
  UnionFind union_find_;
  int groups_ = 0;
  int merges_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_CORE_DYNAMIC_GROUPING_H_
