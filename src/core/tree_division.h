#ifndef GEOLIC_CORE_TREE_DIVISION_H_
#define GEOLIC_CORE_TREE_DIVISION_H_

#include <vector>

#include "core/grouping.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// The g validation trees produced by dividing one tree along license
// groups, with their indexes rewritten to local positions (paper
// Algorithms 4 and 5). trees[k] uses indexes 0..N_k−1; aggregates[k] is
// A_k in the same local order.
struct DividedTrees {
  std::vector<ValidationTree> trees;
  std::vector<std::vector<int64_t>> aggregates;
};

// Paper Algorithm 4 (Separation): re-links each child of `tree`'s root under
// the root of its group's new tree. By Corollary 1.1 no branch mixes groups,
// so moving root children moves whole branches; no node is copied or
// created (which is why the paper's figure 10 shows identical storage).
// `tree` is consumed. Fails with INTERNAL if a branch does mix groups
// (possible only if the log disagrees with the grouping, i.e. a log set
// spans non-overlapping licenses — excluded by Theorem 1 for honest logs).
//
// The trees returned here still carry original license indexes; call
// ReindexTree / DivideAndReindex to apply Algorithm 5.
Result<std::vector<ValidationTree>> DivideValidationTree(
    ValidationTree tree, const LicenseGrouping& grouping);

// Paper Algorithm 5 (Modification): rewrites every node index of group
// `group`'s tree from original license index to the license's position
// within the group. Fails if a node's license is not in the group.
Status ReindexTree(const LicenseGrouping& grouping, int group,
                   ValidationTree* tree);

// Full division pipeline: Algorithm 4, then Algorithm 5 per tree, plus the
// per-group aggregate arrays A_k derived from `aggregates` (the full array
// A). After this, each (trees[k], aggregates[k]) pair plugs directly into
// ValidateExhaustive — exactly how the paper reuses Algorithm 2 per group.
Result<DividedTrees> DivideAndReindex(ValidationTree tree,
                                      const LicenseGrouping& grouping,
                                      const std::vector<int64_t>& aggregates);

}  // namespace geolic

#endif  // GEOLIC_CORE_TREE_DIVISION_H_
