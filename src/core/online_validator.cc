#include "core/online_validator.h"

#include <utility>

#include "util/stopwatch.h"

namespace geolic {

OnlineValidator::OnlineValidator(const LicenseCatalog* licenses,
                                 OnlineValidatorOptions options,
                                 LicenseGrouping grouping)
    : licenses_(licenses),
      options_(options),
      grouping_(std::move(grouping)),
      instance_validator_(licenses) {}

Result<OnlineValidator> OnlineValidator::Create(
    const LicenseCatalog* licenses, const OnlineValidatorOptions& options) {
  if (licenses == nullptr || licenses->empty()) {
    return Status::InvalidArgument(
        "online validator needs at least one redistribution license");
  }
  return OnlineValidator(licenses, options,
                         LicenseGrouping::FromLicenses(*licenses));
}

Result<OnlineValidator> OnlineValidator::CreateWithHistory(
    const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
    const LogStore& history) {
  GEOLIC_ASSIGN_OR_RETURN(OnlineValidator validator,
                          Create(licenses, options));
  for (const LogRecord& record : history.records()) {
    if (!record.set.IsSubsetOf(licenses->AllMask())) {
      return Status::InvalidArgument(
          "history record references unknown license indexes");
    }
    GEOLIC_RETURN_IF_ERROR(validator.tree_.Insert(record.set, record.count));
    GEOLIC_RETURN_IF_ERROR(validator.log_.Append(record));
    ++validator.issue_sequence_;
  }
  return validator;
}


Result<OnlineDecision> OnlineValidator::TryIssue(const License& issued) {
  Stopwatch timer;
  if (issued.aggregate_count() <= 0) {
    return Status::InvalidArgument(
        "issued license must carry a positive count");
  }
  OnlineDecision decision;
  RequestTrace trace(options_.tracer);
  {
    ScopedStageTimer stage(&trace, TraceStage::kInstanceCheck);
    decision.satisfying_set = instance_validator_.SatisfyingSet(issued);
  }
  if (decision.satisfying_set.Empty()) {
    if (options_.metrics != nullptr) {
      options_.metrics->RecordRejectedInstance(timer.ElapsedNanos());
    }
    trace.Finish(TraceOutcome::kRejectedInstance);
    return decision;  // Fails instance-based validation; nothing recorded.
  }
  decision.instance_valid = true;

  const LicenseSet s = decision.satisfying_set;
  const int64_t count = issued.aggregate_count();

  // Scope of affected equations: the whole set S^N, or S's overlap group.
  LicenseSet scope = licenses_->AllMask();
  if (options_.use_grouping) {
    const int group = grouping_.GroupOf((s).Lowest());
    scope = grouping_.GroupMask(group);
    GEOLIC_DCHECK((s).IsSubsetOf(scope));
  }

  // Check every equation T with S ⊆ T ⊆ scope: its LHS gains `count`.
  decision.aggregate_valid = true;
  {
    ScopedStageTimer stage(&trace, TraceStage::kEquationScan);
    // Enumerate every T with S ⊆ T ⊆ scope by extending S with each subset
    // of scope − S, ascending.
    for (AscendingSubsetIterator it(scope - s); !it.Done(); it.Next()) {
      const LicenseSet t = s | it.subset();
      const int64_t cv = tree_.SumSubsets(t) + count;
      const int64_t av = licenses_->AggregateSum(t);
      ++decision.equations_checked;
      if (cv > av) {
        decision.aggregate_valid = false;
        decision.limiting = EquationResult{t, cv, av};
        break;
      }
    }
  }
  if (!decision.aggregate_valid) {
    if (options_.metrics != nullptr) {
      options_.metrics->RecordRejectedAggregate(decision.equations_checked,
                                                timer.ElapsedNanos());
    }
    trace.Finish(TraceOutcome::kRejectedAggregate);
    return decision;
  }

  // Accepted: persist in the running tree and log.
  GEOLIC_RETURN_IF_ERROR(tree_.Insert(s, count));
  LogRecord record;
  record.issued_license_id =
      issued.id().empty() ? "LU" + std::to_string(++issue_sequence_)
                          : issued.id();
  record.set = s;
  record.count = count;
  GEOLIC_RETURN_IF_ERROR(log_.Append(std::move(record)));
  if (options_.metrics != nullptr) {
    options_.metrics->RecordAccepted(decision.equations_checked,
                                     timer.ElapsedNanos());
  }
  trace.Finish(TraceOutcome::kAccepted);
  return decision;
}

}  // namespace geolic
