#include "core/online_validator.h"

#include <utility>

#include "util/stopwatch.h"

namespace geolic {

OnlineValidator::OnlineValidator(const LicenseSet* licenses,
                                 OnlineValidatorOptions options,
                                 LicenseGrouping grouping)
    : licenses_(licenses),
      options_(options),
      grouping_(std::move(grouping)),
      instance_validator_(licenses) {}

Result<OnlineValidator> OnlineValidator::Create(
    const LicenseSet* licenses, const OnlineValidatorOptions& options) {
  if (licenses == nullptr || licenses->empty()) {
    return Status::InvalidArgument(
        "online validator needs at least one redistribution license");
  }
  return OnlineValidator(licenses, options,
                         LicenseGrouping::FromLicenses(*licenses));
}

Result<OnlineValidator> OnlineValidator::CreateWithHistory(
    const LicenseSet* licenses, const OnlineValidatorOptions& options,
    const LogStore& history) {
  GEOLIC_ASSIGN_OR_RETURN(OnlineValidator validator,
                          Create(licenses, options));
  for (const LogRecord& record : history.records()) {
    if (!IsSubsetOf(record.set, licenses->AllMask())) {
      return Status::InvalidArgument(
          "history record references unknown license indexes");
    }
    GEOLIC_RETURN_IF_ERROR(validator.tree_.Insert(record.set, record.count));
    GEOLIC_RETURN_IF_ERROR(validator.log_.Append(record));
    ++validator.issue_sequence_;
  }
  return validator;
}

Result<OnlineValidator> OnlineValidator::Create(const LicenseSet* licenses,
                                                bool use_grouping) {
  OnlineValidatorOptions options;
  options.use_grouping = use_grouping;
  return Create(licenses, options);
}

Result<OnlineValidator> OnlineValidator::CreateWithHistory(
    const LicenseSet* licenses, bool use_grouping, const LogStore& history) {
  OnlineValidatorOptions options;
  options.use_grouping = use_grouping;
  return CreateWithHistory(licenses, options, history);
}

Result<OnlineDecision> OnlineValidator::TryIssue(const License& issued) {
  Stopwatch timer;
  if (issued.aggregate_count() <= 0) {
    return Status::InvalidArgument(
        "issued license must carry a positive count");
  }
  OnlineDecision decision;
  RequestTrace trace(options_.tracer);
  {
    ScopedStageTimer stage(&trace, TraceStage::kInstanceCheck);
    decision.satisfying_set = instance_validator_.SatisfyingSet(issued);
  }
  if (decision.satisfying_set == 0) {
    if (options_.metrics != nullptr) {
      options_.metrics->RecordRejectedInstance(timer.ElapsedNanos());
    }
    trace.Finish(TraceOutcome::kRejectedInstance);
    return decision;  // Fails instance-based validation; nothing recorded.
  }
  decision.instance_valid = true;

  const LicenseMask s = decision.satisfying_set;
  const int64_t count = issued.aggregate_count();

  // Scope of affected equations: the whole set S^N, or S's overlap group.
  LicenseMask scope = licenses_->AllMask();
  if (options_.use_grouping) {
    const int group = grouping_.GroupOf(LowestLicense(s));
    scope = grouping_.GroupMask(group);
    GEOLIC_DCHECK(IsSubsetOf(s, scope));
  }

  // Check every equation T with S ⊆ T ⊆ scope: its LHS gains `count`.
  decision.aggregate_valid = true;
  {
    ScopedStageTimer stage(&trace, TraceStage::kEquationScan);
    const LicenseMask extension = scope & ~s;
    LicenseMask x = 0;
    while (true) {
      const LicenseMask t = s | x;
      const int64_t cv = tree_.SumSubsets(t) + count;
      const int64_t av = licenses_->AggregateSum(t);
      ++decision.equations_checked;
      if (cv > av) {
        decision.aggregate_valid = false;
        decision.limiting = EquationResult{t, cv, av};
        break;
      }
      if (x == extension) {
        break;
      }
      // Enumerate subsets of `extension` ascending: next = (x − ext) & ext.
      x = (x - extension) & extension;
    }
  }
  if (!decision.aggregate_valid) {
    if (options_.metrics != nullptr) {
      options_.metrics->RecordRejectedAggregate(decision.equations_checked,
                                                timer.ElapsedNanos());
    }
    trace.Finish(TraceOutcome::kRejectedAggregate);
    return decision;
  }

  // Accepted: persist in the running tree and log.
  GEOLIC_RETURN_IF_ERROR(tree_.Insert(s, count));
  LogRecord record;
  record.issued_license_id =
      issued.id().empty() ? "LU" + std::to_string(++issue_sequence_)
                          : issued.id();
  record.set = s;
  record.count = count;
  GEOLIC_RETURN_IF_ERROR(log_.Append(std::move(record)));
  if (options_.metrics != nullptr) {
    options_.metrics->RecordAccepted(decision.equations_checked,
                                     timer.ElapsedNanos());
  }
  trace.Finish(TraceOutcome::kAccepted);
  return decision;
}

}  // namespace geolic
