#include "core/tree_division.h"

#include <utility>

namespace geolic {
namespace {

// Verifies the whole branch under `node` stays inside `group_mask`
// (Corollary 1.1 guarantees this for logs consistent with the geometry).
bool BranchWithin(const ValidationTreeNode& node, LicenseSet group_mask) {
  for (const auto& child : node.children) {
    if (!(group_mask).Contains(child->index) ||
        !BranchWithin(*child, group_mask)) {
      return false;
    }
  }
  return true;
}

Status ReindexNode(const LicenseGrouping& grouping, int group,
                   ValidationTreeNode* node) {
  for (auto& child : node->children) {
    if (child->index < 0 || child->index >= grouping.num_licenses() ||
        grouping.GroupOf(child->index) != group) {
      return Status::Internal(
          "node index " + std::to_string(child->index + 1) +
          " does not belong to group " + std::to_string(group));
    }
    child->index = grouping.PositionOf(child->index);
    GEOLIC_RETURN_IF_ERROR(ReindexNode(grouping, group, child.get()));
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<ValidationTree>> DivideValidationTree(
    ValidationTree tree, const LicenseGrouping& grouping) {
  const int g = grouping.group_count();
  std::vector<ValidationTree> parts(static_cast<size_t>(g));

  ValidationTreeNode* root = tree.mutable_root();
  for (auto& child : root->children) {
    const int index = child->index;
    if (index < 0 || index >= grouping.num_licenses()) {
      return Status::Internal("tree contains license index " +
                              std::to_string(index + 1) +
                              " outside the grouped license set");
    }
    const int group = grouping.GroupOf(index);
    if (!BranchWithin(*child, grouping.GroupMask(group))) {
      return Status::Internal(
          "log branch under L" + std::to_string(index + 1) +
          " spans licenses from multiple non-overlapping groups");
    }
    // Algorithm 4: "link T' as child node of root_j". Root children arrive
    // in ascending index order, and positions within a group ascend with
    // original indexes, so each part's children stay ordered.
    parts[static_cast<size_t>(group)].mutable_root()->children.push_back(
        std::move(child));
  }
  root->children.clear();
  return parts;
}

Status ReindexTree(const LicenseGrouping& grouping, int group,
                   ValidationTree* tree) {
  if (group < 0 || group >= grouping.group_count()) {
    return Status::OutOfRange("group index out of range: " +
                              std::to_string(group));
  }
  return ReindexNode(grouping, group, tree->mutable_root());
}

Result<DividedTrees> DivideAndReindex(ValidationTree tree,
                                      const LicenseGrouping& grouping,
                                      const std::vector<int64_t>& aggregates) {
  DividedTrees out;
  GEOLIC_ASSIGN_OR_RETURN(out.trees,
                          DivideValidationTree(std::move(tree), grouping));
  out.aggregates.reserve(out.trees.size());
  for (int k = 0; k < grouping.group_count(); ++k) {
    GEOLIC_RETURN_IF_ERROR(
        ReindexTree(grouping, k, &out.trees[static_cast<size_t>(k)]));
    GEOLIC_ASSIGN_OR_RETURN(std::vector<int64_t> group_aggregates,
                            grouping.GroupAggregates(k, aggregates));
    out.aggregates.push_back(std::move(group_aggregates));
  }
  return out;
}

}  // namespace geolic
