#ifndef GEOLIC_CORE_ONLINE_VALIDATOR_H_
#define GEOLIC_CORE_ONLINE_VALIDATOR_H_

#include <cstdint>
#include <memory>

#include "core/grouping.h"
#include "core/instance_validator.h"
#include "licensing/license_catalog.h"
#include "obs/trace.h"
#include "util/sim_hooks.h"
#include "validation/log_store.h"
#include "validation/validation_report.h"
#include "validation/validation_tree.h"
#include "util/metrics.h"
#include "util/status.h"

namespace geolic {

// Decision for one attempted license issuance.
struct OnlineDecision {
  // Whether the issued license lies inside at least one redistribution
  // license (S ≠ ∅).
  bool instance_valid = false;
  // Whether every affected validation equation still holds with the new
  // counts added.
  bool aggregate_valid = false;
  // S — the satisfying set (original license indexes).
  LicenseSet satisfying_set;
  // When aggregate validation fails: the first violated equation, with the
  // candidate's count already included in lhs.
  EquationResult limiting;
  // Equations checked for this issuance: 2^(N−k) in baseline mode,
  // 2^(N_g−k) with grouping (paper Section 2.1's complexity discussion).
  uint64_t equations_checked = 0;
  // Service layer only: which catalog epoch this decision was made against
  // (IssuanceService::catalog_epoch). A concurrent acquire/revoke/expire
  // advances the epoch, so `satisfying_set` indexes are only meaningful in
  // this epoch's index space. Always 0 for the plain OnlineValidator.
  uint64_t catalog_epoch = 0;

  bool accepted() const { return instance_valid && aggregate_valid; }
};

// Knobs shared by the online validator and the service layer on top of it
// (service/issuance_service.h), so callers configure both with one type.
struct OnlineValidatorOptions {
  // Scope per-issuance equation checks to S's overlap group (paper
  // Theorem 2), shrinking 2^(N−k) checks to 2^(N_g−k). With the service
  // layer this is also the sharding theorem: off means one global shard.
  bool use_grouping = true;
  // Optional sink for decision counters and latency; must outlive the
  // validator/service. The validator records every TryIssue into it;
  // IssuanceService uses it as its metrics block when set (and owns a
  // private one otherwise).
  IssuanceMetrics* metrics = nullptr;
  // Service layer only: cap on the number of lock shards (groups are
  // striped over min(shard_hint, group_count) mutexes). <= 0 means one
  // shard per overlap group. Ignored by the plain OnlineValidator.
  int shard_hint = 0;
  // Optional span sink for per-stage request tracing (obs/trace.h); must
  // outlive the validator/service. Null = tracing off: the scoped timers
  // reduce to one branch and no clock reads.
  Tracer* tracer = nullptr;
  // Simulation-only (src/sim/): cooperative yield points and virtual clock
  // threaded through the service request path. Null (the production value)
  // = one branch per hook point, nothing else. Must outlive the service.
  SimHooks* sim_hooks = nullptr;
  // Test-only accounting mutation for the simulation harness's mutation
  // smoke mode: the service skips the final equation of every aggregate
  // scan (the full-scope set T = scope), a deliberately planted
  // over-issuance bug that sim_runner must catch. Never set outside
  // tests/sim — it breaks the paper's eq. 1 guarantee by construction.
  bool sim_skip_last_equation = false;
  // Second planted bug, for the lifecycle mutation smoke: on revoke /
  // expire the service drops cascaded records but skips the Algorithm 5
  // index renumbering, leaving surviving records' sets at their stale bit
  // positions. sim_runner --lifecycle must catch the resulting divergence.
  bool sim_skip_renumbering = false;
};

// Validates licenses one at a time, as they are generated — the "online"
// regime the paper contrasts with offline log validation. Maintains the
// running validation tree of accepted issuances. When a license with
// satisfying set S (|S| = k) arrives, only equations whose set contains S
// gain counts, so only those are checked: all T ⊇ S within the scope mask.
// With grouping the scope is S's overlap group (licenses containing the
// same rectangle pairwise overlap, so S always lies in one group),
// shrinking the check from 2^(N−k) to 2^(N_g−k) equations.
//
// NOT thread-safe: TryIssue mutates the running tree/log. For concurrent
// admission use service/IssuanceService, which shards this state by
// overlap group.
class OnlineValidator {
 public:
  // `licenses` must be non-empty and outlive the validator; so must
  // `options.metrics` when set.
  static Result<OnlineValidator> Create(
      const LicenseCatalog* licenses,
      const OnlineValidatorOptions& options = OnlineValidatorOptions());

  // Creates a validator whose tree/log are pre-loaded with `history`
  // (records of already-validated issuances — they are not re-checked).
  // Used when the license set grows and the validator must be rebuilt
  // around the new grouping without losing past issuances.
  static Result<OnlineValidator> CreateWithHistory(
      const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
      const LogStore& history);

  // Instance- and aggregate-validates `issued`; on acceptance records it in
  // the internal tree and log. Never fails with a Status for an invalid
  // license — that's a Decision, not an error.
  Result<OnlineDecision> TryIssue(const License& issued);

  // Log of accepted issuances (feedable to the offline validators).
  const LogStore& log() const { return log_; }
  const ValidationTree& tree() const { return tree_; }
  const LicenseGrouping& grouping() const { return grouping_; }

 private:
  OnlineValidator(const LicenseCatalog* licenses, OnlineValidatorOptions options,
                  LicenseGrouping grouping);

  const LicenseCatalog* licenses_;
  OnlineValidatorOptions options_;
  LicenseGrouping grouping_;
  LinearInstanceValidator instance_validator_;
  ValidationTree tree_;
  LogStore log_;
  int64_t issue_sequence_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_CORE_ONLINE_VALIDATOR_H_
