#ifndef GEOLIC_CORE_INCREMENTAL_AUDITOR_H_
#define GEOLIC_CORE_INCREMENTAL_AUDITOR_H_

#include <vector>

#include "core/grouping.h"
#include "licensing/license_catalog.h"
#include "validation/log_record.h"
#include "validation/validation_report.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// Incremental offline auditing. The paper runs offline validation
// periodically over the full log; between two runs only the equations
// whose LHS actually grew — supersets (within the overlap group) of the
// newly logged sets — can change verdict, because counts only increase.
// This auditor keeps the divided per-group trees from the previous run and
// re-evaluates exactly those dirty equations per batch, instead of all
// Σ_k (2^{N_k} − 1). Dirty groups are compiled into a FlatValidationTree
// once per batch, so every dirty equation runs on the pruned arena form.
//
// Guarantees (tested): after ingesting the whole log in any batch split,
// the union of reported violations equals the violations of a full
// from-scratch grouped audit, and the last-reported LHS per violated set
// equals the final audit's LHS.
class IncrementalAuditor {
 public:
  // The grouping is fixed at creation (a fresh auditor is built when the
  // license set changes, like the online validator).
  static Result<IncrementalAuditor> Create(const LicenseCatalog* licenses);

  // Ingests a batch of new log records and re-validates the affected
  // equations. The returned report's `equations_evaluated` counts only the
  // dirty equations; `violations` lists each violated dirty equation (in
  // original license indexes, ascending).
  Result<ValidationReport> IngestBatch(const std::vector<LogRecord>& batch);

  // Total records ingested so far.
  size_t records_ingested() const { return records_ingested_; }
  // Total equations re-evaluated over the auditor's lifetime.
  uint64_t equations_evaluated_total() const {
    return equations_evaluated_total_;
  }

  const LicenseGrouping& grouping() const { return grouping_; }

 private:
  IncrementalAuditor(const LicenseCatalog* licenses, LicenseGrouping grouping);

  const LicenseCatalog* licenses_;
  LicenseGrouping grouping_;
  // One tree per group, node indexes in group-local positions.
  std::vector<ValidationTree> group_trees_;
  std::vector<std::vector<int64_t>> group_aggregates_;
  size_t records_ingested_ = 0;
  uint64_t equations_evaluated_total_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_CORE_INCREMENTAL_AUDITOR_H_
