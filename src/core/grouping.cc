#include "core/grouping.h"

#include <utility>

#include "core/overlap_graph.h"

namespace geolic {

LicenseGrouping LicenseGrouping::FromLicenses(const LicenseCatalog& licenses) {
  return LicenseGrouping(FindComponentsDfs(BuildOverlapGraph(licenses)));
}

LicenseGrouping LicenseGrouping::FromRects(
    const std::vector<HyperRect>& rects) {
  return LicenseGrouping(FindComponentsDfs(BuildOverlapGraphFromRects(rects)));
}

LicenseGrouping LicenseGrouping::FromComponents(ComponentSet components) {
  return LicenseGrouping(std::move(components));
}

LicenseGrouping::LicenseGrouping(ComponentSet components)
    : components_(std::move(components)),
      group_of_(components_.component_of),
      position_(components_.component_of.size(), -1),
      members_(components_.components.size()) {
  for (size_t k = 0; k < components_.components.size(); ++k) {
    // Algorithm 5 walks j = 1..N and assigns positions p = 1, 2, ... to the
    // group's members in ascending original-index order; MaskToIndexes
    // yields exactly that order.
    members_[k] = (components_.components[k]).ToIndexes();
    for (size_t p = 0; p < members_[k].size(); ++p) {
      position_[static_cast<size_t>(members_[k][p])] = static_cast<int>(p);
    }
  }
}

LicenseSet LicenseGrouping::LocalToOriginalMask(int group,
                                                 LicenseSet local) const {
  const std::vector<int>& members = members_[static_cast<size_t>(group)];
  LicenseSet original;
  for (int position : local.Indexes()) {
    GEOLIC_DCHECK(position < static_cast<int>(members.size()));
    original |= LicenseSet::Singleton(members[static_cast<size_t>(position)]);
  }
  return original;
}

Result<LicenseSet> LicenseGrouping::OriginalToLocalMask(
    int group, LicenseSet mask) const {
  if (group < 0 || group >= group_count()) {
    return Status::OutOfRange("group index out of range: " +
                              std::to_string(group));
  }
  if (!mask.IsSubsetOf(GroupMask(group))) {
    return Status::InvalidArgument("mask " + (mask).ToString() +
                                   " is not contained in group " +
                                   std::to_string(group));
  }
  LicenseSet local;
  for (int index : mask.Indexes()) {
    local |= LicenseSet::Singleton(PositionOf(index));
  }
  return local;
}

Result<std::vector<int64_t>> LicenseGrouping::GroupAggregates(
    int group, const std::vector<int64_t>& aggregates) const {
  if (group < 0 || group >= group_count()) {
    return Status::OutOfRange("group index out of range: " +
                              std::to_string(group));
  }
  if (aggregates.size() < static_cast<size_t>(num_licenses())) {
    return Status::InvalidArgument(
        "aggregate array smaller than the number of licenses");
  }
  const std::vector<int>& members = members_[static_cast<size_t>(group)];
  std::vector<int64_t> out;
  out.reserve(members.size());
  for (int original : members) {
    out.push_back(aggregates[static_cast<size_t>(original)]);
  }
  return out;
}

}  // namespace geolic
