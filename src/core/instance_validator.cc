#include "core/instance_validator.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace geolic {

LinearInstanceValidator::LinearInstanceValidator(const LicenseCatalog* licenses)
    : licenses_(licenses) {}

LicenseSet LinearInstanceValidator::SatisfyingSet(
    const License& issued) const {
  LicenseSet set;
  for (int i = 0; i < licenses_->size(); ++i) {
    if (licenses_->at(i).InstanceContains(issued)) {
      set |= LicenseSet::Singleton(i);
    }
  }
  return set;
}

SoaInstanceValidator::SoaInstanceValidator(const LicenseCatalog* licenses)
    : licenses_(licenses) {
  std::vector<HyperRect> rects;
  rects.reserve(static_cast<size_t>(licenses->size()));
  for (const License& license : licenses->licenses()) {
    rects.push_back(license.rect());
  }
  rects_ = SoaRects::Build(rects);
}

LicenseSet SoaInstanceValidator::SatisfyingSet(const License& issued) const {
  if (licenses_->empty()) {
    return LicenseSet();
  }
  // The catalog enforces uniform content key and permission, so one compare
  // stands in for the per-license InstanceContains prechecks.
  const License& first = licenses_->at(0);
  if (first.content_key() != issued.content_key() ||
      first.permission() != issued.permission()) {
    return LicenseSet();
  }
  uint64_t out[kMaxLicenseWords];
  rects_.Containing(issued.rect(), out);
  return LicenseSet::FromWords({out, rects_.result_words()});
}

RtreeInstanceValidator::RtreeInstanceValidator(const LicenseCatalog* licenses,
                                               Rtree index)
    : licenses_(licenses), index_(std::move(index)) {}

Result<RtreeInstanceValidator> RtreeInstanceValidator::Build(
    const LicenseCatalog* licenses) {
  if (licenses->empty()) {
    return Status::InvalidArgument(
        "cannot build an instance index over zero licenses");
  }
  const int dims = licenses->schema().dimensions();
  if (dims == 0) {
    return Status::InvalidArgument(
        "instance index requires at least one constraint dimension");
  }
  Rtree index(dims);
  for (int i = 0; i < licenses->size(); ++i) {
    IntervalBox box;
    box.dims = licenses->at(i).rect().BoundingBox();
    GEOLIC_RETURN_IF_ERROR(index.Insert(box, i));
  }
  return RtreeInstanceValidator(licenses, std::move(index));
}

LicenseSet RtreeInstanceValidator::SatisfyingSet(const License& issued) const {
  IntervalBox query;
  query.dims = issued.rect().BoundingBox();
  LicenseSet set;
  // Candidates whose bounding box contains the issued box; bounding boxes
  // over-approximate category dimensions, so confirm exactly.
  for (int64_t id : index_.FindContaining(query)) {
    const int i = static_cast<int>(id);
    if (licenses_->at(i).InstanceContains(issued)) {
      set |= LicenseSet::Singleton(i);
    }
  }
  return set;
}

}  // namespace geolic
