#include "core/instance_validator.h"

#include <utility>

namespace geolic {

LinearInstanceValidator::LinearInstanceValidator(const LicenseCatalog* licenses)
    : licenses_(licenses) {}

LicenseSet LinearInstanceValidator::SatisfyingSet(
    const License& issued) const {
  LicenseSet set;
  for (int i = 0; i < licenses_->size(); ++i) {
    if (licenses_->at(i).InstanceContains(issued)) {
      set |= LicenseSet::Singleton(i);
    }
  }
  return set;
}

RtreeInstanceValidator::RtreeInstanceValidator(const LicenseCatalog* licenses,
                                               Rtree index)
    : licenses_(licenses), index_(std::move(index)) {}

Result<RtreeInstanceValidator> RtreeInstanceValidator::Build(
    const LicenseCatalog* licenses) {
  if (licenses->empty()) {
    return Status::InvalidArgument(
        "cannot build an instance index over zero licenses");
  }
  const int dims = licenses->schema().dimensions();
  if (dims == 0) {
    return Status::InvalidArgument(
        "instance index requires at least one constraint dimension");
  }
  Rtree index(dims);
  for (int i = 0; i < licenses->size(); ++i) {
    IntervalBox box;
    box.dims = licenses->at(i).rect().BoundingBox();
    GEOLIC_RETURN_IF_ERROR(index.Insert(box, i));
  }
  return RtreeInstanceValidator(licenses, std::move(index));
}

LicenseSet RtreeInstanceValidator::SatisfyingSet(const License& issued) const {
  IntervalBox query;
  query.dims = issued.rect().BoundingBox();
  LicenseSet set;
  // Candidates whose bounding box contains the issued box; bounding boxes
  // over-approximate category dimensions, so confirm exactly.
  for (int64_t id : index_.FindContaining(query)) {
    const int i = static_cast<int>(id);
    if (licenses_->at(i).InstanceContains(issued)) {
      set |= LicenseSet::Singleton(i);
    }
  }
  return set;
}

}  // namespace geolic
