#ifndef GEOLIC_CORE_GROUPING_H_
#define GEOLIC_CORE_GROUPING_H_

#include <vector>

#include "graph/connected_components.h"
#include "licensing/license_catalog.h"
#include "util/license_set.h"
#include "util/status.h"

namespace geolic {

// The grouping of N redistribution licenses into g mutually non-overlapping
// groups (connected components of the overlap graph), plus the index
// machinery of the paper's Algorithm 5: each license's position inside its
// group (`position_k`), used to renumber divided validation trees so group
// k's indexes run 0..N_k−1.
class LicenseGrouping {
 public:
  // Groups `licenses` by geometric overlap (builds the overlap graph and
  // runs Algorithm 3's DFS).
  static LicenseGrouping FromLicenses(const LicenseCatalog& licenses);

  // Groups raw hyper-rectangles.
  static LicenseGrouping FromRects(const std::vector<HyperRect>& rects);

  // Groups from a pre-built component set (n = components.component_of
  // size). Used by tests.
  static LicenseGrouping FromComponents(ComponentSet components);

  int num_licenses() const {
    return static_cast<int>(group_of_.size());
  }
  // g — the number of groups.
  int group_count() const {
    return static_cast<int>(components_.components.size());
  }
  // N_k — licenses in group k.
  int GroupSize(int group) const { return components_.SizeOf(group); }
  // Mask of the licenses in group k (original indexes).
  LicenseSet GroupMask(int group) const {
    return components_.components[static_cast<size_t>(group)];
  }
  // Group of license `index`.
  int GroupOf(int index) const {
    return group_of_[static_cast<size_t>(index)];
  }
  // Position of license `index` inside its group (0-based; ascending with
  // the original index, as Algorithm 5 assigns positions in index order).
  int PositionOf(int index) const {
    return position_[static_cast<size_t>(index)];
  }
  // Original license index of position `position` in group `group`.
  int OriginalIndexOf(int group, int position) const {
    return members_[static_cast<size_t>(group)][static_cast<size_t>(position)];
  }

  // Translates a mask over group `group`'s local positions back to original
  // license indexes.
  LicenseSet LocalToOriginalMask(int group, LicenseSet local) const;

  // Translates a mask of original indexes (which must all lie in `group`)
  // to local positions.
  Result<LicenseSet> OriginalToLocalMask(int group, LicenseSet mask) const;

  // Algorithm 5's A_k: per-group aggregate array in local position order,
  // derived from the full array A (A[j] = aggregate of license j).
  Result<std::vector<int64_t>> GroupAggregates(
      int group, const std::vector<int64_t>& aggregates) const;

  const ComponentSet& components() const { return components_; }

 private:
  explicit LicenseGrouping(ComponentSet components);

  ComponentSet components_;
  std::vector<int> group_of_;                 // Per original index.
  std::vector<int> position_;                 // Per original index.
  std::vector<std::vector<int>> members_;     // Per group, ascending.
};

}  // namespace geolic

#endif  // GEOLIC_CORE_GROUPING_H_
