#ifndef GEOLIC_CORE_INSTANCE_VALIDATOR_H_
#define GEOLIC_CORE_INSTANCE_VALIDATOR_H_

#include <memory>
#include <vector>

#include "geometry/rtree.h"
#include "licensing/license_set.h"
#include "util/bits.h"
#include "util/status.h"

namespace geolic {

// Finds, for a newly generated license, the set S of redistribution
// licenses whose instance-based constraints it satisfies — geometrically,
// the licenses whose hyper-rectangle completely contains the new license's
// (paper Section 3.1). S is what gets appended to the log; an empty S means
// the license fails instance-based validation outright (the paper's L_U^2
// in figure 2).
class InstanceValidator {
 public:
  virtual ~InstanceValidator() = default;

  // Mask of redistribution licenses containing `issued`.
  virtual LicenseMask SatisfyingSet(const License& issued) const = 0;
};

// O(N) scan over the license set. For a single content's N ≤ 64 licenses
// this is typically fastest.
class LinearInstanceValidator : public InstanceValidator {
 public:
  // `licenses` must outlive the validator.
  explicit LinearInstanceValidator(const LicenseSet* licenses);

  LicenseMask SatisfyingSet(const License& issued) const override;

 private:
  const LicenseSet* licenses_;
};

// R-tree-backed lookup: candidate licenses come from a containment query on
// interval bounding boxes, then exact hyper-rectangle tests confirm. Pays
// off for large catalogues; ablated against the linear scan in bench/.
class RtreeInstanceValidator : public InstanceValidator {
 public:
  // Builds the index over `licenses` (which must outlive the validator).
  static Result<RtreeInstanceValidator> Build(const LicenseSet* licenses);

  LicenseMask SatisfyingSet(const License& issued) const override;

 private:
  RtreeInstanceValidator(const LicenseSet* licenses, Rtree index);

  const LicenseSet* licenses_;
  Rtree index_;
};

}  // namespace geolic

#endif  // GEOLIC_CORE_INSTANCE_VALIDATOR_H_
