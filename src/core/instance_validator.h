#ifndef GEOLIC_CORE_INSTANCE_VALIDATOR_H_
#define GEOLIC_CORE_INSTANCE_VALIDATOR_H_

#include <memory>
#include <vector>

#include "geometry/rtree.h"
#include "geometry/soa_rects.h"
#include "licensing/license_catalog.h"
#include "util/license_set.h"
#include "util/status.h"

namespace geolic {

// Finds, for a newly generated license, the set S of redistribution
// licenses whose instance-based constraints it satisfies — geometrically,
// the licenses whose hyper-rectangle completely contains the new license's
// (paper Section 3.1). S is what gets appended to the log; an empty S means
// the license fails instance-based validation outright (the paper's L_U^2
// in figure 2).
class InstanceValidator {
 public:
  virtual ~InstanceValidator() = default;

  // Mask of redistribution licenses containing `issued`.
  virtual LicenseSet SatisfyingSet(const License& issued) const = 0;
};

// O(N) scan over the license set. For a single content's N ≤ 64 licenses
// this is typically fastest.
class LinearInstanceValidator : public InstanceValidator {
 public:
  // `licenses` must outlive the validator.
  explicit LinearInstanceValidator(const LicenseCatalog* licenses);

  LicenseSet SatisfyingSet(const License& issued) const override;

 private:
  const LicenseCatalog* licenses_;
};

// SoA column-sweep scan (geometry/soa_rects.h): the per-license rect loop
// becomes contiguous per-dimension sweeps through the runtime-dispatched
// SIMD kernels, with one scalar content/permission compare covering the
// whole catalog (uniform by construction). Bit-identical results to
// LinearInstanceValidator on every input.
class SoaInstanceValidator : public InstanceValidator {
 public:
  // `licenses` must outlive the validator.
  explicit SoaInstanceValidator(const LicenseCatalog* licenses);

  LicenseSet SatisfyingSet(const License& issued) const override;

 private:
  const LicenseCatalog* licenses_;
  SoaRects rects_;
};

// R-tree-backed lookup: candidate licenses come from a containment query on
// interval bounding boxes, then exact hyper-rectangle tests confirm. Pays
// off for large catalogues; ablated against the linear scan in bench/.
class RtreeInstanceValidator : public InstanceValidator {
 public:
  // Builds the index over `licenses` (which must outlive the validator).
  static Result<RtreeInstanceValidator> Build(const LicenseCatalog* licenses);

  LicenseSet SatisfyingSet(const License& issued) const override;

 private:
  RtreeInstanceValidator(const LicenseCatalog* licenses, Rtree index);

  const LicenseCatalog* licenses_;
  Rtree index_;
};

}  // namespace geolic

#endif  // GEOLIC_CORE_INSTANCE_VALIDATOR_H_
