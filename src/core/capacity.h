#ifndef GEOLIC_CORE_CAPACITY_H_
#define GEOLIC_CORE_CAPACITY_H_

#include <cstdint>

#include "core/grouping.h"
#include "licensing/license_catalog.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// How many more permission counts can be issued for a given satisfying
// set S without violating any validation equation. A new issuance with set
// S and count c raises C⟨T⟩ by c for every T ⊇ S, so the headroom is
//
//   min over T ⊇ S (within S's overlap group) of A[T] − C⟨T⟩.
//
// This is the number a distributor storefront shows as "remaining
// inventory for this region/period" — and exactly the largest count the
// OnlineValidator would still accept for S (tested against it).
struct CapacityQuote {
  // Maximum additional counts issuable against S (0 when some equation is
  // already tight or violated; never negative).
  int64_t remaining = 0;
  // The binding equation's set and slack.
  LicenseSet binding_set;
  int64_t binding_slack = 0;  // May be negative if already violated.
};

// Computes the quote from the running validation tree of accepted
// issuances. `set` must be a non-empty subset of `licenses`' mask whose
// members all lie in one overlap group of `grouping` (always true for
// geometrically derived satisfying sets). Cost: 2^(N_g − |S|) equation
// evaluations.
Result<CapacityQuote> RemainingCapacity(const LicenseCatalog& licenses,
                                        const LicenseGrouping& grouping,
                                        const ValidationTree& tree,
                                        const LicenseSet& set);

}  // namespace geolic

#endif  // GEOLIC_CORE_CAPACITY_H_
