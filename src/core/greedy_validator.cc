#include "core/greedy_validator.h"

namespace geolic {

const char* GreedyPolicyName(GreedyPolicy policy) {
  switch (policy) {
    case GreedyPolicy::kFirst:
      return "first";
    case GreedyPolicy::kRandom:
      return "random";
    case GreedyPolicy::kLargestRemaining:
      return "largest-remaining";
    case GreedyPolicy::kSmallestRemaining:
      return "smallest-remaining";
  }
  return "unknown";
}

GreedyOnlineValidator::GreedyOnlineValidator(const LicenseCatalog* licenses,
                                             GreedyPolicy policy,
                                             uint64_t seed)
    : licenses_(licenses),
      policy_(policy),
      rng_(seed),
      instance_validator_(licenses),
      remaining_(licenses->AggregateCounts()) {}

Result<GreedyOnlineValidator> GreedyOnlineValidator::Create(
    const LicenseCatalog* licenses, GreedyPolicy policy, uint64_t seed) {
  if (licenses == nullptr || licenses->empty()) {
    return Status::InvalidArgument(
        "greedy validator needs at least one redistribution license");
  }
  return GreedyOnlineValidator(licenses, policy, seed);
}

Result<GreedyDecision> GreedyOnlineValidator::TryIssue(
    const License& issued) {
  if (issued.aggregate_count() <= 0) {
    return Status::InvalidArgument(
        "issued license must carry a positive count");
  }
  GreedyDecision decision;
  decision.satisfying_set = instance_validator_.SatisfyingSet(issued);
  if (decision.satisfying_set.Empty()) {
    return decision;
  }
  decision.instance_valid = true;
  const int64_t count = issued.aggregate_count();

  // Candidates with enough remaining budget.
  std::vector<int> candidates;
  for (int index : (decision.satisfying_set).ToIndexes()) {
    if (remaining_[static_cast<size_t>(index)] >= count) {
      candidates.push_back(index);
    }
  }
  if (candidates.empty()) {
    return decision;  // Rejected: no single license can absorb the count.
  }

  int chosen = candidates.front();
  switch (policy_) {
    case GreedyPolicy::kFirst:
      break;
    case GreedyPolicy::kRandom:
      chosen = candidates[rng_.UniformIndex(candidates.size())];
      break;
    case GreedyPolicy::kLargestRemaining:
      for (int candidate : candidates) {
        if (remaining_[static_cast<size_t>(candidate)] >
            remaining_[static_cast<size_t>(chosen)]) {
          chosen = candidate;
        }
      }
      break;
    case GreedyPolicy::kSmallestRemaining:
      for (int candidate : candidates) {
        if (remaining_[static_cast<size_t>(candidate)] <
            remaining_[static_cast<size_t>(chosen)]) {
          chosen = candidate;
        }
      }
      break;
  }
  remaining_[static_cast<size_t>(chosen)] -= count;
  accepted_counts_ += count;
  decision.accepted = true;
  decision.charged_license = chosen;
  return decision;
}

}  // namespace geolic
