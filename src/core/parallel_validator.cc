#include "core/parallel_validator.h"

#include <algorithm>
#include <utility>

#include "core/tree_division.h"
#include "validation/exhaustive_validator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace geolic {
namespace {

// Evaluates equations for sets in [begin, end] (inclusive masks) against
// the read-only tree; appends violations to *out in ascending order.
void EvaluateRange(const ValidationTree& tree,
                   const std::vector<int64_t>& aggregates, LicenseMask begin,
                   LicenseMask end, std::vector<EquationResult>* out,
                   uint64_t* nodes_visited) {
  const int n = static_cast<int>(aggregates.size());
  for (LicenseMask set = begin;; ++set) {
    int64_t av = 0;
    for (int j = 0; j < n; ++j) {
      if (MaskContains(set, j)) {
        av += aggregates[static_cast<size_t>(j)];
      }
    }
    const int64_t cv = tree.SumSubsets(set, nodes_visited);
    if (cv > av) {
      out->push_back(EquationResult{set, cv, av});
    }
    if (set == end) {
      break;
    }
  }
}

}  // namespace

Result<ValidationReport> ValidateExhaustiveParallel(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates,
    int num_threads) {
  const int n = static_cast<int>(aggregates.size());
  if (n > kMaxLicenses) {
    return Status::CapacityExceeded("at most 64 redistribution licenses");
  }
  ValidationReport report;
  if (n == 0) {
    return report;
  }
  if (!IsSubsetOf(tree.PresentLicenses(), FullMask(n))) {
    return Status::InvalidArgument(
        "tree references license indexes beyond the aggregate array");
  }
  if (num_threads <= 0) {
    num_threads = ThreadPool::DefaultThreadCount();
  }

  const LicenseMask full = FullMask(n);
  const uint64_t total = full;  // Number of non-empty sets = 2^n − 1.
  const uint64_t shard_count =
      std::min<uint64_t>(static_cast<uint64_t>(num_threads) * 4, total);
  std::vector<std::vector<EquationResult>> shard_violations(shard_count);
  std::vector<uint64_t> shard_nodes(shard_count, 0);

  {
    ThreadPool pool(num_threads);
    for (uint64_t shard = 0; shard < shard_count; ++shard) {
      // Masks 1..full split into contiguous shards.
      const LicenseMask begin =
          static_cast<LicenseMask>(1 + shard * total / shard_count);
      const LicenseMask end =
          static_cast<LicenseMask>((shard + 1) * total / shard_count);
      pool.Schedule([&tree, &aggregates, begin, end,
                     violations = &shard_violations[shard],
                     nodes = &shard_nodes[shard]] {
        EvaluateRange(tree, aggregates, begin, end, violations, nodes);
      });
    }
    pool.Wait();
  }

  report.equations_evaluated = total;
  for (uint64_t shard = 0; shard < shard_count; ++shard) {
    report.nodes_visited += shard_nodes[shard];
    report.violations.insert(report.violations.end(),
                             shard_violations[shard].begin(),
                             shard_violations[shard].end());
  }
  return report;
}

Result<GroupedValidationResult> ValidateGroupedParallel(
    const LicenseSet& licenses, ValidationTree tree, int num_threads) {
  if (num_threads <= 0) {
    num_threads = ThreadPool::DefaultThreadCount();
  }
  GroupedValidationResult result;

  Stopwatch division_timer;
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(licenses);
  result.group_count = grouping.group_count();
  for (int k = 0; k < grouping.group_count(); ++k) {
    result.group_sizes.push_back(grouping.GroupSize(k));
  }
  GEOLIC_ASSIGN_OR_RETURN(
      DividedTrees divided,
      DivideAndReindex(std::move(tree), grouping,
                       licenses.AggregateCounts()));
  result.division_micros = division_timer.ElapsedMicros();

  Stopwatch validation_timer;
  const int g = grouping.group_count();
  std::vector<Result<ValidationReport>> group_reports(
      static_cast<size_t>(g), Status::Internal("not run"));
  {
    ThreadPool pool(std::min(num_threads, std::max(1, g)));
    for (int k = 0; k < g; ++k) {
      pool.Schedule([&divided, &group_reports, k] {
        group_reports[static_cast<size_t>(k)] =
            ValidateExhaustive(divided.trees[static_cast<size_t>(k)],
                               divided.aggregates[static_cast<size_t>(k)]);
      });
    }
    pool.Wait();
  }
  for (int k = 0; k < g; ++k) {
    Result<ValidationReport>& group_report =
        group_reports[static_cast<size_t>(k)];
    if (!group_report.ok()) {
      return group_report.status();
    }
    result.report.equations_evaluated += group_report->equations_evaluated;
    result.report.nodes_visited += group_report->nodes_visited;
    for (const EquationResult& violation : group_report->violations) {
      EquationResult translated = violation;
      translated.set = grouping.LocalToOriginalMask(k, violation.set);
      result.report.violations.push_back(translated);
    }
  }
  result.validation_micros = validation_timer.ElapsedMicros();
  return result;
}

}  // namespace geolic
