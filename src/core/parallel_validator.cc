#include "core/parallel_validator.h"

#include <utility>

#include "validation/validate.h"

namespace geolic {

// Both entry points are thin wrappers over the Validate facade: the
// equation-range sharding engine lives in validation/validate.cc, the
// group-per-task engine in core/validate_facade.cc. Reports stay
// byte-identical to the sequential runs (shards and groups merge in
// ascending order).

Result<ValidationReport> ValidateExhaustiveParallel(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates,
    int num_threads) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  options.num_threads = num_threads <= 0 ? 0 : num_threads;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(tree, aggregates, options));
  return std::move(outcome.report);
}

Result<GroupedValidationResult> ValidateGroupedParallel(
    const LicenseCatalog& licenses, ValidationTree tree, int num_threads) {
  ValidateOptions options;
  options.mode = ValidationMode::kGrouped;
  options.num_threads = num_threads <= 0 ? 0 : num_threads;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(licenses, std::move(tree), options));
  GroupedValidationResult result;
  result.report = std::move(outcome.report);
  result.group_count = outcome.group_count;
  result.group_sizes = std::move(outcome.group_sizes);
  result.division_micros = outcome.division_micros;
  result.validation_micros = outcome.validation_micros;
  return result;
}

}  // namespace geolic
