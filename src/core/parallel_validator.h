#ifndef GEOLIC_CORE_PARALLEL_VALIDATOR_H_
#define GEOLIC_CORE_PARALLEL_VALIDATOR_H_

#include <vector>

#include "core/grouped_validator.h"
#include "core/grouping.h"
#include "licensing/license_catalog.h"
#include "validation/validation_report.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// Multi-threaded offline validation. The validation tree is read-only
// during equation evaluation, so the 2^N − 1 equation range shards cleanly
// across threads; violations are merged in ascending-set order so the
// report is byte-identical to the sequential one.
//
// Both entry points are compatibility wrappers slated for [[deprecated]]:
// new code should call Validate(...) with options.num_threads set
// (validation/validate.h); they delegate to that facade.

// Parallel Algorithm 2: shards i = 1..2^N − 1 across `num_threads` workers
// (0 → one shard per hardware thread). Same report as ValidateExhaustive.
Result<ValidationReport> ValidateExhaustiveParallel(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates,
    int num_threads = 0);

// Parallel grouped validation: groups are validated concurrently (one task
// per group — groups are independent trees after division). Same result as
// ValidateGrouped up to timing fields.
Result<GroupedValidationResult> ValidateGroupedParallel(
    const LicenseCatalog& licenses, ValidationTree tree, int num_threads = 0);

}  // namespace geolic

#endif  // GEOLIC_CORE_PARALLEL_VALIDATOR_H_
