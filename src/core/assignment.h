#ifndef GEOLIC_CORE_ASSIGNMENT_H_
#define GEOLIC_CORE_ASSIGNMENT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "licensing/license_catalog.h"
#include "validation/log_store.h"
#include "util/license_set.h"
#include "util/status.h"

namespace geolic {

// An explicit split of every logged set's counts across that set's member
// licenses — the *witness* whose existence the validation equations
// guarantee (see tests/validation/feasibility_test.cc). Equation-based
// validation never materialises this; settlement does: when a validation
// period closes, each issued count must be billed against one concrete
// redistribution license.
struct SettlementAssignment {
  // allocation[set][license index] = counts of C[set] charged to that
  // license. Only members of `set` appear; allocations are ≥ 0 and sum to
  // C[set] per set.
  std::unordered_map<LicenseSet, std::vector<std::pair<int, int64_t>>>
      allocation;
  // Counts charged per license (index-aligned with the license set).
  std::vector<int64_t> charged;
  // Remaining budget per license (aggregate − charged).
  std::vector<int64_t> remaining;
};

// Computes a feasible settlement for `log` against `licenses` via max-flow
// (source → sets → member licenses → sink). Fails with FAILED_PRECONDITION
// when the log violates some validation equation — i.e. exactly when the
// offline validators report a violation.
Result<SettlementAssignment> ComputeSettlement(const LicenseCatalog& licenses,
                                               const LogStore& log);

}  // namespace geolic

#endif  // GEOLIC_CORE_ASSIGNMENT_H_
