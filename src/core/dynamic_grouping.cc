#include "core/dynamic_grouping.h"

namespace geolic {

Result<int> DynamicGrouping::AddLicense(const HyperRect& rect) {
  if (size() >= kMaxLicenses) {
    return Status::CapacityExceeded(
        "dynamic grouping supports at most 64 licenses");
  }
  if (!rects_.empty() &&
      rect.dimensions() != rects_.front().dimensions()) {
    return Status::InvalidArgument(
        "license dimensionality disagrees with earlier licenses");
  }
  const int index = size();
  ++groups_;  // The newcomer starts as its own group…
  for (int other = 0; other < index; ++other) {
    if (rect.Overlaps(rects_[static_cast<size_t>(other)])) {
      if (union_find_.Union(index, other)) {
        --groups_;  // …and loses one group per component it bridges.
        ++merges_;
      }
    }
  }
  rects_.push_back(rect);
  return index;
}

LicenseMask DynamicGrouping::GroupMaskOf(int index) const {
  GEOLIC_CHECK(index >= 0 && index < size());
  // UnionFind::Find is mutating (path compression); work on a copy for a
  // const API. Cheap at N ≤ 64.
  UnionFind scratch = union_find_;
  const int root = scratch.Find(index);
  LicenseMask mask = 0;
  for (int v = 0; v < size(); ++v) {
    if (scratch.Find(v) == root) {
      mask |= SingletonMask(v);
    }
  }
  return mask;
}

ComponentSet DynamicGrouping::Components() const {
  UnionFind scratch = union_find_;
  ComponentSet out;
  out.component_of.assign(static_cast<size_t>(size()), -1);
  std::vector<int> component_of_root(kMaxLicenses, -1);
  for (int v = 0; v < size(); ++v) {
    const int root = scratch.Find(v);
    int& k = component_of_root[static_cast<size_t>(root)];
    if (k == -1) {
      k = static_cast<int>(out.components.size());
      out.components.push_back(0);
    }
    out.components[static_cast<size_t>(k)] |= SingletonMask(v);
    out.component_of[static_cast<size_t>(v)] = k;
  }
  return out;
}

}  // namespace geolic
