#include "core/dynamic_grouping.h"

namespace geolic {

DynamicGrouping::DynamicGrouping(int expected_dimensions)
    : expected_dimensions_(expected_dimensions) {
  GEOLIC_CHECK(expected_dimensions > 0);
}

Result<int> DynamicGrouping::AddLicense(const HyperRect& rect) {
  if (size() >= kMaxLicensesLarge) {
    return Status::CapacityExceeded(
        "dynamic grouping supports at most " +
        std::to_string(kMaxLicensesLarge) + " licenses");
  }
  if (expected_dimensions_ < 0) {
    expected_dimensions_ = rect.dimensions();
  } else if (rect.dimensions() != expected_dimensions_) {
    return Status::InvalidArgument(
        "license dimensionality disagrees with the grouping's dimensions");
  }
  const int index = union_find_.AddElement();
  ++groups_;  // The newcomer starts as its own group…
  LicenseSet adjacent;
  for (int other = 0; other < index; ++other) {
    if (rect.Overlaps(rects_[static_cast<size_t>(other)])) {
      adjacent.Add(other);
      neighbors_[static_cast<size_t>(other)].Add(index);
      if (union_find_.Union(index, other)) {
        --groups_;  // …and loses one group per component it bridges.
        ++merges_;
      }
    }
  }
  rects_.push_back(rect);
  neighbors_.push_back(std::move(adjacent));
  return index;
}

Status DynamicGrouping::RemoveLicense(int index) {
  if (index < 0 || index >= size()) {
    return Status::InvalidArgument("license index out of range");
  }
  rects_.erase(rects_.begin() + index);
  neighbors_.erase(neighbors_.begin() + index);
  for (LicenseSet& mask : neighbors_) {
    mask = mask.WithIndexErased(index);
  }
  // Union-find forests do not support deletion; rebuild from the cached
  // adjacency masks. O(E α(N)) with no geometry retests.
  UnionFind rebuilt(size());
  for (int v = 0; v < size(); ++v) {
    for (int u : neighbors_[static_cast<size_t>(v)].Indexes()) {
      if (u < v) {
        rebuilt.Union(u, v);
      }
    }
  }
  groups_ = rebuilt.SetCount();
  union_find_ = std::move(rebuilt);
  return Status::Ok();
}

LicenseSet DynamicGrouping::GroupMaskOf(int index) const {
  GEOLIC_CHECK(index >= 0 && index < size());
  const int root = union_find_.FindRoot(index);
  LicenseSet mask;
  for (int v = 0; v < size(); ++v) {
    if (union_find_.FindRoot(v) == root) {
      mask.Add(v);
    }
  }
  return mask;
}

ComponentSet DynamicGrouping::Components() const {
  ComponentSet out;
  out.component_of.assign(static_cast<size_t>(size()), -1);
  std::vector<int> component_of_root(static_cast<size_t>(size()), -1);
  for (int v = 0; v < size(); ++v) {
    const int root = union_find_.FindRoot(v);
    int& k = component_of_root[static_cast<size_t>(root)];
    if (k == -1) {
      k = static_cast<int>(out.components.size());
      out.components.push_back(LicenseSet());
    }
    out.components[static_cast<size_t>(k)] |= LicenseSet::Singleton(v);
    out.component_of[static_cast<size_t>(v)] = k;
  }
  return out;
}

}  // namespace geolic
