#include "core/dynamic_grouping.h"

namespace geolic {

Result<int> DynamicGrouping::AddLicense(const HyperRect& rect) {
  if (size() >= kMaxLicensesLarge) {
    return Status::CapacityExceeded(
        "dynamic grouping supports at most " +
        std::to_string(kMaxLicensesLarge) + " licenses");
  }
  if (!rects_.empty() &&
      rect.dimensions() != rects_.front().dimensions()) {
    return Status::InvalidArgument(
        "license dimensionality disagrees with earlier licenses");
  }
  const int index = size();
  ++groups_;  // The newcomer starts as its own group…
  for (int other = 0; other < index; ++other) {
    if (rect.Overlaps(rects_[static_cast<size_t>(other)])) {
      if (union_find_.Union(index, other)) {
        --groups_;  // …and loses one group per component it bridges.
        ++merges_;
      }
    }
  }
  rects_.push_back(rect);
  return index;
}

LicenseSet DynamicGrouping::GroupMaskOf(int index) const {
  GEOLIC_CHECK(index >= 0 && index < size());
  // UnionFind::Find is mutating (path compression); work on a copy for a
  // const API. Cheap at N ≤ kMaxLicensesLarge.
  UnionFind scratch = union_find_;
  const int root = scratch.Find(index);
  LicenseSet mask;
  for (int v = 0; v < size(); ++v) {
    if (scratch.Find(v) == root) {
      mask |= LicenseSet::Singleton(v);
    }
  }
  return mask;
}

ComponentSet DynamicGrouping::Components() const {
  UnionFind scratch = union_find_;
  ComponentSet out;
  out.component_of.assign(static_cast<size_t>(size()), -1);
  std::vector<int> component_of_root(kMaxLicensesLarge, -1);
  for (int v = 0; v < size(); ++v) {
    const int root = scratch.Find(v);
    int& k = component_of_root[static_cast<size_t>(root)];
    if (k == -1) {
      k = static_cast<int>(out.components.size());
      out.components.push_back(LicenseSet());
    }
    out.components[static_cast<size_t>(k)] |= LicenseSet::Singleton(v);
    out.component_of[static_cast<size_t>(v)] = k;
  }
  return out;
}

}  // namespace geolic
