#include "core/grouped_validator.h"

#include <utility>

#include "validation/exhaustive_validator.h"
#include "validation/zeta_validator.h"
#include "util/stopwatch.h"

namespace geolic {

Result<GroupedValidationResult> ValidateGroupedWithGrouping(
    const LicenseGrouping& grouping, const std::vector<int64_t>& aggregates,
    ValidationTree tree) {
  GroupedValidationResult result;
  result.group_count = grouping.group_count();
  for (int k = 0; k < grouping.group_count(); ++k) {
    result.group_sizes.push_back(grouping.GroupSize(k));
  }

  Stopwatch division_timer;
  GEOLIC_ASSIGN_OR_RETURN(
      DividedTrees divided,
      DivideAndReindex(std::move(tree), grouping, aggregates));
  result.division_micros = division_timer.ElapsedMicros();

  Stopwatch validation_timer;
  for (int k = 0; k < grouping.group_count(); ++k) {
    GEOLIC_ASSIGN_OR_RETURN(
        const ValidationReport group_report,
        ValidateExhaustive(divided.trees[static_cast<size_t>(k)],
                           divided.aggregates[static_cast<size_t>(k)]));
    result.report.equations_evaluated += group_report.equations_evaluated;
    result.report.nodes_visited += group_report.nodes_visited;
    for (const EquationResult& violation : group_report.violations) {
      EquationResult translated = violation;
      translated.set = grouping.LocalToOriginalMask(k, violation.set);
      result.report.violations.push_back(translated);
    }
  }
  result.validation_micros = validation_timer.ElapsedMicros();
  return result;
}

Result<GroupedValidationResult> ValidateGrouped(const LicenseSet& licenses,
                                                ValidationTree tree) {
  Stopwatch grouping_timer;
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(licenses);
  const double grouping_micros = grouping_timer.ElapsedMicros();

  GEOLIC_ASSIGN_OR_RETURN(
      GroupedValidationResult result,
      ValidateGroupedWithGrouping(grouping, licenses.AggregateCounts(),
                                  std::move(tree)));
  // D_T covers group identification + division (paper Section 5B).
  result.division_micros += grouping_micros;
  return result;
}

Result<GroupedValidationResult> ValidateGroupedZeta(
    const LicenseSet& licenses, ValidationTree tree, int max_dense_n) {
  GroupedValidationResult result;
  Stopwatch division_timer;
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(licenses);
  result.group_count = grouping.group_count();
  for (int k = 0; k < grouping.group_count(); ++k) {
    result.group_sizes.push_back(grouping.GroupSize(k));
  }
  GEOLIC_ASSIGN_OR_RETURN(
      DividedTrees divided,
      DivideAndReindex(std::move(tree), grouping,
                       licenses.AggregateCounts()));
  result.division_micros = division_timer.ElapsedMicros();

  Stopwatch validation_timer;
  for (int k = 0; k < grouping.group_count(); ++k) {
    const ValidationTree& group_tree =
        divided.trees[static_cast<size_t>(k)];
    const std::vector<int64_t>& group_aggregates =
        divided.aggregates[static_cast<size_t>(k)];
    Result<ValidationReport> group_report =
        grouping.GroupSize(k) <= max_dense_n
            ? ValidateZeta(group_tree, group_aggregates, max_dense_n)
            : ValidateExhaustive(group_tree, group_aggregates);
    if (!group_report.ok()) {
      return group_report.status();
    }
    result.report.equations_evaluated += group_report->equations_evaluated;
    result.report.nodes_visited += group_report->nodes_visited;
    for (const EquationResult& violation : group_report->violations) {
      EquationResult translated = violation;
      translated.set = grouping.LocalToOriginalMask(k, violation.set);
      result.report.violations.push_back(translated);
    }
  }
  result.validation_micros = validation_timer.ElapsedMicros();
  return result;
}

Result<GroupedValidationResult> ValidateGroupedFromLog(
    const LicenseSet& licenses, const LogStore& log) {
  GEOLIC_ASSIGN_OR_RETURN(ValidationTree tree,
                          ValidationTree::BuildFromLog(log));
  return ValidateGrouped(licenses, std::move(tree));
}

}  // namespace geolic
