#include "core/grouped_validator.h"

#include <utility>

#include "validation/validate.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

GroupedValidationResult FromOutcome(ValidationOutcome outcome) {
  GroupedValidationResult result;
  result.report = std::move(outcome.report);
  result.group_count = outcome.group_count;
  result.group_sizes = std::move(outcome.group_sizes);
  result.division_micros = outcome.division_micros;
  result.validation_micros = outcome.validation_micros;
  return result;
}

}  // namespace

Result<GroupedValidationResult> ValidateGroupedWithGrouping(
    const LicenseGrouping& grouping, const std::vector<int64_t>& aggregates,
    ValidationTree tree) {
  GroupedValidationResult result;
  result.group_count = grouping.group_count();
  for (int k = 0; k < grouping.group_count(); ++k) {
    result.group_sizes.push_back(grouping.GroupSize(k));
  }

  Stopwatch division_timer;
  GEOLIC_ASSIGN_OR_RETURN(
      DividedTrees divided,
      DivideAndReindex(std::move(tree), grouping, aggregates));
  result.division_micros = division_timer.ElapsedMicros();

  Stopwatch validation_timer;
  for (int k = 0; k < grouping.group_count(); ++k) {
    ValidateOptions engine;
    engine.mode = ValidationMode::kExhaustive;
    GEOLIC_ASSIGN_OR_RETURN(
        ValidationOutcome group_outcome,
        Validate(divided.trees[static_cast<size_t>(k)],
                 divided.aggregates[static_cast<size_t>(k)], engine));
    const ValidationReport& group_report = group_outcome.report;
    result.report.equations_evaluated += group_report.equations_evaluated;
    result.report.nodes_visited += group_report.nodes_visited;
    for (const EquationResult& violation : group_report.violations) {
      EquationResult translated = violation;
      translated.set = grouping.LocalToOriginalMask(k, violation.set);
      result.report.violations.push_back(translated);
    }
  }
  result.validation_micros = validation_timer.ElapsedMicros();
  return result;
}

// The three pipeline entry points are thin wrappers over the Validate
// facade (validation/validate.h); the grouped engine lives in
// validate_facade.cc.

Result<GroupedValidationResult> ValidateGrouped(const LicenseCatalog& licenses,
                                                ValidationTree tree) {
  ValidateOptions options;
  options.mode = ValidationMode::kGrouped;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(licenses, std::move(tree), options));
  return FromOutcome(std::move(outcome));
}

Result<GroupedValidationResult> ValidateGroupedZeta(
    const LicenseCatalog& licenses, ValidationTree tree, int max_dense_n) {
  ValidateOptions options;
  options.mode = ValidationMode::kGroupedZeta;
  options.max_dense_n = max_dense_n;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(licenses, std::move(tree), options));
  return FromOutcome(std::move(outcome));
}

Result<GroupedValidationResult> ValidateGroupedFromLog(
    const LicenseCatalog& licenses, const LogStore& log) {
  ValidateOptions options;
  options.mode = ValidationMode::kGrouped;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(licenses, log, options));
  return FromOutcome(std::move(outcome));
}

}  // namespace geolic
