#ifndef GEOLIC_CORE_GROUPED_VALIDATOR_H_
#define GEOLIC_CORE_GROUPED_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "core/grouping.h"
#include "core/tree_division.h"
#include "licensing/license_catalog.h"
#include "validation/log_store.h"
#include "validation/validation_report.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// Outcome of the paper's efficient (grouped) offline validation, with the
// cost breakdown the evaluation section reports.
struct GroupedValidationResult {
  // Combined report; violation sets are expressed in *original* license
  // indexes (local group results are translated back).
  ValidationReport report;
  // g and N_1..N_g.
  int group_count = 0;
  std::vector<int> group_sizes;
  // D_T: grouping + division + reindexing time (paper figures 7/9).
  double division_micros = 0.0;
  // V_T: per-group equation evaluation time.
  double validation_micros = 0.0;
};

// The paper's proposed validation pipeline over an already-built validation
// tree (consumed): build the overlap grouping from `licenses`, divide the
// tree (Algorithm 4), reindex (Algorithm 5), run Algorithm 2 per group, and
// merge the reports. Equations evaluated total Σ_k (2^{N_k} − 1).
//
// Compatibility wrapper, slated for [[deprecated]]: new code should call
// Validate(licenses, tree, {.mode = ValidationMode::kGrouped})
// (validation/validate.h). ValidateGrouped, ValidateGroupedFromLog and
// ValidateGroupedZeta all delegate to that facade.
Result<GroupedValidationResult> ValidateGrouped(const LicenseCatalog& licenses,
                                                ValidationTree tree);

// Convenience: builds the tree from `log` first (construction time is not
// included in the returned timings; the paper reports C_T separately).
Result<GroupedValidationResult> ValidateGroupedFromLog(
    const LicenseCatalog& licenses, const LogStore& log);

// Variant taking a precomputed grouping and aggregate array — used by the
// benches to time division and validation against externally generated
// workloads without rebuilding the grouping.
Result<GroupedValidationResult> ValidateGroupedWithGrouping(
    const LicenseGrouping& grouping, const std::vector<int64_t>& aggregates,
    ValidationTree tree);

// Grouped validation with the dense zeta-transform engine per group
// instead of per-equation tree traversal: both reductions composed —
// Σ_k 2^{N_k} equations *and* O(2^{N_k}·N_k) batch evaluation. Identical
// report to ValidateGrouped (violations ascending per group, translated to
// original indexes); groups larger than `max_dense_n` fall back to the
// traversal engine. Ablated in bench/ablation_zeta.
Result<GroupedValidationResult> ValidateGroupedZeta(
    const LicenseCatalog& licenses, ValidationTree tree, int max_dense_n = 26);

}  // namespace geolic

#endif  // GEOLIC_CORE_GROUPED_VALIDATOR_H_
