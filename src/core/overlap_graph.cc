#include "core/overlap_graph.h"

namespace geolic {

AdjacencyMatrix BuildOverlapGraph(const LicenseCatalog& licenses) {
  const int n = licenses.size();
  AdjacencyMatrix graph(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (licenses.at(i).OverlapsWith(licenses.at(j))) {
        graph.AddEdge(i, j);
      }
    }
  }
  return graph;
}

AdjacencyMatrix BuildOverlapGraphFromRects(
    const std::vector<HyperRect>& rects) {
  const int n = static_cast<int>(rects.size());
  AdjacencyMatrix graph(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rects[static_cast<size_t>(i)].Overlaps(
              rects[static_cast<size_t>(j)])) {
        graph.AddEdge(i, j);
      }
    }
  }
  return graph;
}

}  // namespace geolic
