#ifndef GEOLIC_CORE_GAIN_H_
#define GEOLIC_CORE_GAIN_H_

#include <cstdint>
#include <vector>

namespace geolic {

// Number of validation equations for n licenses: 2^n − 1. Requires
// 0 ≤ n ≤ kMaxLicensesLarge; exact below n = 64, saturating to
// UINT64_MAX from there up.
uint64_t EquationCount(int n);

// Total equations after grouping: Σ_k (2^{N_k} − 1).
uint64_t GroupedEquationCount(const std::vector<int>& group_sizes);

// The paper's equation 3: theoretical performance gain
// G ≈ (2^N − 1) / Σ_k (2^{N_k} − 1), with N = Σ N_k. Returns 1.0 for an
// empty grouping. Computed in double so N up to 64 is safe.
double TheoreticalGain(const std::vector<int>& group_sizes);

}  // namespace geolic

#endif  // GEOLIC_CORE_GAIN_H_
