#include "core/incremental_auditor.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "validation/flat_tree.h"

namespace geolic {

IncrementalAuditor::IncrementalAuditor(const LicenseCatalog* licenses,
                                       LicenseGrouping grouping)
    : licenses_(licenses), grouping_(std::move(grouping)) {
  const int g = grouping_.group_count();
  group_trees_.resize(static_cast<size_t>(g));
  group_aggregates_.reserve(static_cast<size_t>(g));
  const std::vector<int64_t> aggregates = licenses_->AggregateCounts();
  for (int k = 0; k < g; ++k) {
    Result<std::vector<int64_t>> group = grouping_.GroupAggregates(
        k, aggregates);
    GEOLIC_CHECK(group.ok());
    group_aggregates_.push_back(*std::move(group));
  }
}

Result<IncrementalAuditor> IncrementalAuditor::Create(
    const LicenseCatalog* licenses) {
  if (licenses == nullptr || licenses->empty()) {
    return Status::InvalidArgument(
        "incremental auditor needs at least one redistribution license");
  }
  return IncrementalAuditor(licenses,
                            LicenseGrouping::FromLicenses(*licenses));
}

Result<ValidationReport> IncrementalAuditor::IngestBatch(
    const std::vector<LogRecord>& batch) {
  // Phase 1: insert the records and collect the distinct dirty seed sets
  // per group (in local positions).
  std::vector<std::unordered_set<LicenseSet>> seeds(
      static_cast<size_t>(grouping_.group_count()));
  for (const LogRecord& record : batch) {
    if (record.set.Empty() || record.count <= 0) {
      return Status::InvalidArgument("malformed log record in batch");
    }
    if (!record.set.IsSubsetOf(licenses_->AllMask())) {
      return Status::InvalidArgument(
          "record references unknown license indexes: " +
          (record.set).ToString());
    }
    const int group = grouping_.GroupOf((record.set).Lowest());
    GEOLIC_ASSIGN_OR_RETURN(
        const LicenseSet local,
        grouping_.OriginalToLocalMask(group, record.set));
    GEOLIC_RETURN_IF_ERROR(group_trees_[static_cast<size_t>(group)].Insert(
        local, record.count));
    seeds[static_cast<size_t>(group)].insert(local);
    ++records_ingested_;
  }

  // Phase 2: per group, enumerate and evaluate the dirty equations — every
  // T within the group with T ⊇ S for some seed S, deduplicated.
  ValidationReport report;
  for (int k = 0; k < grouping_.group_count(); ++k) {
    const auto& group_seeds = seeds[static_cast<size_t>(k)];
    if (group_seeds.empty()) {
      continue;
    }
    const LicenseSet group_full = LicenseSet::Full(grouping_.GroupSize(k));
    std::unordered_set<LicenseSet> dirty;
    for (const LicenseSet& seed : group_seeds) {
      for (AscendingSubsetIterator it(group_full - seed); !it.Done();
           it.Next()) {
        dirty.insert(seed | it.subset());
      }
    }
    // Deterministic order for the report.
    std::vector<LicenseSet> ordered(dirty.begin(), dirty.end());
    std::sort(ordered.begin(), ordered.end());

    // The group tree just absorbed this batch's inserts and is static for
    // the rest of the audit: compile it flat once and evaluate every dirty
    // equation against the pruned arena form.
    const FlatValidationTree flat =
        FlatValidationTree::Compile(group_trees_[static_cast<size_t>(k)]);
    const std::vector<int64_t>& aggregates =
        group_aggregates_[static_cast<size_t>(k)];
    std::vector<int64_t> sums(ordered.size(), 0);
    flat.SumSubsetsBatch(ordered, sums, &report.nodes_visited);
    for (size_t e = 0; e < ordered.size(); ++e) {
      const LicenseSet set = ordered[e];
      int64_t av = 0;
      for (int j = 0; j < grouping_.GroupSize(k); ++j) {
        if ((set).Contains(j)) {
          av += aggregates[static_cast<size_t>(j)];
        }
      }
      ++report.equations_evaluated;
      if (sums[e] > av) {
        report.violations.push_back(EquationResult{
            grouping_.LocalToOriginalMask(k, set), sums[e], av});
      }
    }
  }
  std::sort(report.violations.begin(), report.violations.end(),
            [](const EquationResult& a, const EquationResult& b) {
              return a.set < b.set;
            });
  equations_evaluated_total_ += report.equations_evaluated;
  return report;
}

}  // namespace geolic
