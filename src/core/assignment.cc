#include "core/assignment.h"

#include <utility>

#include "graph/max_flow.h"

namespace geolic {

Result<SettlementAssignment> ComputeSettlement(const LicenseCatalog& licenses,
                                               const LogStore& log) {
  const int n = licenses.size();
  if (n == 0) {
    return Status::InvalidArgument("settlement needs at least one license");
  }
  const auto merged = log.MergedCounts();
  for (const auto& [set, count] : merged) {
    if (!set.IsSubsetOf(licenses.AllMask())) {
      return Status::InvalidArgument(
          "log references licenses outside the set: " + (set).ToString());
    }
    (void)count;
  }

  // Transportation network: 0 = source; 1..S = set nodes; then licenses;
  // last = sink.
  const int num_sets = static_cast<int>(merged.size());
  const int license_base = 1 + num_sets;
  const int sink = license_base + n;
  MaxFlow flow(sink + 1);

  struct SetEdges {
    LicenseSet set;
    std::vector<std::pair<int, int>> member_edges;  // (license, edge id).
  };
  std::vector<SetEdges> set_edges;
  set_edges.reserve(merged.size());
  int64_t total_demand = 0;
  int set_node = 1;
  for (const auto& [set, count] : merged) {
    SetEdges edges;
    edges.set = set;
    flow.AddEdge(0, set_node, count);
    total_demand += count;
    for (int license : (set).ToIndexes()) {
      edges.member_edges.emplace_back(
          license,
          flow.AddEdge(set_node, license_base + license,
                       MaxFlow::kInfinity));
    }
    set_edges.push_back(std::move(edges));
    ++set_node;
  }
  for (int license = 0; license < n; ++license) {
    flow.AddEdge(license_base + license, sink,
                 licenses.at(license).aggregate_count());
  }

  GEOLIC_ASSIGN_OR_RETURN(const int64_t routed, flow.Compute(0, sink));
  if (routed != total_demand) {
    return Status::FailedPrecondition(
        "log is not settleable: " + std::to_string(total_demand - routed) +
        " counts exceed the aggregate budgets (validation equations are "
        "violated)");
  }

  SettlementAssignment settlement;
  settlement.charged.assign(static_cast<size_t>(n), 0);
  for (const SetEdges& edges : set_edges) {
    auto& rows = settlement.allocation[edges.set];
    for (const auto& [license, edge_id] : edges.member_edges) {
      const int64_t amount = flow.flow_on(edge_id);
      if (amount > 0) {
        rows.emplace_back(license, amount);
        settlement.charged[static_cast<size_t>(license)] += amount;
      }
    }
  }
  settlement.remaining = licenses.AggregateCounts();
  for (int license = 0; license < n; ++license) {
    settlement.remaining[static_cast<size_t>(license)] -=
        settlement.charged[static_cast<size_t>(license)];
  }
  return settlement;
}

}  // namespace geolic
