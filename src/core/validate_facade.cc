// Implements the LicenseCatalog overloads of the Validate facade
// (validation/validate.h). They live in geolic_core because the grouped
// modes dispatch into grouping and tree division; the tree/log overloads
// are in validation/validate.cc.
#include <algorithm>
#include <utility>
#include <vector>

#include "core/grouping.h"
#include "core/tree_division.h"
#include "validation/validate.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace geolic {
namespace {

// The grouped pipeline: grouping + division (D_T), then per-group equation
// evaluation (V_T) — serially or with one task per group. With
// `zeta_per_group`, groups up to max_dense_n use the dense engine.
Result<ValidationOutcome> RunGrouped(const LicenseCatalog& licenses,
                                     ValidationTree tree, bool zeta_per_group,
                                     int max_dense_n, int num_threads) {
  ValidationOutcome outcome;

  Stopwatch division_timer;
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(licenses);
  outcome.group_count = grouping.group_count();
  for (int k = 0; k < grouping.group_count(); ++k) {
    outcome.group_sizes.push_back(grouping.GroupSize(k));
  }
  GEOLIC_ASSIGN_OR_RETURN(
      DividedTrees divided,
      DivideAndReindex(std::move(tree), grouping,
                       licenses.AggregateCounts()));
  outcome.division_micros = division_timer.ElapsedMicros();

  const int g = grouping.group_count();
  const auto validate_group = [&](int k) -> Result<ValidationReport> {
    const ValidationTree& group_tree = divided.trees[static_cast<size_t>(k)];
    const std::vector<int64_t>& group_aggregates =
        divided.aggregates[static_cast<size_t>(k)];
    ValidateOptions engine;
    engine.mode = (zeta_per_group && grouping.GroupSize(k) <= max_dense_n)
                      ? ValidationMode::kZeta
                      : ValidationMode::kExhaustive;
    engine.max_dense_n = max_dense_n;
    Result<ValidationOutcome> group_outcome =
        Validate(group_tree, group_aggregates, engine);
    if (!group_outcome.ok()) return group_outcome.status();
    return std::move(group_outcome->report);
  };

  Stopwatch validation_timer;
  std::vector<Result<ValidationReport>> group_reports(
      static_cast<size_t>(g), Status::Internal("not run"));
  if (num_threads > 1 && g > 1) {
    ThreadPool pool(std::min(num_threads, g));
    for (int k = 0; k < g; ++k) {
      pool.Schedule([&validate_group, &group_reports, k] {
        group_reports[static_cast<size_t>(k)] = validate_group(k);
      });
    }
    pool.Wait();
  } else {
    for (int k = 0; k < g; ++k) {
      group_reports[static_cast<size_t>(k)] = validate_group(k);
    }
  }

  // Merge in ascending group order so the report is deterministic and
  // byte-identical to the serial run.
  for (int k = 0; k < g; ++k) {
    Result<ValidationReport>& group_report =
        group_reports[static_cast<size_t>(k)];
    if (!group_report.ok()) {
      return group_report.status();
    }
    outcome.report.equations_evaluated += group_report->equations_evaluated;
    outcome.report.nodes_visited += group_report->nodes_visited;
    for (const EquationResult& violation : group_report->violations) {
      EquationResult translated = violation;
      translated.set = grouping.LocalToOriginalMask(k, violation.set);
      outcome.report.violations.push_back(translated);
    }
  }
  outcome.validation_micros = validation_timer.ElapsedMicros();
  return outcome;
}

}  // namespace

Result<ValidationOutcome> Validate(const LicenseCatalog& licenses,
                                   ValidationTree tree,
                                   const ValidateOptions& options) {
  ValidationMode mode = options.mode == ValidationMode::kAuto
                            ? ValidationMode::kGrouped
                            : options.mode;
  if (mode == ValidationMode::kExhaustive || mode == ValidationMode::kZeta) {
    ValidateOptions ungrouped = options;
    ungrouped.mode = mode;
    return Validate(tree, licenses.AggregateCounts(), ungrouped);
  }
  const int threads = options.num_threads == 0
                          ? ThreadPool::DefaultThreadCount()
                          : options.num_threads;
  return RunGrouped(licenses, std::move(tree),
                    mode == ValidationMode::kGroupedZeta,
                    options.max_dense_n, threads);
}

Result<ValidationOutcome> Validate(const LicenseCatalog& licenses,
                                   const LogStore& log,
                                   const ValidateOptions& options) {
  ValidationMode mode = options.mode == ValidationMode::kAuto
                            ? ValidationMode::kGrouped
                            : options.mode;
  if (mode == ValidationMode::kExhaustive || mode == ValidationMode::kZeta) {
    ValidateOptions ungrouped = options;
    ungrouped.mode = mode;
    return Validate(log, licenses.AggregateCounts(), ungrouped);
  }
  if (options.order != TreeOrder::kIndex) {
    return Status::InvalidArgument(
        "frequency relabeling is not supported for grouped modes (grouping "
        "already renumbers per group)");
  }
  GEOLIC_ASSIGN_OR_RETURN(ValidationTree tree,
                          ValidationTree::BuildFromLog(log));
  ValidateOptions resolved = options;
  resolved.mode = mode;
  return Validate(licenses, std::move(tree), resolved);
}

}  // namespace geolic
