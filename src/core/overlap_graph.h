#ifndef GEOLIC_CORE_OVERLAP_GRAPH_H_
#define GEOLIC_CORE_OVERLAP_GRAPH_H_

#include <vector>

#include "geometry/hyper_rect.h"
#include "graph/adjacency_matrix.h"
#include "licensing/license_catalog.h"

namespace geolic {

// Builds the paper's overlap graph (Section 3.3): one vertex per
// redistribution license, an edge between i and j iff the two licenses are
// overlapping — every constraint dimension of L_D^i intersects the
// corresponding dimension of L_D^j.
AdjacencyMatrix BuildOverlapGraph(const LicenseCatalog& licenses);

// Overlap graph straight from hyper-rectangles (workload generators and
// property tests operate at this level).
AdjacencyMatrix BuildOverlapGraphFromRects(const std::vector<HyperRect>& rects);

}  // namespace geolic

#endif  // GEOLIC_CORE_OVERLAP_GRAPH_H_
