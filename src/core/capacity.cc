#include "core/capacity.h"

#include <algorithm>

namespace geolic {

Result<CapacityQuote> RemainingCapacity(const LicenseCatalog& licenses,
                                        const LicenseGrouping& grouping,
                                        const ValidationTree& tree,
                                        const LicenseSet& set) {
  if (set.Empty()) {
    return Status::InvalidArgument("capacity query needs a non-empty set");
  }
  if (!set.IsSubsetOf(licenses.AllMask())) {
    return Status::InvalidArgument(
        "set references licenses outside the license set");
  }
  const int group = grouping.GroupOf(set.Lowest());
  const LicenseSet scope = grouping.GroupMask(group);
  if (!set.IsSubsetOf(scope)) {
    return Status::InvalidArgument(
        "set spans multiple overlap groups: " + set.ToString());
  }

  CapacityQuote quote;
  bool first = true;
  for (AscendingSubsetIterator it(scope - set); !it.Done(); it.Next()) {
    const LicenseSet t = set | it.subset();
    const int64_t slack = licenses.AggregateSum(t) - tree.SumSubsets(t);
    if (first || slack < quote.binding_slack) {
      quote.binding_set = t;
      quote.binding_slack = slack;
      first = false;
    }
  }
  quote.remaining = std::max<int64_t>(0, quote.binding_slack);
  return quote;
}

}  // namespace geolic
