#include "core/capacity.h"

#include <algorithm>

namespace geolic {

Result<CapacityQuote> RemainingCapacity(const LicenseSet& licenses,
                                        const LicenseGrouping& grouping,
                                        const ValidationTree& tree,
                                        LicenseMask set) {
  if (set == 0) {
    return Status::InvalidArgument("capacity query needs a non-empty set");
  }
  if (!IsSubsetOf(set, licenses.AllMask())) {
    return Status::InvalidArgument(
        "set references licenses outside the license set");
  }
  const int group = grouping.GroupOf(LowestLicense(set));
  const LicenseMask scope = grouping.GroupMask(group);
  if (!IsSubsetOf(set, scope)) {
    return Status::InvalidArgument(
        "set spans multiple overlap groups: " + MaskToString(set));
  }

  CapacityQuote quote;
  bool first = true;
  const LicenseMask extension = scope & ~set;
  LicenseMask x = 0;
  while (true) {
    const LicenseMask t = set | x;
    const int64_t slack = licenses.AggregateSum(t) - tree.SumSubsets(t);
    if (first || slack < quote.binding_slack) {
      quote.binding_set = t;
      quote.binding_slack = slack;
      first = false;
    }
    if (x == extension) {
      break;
    }
    x = (x - extension) & extension;
  }
  quote.remaining = std::max<int64_t>(0, quote.binding_slack);
  return quote;
}

}  // namespace geolic
