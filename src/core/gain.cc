#include "core/gain.h"

#include <cmath>

#include "util/check.h"
#include "util/license_set.h"

namespace geolic {

uint64_t EquationCount(int n) {
  GEOLIC_CHECK(n >= 0 && n <= kMaxLicensesLarge);
  if (n >= 64) {
    return UINT64_MAX;  // 2^n - 1 overflows uint64; saturate.
  }
  return (uint64_t{1} << n) - 1;
}

uint64_t GroupedEquationCount(const std::vector<int>& group_sizes) {
  uint64_t total = 0;
  for (int size : group_sizes) {
    total += EquationCount(size);
  }
  return total;
}

double TheoreticalGain(const std::vector<int>& group_sizes) {
  int n = 0;
  double denominator = 0.0;
  for (int size : group_sizes) {
    GEOLIC_CHECK(size >= 0);
    n += size;
    denominator += std::exp2(size) - 1.0;
  }
  if (n == 0 || denominator == 0.0) {
    return 1.0;
  }
  return (std::exp2(n) - 1.0) / denominator;
}

}  // namespace geolic
