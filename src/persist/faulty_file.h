#ifndef GEOLIC_PERSIST_FAULTY_FILE_H_
#define GEOLIC_PERSIST_FAULTY_FILE_H_

#include <cstdint>
#include <memory>

#include "persist/sync_file.h"
#include "util/check.h"

namespace geolic {

// Fault-injecting SyncFile decorator for crash-recovery tests: simulates a
// disk that tears a write mid-frame, dies outright, or fails an fsync.
// After any injected crash every further operation fails with IoError, so
// a writer cannot accidentally "heal" the file — exactly the state a
// recovery pass must cope with.
class FaultyFile : public SyncFile {
 public:
  explicit FaultyFile(std::unique_ptr<SyncFile> base)
      : base_(std::move(base)) {}

  // The next Append persists only its first `keep_bytes` bytes, then the
  // disk crashes: the torn append and every later operation fail.
  void TearNextAppend(size_t keep_bytes) {
    tear_armed_ = true;
    tear_keep_ = keep_bytes;
  }

  // Kills the disk now: nothing further persists, all operations fail.
  void CrashNow() { crashed_ = true; }

  // The next Sync fails with IoError (appended data stays buffered — the
  // caller must treat it as possibly lost).
  void FailNextSync() { fail_next_sync_ = true; }

  // Scheduled fault points (the simulation harness's knobs): the fault
  // fires on the `appends_ahead`-th future Append (1 = the very next one),
  // so a seed-driven schedule can place a crash at an exact journal frame
  // boundary chosen before the workload runs.

  // Tears the scheduled append after `keep_bytes` bytes, then the disk
  // dies. keep_bytes ≥ the frame size persists the whole frame while the
  // writer still observes a failure — the "acknowledged by the disk, never
  // acknowledged to the caller" recovery case.
  void ScheduleTearAppend(uint64_t appends_ahead, size_t keep_bytes) {
    GEOLIC_DCHECK(appends_ahead >= 1);
    tear_countdown_ = appends_ahead;
    tear_keep_ = keep_bytes;
  }

  // The scheduled append's Sync (and every later one) fails; the append
  // itself persists. With per-append fsync batching this is the same
  // recovery shape as a fully-persisted torn append.
  void ScheduleFailSyncAfterAppend(uint64_t appends_ahead) {
    GEOLIC_DCHECK(appends_ahead >= 1);
    sync_fail_countdown_ = appends_ahead;
  }

  Status Append(std::string_view data) override {
    if (crashed_) {
      return Status::IoError("injected fault: disk is dead");
    }
    if (tear_countdown_ > 0 && --tear_countdown_ == 0) {
      tear_armed_ = true;
    }
    if (sync_fail_countdown_ > 0 && --sync_fail_countdown_ == 0) {
      sync_dead_ = true;
    }
    if (tear_armed_) {
      tear_armed_ = false;
      crashed_ = true;
      const size_t keep = tear_keep_ < data.size() ? tear_keep_ : data.size();
      // Persist the torn prefix regardless of the base file's verdict —
      // the crash already happened from the caller's point of view.
      (void)base_->Append(data.substr(0, keep));
      return Status::IoError("injected fault: torn write");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    if (crashed_ || sync_dead_) {
      return Status::IoError(crashed_ ? "injected fault: disk is dead"
                                      : "injected fault: fsync failed");
    }
    if (fail_next_sync_) {
      fail_next_sync_ = false;
      return Status::IoError("injected fault: fsync failed");
    }
    return base_->Sync();
  }

  Status Close() override {
    if (crashed_) {
      return Status::IoError("injected fault: disk is dead");
    }
    return base_->Close();
  }

  // The wrapped file, for inspecting what actually reached the "platter".
  SyncFile* base() { return base_.get(); }

 private:
  std::unique_ptr<SyncFile> base_;
  bool crashed_ = false;
  bool tear_armed_ = false;
  size_t tear_keep_ = 0;
  bool fail_next_sync_ = false;
  bool sync_dead_ = false;
  uint64_t tear_countdown_ = 0;
  uint64_t sync_fail_countdown_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_PERSIST_FAULTY_FILE_H_
