#ifndef GEOLIC_PERSIST_SYNC_FILE_H_
#define GEOLIC_PERSIST_SYNC_FILE_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace geolic {

// Minimal append-only file the journal writes through. The indirection
// exists so tests can substitute an in-memory file and wrap it in a
// fault injector (persist/faulty_file.h) without touching the filesystem.
//
// Durability contract: Append hands bytes to the file; they are guaranteed
// to survive a crash only once a later Sync returns OK. Close does not
// imply Sync.
class SyncFile {
 public:
  virtual ~SyncFile() = default;

  // Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  // Forces every previously appended byte to stable storage.
  virtual Status Sync() = 0;

  // Releases the underlying resource; further operations fail.
  virtual Status Close() = 0;
};

// POSIX implementation over open/write/fsync.
class PosixSyncFile : public SyncFile {
 public:
  // Creates (or truncates) `path` for appending.
  static Result<std::unique_ptr<PosixSyncFile>> Create(
      const std::string& path);

  ~PosixSyncFile() override;  // Closes the descriptor; errors are dropped.
  PosixSyncFile(const PosixSyncFile&) = delete;
  PosixSyncFile& operator=(const PosixSyncFile&) = delete;

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

 private:
  PosixSyncFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;  // -1 once closed.
};

// In-memory implementation for tests and benches. `contents()` is what a
// recovered disk would hold had every append hit the platter;
// `synced_contents()` keeps only bytes covered by a completed Sync — the
// acknowledged-durable prefix that fsync batching is allowed to trail.
class InMemorySyncFile : public SyncFile {
 public:
  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

  const std::string& contents() const { return data_; }
  std::string synced_contents() const { return data_.substr(0, synced_size_); }
  size_t synced_size() const { return synced_size_; }

 private:
  std::string data_;
  size_t synced_size_ = 0;
  bool closed_ = false;
};

}  // namespace geolic

#endif  // GEOLIC_PERSIST_SYNC_FILE_H_
