#ifndef GEOLIC_PERSIST_CHECKPOINT_H_
#define GEOLIC_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "util/status.h"

namespace geolic {

// Checkpoint container format v2 — the CRC-protected envelope every geolic
// snapshot (validation tree, log store, service snapshot) is written in.
// The legacy formats ("GLTREE1", "GLOGBIN1") had zero corruption
// detection: a single flipped bit in a count field loaded cleanly and
// changed every downstream C⟨S⟩. v2 wraps the same payload bytes in a
// checksummed frame so corruption fails loudly instead.
//
// Layout (little-endian):
//   header  : magic "GLCKPT2\0" (8) | version u32 | kind u32 |
//             payload_size u64 | header_crc u32 (CRC32C of the preceding
//             24 header bytes)
//   payload : payload_size bytes (kind-specific)
//   footer  : payload_crc u32 (CRC32C of the payload)
//
// A reader verifies the header CRC before trusting payload_size (a mutated
// size must not drive a giant allocation or a bogus torn-tail diagnosis)
// and the payload CRC before handing the payload to the kind's parser.

inline constexpr char kCheckpointMagic[8] =
    {'G', 'L', 'C', 'K', 'P', 'T', '2', '\0'};
inline constexpr uint32_t kCheckpointVersion = 2;

// What the payload contains; mismatches fail the read.
enum class CheckpointKind : uint32_t {
  kValidationTree = 1,   // validation/tree_serialization.h body.
  kLogStore = 2,         // validation/log_store.h record table.
  kServiceSnapshot = 3,  // service/issuance_service.h checkpoint.
  kTenantSnapshot = 4,   // catalog/catalog_service.h per-tenant spill.
};

const char* CheckpointKindName(CheckpointKind kind);

// True iff `magic` (8 bytes) is the v2 container magic — format sniffers
// use this to route between v2 and the legacy loaders.
bool IsCheckpointMagic(const char* magic);

// Writes one framed checkpoint to `out`.
Status WriteCheckpoint(CheckpointKind kind, std::string_view payload,
                       std::ostream* out);

// Reads a framed checkpoint, verifying magic, version, kind and both CRCs.
Result<std::string> ReadCheckpointPayload(CheckpointKind expected_kind,
                                          std::istream* in);

// Same, for callers that already consumed (and verified) the 8-byte magic
// while sniffing the format.
Result<std::string> ReadCheckpointPayloadAfterMagic(
    CheckpointKind expected_kind, std::istream* in);

// File variants.
Status WriteCheckpointFile(CheckpointKind kind, std::string_view payload,
                           const std::string& path);

// Crash-safe publish: writes the framed checkpoint to `path + ".tmp"`,
// fsyncs it, renames it over `path`, and fsyncs the parent directory.
// After a crash at any point either the previous file or the complete new
// one is found — never a torn mix, and never a page-cache-only write that
// power loss can drop. Required wherever dependent state is discarded once
// the checkpoint "exists" (the catalog's checkpoint-then-truncate cutover
// truncates the journal pool on the strength of the spill files). Callers
// must serialize concurrent writes to the same `path` (the temp name is
// derived from it).
Status WriteCheckpointFileDurable(CheckpointKind kind,
                                  std::string_view payload,
                                  const std::string& path);
Result<std::string> ReadCheckpointFile(CheckpointKind expected_kind,
                                       const std::string& path);

}  // namespace geolic

#endif  // GEOLIC_PERSIST_CHECKPOINT_H_
