#ifndef GEOLIC_PERSIST_JOURNAL_H_
#define GEOLIC_PERSIST_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "persist/sync_file.h"
#include "validation/log_record.h"
#include "util/status.h"

namespace geolic {

// Crash-safe append-only issuance journal.
//
// The paper's offline aggregate validation assumes the issuance log
// survives intact between online admission and the periodic audit — a
// distributor that loses or silently corrupts records can overissue past
// A[S] undetected. The journal is the write-ahead side of that guarantee:
// IssuanceService frames every accepted issuance and appends it here
// before the admission mutates in-memory state or the decision returns.
//
// File layout (little-endian):
//   magic "GLJRNL1\0" (8 bytes), then frames:
//     payload_len u32 | seq u64 | header_crc u32 (CRC32C of the 12
//     preceding bytes) | payload_crc u32 (CRC32C of the payload) | payload
//   payload: set u64 | count i64 | id_len u32 | id bytes
//
// Recovery semantics (JournalReader):
//  * A frame whose bytes end at EOF before completing (torn write /
//    truncated tail) is dropped and reported via `torn_tail` — those
//    records were never covered by an acknowledged sync.
//  * Everything else fails loudly with the bad frame's byte offset: a
//    header or payload CRC mismatch (bit flips — the header CRC means a
//    flipped length field cannot masquerade as a torn tail), a duplicate
//    or out-of-order sequence number, a gap, or a malformed record.
//  * Never a silently wrong replay: every surviving entry was written
//    exactly once, in order.

inline constexpr char kJournalMagic[8] =
    {'G', 'L', 'J', 'R', 'N', 'L', '1', '\0'};

struct JournalOptions {
  // Sync the underlying file after every `fsync_interval`-th appended
  // frame: 1 = sync every append (maximum durability), k > 1 amortizes one
  // fsync over k admissions (a crash may lose up to k-1 acknowledged
  // frames — the "acknowledged-unsynced suffix"), 0 = never sync
  // automatically (the OS decides; callers use Sync()).
  int fsync_interval = 1;
};

// Appends framed records through a SyncFile. Not thread-safe — the service
// serializes appends behind its journal mutex.
class JournalWriter {
 public:
  // Takes ownership of `file`, writes and syncs the 8-byte magic.
  static Result<std::unique_ptr<JournalWriter>> Create(
      std::unique_ptr<SyncFile> file, const JournalOptions& options = {});

  // Convenience: creates (truncating) `path` via PosixSyncFile.
  static Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, const JournalOptions& options = {});

  // Frames and appends `record` under `seq` — the caller's strictly
  // increasing sequence counter (the reader rejects gaps, duplicates and
  // reordering). The frame reaches the file before returning; durability
  // follows the fsync batching option. After any I/O error the writer is
  // poisoned and every further append fails.
  Status Append(uint64_t seq, const LogRecord& record);

  // Forces every appended frame to stable storage.
  Status Sync();

  uint64_t frames_appended() const { return frames_appended_; }

  // Optional span sink: every fsync (explicit Sync or the batched one
  // inside Append) records a kJournalFsync span. Must outlive the writer.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // The underlying file — for tests that inspect or fault the "disk".
  SyncFile* file() { return file_.get(); }

 private:
  JournalWriter(std::unique_ptr<SyncFile> file, const JournalOptions& options)
      : file_(std::move(file)), options_(options) {}

  std::unique_ptr<SyncFile> file_;
  JournalOptions options_;
  Tracer* tracer_ = nullptr;
  uint64_t frames_appended_ = 0;
  int frames_since_sync_ = 0;
  bool poisoned_ = false;
};

// One replayed frame.
struct JournalEntry {
  uint64_t seq = 0;
  LogRecord record;
};

// Result of scanning a journal.
struct JournalReplay {
  std::vector<JournalEntry> entries;  // In sequence order, contiguous.
  // True when the file ends inside an incomplete final frame. The partial
  // bytes are dropped: they can only belong to an append that crashed
  // before its sync, i.e. the unacknowledged suffix.
  bool torn_tail = false;
  uint64_t torn_tail_offset = 0;  // Byte offset of the incomplete frame.
};

class JournalReader {
 public:
  // Parses journal bytes. Non-OK on any corruption that is not a clean
  // torn tail; the message names the bad frame's byte offset.
  static Result<JournalReplay> Parse(std::string_view bytes);

  // Reads and parses `path`.
  static Result<JournalReplay> ReadFile(const std::string& path);
};

// Frame encoding shared with the service checkpoint payload: appends
// set/count/id to `out`, and the matching decoder advancing `*pos`.
void EncodeLogRecord(const LogRecord& record, std::string* out);
Status DecodeLogRecord(std::string_view bytes, size_t* pos,
                       LogRecord* record);

}  // namespace geolic

#endif  // GEOLIC_PERSIST_JOURNAL_H_
