#ifndef GEOLIC_PERSIST_JOURNAL_H_
#define GEOLIC_PERSIST_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "licensing/license.h"
#include "obs/trace.h"
#include "persist/sync_file.h"
#include "validation/log_record.h"
#include "util/status.h"

namespace geolic {

// Crash-safe append-only issuance journal.
//
// The paper's offline aggregate validation assumes the issuance log
// survives intact between online admission and the periodic audit — a
// distributor that loses or silently corrupts records can overissue past
// A[S] undetected. The journal is the write-ahead side of that guarantee:
// IssuanceService frames every accepted issuance and appends it here
// before the admission mutates in-memory state or the decision returns.
//
// File layout (little-endian):
//   magic "GLJRNL1\0" (8 bytes), then frames:
//     payload_len u32 | seq u64 | header_crc u32 (CRC32C of the 12
//     preceding bytes) | payload_crc u32 (CRC32C of the payload) | payload
//   admission payload: set u64 | count i64 | id_len u32 | id bytes
//
// A leading set word of 0 cannot occur in a real admission (record sets
// are never empty), so it escapes to a u32 tag. Tags 2..16 are the wide-set
// word count (v3 multi-word admissions); tags with the high bit set are the
// catalog-reconfiguration kinds introduced with the live license lifecycle:
//   0x80000001 acquire: one license in license_serialization.h binary form
//   0x80000002 revoke:  index u32 | id_len u32 | id bytes (the revoked
//              license's catalog index and, as a cross-check, its id)
//   0x80000003 expire:  dim u32 | cutoff i64 | removed_count u32 |
//              removed indexes u32 ascending (licenses whose `dim` interval
//              ends below `cutoff`, recomputed and cross-checked on replay)
//   0x80000004 tenant op (the multi-tenant catalog's v3 frame — many
//              tenants multiplexed onto one shared writer):
//              tenant_id u64 | tenant_seq u64 | op u8 | op body —
//              op 1 issue-intent / 2 acquire: one license in
//              license_serialization.h binary form; op 3 revoke:
//              id_len u32 | id bytes; op 4 expire: dim u32 | cutoff i64.
//              tenant_seq is the tenant's own contiguous op counter
//              (1, 2, ...): catalog recovery groups frames by tenant_id and
//              rejects per-tenant gaps or reordering, so a misrouted frame
//              can never silently replay into the wrong tenant. Tenant
//              frames are intent records (logged before the op executes);
//              replay re-executes them deterministically.
// Reconfig frames share the admission sequence space: replay applies them
// in order, renumbering every earlier admission record past a removal.
//
// Recovery semantics (JournalReader):
//  * A frame whose bytes end at EOF before completing (torn write /
//    truncated tail) is dropped and reported via `torn_tail` — those
//    records were never covered by an acknowledged sync.
//  * Everything else fails loudly with the bad frame's byte offset: a
//    header or payload CRC mismatch (bit flips — the header CRC means a
//    flipped length field cannot masquerade as a torn tail), a duplicate
//    or out-of-order sequence number, a gap, or a malformed record.
//  * Never a silently wrong replay: every surviving entry was written
//    exactly once, in order.

inline constexpr char kJournalMagic[8] =
    {'G', 'L', 'J', 'R', 'N', 'L', '1', '\0'};

struct JournalOptions {
  // Sync the underlying file after every `fsync_interval`-th appended
  // frame: 1 = sync every append (maximum durability), k > 1 amortizes one
  // fsync over k admissions (a crash may lose up to k-1 acknowledged
  // frames — the "acknowledged-unsynced suffix"), 0 = never sync
  // automatically (the OS decides; callers use Sync()).
  int fsync_interval = 1;
};

// Appends framed records through a SyncFile. Not thread-safe — the service
// serializes appends behind its journal mutex.
class JournalWriter {
 public:
  // Takes ownership of `file`, writes and syncs the 8-byte magic.
  static Result<std::unique_ptr<JournalWriter>> Create(
      std::unique_ptr<SyncFile> file, const JournalOptions& options = {});

  // Convenience: creates (truncating) `path` via PosixSyncFile.
  static Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, const JournalOptions& options = {});

  // Frames and appends `record` under `seq` — the caller's strictly
  // increasing sequence counter (the reader rejects gaps, duplicates and
  // reordering). The frame reaches the file before returning; durability
  // follows the fsync batching option. After any I/O error the writer is
  // poisoned and every further append fails.
  Status Append(uint64_t seq, const LogRecord& record);

  // Catalog-reconfiguration frames (see the format comment above). They
  // share the admission sequence space and the same durability rules.
  Status AppendAcquire(uint64_t seq, const License& license);
  Status AppendRevoke(uint64_t seq, int index, std::string_view license_id);
  Status AppendExpire(uint64_t seq, int dim, int64_t cutoff,
                      const std::vector<int>& removed_indexes);

  // Tenant-tagged catalog frame (see the format comment above): one
  // multi-tenant op, routed onto this shared writer by the catalog layer.
  // `seq` is this writer's frame sequence; `op.tenant_seq` is the tenant's
  // own contiguous counter.
  Status AppendTenantOp(uint64_t seq, const struct TenantOpFrame& op);

  // Forces every appended frame to stable storage.
  Status Sync();

  // Flushes the batched-fsync tail, then closes the file. With
  // fsync_interval != 1, frames appended since the last batch boundary
  // are acknowledged but not yet durable; without this final sync a clean
  // shutdown would silently lose them — the one case the torn-tail rules
  // cannot excuse, because every one of those appends returned OK.
  // Idempotent; every later Append/Sync fails. A Close after an I/O error
  // (poisoned writer) fails loudly instead of pretending durability.
  Status Close();

  // Best-effort Close() when the caller did not: a destructor cannot
  // report, so code that needs the sync outcome calls Close() itself.
  ~JournalWriter();

  uint64_t frames_appended() const { return frames_appended_; }

  // True once an I/O error has poisoned the writer: every further
  // Append/Sync fails and Close refuses to pretend durability. Callers
  // that must not keep serving past a dead journal (the catalog pool)
  // check this to fail-stop instead of limping per-op.
  bool poisoned() const { return poisoned_; }

  // Optional span sink: every fsync (explicit Sync or the batched one
  // inside Append) records a kJournalFsync span. Must outlive the writer.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // The underlying file — for tests that inspect or fault the "disk".
  SyncFile* file() { return file_.get(); }

 private:
  JournalWriter(std::unique_ptr<SyncFile> file, const JournalOptions& options)
      : file_(std::move(file)), options_(options) {}

  // Frames `payload` under `seq`: CRC header, append, batched fsync.
  Status AppendFrame(uint64_t seq, std::string_view payload);

  std::unique_ptr<SyncFile> file_;
  JournalOptions options_;
  Tracer* tracer_ = nullptr;
  uint64_t frames_appended_ = 0;
  int frames_since_sync_ = 0;  // Appended, not yet covered by a sync.
  bool poisoned_ = false;
  bool closed_ = false;
};

// One replayed frame.
enum class JournalEntryKind : uint8_t {
  kAdmission = 0,
  kAcquire,
  kRevoke,
  kExpire,
  kTenantOp,
};

// The op inside a tenant-tagged frame.
enum class TenantOpKind : uint8_t {
  kIssue = 1,    // Issue intent: re-run TryIssue with the carried license.
  kAcquire = 2,  // AcquireLicense with the carried license.
  kRevoke = 3,   // RevokeLicenseById.
  kExpire = 4,   // ExpireDimensionBelow.
};

// One multi-tenant catalog op, as framed onto a shared writer.
struct TenantOpFrame {
  uint64_t tenant_id = 0;
  uint64_t tenant_seq = 0;  // Per-tenant contiguous counter, starts at 1.
  TenantOpKind op = TenantOpKind::kIssue;
  std::optional<License> license;  // kIssue / kAcquire.
  std::string revoke_id;           // kRevoke.
  int expire_dim = 0;              // kExpire.
  int64_t expire_cutoff = 0;       // kExpire.
};

struct JournalEntry {
  uint64_t seq = 0;
  JournalEntryKind kind = JournalEntryKind::kAdmission;
  LogRecord record;                   // kAdmission
  std::optional<License> acquired;    // kAcquire
  int revoked_index = 0;              // kRevoke
  std::string revoked_id;             // kRevoke
  int expire_dim = 0;                 // kExpire
  int64_t expire_cutoff = 0;          // kExpire
  std::vector<int> expired_indexes;   // kExpire, ascending
  TenantOpFrame tenant;               // kTenantOp
};

// Result of scanning a journal.
struct JournalReplay {
  std::vector<JournalEntry> entries;  // In sequence order, contiguous.
  // True when the file ends inside an incomplete final frame. The partial
  // bytes are dropped: they can only belong to an append that crashed
  // before its sync, i.e. the unacknowledged suffix.
  bool torn_tail = false;
  uint64_t torn_tail_offset = 0;  // Byte offset of the incomplete frame.
};

class JournalReader {
 public:
  // Parses journal bytes. Non-OK on any corruption that is not a clean
  // torn tail; the message names the bad frame's byte offset.
  static Result<JournalReplay> Parse(std::string_view bytes);

  // Reads and parses `path`.
  static Result<JournalReplay> ReadFile(const std::string& path);
};

// Frame encoding shared with the service checkpoint payload: appends
// set/count/id to `out`, and the matching decoder advancing `*pos`.
void EncodeLogRecord(const LogRecord& record, std::string* out);
Status DecodeLogRecord(std::string_view bytes, size_t* pos,
                       LogRecord* record);

}  // namespace geolic

#endif  // GEOLIC_PERSIST_JOURNAL_H_
