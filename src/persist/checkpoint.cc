#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "persist/sync_file.h"
#include "util/crc32c.h"

namespace geolic {
namespace {

// Header bytes covered by the header CRC: magic + version + kind + size.
constexpr size_t kCoveredHeaderBytes = 8 + 4 + 4 + 8;

// Sanity bound mirroring the library's scale (a 2^32-node tree is already
// rejected downstream); also caps what a corrupt-but-CRC-colliding size
// field could make us allocate.
constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 33;

void PutU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void PutU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

}  // namespace

const char* CheckpointKindName(CheckpointKind kind) {
  switch (kind) {
    case CheckpointKind::kValidationTree:
      return "validation-tree";
    case CheckpointKind::kLogStore:
      return "log-store";
    case CheckpointKind::kServiceSnapshot:
      return "service-snapshot";
    case CheckpointKind::kTenantSnapshot:
      return "tenant-snapshot";
  }
  return "unknown";
}

bool IsCheckpointMagic(const char* magic) {
  return std::memcmp(magic, kCheckpointMagic, sizeof(kCheckpointMagic)) == 0;
}

Status WriteCheckpoint(CheckpointKind kind, std::string_view payload,
                       std::ostream* out) {
  std::string header(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutU32(&header, kCheckpointVersion);
  PutU32(&header, static_cast<uint32_t>(kind));
  PutU64(&header, payload.size());
  PutU32(&header, Crc32c(header));
  out->write(header.data(), static_cast<std::streamsize>(header.size()));
  out->write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const uint32_t payload_crc = Crc32c(payload);
  out->write(reinterpret_cast<const char*>(&payload_crc),
             sizeof(payload_crc));
  if (!*out) {
    return Status::IoError("checkpoint write failed");
  }
  return Status::Ok();
}

Result<std::string> ReadCheckpointPayload(CheckpointKind expected_kind,
                                          std::istream* in) {
  char magic[sizeof(kCheckpointMagic)];
  in->read(magic, sizeof(magic));
  if (!*in || !IsCheckpointMagic(magic)) {
    return Status::ParseError("not a geolic v2 checkpoint (bad magic)");
  }
  return ReadCheckpointPayloadAfterMagic(expected_kind, in);
}

Result<std::string> ReadCheckpointPayloadAfterMagic(
    CheckpointKind expected_kind, std::istream* in) {
  char rest[kCoveredHeaderBytes - sizeof(kCheckpointMagic)];
  uint32_t header_crc = 0;
  in->read(rest, sizeof(rest));
  in->read(reinterpret_cast<char*>(&header_crc), sizeof(header_crc));
  if (!*in) {
    return Status::ParseError("truncated checkpoint header");
  }
  uint32_t computed = Crc32cExtend(0, kCheckpointMagic,
                                   sizeof(kCheckpointMagic));
  computed = Crc32cExtend(computed, rest, sizeof(rest));
  if (computed != header_crc) {
    return Status::ParseError(
        "checkpoint header crc mismatch (header at offset 0)");
  }
  uint32_t version = 0;
  uint32_t kind = 0;
  uint64_t payload_size = 0;
  std::memcpy(&version, rest, sizeof(version));
  std::memcpy(&kind, rest + 4, sizeof(kind));
  std::memcpy(&payload_size, rest + 8, sizeof(payload_size));
  if (version != kCheckpointVersion) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(version));
  }
  if (kind != static_cast<uint32_t>(expected_kind)) {
    return Status::ParseError(
        std::string("checkpoint kind mismatch: want ") +
        CheckpointKindName(expected_kind) + ", file holds " +
        CheckpointKindName(static_cast<CheckpointKind>(kind)));
  }
  if (payload_size > kMaxPayloadBytes) {
    return Status::ParseError("implausible checkpoint payload size");
  }
  // Chunked read: a truncated file fails fast instead of first reserving
  // the full declared size.
  std::string payload;
  uint64_t remaining = payload_size;
  while (remaining > 0) {
    const uint64_t chunk = remaining < (1u << 20) ? remaining : (1u << 20);
    const size_t old_size = payload.size();
    payload.resize(old_size + chunk);
    in->read(payload.data() + old_size, static_cast<std::streamsize>(chunk));
    if (!*in) {
      return Status::ParseError("truncated checkpoint payload");
    }
    remaining -= chunk;
  }
  uint32_t payload_crc = 0;
  in->read(reinterpret_cast<char*>(&payload_crc), sizeof(payload_crc));
  if (!*in) {
    return Status::ParseError("truncated checkpoint footer");
  }
  if (Crc32c(payload) != payload_crc) {
    return Status::ParseError(
        "checkpoint payload crc mismatch (payload at offset " +
        std::to_string(kCoveredHeaderBytes + sizeof(uint32_t)) + ")");
  }
  return payload;
}

Status WriteCheckpointFile(CheckpointKind kind, std::string_view payload,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return WriteCheckpoint(kind, payload, &out);
}

Status WriteCheckpointFileDurable(CheckpointKind kind,
                                  std::string_view payload,
                                  const std::string& path) {
  std::ostringstream framed;
  GEOLIC_RETURN_IF_ERROR(WriteCheckpoint(kind, payload, &framed));
  const std::string bytes = framed.str();

  const std::string tmp_path = path + ".tmp";
  GEOLIC_ASSIGN_OR_RETURN(std::unique_ptr<PosixSyncFile> tmp,
                          PosixSyncFile::Create(tmp_path));
  Status written = tmp->Append(bytes);
  if (written.ok()) {
    written = tmp->Sync();
  }
  const Status closed = tmp->Close();
  if (written.ok() && !closed.ok()) {
    written = closed;
  }
  if (!written.ok()) {
    ::unlink(tmp_path.c_str());  // Best-effort; the target is untouched.
    return written;
  }

  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    ::unlink(tmp_path.c_str());
    return Status::IoError("rename " + tmp_path + " -> " + path +
                           " failed: " + reason);
  }

  // Durability of the rename itself: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IoError("open directory " + dir +
                           " failed: " + std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(dir_fd);
    return Status::IoError("fsync directory " + dir + " failed: " + reason);
  }
  if (::close(dir_fd) != 0) {
    return Status::IoError("close directory " + dir +
                           " failed: " + std::strerror(errno));
  }
  return Status::Ok();
}

Result<std::string> ReadCheckpointFile(CheckpointKind expected_kind,
                                       const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ReadCheckpointPayload(expected_kind, &in);
}

}  // namespace geolic
