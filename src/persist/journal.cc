#include "persist/journal.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "licensing/license_serialization.h"
#include "persist/framing.h"
#include "util/crc32c.h"

namespace geolic {

using framing::GetScalar;
using framing::PutScalar;

namespace {

constexpr size_t kFrameHeaderBytes = 4 + 8 + 4 + 4;  // len, seq, crcs.
// Writer-side ids are capped like the log store's loader; with the header
// CRC verified, any larger length is corruption, not a real frame.
constexpr uint32_t kMaxIdBytes = 4096;
// Acquire frames embed a serialized license (ids, content key, per-
// dimension ranges); 64 KiB bounds every writer-produced payload with
// room to spare while still rejecting corrupt lengths early.
constexpr uint32_t kMaxPayloadBytes = 64 * 1024;

// Reconfig payload tags — disjoint from the wide-set word counts (2..16)
// that share the zero-word escape. See the format comment in journal.h.
constexpr uint32_t kReconfigTagBit = 0x80000000u;
constexpr uint32_t kAcquireTag = kReconfigTagBit | 1;
constexpr uint32_t kRevokeTag = kReconfigTagBit | 2;
constexpr uint32_t kExpireTag = kReconfigTagBit | 3;
constexpr uint32_t kTenantTag = kReconfigTagBit | 4;

Status FrameError(uint64_t offset, const std::string& what) {
  return Status::ParseError("journal frame at offset " +
                            std::to_string(offset) + ": " + what);
}

}  // namespace

void EncodeLogRecord(const LogRecord& record, std::string* out) {
  // v3 set encoding, byte-identical to v2 for inline (single-word) sets:
  // a record's set is never empty, so the u64 value 0 never occurs as a
  // valid v2 set word — it doubles as the wide-set escape, followed by an
  // explicit word count and the little-endian word span.
  if (record.set.WordCount() == 1) {
    PutScalar(out, record.set.AsWord());
  } else {
    PutScalar(out, uint64_t{0});
    PutScalar(out, static_cast<uint32_t>(record.set.WordCount()));
    for (int w = 0; w < record.set.WordCount(); ++w) {
      PutScalar(out, record.set.Word(w));
    }
  }
  PutScalar(out, record.count);
  PutScalar(out, static_cast<uint32_t>(record.issued_license_id.size()));
  out->append(record.issued_license_id);
}

Status DecodeLogRecord(std::string_view bytes, size_t* pos,
                       LogRecord* record) {
  uint64_t first_word = 0;
  if (!GetScalar(bytes, pos, &first_word)) {
    return Status::ParseError("record fields truncated");
  }
  if (first_word != 0) {
    record->set = LicenseSet::FromWord(first_word);
  } else {
    // Wide-set escape (see EncodeLogRecord). The decoded set must be
    // canonical — a trailing zero word or a width of 1 would make encode ∘
    // decode non-idempotent, so both are corruption.
    uint32_t word_count = 0;
    if (!GetScalar(bytes, pos, &word_count)) {
      return Status::ParseError("record fields truncated");
    }
    if (word_count < 2 ||
        word_count > static_cast<uint32_t>(kMaxLicenseWords)) {
      return Status::ParseError("implausible set word count");
    }
    uint64_t words[kMaxLicenseWords];
    for (uint32_t w = 0; w < word_count; ++w) {
      if (!GetScalar(bytes, pos, &words[w])) {
        return Status::ParseError("record fields truncated");
      }
    }
    if (words[word_count - 1] == 0) {
      return Status::ParseError("non-canonical wide set");
    }
    record->set = LicenseSet::FromWords({words, word_count});
  }
  uint32_t id_len = 0;
  if (!GetScalar(bytes, pos, &record->count) ||
      !GetScalar(bytes, pos, &id_len)) {
    return Status::ParseError("record fields truncated");
  }
  if (id_len > kMaxIdBytes || bytes.size() - *pos < id_len) {
    return Status::ParseError("implausible record id length");
  }
  record->issued_license_id.assign(bytes.data() + *pos, id_len);
  *pos += id_len;
  if (record->set.Empty()) {
    return Status::ParseError("record set is empty");
  }
  if (record->count <= 0) {
    return Status::ParseError("record count is not positive");
  }
  return Status::Ok();
}

namespace {

// Decodes one frame payload — an admission record or, behind the
// zero-word/tag escape, a reconfiguration frame — into `entry`.
Status DecodeJournalPayload(std::string_view payload, JournalEntry* entry) {
  uint64_t first_word = 0;
  uint32_t tag = 0;
  size_t peek = 0;
  const bool is_reconfig =
      GetScalar(payload, &peek, &first_word) && first_word == 0 &&
      GetScalar(payload, &peek, &tag) && (tag & kReconfigTagBit) != 0;
  if (!is_reconfig) {
    size_t pos = 0;
    GEOLIC_RETURN_IF_ERROR(DecodeLogRecord(payload, &pos, &entry->record));
    if (pos != payload.size()) {
      return Status::ParseError("trailing bytes inside frame payload");
    }
    return Status::Ok();
  }
  size_t pos = peek;  // Past the escape word and the tag.
  switch (tag) {
    case kAcquireTag: {
      entry->kind = JournalEntryKind::kAcquire;
      std::istringstream in{std::string(payload.substr(pos))};
      GEOLIC_ASSIGN_OR_RETURN(License license, ReadLicenseBinary(&in));
      if (in.peek() != std::char_traits<char>::eof()) {
        return Status::ParseError("trailing bytes inside acquire payload");
      }
      entry->acquired.emplace(std::move(license));
      return Status::Ok();
    }
    case kRevokeTag: {
      entry->kind = JournalEntryKind::kRevoke;
      uint32_t index = 0;
      uint32_t id_len = 0;
      if (!GetScalar(payload, &pos, &index) ||
          !GetScalar(payload, &pos, &id_len)) {
        return Status::ParseError("revoke fields truncated");
      }
      if (index >= static_cast<uint32_t>(kMaxLicensesLarge)) {
        return Status::ParseError("implausible revoked index");
      }
      if (id_len > kMaxIdBytes || payload.size() - pos < id_len) {
        return Status::ParseError("implausible revoked id length");
      }
      entry->revoked_index = static_cast<int>(index);
      entry->revoked_id.assign(payload.data() + pos, id_len);
      pos += id_len;
      if (pos != payload.size()) {
        return Status::ParseError("trailing bytes inside revoke payload");
      }
      return Status::Ok();
    }
    case kExpireTag: {
      entry->kind = JournalEntryKind::kExpire;
      uint32_t dim = 0;
      int64_t cutoff = 0;
      uint32_t removed = 0;
      if (!GetScalar(payload, &pos, &dim) ||
          !GetScalar(payload, &pos, &cutoff) ||
          !GetScalar(payload, &pos, &removed)) {
        return Status::ParseError("expire fields truncated");
      }
      if (removed > static_cast<uint32_t>(kMaxLicensesLarge)) {
        return Status::ParseError("implausible expired index count");
      }
      entry->expire_dim = static_cast<int>(dim);
      entry->expire_cutoff = cutoff;
      entry->expired_indexes.reserve(removed);
      int previous = -1;
      for (uint32_t i = 0; i < removed; ++i) {
        uint32_t index = 0;
        if (!GetScalar(payload, &pos, &index)) {
          return Status::ParseError("expire fields truncated");
        }
        if (index >= static_cast<uint32_t>(kMaxLicensesLarge) ||
            static_cast<int>(index) <= previous) {
          return Status::ParseError("expired indexes not ascending");
        }
        previous = static_cast<int>(index);
        entry->expired_indexes.push_back(previous);
      }
      if (pos != payload.size()) {
        return Status::ParseError("trailing bytes inside expire payload");
      }
      return Status::Ok();
    }
    case kTenantTag: {
      entry->kind = JournalEntryKind::kTenantOp;
      TenantOpFrame& op = entry->tenant;
      uint8_t op_byte = 0;
      if (!GetScalar(payload, &pos, &op.tenant_id) ||
          !GetScalar(payload, &pos, &op.tenant_seq) ||
          !GetScalar(payload, &pos, &op_byte)) {
        return Status::ParseError("tenant op fields truncated");
      }
      if (op.tenant_seq == 0) {
        return Status::ParseError("tenant op sequence 0");
      }
      op.op = static_cast<TenantOpKind>(op_byte);
      switch (op.op) {
        case TenantOpKind::kIssue:
        case TenantOpKind::kAcquire: {
          std::istringstream in{std::string(payload.substr(pos))};
          GEOLIC_ASSIGN_OR_RETURN(License license, ReadLicenseBinary(&in));
          if (in.peek() != std::char_traits<char>::eof()) {
            return Status::ParseError(
                "trailing bytes inside tenant op payload");
          }
          op.license.emplace(std::move(license));
          return Status::Ok();
        }
        case TenantOpKind::kRevoke: {
          uint32_t id_len = 0;
          if (!GetScalar(payload, &pos, &id_len)) {
            return Status::ParseError("tenant op fields truncated");
          }
          if (id_len > kMaxIdBytes || payload.size() - pos < id_len) {
            return Status::ParseError("implausible tenant revoke id length");
          }
          op.revoke_id.assign(payload.data() + pos, id_len);
          pos += id_len;
          if (pos != payload.size()) {
            return Status::ParseError(
                "trailing bytes inside tenant op payload");
          }
          return Status::Ok();
        }
        case TenantOpKind::kExpire: {
          uint32_t dim = 0;
          if (!GetScalar(payload, &pos, &dim) ||
              !GetScalar(payload, &pos, &op.expire_cutoff)) {
            return Status::ParseError("tenant op fields truncated");
          }
          op.expire_dim = static_cast<int>(dim);
          if (pos != payload.size()) {
            return Status::ParseError(
                "trailing bytes inside tenant op payload");
          }
          return Status::Ok();
        }
      }
      return Status::ParseError("unknown tenant op kind");
    }
    default:
      return Status::ParseError("unknown reconfiguration tag");
  }
}

}  // namespace

Result<std::unique_ptr<JournalWriter>> JournalWriter::Create(
    std::unique_ptr<SyncFile> file, const JournalOptions& options) {
  if (file == nullptr) {
    return Status::InvalidArgument("journal needs a file");
  }
  if (options.fsync_interval < 0) {
    return Status::InvalidArgument("fsync_interval must be >= 0");
  }
  auto writer = std::unique_ptr<JournalWriter>(
      new JournalWriter(std::move(file), options));
  // The magic is synced unconditionally so an acknowledged journal can
  // never be mistaken for garbage: a later crash leaves, at worst, a torn
  // frame after a valid magic.
  GEOLIC_RETURN_IF_ERROR(writer->file_->Append(
      std::string_view(kJournalMagic, sizeof(kJournalMagic))));
  GEOLIC_RETURN_IF_ERROR(writer->file_->Sync());
  return writer;
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, const JournalOptions& options) {
  GEOLIC_ASSIGN_OR_RETURN(std::unique_ptr<PosixSyncFile> file,
                          PosixSyncFile::Create(path));
  return Create(std::move(file), options);
}

Status JournalWriter::Append(uint64_t seq, const LogRecord& record) {
  std::string payload;
  EncodeLogRecord(record, &payload);
  return AppendFrame(seq, payload);
}

Status JournalWriter::AppendAcquire(uint64_t seq, const License& license) {
  std::ostringstream body;
  GEOLIC_RETURN_IF_ERROR(WriteLicenseBinary(license, &body));
  std::string payload;
  PutScalar(&payload, uint64_t{0});
  PutScalar(&payload, kAcquireTag);
  payload.append(body.str());
  return AppendFrame(seq, payload);
}

Status JournalWriter::AppendRevoke(uint64_t seq, int index,
                                   std::string_view license_id) {
  if (index < 0) {
    return Status::InvalidArgument("revoked index must be non-negative");
  }
  std::string payload;
  PutScalar(&payload, uint64_t{0});
  PutScalar(&payload, kRevokeTag);
  PutScalar(&payload, static_cast<uint32_t>(index));
  PutScalar(&payload, static_cast<uint32_t>(license_id.size()));
  payload.append(license_id);
  return AppendFrame(seq, payload);
}

Status JournalWriter::AppendExpire(uint64_t seq, int dim, int64_t cutoff,
                                   const std::vector<int>& removed_indexes) {
  if (dim < 0) {
    return Status::InvalidArgument("expire dimension must be non-negative");
  }
  std::string payload;
  PutScalar(&payload, uint64_t{0});
  PutScalar(&payload, kExpireTag);
  PutScalar(&payload, static_cast<uint32_t>(dim));
  PutScalar(&payload, cutoff);
  PutScalar(&payload, static_cast<uint32_t>(removed_indexes.size()));
  for (const int index : removed_indexes) {
    if (index < 0) {
      return Status::InvalidArgument("expired index must be non-negative");
    }
    PutScalar(&payload, static_cast<uint32_t>(index));
  }
  return AppendFrame(seq, payload);
}

Status JournalWriter::AppendTenantOp(uint64_t seq, const TenantOpFrame& op) {
  if (op.tenant_seq == 0) {
    return Status::InvalidArgument("tenant op sequence numbers start at 1");
  }
  std::string payload;
  PutScalar(&payload, uint64_t{0});
  PutScalar(&payload, kTenantTag);
  PutScalar(&payload, op.tenant_id);
  PutScalar(&payload, op.tenant_seq);
  PutScalar(&payload, static_cast<uint8_t>(op.op));
  switch (op.op) {
    case TenantOpKind::kIssue:
    case TenantOpKind::kAcquire: {
      if (!op.license.has_value()) {
        return Status::InvalidArgument("tenant issue/acquire needs a license");
      }
      std::ostringstream body;
      GEOLIC_RETURN_IF_ERROR(WriteLicenseBinary(*op.license, &body));
      payload.append(body.str());
      break;
    }
    case TenantOpKind::kRevoke:
      PutScalar(&payload, static_cast<uint32_t>(op.revoke_id.size()));
      payload.append(op.revoke_id);
      break;
    case TenantOpKind::kExpire:
      if (op.expire_dim < 0) {
        return Status::InvalidArgument(
            "tenant expire dimension must be non-negative");
      }
      PutScalar(&payload, static_cast<uint32_t>(op.expire_dim));
      PutScalar(&payload, op.expire_cutoff);
      break;
    default:
      return Status::InvalidArgument("unknown tenant op kind");
  }
  return AppendFrame(seq, payload);
}

Status JournalWriter::AppendFrame(uint64_t seq, std::string_view payload) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "journal writer poisoned by an earlier I/O error");
  }
  if (closed_) {
    return Status::FailedPrecondition("journal writer is closed");
  }
  if (seq == 0) {
    return Status::InvalidArgument("journal sequence numbers start at 1");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutScalar(&frame, static_cast<uint32_t>(payload.size()));
  PutScalar(&frame, seq);
  PutScalar(&frame, Crc32c(frame));  // Header CRC over len + seq.
  PutScalar(&frame, Crc32c(payload));
  frame.append(payload);
  const Status appended = file_->Append(frame);
  if (!appended.ok()) {
    poisoned_ = true;
    return appended;
  }
  ++frames_appended_;
  // Tracked even with fsync_interval == 0 (no automatic syncs): Close()
  // must know whether an acknowledged-unsynced tail exists to flush.
  ++frames_since_sync_;
  if (options_.fsync_interval > 0 &&
      frames_since_sync_ >= options_.fsync_interval) {
    return Sync();
  }
  return Status::Ok();
}

Status JournalWriter::Sync() {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "journal writer poisoned by an earlier I/O error");
  }
  if (closed_) {
    return Status::FailedPrecondition("journal writer is closed");
  }
  ScopedTracerSpan span(tracer_, TraceStage::kJournalFsync);
  const Status synced = file_->Sync();
  if (!synced.ok()) {
    span.set_outcome(TraceOutcome::kError);
    poisoned_ = true;
    return synced;
  }
  frames_since_sync_ = 0;
  return Status::Ok();
}

Status JournalWriter::Close() {
  if (closed_) {
    return Status::Ok();
  }
  if (poisoned_) {
    closed_ = true;
    return Status::FailedPrecondition(
        "journal writer poisoned by an earlier I/O error");
  }
  if (frames_since_sync_ > 0) {
    const Status synced = Sync();
    if (!synced.ok()) {
      closed_ = true;  // Sync poisoned the writer; Close stays terminal.
      return synced;
    }
  }
  closed_ = true;
  const Status status = file_->Close();
  if (!status.ok()) {
    poisoned_ = true;
  }
  return status;
}

JournalWriter::~JournalWriter() {
  if (!closed_ && !poisoned_ && frames_since_sync_ > 0) {
    (void)Close();
  }
}

Result<JournalReplay> JournalReader::Parse(std::string_view bytes) {
  if (bytes.size() < sizeof(kJournalMagic) ||
      std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return Status::ParseError(
        "not a geolic journal (bad magic at offset 0)");
  }
  JournalReplay replay;
  size_t pos = sizeof(kJournalMagic);
  uint64_t previous_seq = 0;
  bool first = true;
  while (pos < bytes.size()) {
    const uint64_t frame_offset = pos;
    if (bytes.size() - pos < kFrameHeaderBytes) {
      // Fewer bytes than a header: can only be an append cut off by a
      // crash — frames are written whole and in order.
      replay.torn_tail = true;
      replay.torn_tail_offset = frame_offset;
      break;
    }
    size_t cursor = pos;
    uint32_t payload_len = 0;
    uint64_t seq = 0;
    uint32_t header_crc = 0;
    uint32_t payload_crc = 0;
    GetScalar(bytes, &cursor, &payload_len);
    GetScalar(bytes, &cursor, &seq);
    GetScalar(bytes, &cursor, &header_crc);
    GetScalar(bytes, &cursor, &payload_crc);
    if (Crc32c(bytes.substr(pos, 12)) != header_crc) {
      return FrameError(frame_offset, "header crc mismatch");
    }
    // The header CRC held, so payload_len is what the writer framed — a
    // payload running past EOF is a torn tail, not a length bit-flip.
    if (payload_len > kMaxPayloadBytes) {
      return FrameError(frame_offset, "implausible payload length");
    }
    if (bytes.size() - cursor < payload_len) {
      replay.torn_tail = true;
      replay.torn_tail_offset = frame_offset;
      break;
    }
    const std::string_view payload = bytes.substr(cursor, payload_len);
    cursor += payload_len;
    if (Crc32c(payload) != payload_crc) {
      return FrameError(frame_offset, "payload crc mismatch (seq " +
                                          std::to_string(seq) + ")");
    }
    if (first) {
      if (seq == 0) {
        return FrameError(frame_offset, "sequence number 0");
      }
      first = false;
    } else if (seq <= previous_seq) {
      return FrameError(frame_offset,
                        "duplicate or out-of-order frame (seq " +
                            std::to_string(seq) + " after " +
                            std::to_string(previous_seq) + ")");
    } else if (seq != previous_seq + 1) {
      return FrameError(frame_offset,
                        "sequence gap (seq " + std::to_string(seq) +
                            " after " + std::to_string(previous_seq) + ")");
    }
    previous_seq = seq;
    JournalEntry entry;
    entry.seq = seq;
    const Status decoded = DecodeJournalPayload(payload, &entry);
    if (!decoded.ok()) {
      return FrameError(frame_offset, decoded.message());
    }
    replay.entries.push_back(std::move(entry));
    pos = cursor;
  }
  return replay;
}

Result<JournalReplay> JournalReader::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed: " + path);
  }
  return Parse(buffer.str());
}

}  // namespace geolic
