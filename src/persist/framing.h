#ifndef GEOLIC_PERSIST_FRAMING_H_
#define GEOLIC_PERSIST_FRAMING_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace geolic::framing {

// Little-endian scalar (de)serialization shared by every framed byte
// format in the tree — journal frames, checkpoint payloads, and the wire
// protocol (net/wire.h). memcpy keeps the accesses alignment-safe; the
// persist formats are defined little-endian, which is every host this
// repo targets.

// Appends `value`'s bytes to `out`.
template <typename T>
void PutScalar(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

// Reads one scalar at `*pos`, advancing it; false when `bytes` is too
// short (callers treat that as truncation, *pos unchanged).
template <typename T>
bool GetScalar(std::string_view bytes, size_t* pos, T* value) {
  if (bytes.size() - *pos < sizeof(T)) {
    return false;
  }
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace geolic::framing

#endif  // GEOLIC_PERSIST_FRAMING_H_
