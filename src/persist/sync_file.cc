#include "persist/sync_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace geolic {
namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " failed for " + path + ": " +
                         std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<PosixSyncFile>> PosixSyncFile::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                        0644);
  if (fd < 0) {
    return Errno("open", path);
  }
  return std::unique_ptr<PosixSyncFile>(new PosixSyncFile(path, fd));
}

PosixSyncFile::~PosixSyncFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status PosixSyncFile::Append(std::string_view data) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("append on closed file: " + path_);
  }
  const char* p = data.data();
  size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd_, p, remaining);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Errno("write", path_);
    }
    p += written;
    remaining -= static_cast<size_t>(written);
  }
  return Status::Ok();
}

Status PosixSyncFile::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("sync on closed file: " + path_);
  }
  if (::fsync(fd_) != 0) {
    return Errno("fsync", path_);
  }
  return Status::Ok();
}

Status PosixSyncFile::Close() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("double close: " + path_);
  }
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Errno("close", path_);
  }
  return Status::Ok();
}

Status InMemorySyncFile::Append(std::string_view data) {
  if (closed_) {
    return Status::FailedPrecondition("append on closed in-memory file");
  }
  data_.append(data);
  return Status::Ok();
}

Status InMemorySyncFile::Sync() {
  if (closed_) {
    return Status::FailedPrecondition("sync on closed in-memory file");
  }
  synced_size_ = data_.size();
  return Status::Ok();
}

Status InMemorySyncFile::Close() {
  if (closed_) {
    return Status::FailedPrecondition("double close on in-memory file");
  }
  closed_ = true;
  return Status::Ok();
}

}  // namespace geolic
