#ifndef GEOLIC_OBS_TRACE_H_
#define GEOLIC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace geolic {

// One pipeline stage of the request path. The taxonomy mirrors the paper's
// cost decomposition: instance check + equation scan are the online
// validation work, tree division / offline validation are D_T / V_T of
// Figs. 7-8, and the remaining stages are the service machinery around
// them (lock acquisition, durability, recovery).
enum class TraceStage : uint8_t {
  kInstanceCheck = 0,    // Satisfying-set lookup (lock-free geometry probe).
  kShardLockWait,        // Time blocked acquiring the shard mutex.
  kEquationScan,         // Per-group validation-equation evaluation.
  kJournalAppend,        // WAL frame append (may include an inline fsync).
  kJournalFsync,         // fsync of the journal file.
  kCheckpointWrite,      // IssuanceService::WriteCheckpoint body.
  kRecoveryReplay,       // IssuanceService::Recover replay + verification.
  kTreeDivision,         // Offline D_T: tree build / arena compile.
  kOfflineValidation,    // Offline V_T: equation-engine run.
  kInstanceSoaScan,      // SIMD SoA column sweep of the satisfying-set
                         // lookup (IssuanceService's kInstanceCheck split).
  kShardSwap,            // Catalog reconfiguration: build + publish of a
                         // new epoch's shard map (acquire/revoke/expire).
  kNetRead,              // Socket readable to a complete decoded frame
                         // (recv + ring append + incremental decode).
  kNetBatchWait,         // Admission-queue dwell: frame decoded to batch
                         // dispatch (the coalescing window a request waits
                         // through before its TryIssueBatch call).
  kNetWrite,             // Response encode + send, including any EAGAIN
                         // re-arm time until the last byte leaves the ring.
  kCatalogCompile,       // Multi-tenant catalog: materializing a tenant's
                         // IssuanceService (first-touch compile from the
                         // tenant source, or reload from a spill
                         // checkpoint on re-access after eviction).
  kCatalogEvict,         // Multi-tenant catalog: spilling a cold tenant to
                         // its checkpoint and freeing its resident state.
};

inline constexpr int kTraceStageCount = 16;

// Stable snake_case name used in exposition labels ("instance_check", ...).
const char* TraceStageName(TraceStage stage);

// How the timed operation ended.
enum class TraceOutcome : uint8_t {
  kOk = 0,
  kAccepted,
  kRejectedInstance,
  kRejectedAggregate,
  kError,
};

const char* TraceOutcomeName(TraceOutcome outcome);

// One fixed-size span record. start_nanos is a process-local monotonic
// timestamp (steady clock since epoch), comparable across threads within a
// run but meaningless across processes.
//
// Deliberately no default member initializers: RequestTrace keeps an array
// of these on the stack of every (possibly untraced) request, and zeroing
// it would cost more than the rest of the untraced fast path combined.
// Write `TraceSpan span{};` for a zeroed span (request_id 0, stage
// kInstanceCheck, outcome kOk).
struct TraceSpan {
  uint64_t request_id;  // 0 = not tied to a request (standalone span).
  uint64_t start_nanos;
  uint64_t duration_nanos;
  TraceStage stage;
  TraceOutcome outcome;
};

// Monotonic timestamp source for spans.
inline uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-stage latency histograms, aggregated from every recorded span. All
// methods are thread-safe (the histograms are lock-free).
class StageProfile {
 public:
  void Record(TraceStage stage, uint64_t duration_nanos) {
    histograms_[static_cast<size_t>(stage)].Record(
        static_cast<int64_t>(duration_nanos));
  }

  struct Snapshot {
    std::array<LatencyHistogram::Snapshot, kTraceStageCount> stages{};

    const LatencyHistogram::Snapshot& stage(TraceStage s) const {
      return stages[static_cast<size_t>(s)];
    }
  };
  Snapshot Snap() const {
    Snapshot snapshot;
    for (int s = 0; s < kTraceStageCount; ++s) {
      snapshot.stages[static_cast<size_t>(s)] =
          histograms_[static_cast<size_t>(s)].Snap();
    }
    return snapshot;
  }

 private:
  std::array<LatencyHistogram, kTraceStageCount> histograms_;
};

// The full span chain of one slow request, kept verbatim for post-mortems.
struct SlowRequestSample {
  uint64_t request_id = 0;
  uint64_t total_nanos = 0;  // First span start to last span end.
  std::vector<TraceSpan> spans;
};

struct TracerOptions {
  // Span ring capacity; rounded up to a power of two, minimum 64.
  size_t ring_capacity = 4096;
  // Requests whose span chain covers more than this keep their full chain
  // in the slow-sample buffer. <= 0 disables slow sampling.
  int64_t slow_request_nanos = 1'000'000;  // 1 ms
  // Bounded slow-sample buffer: the newest samples win.
  size_t max_slow_samples = 64;
  // Trace one in `sample_period` requests (rounded up to a power of two;
  // 1 = trace everything). Sampling gates RequestTrace only — standalone
  // ScopedTracerSpans (checkpoints, recovery, fsyncs) always record. An
  // untraced request costs one relaxed counter bump and no clock reads,
  // which is what keeps an attached tracer affordable on nanosecond-scale
  // admissions; sampled-out requests can also never be slow-sampled, so
  // pick 1 when hunting a rare outlier.
  uint32_t sample_period = 1;
};

// Thread-safe, low-overhead span sink: a fixed-size seqlock ring of span
// records plus per-stage latency histograms and a bounded slow-request
// buffer. Recording a span is an atomic ticket fetch-add, five relaxed
// stores, and two histogram RMWs — no locks on the hot path.
//
// The ring is diagnostic, not transactional: a reader that races a writer
// on the same slot detects the torn slot via its version word and skips it,
// and a writer lapped by a full ring wrap overwrites the oldest span.
class Tracer {
 public:
  explicit Tracer(const TracerOptions& options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Monotonic per-tracer request id (first id is 1).
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // 1-in-sample_period round-robin admission of a new RequestTrace. The
  // counter is thread-local (and shared by every Tracer on the thread),
  // not a shared atomic: an untraced request must not pay a contended
  // cache line, only an increment and a mask. Any window of k*period
  // consecutive requests on one thread still traces exactly k of them;
  // only the phase is arbitrary.
  bool SampleRequest() {
    if (sample_mask_ == 0) {
      return true;
    }
    thread_local uint64_t requests_seen = 0;
    return (requests_seen++ & sample_mask_) == 0;
  }

  // Records one span into the ring and the stage profile.
  void Record(const TraceSpan& span);

  // Records a request's whole span chain: every span goes through
  // Record(), and when the chain's wall span exceeds the slow threshold
  // the chain is copied into the slow-sample buffer.
  void RecordChain(const TraceSpan* spans, size_t count);

  // Best-effort snapshot of the ring in append order (oldest surviving
  // span first). Slots being written concurrently are skipped.
  std::vector<TraceSpan> CollectSpans() const;

  // Aggregated per-stage latency histograms.
  StageProfile::Snapshot ProfileSnapshot() const { return profile_.Snap(); }

  // Slow requests captured so far, oldest first.
  std::vector<SlowRequestSample> SlowSamples() const;

  // Total spans ever recorded (>= ring capacity means the ring wrapped).
  uint64_t spans_recorded() const {
    return next_ticket_.load(std::memory_order_relaxed);
  }
  // Requests that crossed the slow threshold (including ones whose sample
  // was later evicted from the bounded buffer).
  uint64_t slow_requests() const {
    return slow_requests_.load(std::memory_order_relaxed);
  }

  size_t ring_capacity() const { return slots_.size(); }
  const TracerOptions& options() const { return options_; }

 private:
  // Seqlock slot: version is odd while a writer is mid-store; an even
  // version 2t+2 marks the stable payload of ticket t. Every field is an
  // atomic, so a torn slot yields a skipped read, never a data race.
  struct Slot {
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> request_id{0};
    std::atomic<uint64_t> start_nanos{0};
    std::atomic<uint64_t> duration_nanos{0};
    std::atomic<uint64_t> stage_outcome{0};  // stage | outcome << 8.
  };

  TracerOptions options_;
  std::vector<Slot> slots_;
  uint64_t slot_mask_;
  uint64_t sample_mask_;
  std::atomic<uint64_t> next_ticket_{0};
  std::atomic<uint64_t> next_request_id_{0};
  StageProfile profile_;

  std::atomic<uint64_t> slow_requests_{0};
  mutable std::mutex slow_mutex_;
  std::deque<SlowRequestSample> slow_samples_;  // Guarded by slow_mutex_.
};

// Collects the spans of one request on the caller's stack and flushes them
// to the tracer in one RecordChain call when the request finishes. With a
// null tracer every operation is a no-op and no clock is read.
//
// Adjacent spans share a timestamp: a span that begins right after another
// ended reuses that end timestamp as its start, so the hot path pays one
// clock read per stage boundary instead of two (the instrumented stages
// are back-to-back; any gap between them is attributed to the later span).
class RequestTrace {
 public:
  static constexpr size_t kMaxSpans = 12;

#ifdef GEOLIC_DISABLE_TRACING
  explicit RequestTrace(Tracer* tracer)
      : tracer_(nullptr), request_id_(0) {
    (void)tracer;
  }
#else
  explicit RequestTrace(Tracer* tracer)
      : tracer_(tracer != nullptr && tracer->SampleRequest() ? tracer
                                                             : nullptr),
        request_id_(tracer_ != nullptr ? tracer_->NextRequestId() : 0) {}
#endif

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  ~RequestTrace() {
    if (!finished_) {
      Finish(TraceOutcome::kOk);
    }
  }

  bool enabled() const { return tracer_ != nullptr; }
  uint64_t request_id() const { return request_id_; }
  size_t span_count() const { return count_; }
  // Spans that did not fit in the fixed chain (flushed-less, but counted).
  size_t spans_dropped() const { return dropped_; }

  // Stamps `outcome` on the chain's last span and flushes everything to
  // the tracer. Idempotent; the destructor calls it with kOk if the caller
  // did not.
  void Finish(TraceOutcome outcome) {
    if (finished_) {
      return;
    }
    finished_ = true;
    if (tracer_ == nullptr || count_ == 0) {
      return;
    }
    spans_[count_ - 1].outcome = outcome;
    tracer_->RecordChain(spans_.data(), count_);
  }

  // Appends a completed span. Chains longer than kMaxSpans drop the
  // overflow (counted in spans_dropped).
  void Add(TraceStage stage, uint64_t start_nanos, uint64_t end_nanos) {
    pending_end_nanos_ = end_nanos;
    if (count_ == kMaxSpans) {
      ++dropped_;
      return;
    }
    TraceSpan& span = spans_[count_++];
    span.request_id = request_id_;
    span.stage = stage;
    span.outcome = TraceOutcome::kOk;
    span.start_nanos = start_nanos;
    span.duration_nanos = end_nanos - start_nanos;
  }

  // Start timestamp for the next span: the previous span's end when the
  // stages are adjacent, else a fresh clock read.
  uint64_t NextStartNanos() {
    if (pending_end_nanos_ != 0) {
      const uint64_t start = pending_end_nanos_;
      pending_end_nanos_ = 0;
      return start;
    }
    return TraceNowNanos();
  }

 private:
  Tracer* tracer_;
  uint64_t request_id_;
  std::array<TraceSpan, kMaxSpans> spans_;
  size_t count_ = 0;
  size_t dropped_ = 0;
  uint64_t pending_end_nanos_ = 0;
  bool finished_ = false;
};

// RAII timer for one stage of a traced request. Compiled out entirely when
// GEOLIC_DISABLE_TRACING is defined; otherwise the disabled-at-runtime
// path (null tracer) costs one branch and no clock reads.
class ScopedStageTimer {
 public:
#ifdef GEOLIC_DISABLE_TRACING
  ScopedStageTimer(RequestTrace*, TraceStage) {}
#else
  ScopedStageTimer(RequestTrace* trace, TraceStage stage)
      : trace_(trace->enabled() ? trace : nullptr), stage_(stage) {
    if (trace_ != nullptr) {
      start_nanos_ = trace_->NextStartNanos();
    }
  }
  ~ScopedStageTimer() {
    if (trace_ != nullptr) {
      trace_->Add(stage_, start_nanos_, TraceNowNanos());
    }
  }
#endif

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

#ifndef GEOLIC_DISABLE_TRACING
 private:
  RequestTrace* trace_;
  TraceStage stage_;
  uint64_t start_nanos_ = 0;
#endif
};

// RAII timer for a standalone (request-less) span: checkpoint writes,
// recovery replays, journal fsyncs, offline D_T / V_T. Records straight to
// the tracer with request_id 0. Null tracer = no-op, no clock reads.
class ScopedTracerSpan {
 public:
#ifdef GEOLIC_DISABLE_TRACING
  ScopedTracerSpan(Tracer*, TraceStage) {}
  void set_outcome(TraceOutcome) {}
#else
  ScopedTracerSpan(Tracer* tracer, TraceStage stage)
      : tracer_(tracer), stage_(stage) {
    if (tracer_ != nullptr) {
      start_nanos_ = TraceNowNanos();
    }
  }
  ~ScopedTracerSpan() {
    if (tracer_ != nullptr) {
      TraceSpan span;
      span.request_id = 0;
      span.stage = stage_;
      span.outcome = outcome_;
      span.start_nanos = start_nanos_;
      span.duration_nanos = TraceNowNanos() - start_nanos_;
      tracer_->Record(span);
    }
  }
  void set_outcome(TraceOutcome outcome) { outcome_ = outcome; }
#endif

  ScopedTracerSpan(const ScopedTracerSpan&) = delete;
  ScopedTracerSpan& operator=(const ScopedTracerSpan&) = delete;

#ifndef GEOLIC_DISABLE_TRACING
 private:
  Tracer* tracer_;
  TraceStage stage_;
  TraceOutcome outcome_ = TraceOutcome::kOk;
  uint64_t start_nanos_ = 0;
#endif
};

}  // namespace geolic

#endif  // GEOLIC_OBS_TRACE_H_
