#include "obs/exposition.h"

#include <cstdio>

#include "util/json_writer.h"

namespace geolic {
namespace {

// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Prometheus HELP-text escaping: only backslash and newline — double
// quotes are legal verbatim in help text, unlike in label values.
std::string EscapeHelp(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// `# HELP` + `# TYPE` pair announcing one family.
void AppendFamilyHeader(const char* name, const char* type,
                        const std::string& help, std::string* out) {
  *out += std::string("# HELP ") + name + " " + EscapeHelp(help) + "\n";
  *out += std::string("# TYPE ") + name + " " + type + "\n";
}

// Index of the last non-empty bucket, or -1 when all are empty.
int LastUsedBucket(const LatencyHistogram::Snapshot& histogram) {
  int last = -1;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (histogram.counts[static_cast<size_t>(i)] != 0) {
      last = i;
    }
  }
  return last;
}

uint64_t BucketSum(const LatencyHistogram::Snapshot& histogram) {
  uint64_t sum = 0;
  for (const uint64_t count : histogram.counts) {
    sum += count;
  }
  return sum;
}

// One histogram family in text form. `labels` is the rendered label set
// without the le pair, e.g. `service="x",stage="equation_scan"`.
//
// The `_count` sample is the snapshotted bucket sum, not the histogram's
// total_count word: the two are updated by separate relaxed RMWs, so a
// snapshot taken under write load can see total_count ahead of the
// buckets, and a cumulative +Inf bucket smaller than _count would be a
// malformed exposition.
void AppendTextHistogram(const std::string& name, const std::string& labels,
                         const LatencyHistogram::Snapshot& histogram,
                         std::string* out) {
  const int last = LastUsedBucket(histogram);
  uint64_t cumulative = 0;
  for (int i = 0; i <= last; ++i) {
    cumulative += histogram.counts[static_cast<size_t>(i)];
    *out += name + "_bucket{" + labels + ",le=\"" +
            std::to_string(uint64_t{1} << (i + 1)) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  *out += name + "_bucket{" + labels + ",le=\"+Inf\"} " +
          std::to_string(cumulative) + "\n";
  *out += name + "_sum{" + labels + "} " +
          std::to_string(histogram.total_nanos) + "\n";
  *out += name + "_count{" + labels + "} " + std::to_string(cumulative) +
          "\n";
}

void AppendJsonHistogram(const LatencyHistogram::Snapshot& histogram,
                         JsonWriter* json) {
  json->BeginObject();
  json->KeyValue("count", BucketSum(histogram));
  json->KeyValue("sum_nanos", histogram.total_nanos);
  json->KeyValue("clamped_negative", histogram.clamped_negative);
  json->KeyValue("p50_le_nanos",
                 static_cast<uint64_t>(histogram.QuantileUpperBoundNanos(0.5)));
  json->KeyValue(
      "p99_le_nanos",
      static_cast<uint64_t>(histogram.QuantileUpperBoundNanos(0.99)));
  json->Key("buckets");
  json->BeginArray();
  const int last = LastUsedBucket(histogram);
  for (int i = 0; i <= last; ++i) {
    json->BeginObject();
    json->KeyValue("le", uint64_t{1} << (i + 1));
    json->KeyValue("count", histogram.counts[static_cast<size_t>(i)]);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

std::string RenderPrometheusText(const ExpositionInput& input) {
  const std::string svc = "service=\"" + EscapeLabel(input.service) + "\"";
  std::string out;

  AppendFamilyHeader("geolic_requests_total", "counter",
                     "Admission decisions by outcome.", &out);
  out += "geolic_requests_total{" + svc + ",outcome=\"accepted\"} " +
         std::to_string(input.metrics.accepted) + "\n";
  out += "geolic_requests_total{" + svc + ",outcome=\"rejected_instance\"} " +
         std::to_string(input.metrics.rejected_instance) + "\n";
  out += "geolic_requests_total{" + svc +
         ",outcome=\"rejected_aggregate\"} " +
         std::to_string(input.metrics.rejected_aggregate) + "\n";

  AppendFamilyHeader("geolic_equations_checked_total", "counter",
                     "Validation equations evaluated.", &out);
  out += "geolic_equations_checked_total{" + svc + "} " +
         std::to_string(input.metrics.equations_checked) + "\n";

  AppendFamilyHeader("geolic_batches_total", "counter",
                     "TryIssueBatch calls.", &out);
  out += "geolic_batches_total{" + svc + "} " +
         std::to_string(input.metrics.batches) + "\n";
  AppendFamilyHeader("geolic_batched_requests_total", "counter",
                     "Requests admitted through batches.", &out);
  out += "geolic_batched_requests_total{" + svc + "} " +
         std::to_string(input.metrics.batched_requests) + "\n";

  AppendFamilyHeader("geolic_latency_clamped_negative_total", "counter",
                     "Latency samples clamped at zero.", &out);
  out += "geolic_latency_clamped_negative_total{" + svc + "} " +
         std::to_string(input.metrics.latency.clamped_negative) + "\n";

  AppendFamilyHeader("geolic_request_latency_nanos", "histogram",
                     "End-to-end admission latency.", &out);
  AppendTextHistogram("geolic_request_latency_nanos", svc,
                      input.metrics.latency, &out);

  if (input.has_stages) {
    AppendFamilyHeader("geolic_stage_duration_nanos", "histogram",
                       "Per-stage request pipeline latency.", &out);
    for (int s = 0; s < kTraceStageCount; ++s) {
      const std::string labels =
          svc + ",stage=\"" +
          TraceStageName(static_cast<TraceStage>(s)) + "\"";
      AppendTextHistogram("geolic_stage_duration_nanos", labels,
                          input.stages.stages[static_cast<size_t>(s)], &out);
    }
  }

  if (input.has_journal) {
    AppendFamilyHeader("geolic_journal_sequence", "gauge",
                       "Sequence of the last journaled frame.", &out);
    out += "geolic_journal_sequence{" + svc + "} " +
           std::to_string(input.journal_sequence) + "\n";
  }

  if (input.has_recovery) {
    AppendFamilyHeader("geolic_recovery_checkpoint_records", "gauge",
                       "Records loaded from the checkpoint.", &out);
    out += "geolic_recovery_checkpoint_records{" + svc + "} " +
           std::to_string(input.recovery_checkpoint_records) + "\n";
    AppendFamilyHeader("geolic_recovery_journal_replayed", "gauge",
                       "Journal frames replayed past the checkpoint.", &out);
    out += "geolic_recovery_journal_replayed{" + svc + "} " +
           std::to_string(input.recovery_journal_replayed) + "\n";
    AppendFamilyHeader("geolic_recovery_journal_skipped", "gauge",
                       "Journal frames the checkpoint already covered.",
                       &out);
    out += "geolic_recovery_journal_skipped{" + svc + "} " +
           std::to_string(input.recovery_journal_skipped) + "\n";
    AppendFamilyHeader("geolic_recovery_torn_tail", "gauge",
                       "1 when the journal ended in a torn write.", &out);
    out += "geolic_recovery_torn_tail{" + svc + "} " +
           std::string(input.recovery_torn_tail ? "1" : "0") + "\n";
  }

  if (input.has_net) {
    const ExpositionInput::NetSection& net = input.net;
    AppendFamilyHeader("geolic_net_connections_total", "counter",
                       "TCP connections by lifecycle event.", &out);
    out += "geolic_net_connections_total{" + svc + ",event=\"opened\"} " +
           std::to_string(net.connections_opened) + "\n";
    out += "geolic_net_connections_total{" + svc + ",event=\"closed\"} " +
           std::to_string(net.connections_closed) + "\n";
    AppendFamilyHeader("geolic_net_frames_decoded_total", "counter",
                       "Wire frames decoded from client connections.", &out);
    out += "geolic_net_frames_decoded_total{" + svc + "} " +
           std::to_string(net.frames_decoded) + "\n";
    AppendFamilyHeader("geolic_net_requests_total", "counter",
                       "Issue requests by admission-queue outcome.", &out);
    out += "geolic_net_requests_total{" + svc + ",event=\"enqueued\"} " +
           std::to_string(net.requests_enqueued) + "\n";
    out += "geolic_net_requests_total{" + svc + ",event=\"shed\"} " +
           std::to_string(net.requests_shed) + "\n";
    AppendFamilyHeader("geolic_net_protocol_errors_total", "counter",
                       "Framing/CRC failures that dropped a connection.",
                       &out);
    out += "geolic_net_protocol_errors_total{" + svc + "} " +
           std::to_string(net.protocol_errors) + "\n";
    AppendFamilyHeader("geolic_net_batches_dispatched_total", "counter",
                       "Coalesced batches handed to the service.", &out);
    out += "geolic_net_batches_dispatched_total{" + svc + "} " +
           std::to_string(net.batches_dispatched) + "\n";
    AppendFamilyHeader("geolic_net_batch_requests_dispatched_total",
                       "counter", "Requests carried by those batches.",
                       &out);
    out += "geolic_net_batch_requests_dispatched_total{" + svc + "} " +
           std::to_string(net.batch_requests_dispatched) + "\n";
    AppendFamilyHeader("geolic_net_queue_depth", "gauge",
                       "Requests waiting in the admission queue.", &out);
    out += "geolic_net_queue_depth{" + svc + "} " +
           std::to_string(net.queue_depth) + "\n";
    AppendFamilyHeader("geolic_net_queue_depth_peak", "gauge",
                       "Admission-queue high-water mark.", &out);
    out += "geolic_net_queue_depth_peak{" + svc + "} " +
           std::to_string(net.queue_depth_peak) + "\n";
    AppendFamilyHeader("geolic_net_bytes_total", "counter",
                       "Socket bytes by direction.", &out);
    out += "geolic_net_bytes_total{" + svc + ",direction=\"read\"} " +
           std::to_string(net.bytes_read) + "\n";
    out += "geolic_net_bytes_total{" + svc + ",direction=\"written\"} " +
           std::to_string(net.bytes_written) + "\n";
  }

  if (input.has_catalog) {
    const ExpositionInput::CatalogSection& cat = input.catalog;
    AppendFamilyHeader("geolic_catalog_requests_total", "counter",
                       "Tenant lookups by cache outcome.", &out);
    out += "geolic_catalog_requests_total{" + svc + ",outcome=\"hit\"} " +
           std::to_string(cat.hits) + "\n";
    out += "geolic_catalog_requests_total{" + svc + ",outcome=\"miss\"} " +
           std::to_string(cat.misses) + "\n";
    AppendFamilyHeader("geolic_catalog_compiles_total", "counter",
                       "Tenant services compiled from the source.", &out);
    out += "geolic_catalog_compiles_total{" + svc + "} " +
           std::to_string(cat.compiles) + "\n";
    AppendFamilyHeader("geolic_catalog_loads_total", "counter",
                       "Tenant services reloaded from spill checkpoints.",
                       &out);
    out += "geolic_catalog_loads_total{" + svc + "} " +
           std::to_string(cat.loads) + "\n";
    AppendFamilyHeader("geolic_catalog_evictions_total", "counter",
                       "Tenants evicted by the memory budget.", &out);
    out += "geolic_catalog_evictions_total{" + svc + "} " +
           std::to_string(cat.evictions) + "\n";
    AppendFamilyHeader("geolic_catalog_spills_total", "counter",
                       "Tenant spill checkpoints written.", &out);
    out += "geolic_catalog_spills_total{" + svc + "} " +
           std::to_string(cat.spills) + "\n";
    AppendFamilyHeader("geolic_catalog_recovered_tenants_total", "counter",
                       "Tenants rebuilt by catalog-wide recovery.", &out);
    out += "geolic_catalog_recovered_tenants_total{" + svc + "} " +
           std::to_string(cat.recovered_tenants) + "\n";
    AppendFamilyHeader("geolic_catalog_journal_frames_total", "counter",
                       "Tenant-tagged frames appended to the shared "
                       "journal pool.",
                       &out);
    out += "geolic_catalog_journal_frames_total{" + svc + "} " +
           std::to_string(cat.journal_frames) + "\n";
    AppendFamilyHeader("geolic_catalog_resident_tenants", "gauge",
                       "Tenant services resident right now.", &out);
    out += "geolic_catalog_resident_tenants{" + svc + "} " +
           std::to_string(cat.resident_tenants) + "\n";
    AppendFamilyHeader("geolic_catalog_resident_bytes", "gauge",
                       "Approximate bytes of resident tenant state.", &out);
    out += "geolic_catalog_resident_bytes{" + svc + "} " +
           std::to_string(cat.resident_bytes) + "\n";
    AppendFamilyHeader("geolic_catalog_poisoned_writers", "gauge",
                       "Pool journal writers poisoned by an I/O error "
                       "(nonzero: the catalog has fail-stopped).",
                       &out);
    out += "geolic_catalog_poisoned_writers{" + svc + "} " +
           std::to_string(cat.poisoned_writers) + "\n";
  }

  return out;
}

std::string RenderJson(const ExpositionInput& input) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("service", input.service);

  json.Key("requests");
  json.BeginObject();
  json.KeyValue("accepted", input.metrics.accepted);
  json.KeyValue("rejected_instance", input.metrics.rejected_instance);
  json.KeyValue("rejected_aggregate", input.metrics.rejected_aggregate);
  json.KeyValue("total", input.metrics.total_requests());
  json.EndObject();

  json.KeyValue("equations_checked", input.metrics.equations_checked);

  json.Key("batches");
  json.BeginObject();
  json.KeyValue("count", input.metrics.batches);
  json.KeyValue("requests", input.metrics.batched_requests);
  json.EndObject();

  json.Key("latency");
  AppendJsonHistogram(input.metrics.latency, &json);

  if (input.has_stages) {
    json.Key("stages");
    json.BeginObject();
    for (int s = 0; s < kTraceStageCount; ++s) {
      json.Key(TraceStageName(static_cast<TraceStage>(s)));
      AppendJsonHistogram(input.stages.stages[static_cast<size_t>(s)],
                          &json);
    }
    json.EndObject();
  }

  if (input.has_journal) {
    json.Key("journal");
    json.BeginObject();
    json.KeyValue("sequence", input.journal_sequence);
    json.EndObject();
  }

  if (input.has_recovery) {
    json.Key("recovery");
    json.BeginObject();
    json.KeyValue("checkpoint_records", input.recovery_checkpoint_records);
    json.KeyValue("journal_replayed", input.recovery_journal_replayed);
    json.KeyValue("journal_skipped", input.recovery_journal_skipped);
    json.KeyValue("torn_tail", input.recovery_torn_tail);
    json.EndObject();
  }

  if (input.has_net) {
    const ExpositionInput::NetSection& net = input.net;
    json.Key("net");
    json.BeginObject();
    json.Key("connections");
    json.BeginObject();
    json.KeyValue("opened", net.connections_opened);
    json.KeyValue("closed", net.connections_closed);
    json.EndObject();
    json.KeyValue("frames_decoded", net.frames_decoded);
    json.Key("requests");
    json.BeginObject();
    json.KeyValue("enqueued", net.requests_enqueued);
    json.KeyValue("shed", net.requests_shed);
    json.EndObject();
    json.KeyValue("protocol_errors", net.protocol_errors);
    json.Key("batches");
    json.BeginObject();
    json.KeyValue("dispatched", net.batches_dispatched);
    json.KeyValue("requests", net.batch_requests_dispatched);
    json.EndObject();
    json.KeyValue("queue_depth", net.queue_depth);
    json.KeyValue("queue_depth_peak", net.queue_depth_peak);
    json.Key("bytes");
    json.BeginObject();
    json.KeyValue("read", net.bytes_read);
    json.KeyValue("written", net.bytes_written);
    json.EndObject();
    json.EndObject();
  }

  if (input.has_catalog) {
    const ExpositionInput::CatalogSection& cat = input.catalog;
    json.Key("catalog");
    json.BeginObject();
    json.KeyValue("hits", cat.hits);
    json.KeyValue("misses", cat.misses);
    json.KeyValue("compiles", cat.compiles);
    json.KeyValue("loads", cat.loads);
    json.KeyValue("evictions", cat.evictions);
    json.KeyValue("spills", cat.spills);
    json.KeyValue("recovered_tenants", cat.recovered_tenants);
    json.KeyValue("journal_frames", cat.journal_frames);
    json.KeyValue("resident_tenants", cat.resident_tenants);
    json.KeyValue("resident_bytes", cat.resident_bytes);
    json.KeyValue("poisoned_writers", cat.poisoned_writers);
    json.EndObject();
  }

  json.EndObject();
  return std::move(json).Take();
}

Status WriteMetricsFile(const ExpositionInput& input,
                        const std::string& path) {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string doc =
      json ? RenderJson(input) : RenderPrometheusText(input);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open metrics file for writing: " + path);
  }
  const bool wrote =
      std::fwrite(doc.data(), 1, doc.size(), file) == doc.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    return Status::IoError("metrics file write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace geolic
