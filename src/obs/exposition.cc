#include "obs/exposition.h"

#include <cstdio>

#include "util/json_writer.h"

namespace geolic {
namespace {

// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Index of the last non-empty bucket, or -1 when all are empty.
int LastUsedBucket(const LatencyHistogram::Snapshot& histogram) {
  int last = -1;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (histogram.counts[static_cast<size_t>(i)] != 0) {
      last = i;
    }
  }
  return last;
}

uint64_t BucketSum(const LatencyHistogram::Snapshot& histogram) {
  uint64_t sum = 0;
  for (const uint64_t count : histogram.counts) {
    sum += count;
  }
  return sum;
}

// One histogram family in text form. `labels` is the rendered label set
// without the le pair, e.g. `service="x",stage="equation_scan"`.
//
// The `_count` sample is the snapshotted bucket sum, not the histogram's
// total_count word: the two are updated by separate relaxed RMWs, so a
// snapshot taken under write load can see total_count ahead of the
// buckets, and a cumulative +Inf bucket smaller than _count would be a
// malformed exposition.
void AppendTextHistogram(const std::string& name, const std::string& labels,
                         const LatencyHistogram::Snapshot& histogram,
                         std::string* out) {
  const int last = LastUsedBucket(histogram);
  uint64_t cumulative = 0;
  for (int i = 0; i <= last; ++i) {
    cumulative += histogram.counts[static_cast<size_t>(i)];
    *out += name + "_bucket{" + labels + ",le=\"" +
            std::to_string(uint64_t{1} << (i + 1)) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  *out += name + "_bucket{" + labels + ",le=\"+Inf\"} " +
          std::to_string(cumulative) + "\n";
  *out += name + "_sum{" + labels + "} " +
          std::to_string(histogram.total_nanos) + "\n";
  *out += name + "_count{" + labels + "} " + std::to_string(cumulative) +
          "\n";
}

void AppendJsonHistogram(const LatencyHistogram::Snapshot& histogram,
                         JsonWriter* json) {
  json->BeginObject();
  json->KeyValue("count", BucketSum(histogram));
  json->KeyValue("sum_nanos", histogram.total_nanos);
  json->KeyValue("clamped_negative", histogram.clamped_negative);
  json->KeyValue("p50_le_nanos",
                 static_cast<uint64_t>(histogram.QuantileUpperBoundNanos(0.5)));
  json->KeyValue(
      "p99_le_nanos",
      static_cast<uint64_t>(histogram.QuantileUpperBoundNanos(0.99)));
  json->Key("buckets");
  json->BeginArray();
  const int last = LastUsedBucket(histogram);
  for (int i = 0; i <= last; ++i) {
    json->BeginObject();
    json->KeyValue("le", uint64_t{1} << (i + 1));
    json->KeyValue("count", histogram.counts[static_cast<size_t>(i)]);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

std::string RenderPrometheusText(const ExpositionInput& input) {
  const std::string svc = "service=\"" + EscapeLabel(input.service) + "\"";
  std::string out;

  out += "# TYPE geolic_requests_total counter\n";
  out += "geolic_requests_total{" + svc + ",outcome=\"accepted\"} " +
         std::to_string(input.metrics.accepted) + "\n";
  out += "geolic_requests_total{" + svc + ",outcome=\"rejected_instance\"} " +
         std::to_string(input.metrics.rejected_instance) + "\n";
  out += "geolic_requests_total{" + svc +
         ",outcome=\"rejected_aggregate\"} " +
         std::to_string(input.metrics.rejected_aggregate) + "\n";

  out += "# TYPE geolic_equations_checked_total counter\n";
  out += "geolic_equations_checked_total{" + svc + "} " +
         std::to_string(input.metrics.equations_checked) + "\n";

  out += "# TYPE geolic_batches_total counter\n";
  out += "geolic_batches_total{" + svc + "} " +
         std::to_string(input.metrics.batches) + "\n";
  out += "# TYPE geolic_batched_requests_total counter\n";
  out += "geolic_batched_requests_total{" + svc + "} " +
         std::to_string(input.metrics.batched_requests) + "\n";

  out += "# TYPE geolic_latency_clamped_negative_total counter\n";
  out += "geolic_latency_clamped_negative_total{" + svc + "} " +
         std::to_string(input.metrics.latency.clamped_negative) + "\n";

  out += "# TYPE geolic_request_latency_nanos histogram\n";
  AppendTextHistogram("geolic_request_latency_nanos", svc,
                      input.metrics.latency, &out);

  if (input.has_stages) {
    out += "# TYPE geolic_stage_duration_nanos histogram\n";
    for (int s = 0; s < kTraceStageCount; ++s) {
      const std::string labels =
          svc + ",stage=\"" +
          TraceStageName(static_cast<TraceStage>(s)) + "\"";
      AppendTextHistogram("geolic_stage_duration_nanos", labels,
                          input.stages.stages[static_cast<size_t>(s)], &out);
    }
  }

  if (input.has_journal) {
    out += "# TYPE geolic_journal_sequence gauge\n";
    out += "geolic_journal_sequence{" + svc + "} " +
           std::to_string(input.journal_sequence) + "\n";
  }

  if (input.has_recovery) {
    out += "# TYPE geolic_recovery_checkpoint_records gauge\n";
    out += "geolic_recovery_checkpoint_records{" + svc + "} " +
           std::to_string(input.recovery_checkpoint_records) + "\n";
    out += "# TYPE geolic_recovery_journal_replayed gauge\n";
    out += "geolic_recovery_journal_replayed{" + svc + "} " +
           std::to_string(input.recovery_journal_replayed) + "\n";
    out += "# TYPE geolic_recovery_journal_skipped gauge\n";
    out += "geolic_recovery_journal_skipped{" + svc + "} " +
           std::to_string(input.recovery_journal_skipped) + "\n";
    out += "# TYPE geolic_recovery_torn_tail gauge\n";
    out += "geolic_recovery_torn_tail{" + svc + "} " +
           std::string(input.recovery_torn_tail ? "1" : "0") + "\n";
  }

  return out;
}

std::string RenderJson(const ExpositionInput& input) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("service", input.service);

  json.Key("requests");
  json.BeginObject();
  json.KeyValue("accepted", input.metrics.accepted);
  json.KeyValue("rejected_instance", input.metrics.rejected_instance);
  json.KeyValue("rejected_aggregate", input.metrics.rejected_aggregate);
  json.KeyValue("total", input.metrics.total_requests());
  json.EndObject();

  json.KeyValue("equations_checked", input.metrics.equations_checked);

  json.Key("batches");
  json.BeginObject();
  json.KeyValue("count", input.metrics.batches);
  json.KeyValue("requests", input.metrics.batched_requests);
  json.EndObject();

  json.Key("latency");
  AppendJsonHistogram(input.metrics.latency, &json);

  if (input.has_stages) {
    json.Key("stages");
    json.BeginObject();
    for (int s = 0; s < kTraceStageCount; ++s) {
      json.Key(TraceStageName(static_cast<TraceStage>(s)));
      AppendJsonHistogram(input.stages.stages[static_cast<size_t>(s)],
                          &json);
    }
    json.EndObject();
  }

  if (input.has_journal) {
    json.Key("journal");
    json.BeginObject();
    json.KeyValue("sequence", input.journal_sequence);
    json.EndObject();
  }

  if (input.has_recovery) {
    json.Key("recovery");
    json.BeginObject();
    json.KeyValue("checkpoint_records", input.recovery_checkpoint_records);
    json.KeyValue("journal_replayed", input.recovery_journal_replayed);
    json.KeyValue("journal_skipped", input.recovery_journal_skipped);
    json.KeyValue("torn_tail", input.recovery_torn_tail);
    json.EndObject();
  }

  json.EndObject();
  return std::move(json).Take();
}

Status WriteMetricsFile(const ExpositionInput& input,
                        const std::string& path) {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string doc =
      json ? RenderJson(input) : RenderPrometheusText(input);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open metrics file for writing: " + path);
  }
  const bool wrote =
      std::fwrite(doc.data(), 1, doc.size(), file) == doc.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    return Status::IoError("metrics file write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace geolic
