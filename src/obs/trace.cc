#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace geolic {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kInstanceCheck:
      return "instance_check";
    case TraceStage::kShardLockWait:
      return "shard_lock_wait";
    case TraceStage::kEquationScan:
      return "equation_scan";
    case TraceStage::kJournalAppend:
      return "journal_append";
    case TraceStage::kJournalFsync:
      return "journal_fsync";
    case TraceStage::kCheckpointWrite:
      return "checkpoint_write";
    case TraceStage::kRecoveryReplay:
      return "recovery_replay";
    case TraceStage::kTreeDivision:
      return "tree_division";
    case TraceStage::kOfflineValidation:
      return "offline_validation";
    case TraceStage::kInstanceSoaScan:
      return "instance_soa_scan";
    case TraceStage::kShardSwap:
      return "shard_swap";
    case TraceStage::kNetRead:
      return "net_read";
    case TraceStage::kNetBatchWait:
      return "net_batch_wait";
    case TraceStage::kNetWrite:
      return "net_write";
    case TraceStage::kCatalogCompile:
      return "catalog_compile";
    case TraceStage::kCatalogEvict:
      return "catalog_evict";
  }
  return "unknown";
}

const char* TraceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kOk:
      return "ok";
    case TraceOutcome::kAccepted:
      return "accepted";
    case TraceOutcome::kRejectedInstance:
      return "rejected_instance";
    case TraceOutcome::kRejectedAggregate:
      return "rejected_aggregate";
    case TraceOutcome::kError:
      return "error";
  }
  return "unknown";
}

Tracer::Tracer(const TracerOptions& options) : options_(options) {
  const size_t capacity = std::bit_ceil(std::max<size_t>(options.ring_capacity, 64));
  slots_ = std::vector<Slot>(capacity);
  slot_mask_ = capacity - 1;
  sample_mask_ =
      std::bit_ceil(std::max<uint64_t>(options.sample_period, 1)) - 1;
}

void Tracer::Record(const TraceSpan& span) {
  profile_.Record(span.stage, span.duration_nanos);
  const uint64_t ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & slot_mask_];
  // Seqlock write: odd version while the payload stores are in flight, so
  // a concurrent CollectSpans skips the slot instead of reading a torn
  // span. (Two writers a full ring-wrap apart can interleave on one slot;
  // their distinct version values make the reader skip that slot too.)
  slot.version.store(2 * ticket + 1, std::memory_order_release);
  slot.request_id.store(span.request_id, std::memory_order_relaxed);
  slot.start_nanos.store(span.start_nanos, std::memory_order_relaxed);
  slot.duration_nanos.store(span.duration_nanos, std::memory_order_relaxed);
  slot.stage_outcome.store(static_cast<uint64_t>(span.stage) |
                               (static_cast<uint64_t>(span.outcome) << 8),
                           std::memory_order_relaxed);
  slot.version.store(2 * ticket + 2, std::memory_order_release);
}

void Tracer::RecordChain(const TraceSpan* spans, size_t count) {
  if (count == 0) {
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    Record(spans[i]);
  }
  if (options_.slow_request_nanos <= 0) {
    return;
  }
  const uint64_t total = spans[count - 1].start_nanos +
                         spans[count - 1].duration_nanos -
                         spans[0].start_nanos;
  if (total < static_cast<uint64_t>(options_.slow_request_nanos)) {
    return;
  }
  slow_requests_.fetch_add(1, std::memory_order_relaxed);
  SlowRequestSample sample;
  sample.request_id = spans[0].request_id;
  sample.total_nanos = total;
  sample.spans.assign(spans, spans + count);
  std::lock_guard<std::mutex> lock(slow_mutex_);
  if (slow_samples_.size() >= options_.max_slow_samples) {
    slow_samples_.pop_front();
  }
  slow_samples_.push_back(std::move(sample));
}

std::vector<TraceSpan> Tracer::CollectSpans() const {
  struct Ticketed {
    uint64_t ticket;
    TraceSpan span;
  };
  std::vector<Ticketed> collected;
  collected.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) {
      continue;  // Never written, or a writer is mid-store.
    }
    TraceSpan span;
    span.request_id = slot.request_id.load(std::memory_order_relaxed);
    span.start_nanos = slot.start_nanos.load(std::memory_order_relaxed);
    span.duration_nanos = slot.duration_nanos.load(std::memory_order_relaxed);
    const uint64_t stage_outcome =
        slot.stage_outcome.load(std::memory_order_relaxed);
    // GCC's -Wtsan flags fences because TSan cannot model fence-based
    // synchronization of *non-atomic* accesses. Every field read above is
    // itself an atomic load, so TSan's race analysis is unaffected; the
    // fence only orders the version recheck after the field loads.
#if defined(__GNUC__) && !defined(__clang__) && defined(__SANITIZE_THREAD__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wtsan"
#endif
    std::atomic_thread_fence(std::memory_order_acquire);
#if defined(__GNUC__) && !defined(__clang__) && defined(__SANITIZE_THREAD__)
#pragma GCC diagnostic pop
#endif
    if (slot.version.load(std::memory_order_relaxed) != v1) {
      continue;  // A writer lapped us mid-read; drop the torn span.
    }
    span.stage = static_cast<TraceStage>(stage_outcome & 0xff);
    span.outcome = static_cast<TraceOutcome>((stage_outcome >> 8) & 0xff);
    collected.push_back(Ticketed{(v1 - 2) / 2, span});
  }
  std::sort(collected.begin(), collected.end(),
            [](const Ticketed& a, const Ticketed& b) {
              return a.ticket < b.ticket;
            });
  std::vector<TraceSpan> spans;
  spans.reserve(collected.size());
  for (const Ticketed& entry : collected) {
    spans.push_back(entry.span);
  }
  return spans;
}

std::vector<SlowRequestSample> Tracer::SlowSamples() const {
  std::lock_guard<std::mutex> lock(slow_mutex_);
  return std::vector<SlowRequestSample>(slow_samples_.begin(),
                                        slow_samples_.end());
}

}  // namespace geolic
