#ifndef GEOLIC_OBS_EXPOSITION_H_
#define GEOLIC_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>

#include "obs/trace.h"
#include "util/metrics.h"
#include "util/status.h"

namespace geolic {

// Everything one exposition document renders. Callers fill the sections
// they have; the `has_*` flags gate the optional ones. This is a plain
// data carrier so the obs layer never depends on the service layer that
// produces the numbers.
struct ExpositionInput {
  // Label value stamped on every series ({service="..."}).
  std::string service = "geolic";

  IssuanceMetrics::Snapshot metrics;

  bool has_stages = false;
  StageProfile::Snapshot stages;

  bool has_journal = false;
  uint64_t journal_sequence = 0;

  bool has_recovery = false;
  uint64_t recovery_checkpoint_records = 0;
  uint64_t recovery_journal_replayed = 0;
  uint64_t recovery_journal_skipped = 0;
  bool recovery_torn_tail = false;

  // Network front-end counters (src/net/server.h). Counters unless noted.
  bool has_net = false;
  struct NetSection {
    uint64_t connections_opened = 0;
    uint64_t connections_closed = 0;
    uint64_t frames_decoded = 0;
    uint64_t requests_enqueued = 0;
    uint64_t requests_shed = 0;     // Admission-queue overflow responses.
    uint64_t protocol_errors = 0;   // CRC/framing failures (connection drop).
    uint64_t batches_dispatched = 0;
    uint64_t batch_requests_dispatched = 0;
    uint64_t queue_depth = 0;       // Gauge: requests waiting right now.
    uint64_t queue_depth_peak = 0;  // Gauge: high-water mark.
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
  } net;

  // Multi-tenant catalog counters (src/catalog/catalog_service.h).
  // Counters unless noted.
  bool has_catalog = false;
  struct CatalogSection {
    uint64_t hits = 0;        // Requests served by a resident tenant.
    uint64_t misses = 0;      // Requests that had to materialize the tenant.
    uint64_t compiles = 0;    // First-touch compiles from the tenant source.
    uint64_t loads = 0;       // Reloads from a spill checkpoint.
    uint64_t evictions = 0;   // Tenants pushed out by the memory budget.
    uint64_t spills = 0;      // Spill checkpoints written (evict + recover).
    uint64_t recovered_tenants = 0;  // Tenants rebuilt by catalog Recover.
    uint64_t journal_frames = 0;     // Tenant frames appended to the pool.
    uint64_t resident_tenants = 0;   // Gauge: tenants resident right now.
    uint64_t resident_bytes = 0;     // Gauge: approx bytes they occupy.
    uint64_t poisoned_writers = 0;   // Gauge: pool journal writers dead
                                     // after an I/O error (nonzero means
                                     // the catalog has fail-stopped).
  } catalog;
};

// Prometheus text exposition (one `# TYPE` comment per family, then the
// samples). Histograms render the power-of-two buckets cumulatively with
// `le` set to each bucket's exclusive upper bound 2^(i+1) (bucket i holds
// floor(log2(nanos)) == i), trailing empty buckets elided, then `+Inf`.
std::string RenderPrometheusText(const ExpositionInput& input);

// JSON twin of the text exposition: one object, integer-only values, so
// the document is byte-deterministic for a given input.
std::string RenderJson(const ExpositionInput& input);

// Writes one exposition document to `path`: JSON when the path ends in
// ".json", Prometheus text otherwise.
Status WriteMetricsFile(const ExpositionInput& input, const std::string& path);

}  // namespace geolic

#endif  // GEOLIC_OBS_EXPOSITION_H_
