#ifndef GEOLIC_WORKLOAD_WORKLOAD_H_
#define GEOLIC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "licensing/license_catalog.h"
#include "validation/log_store.h"
#include "util/random.h"
#include "util/status.h"

namespace geolic {

// Parameters of a synthetic validation workload. Defaults reproduce the
// paper's evaluation setup (Section 5): 4 instance-based constraints per
// redistribution license, aggregate counts in [5000, 20000], usage-license
// permission counts in [10, 30], and roughly 600 log records at N = 1
// growing to 22000 at N = 35.
struct WorkloadConfig {
  // N — redistribution licenses for the content. 1..64.
  int num_licenses = 10;
  // M — instance-based constraint dimensions (all intervals here; the
  // paper's experiments use 4 unnamed range constraints).
  int dimensions = 4;
  // Spatial clusters licenses are scattered into. Clusters occupy disjoint
  // slabs of every dimension, so licenses from different clusters never
  // overlap; the number of overlap *groups* then fluctuates between 1 and
  // `num_clusters` as licenses fragment or bridge within clusters — the
  // behaviour of the paper's figure 6.
  int num_clusters = 5;
  // Fraction of a cluster slab a license's interval covers, drawn uniformly
  // from [min_extent, max_extent]. Higher extents ⇒ denser overlap ⇒ fewer
  // groups.
  double min_extent = 0.35;
  double max_extent = 0.9;
  // Dimension domain: every dimension spans [0, domain_size).
  int64_t domain_size = 1000000;
  // Aggregate constraint counts of redistribution licenses.
  int64_t aggregate_min = 5000;
  int64_t aggregate_max = 20000;
  // Permission counts of issued (usage) licenses.
  int64_t usage_count_min = 10;
  int64_t usage_count_max = 30;
  // Total log records to generate.
  int num_records = 6300;
  // PRNG seed; identical configs generate identical workloads.
  uint64_t seed = 42;

  // Sanity-checks the parameter ranges.
  Status Validate() const;
};

// A generated workload: the schema + redistribution licenses a distributor
// holds, and the issuance log to validate. Heap-held so the set's pointer
// to the schema survives moves.
struct Workload {
  std::unique_ptr<ConstraintSchema> schema;
  std::unique_ptr<LicenseCatalog> licenses;
  LogStore log;
};

// Deterministic generator for paper-style workloads.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  // Generates redistribution licenses and `config.num_records` issuance log
  // records. Each record is produced the way the paper describes: draw a
  // usage license inside a random redistribution license, compute the set S
  // of all redistribution licenses containing it (instance validation), log
  // (S, count).
  Result<Workload> Generate();

  // Licenses only (empty log) — for grouping/overlap experiments.
  Result<Workload> GenerateLicensesOnly();

  // Draws one usage license lying inside redistribution license `index` of
  // `workload` (a random sub-rectangle, count in the configured range).
  License DrawUsageLicense(const Workload& workload, int index, Rng* rng,
                           int64_t sequence) const;

  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
};

// The paper's sweep point for N redistribution licenses: num_records
// interpolates the stated 600 (N = 1) → 22000 (N = 35) linearly, everything
// else at paper defaults. `seed` defaults to a fixed constant so figures
// are reproducible.
WorkloadConfig PaperSweepConfig(int num_licenses, uint64_t seed = 2010);

}  // namespace geolic

#endif  // GEOLIC_WORKLOAD_WORKLOAD_H_
