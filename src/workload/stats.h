#ifndef GEOLIC_WORKLOAD_STATS_H_
#define GEOLIC_WORKLOAD_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "licensing/license_catalog.h"
#include "validation/log_store.h"

namespace geolic {

// Min/mean/max summary of an integer sample.
struct SampleSummary {
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  size_t samples = 0;

  // Accumulating construction.
  void Add(int64_t value);
  // "min=10 mean=20.1 max=30 (n=4711)".
  std::string ToString() const;
};

// Shape of an issuance log: how many records, how concentrated the sets
// are, how the satisfying-set sizes distribute (the k in the paper's
// 2^(N−k) complexity discussion).
struct LogStats {
  size_t records = 0;
  size_t distinct_sets = 0;
  SampleSummary set_size;   // |S| per record.
  SampleSummary count;      // Permission counts per record.
  // set_size_histogram[k] = records whose set has exactly k licenses
  // (index 0 unused).
  std::vector<size_t> set_size_histogram;

  static LogStats Compute(const LogStore& log);
  std::string ToString() const;
};

// Shape of a distributor's license portfolio: overlap structure and the
// resulting validation-equation economics.
struct LicensePortfolioStats {
  int licenses = 0;
  int overlap_edges = 0;
  double mean_degree = 0.0;
  int groups = 0;
  std::vector<int> group_sizes;
  uint64_t exhaustive_equations = 0;   // 2^N − 1.
  uint64_t grouped_equations = 0;      // Σ (2^{N_k} − 1).
  double theoretical_gain = 1.0;       // Paper equation 3.

  static LicensePortfolioStats Compute(const LicenseCatalog& licenses);
  std::string ToString() const;
};

}  // namespace geolic

#endif  // GEOLIC_WORKLOAD_STATS_H_
