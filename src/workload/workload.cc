#include "workload/workload.h"

#include <algorithm>
#include <utility>

#include "core/instance_validator.h"

namespace geolic {

Status WorkloadConfig::Validate() const {
  if (num_licenses < 1 || num_licenses > kMaxLicensesLarge) {
    return Status::InvalidArgument(
        "num_licenses must be in [1, " +
        std::to_string(kMaxLicensesLarge) + "], got " +
        std::to_string(num_licenses));
  }
  if (dimensions < 1) {
    return Status::InvalidArgument("dimensions must be >= 1");
  }
  if (num_clusters < 1) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (!(min_extent > 0.0 && min_extent <= max_extent && max_extent <= 1.0)) {
    return Status::InvalidArgument(
        "extents must satisfy 0 < min_extent <= max_extent <= 1");
  }
  if (domain_size < 100 * num_clusters) {
    return Status::InvalidArgument("domain_size too small for the clusters");
  }
  if (aggregate_min < 1 || aggregate_min > aggregate_max) {
    return Status::InvalidArgument("bad aggregate range");
  }
  if (usage_count_min < 1 || usage_count_min > usage_count_max) {
    return Status::InvalidArgument("bad usage count range");
  }
  if (num_records < 0) {
    return Status::InvalidArgument("num_records must be >= 0");
  }
  return Status::Ok();
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(std::move(config)) {}

Result<Workload> WorkloadGenerator::GenerateLicensesOnly() {
  GEOLIC_RETURN_IF_ERROR(config_.Validate());
  Rng rng(config_.seed);

  Workload workload;
  workload.schema = std::make_unique<ConstraintSchema>();
  for (int d = 0; d < config_.dimensions; ++d) {
    GEOLIC_RETURN_IF_ERROR(
        workload.schema->AddIntervalDimension("C" + std::to_string(d + 1)));
  }
  workload.licenses = std::make_unique<LicenseCatalog>(workload.schema.get());

  // Each cluster owns the slab [cluster * width, cluster * width + usable)
  // of every dimension; a one-unit gap keeps slabs disjoint so licenses in
  // different clusters can never overlap.
  const int64_t width = config_.domain_size / config_.num_clusters;
  const int64_t usable = width - 1;

  for (int i = 0; i < config_.num_licenses; ++i) {
    const int64_t cluster =
        rng.UniformInt(0, config_.num_clusters - 1);
    LicenseBuilder builder(workload.schema.get());
    builder.SetId("LD" + std::to_string(i + 1))
        .SetContentKey("K")
        .SetType(LicenseType::kRedistribution)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(
            rng.UniformInt(config_.aggregate_min, config_.aggregate_max));
    for (int d = 0; d < config_.dimensions; ++d) {
      const double extent_fraction =
          config_.min_extent +
          rng.UniformDouble() * (config_.max_extent - config_.min_extent);
      int64_t extent =
          static_cast<int64_t>(extent_fraction * static_cast<double>(usable));
      extent = std::clamp<int64_t>(extent, 1, usable);
      const int64_t slab_lo = cluster * width;
      const int64_t lo = slab_lo + rng.UniformInt(0, usable - extent);
      builder.SetInterval("C" + std::to_string(d + 1), lo, lo + extent - 1);
    }
    GEOLIC_ASSIGN_OR_RETURN(License license, builder.Build());
    const Result<int> added = workload.licenses->Add(std::move(license));
    if (!added.ok()) {
      return added.status();
    }
  }
  return workload;
}

License WorkloadGenerator::DrawUsageLicense(const Workload& workload,
                                            int index, Rng* rng,
                                            int64_t sequence) const {
  const License& parent = workload.licenses->at(index);
  LicenseBuilder builder(workload.schema.get());
  builder.SetId("LU" + std::to_string(sequence))
      .SetContentKey(parent.content_key())
      .SetType(LicenseType::kUsage)
      .SetPermission(parent.permission())
      .SetAggregateCount(
          rng->UniformInt(config_.usage_count_min, config_.usage_count_max));
  for (int d = 0; d < workload.schema->dimensions(); ++d) {
    const Interval& range = parent.rect().dim(d).interval();
    const int64_t lo = rng->UniformInt(range.lo(), range.hi());
    const int64_t hi = rng->UniformInt(lo, range.hi());
    builder.SetInterval(workload.schema->name(d), lo, hi);
  }
  Result<License> license = builder.Build();
  GEOLIC_CHECK(license.ok());
  return *std::move(license);
}

Result<Workload> WorkloadGenerator::Generate() {
  GEOLIC_ASSIGN_OR_RETURN(Workload workload, GenerateLicensesOnly());
  Rng rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);
  const LinearInstanceValidator instance_validator(workload.licenses.get());

  for (int r = 0; r < config_.num_records; ++r) {
    const int parent =
        static_cast<int>(rng.UniformInt(0, config_.num_licenses - 1));
    const License usage = DrawUsageLicense(workload, parent, &rng, r + 1);
    const LicenseSet set = instance_validator.SatisfyingSet(usage);
    // The drawn rectangle lies inside `parent`, so S is never empty.
    GEOLIC_CHECK((set).Contains(parent));
    LogRecord record;
    record.issued_license_id = usage.id();
    record.set = set;
    record.count = usage.aggregate_count();
    GEOLIC_RETURN_IF_ERROR(workload.log.Append(std::move(record)));
  }
  return workload;
}

WorkloadConfig PaperSweepConfig(int num_licenses, uint64_t seed) {
  WorkloadConfig config;
  config.num_licenses = num_licenses;
  config.seed = seed + static_cast<uint64_t>(num_licenses) * uint64_t{1000003};
  // 600 records at N = 1 rising linearly to 22000 at N = 35 (Section 5).
  const double fraction = (static_cast<double>(num_licenses) - 1.0) / 34.0;
  config.num_records =
      static_cast<int>(600.0 + fraction * (22000.0 - 600.0));
  return config;
}

}  // namespace geolic
