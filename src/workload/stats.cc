#include "workload/stats.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "core/gain.h"
#include "core/grouping.h"
#include "core/overlap_graph.h"
#include "util/license_set.h"

namespace geolic {

void SampleSummary::Add(int64_t value) {
  if (samples == 0) {
    min = value;
    max = value;
    mean = static_cast<double>(value);
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
    mean += (static_cast<double>(value) - mean) /
            static_cast<double>(samples + 1);
  }
  ++samples;
}

std::string SampleSummary::ToString() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "min=%lld mean=%.2f max=%lld (n=%zu)",
                static_cast<long long>(min), mean,
                static_cast<long long>(max), samples);
  return buffer;
}

LogStats LogStats::Compute(const LogStore& log) {
  LogStats stats;
  stats.records = log.size();
  std::unordered_set<LicenseSet> distinct;
  int max_size = 0;
  for (const LogRecord& record : log.records()) {
    distinct.insert(record.set);
    const int size = (record.set).Size();
    max_size = std::max(max_size, size);
    stats.set_size.Add(size);
    stats.count.Add(record.count);
  }
  stats.distinct_sets = distinct.size();
  stats.set_size_histogram.assign(static_cast<size_t>(max_size) + 1, 0);
  for (const LogRecord& record : log.records()) {
    ++stats.set_size_histogram[static_cast<size_t>((record.set).Size())];
  }
  return stats;
}

std::string LogStats::ToString() const {
  std::string out = "log: " + std::to_string(records) + " records, " +
                    std::to_string(distinct_sets) + " distinct sets\n";
  out += "  |S| " + set_size.ToString() + "\n";
  out += "  counts " + count.ToString() + "\n";
  out += "  |S| histogram:";
  for (size_t k = 1; k < set_size_histogram.size(); ++k) {
    out += " " + std::to_string(k) + ":" +
           std::to_string(set_size_histogram[k]);
  }
  out += "\n";
  return out;
}

LicensePortfolioStats LicensePortfolioStats::Compute(
    const LicenseCatalog& licenses) {
  LicensePortfolioStats stats;
  stats.licenses = licenses.size();
  if (licenses.empty()) {
    return stats;
  }
  const AdjacencyMatrix graph = BuildOverlapGraph(licenses);
  stats.overlap_edges = graph.EdgeCount();
  stats.mean_degree = licenses.size() > 0
                          ? 2.0 * stats.overlap_edges /
                                static_cast<double>(licenses.size())
                          : 0.0;
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(licenses);
  stats.groups = grouping.group_count();
  for (int k = 0; k < grouping.group_count(); ++k) {
    stats.group_sizes.push_back(grouping.GroupSize(k));
  }
  stats.exhaustive_equations = EquationCount(licenses.size());
  stats.grouped_equations = GroupedEquationCount(stats.group_sizes);
  stats.theoretical_gain = TheoreticalGain(stats.group_sizes);
  return stats;
}

std::string LicensePortfolioStats::ToString() const {
  std::string out = "portfolio: " + std::to_string(licenses) +
                    " licenses, " + std::to_string(overlap_edges) +
                    " overlap edges";
  char degree[48];
  std::snprintf(degree, sizeof(degree), " (mean degree %.2f)\n",
                mean_degree);
  out += degree;
  out += "  groups: " + std::to_string(groups) + " [";
  for (size_t i = 0; i < group_sizes.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(group_sizes[i]);
  }
  out += "]\n";
  char equations[160];
  std::snprintf(equations, sizeof(equations),
                "  equations: %llu grouped vs %llu exhaustive "
                "(gain %.1fx)\n",
                static_cast<unsigned long long>(grouped_equations),
                static_cast<unsigned long long>(exhaustive_equations),
                theoretical_gain);
  out += equations;
  return out;
}

}  // namespace geolic
