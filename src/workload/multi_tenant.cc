#include "workload/multi_tenant.h"

#include <cmath>

#include "util/check.h"

namespace geolic {

namespace {

// SplitMix64 finalizer — mixes the tenant id into the global seed so
// neighbouring tenants get uncorrelated per-tenant streams.
uint64_t MixSeed(uint64_t seed, uint64_t tenant_id) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (tenant_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

// --- ZipfSampler (Hörmann & Derflinger rejection-inversion) ---

double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  if (s_ == 1.0) {
    return log_x;
  }
  return std::expm1((1.0 - s_) * log_x) / (1.0 - s_);
}

double ZipfSampler::HIntegralInverse(double u) const {
  if (s_ == 1.0) {
    return std::exp(u);
  }
  double t = u * (1.0 - s_);
  if (t < -1.0) {
    t = -1.0;  // Guard the rounding edge at the left end of the range.
  }
  return std::exp(std::log1p(t) / (1.0 - s_));
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  GEOLIC_CHECK(n >= 1);
  GEOLIC_CHECK(s > 0.0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HIntegralInverse(HIntegral(2.5) - std::pow(2.0, -s));
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  if (n_ == 1) {
    return 0;
  }
  while (true) {
    const double u = h_integral_n_ +
                     rng->UniformDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    if (k - x <= threshold_ ||
        u >= HIntegral(k + 0.5) - std::pow(k, -s_)) {
      return static_cast<uint64_t>(k) - 1;
    }
  }
}

double ZipfSampler::Harmonic(uint64_t k, double s) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= k; ++i) {
    sum += std::pow(static_cast<double>(i), -s);
  }
  return sum;
}

// --- MultiTenantWorkload ---

Status MultiTenantConfig::Validate() const {
  if (num_tenants < 1) {
    return Status::InvalidArgument("num_tenants must be >= 1");
  }
  if (!(zipf_s > 0.0)) {
    return Status::InvalidArgument("zipf_s must be > 0");
  }
  if (min_licenses < 1 || min_licenses > max_licenses ||
      max_licenses > kMaxLicensesLarge) {
    return Status::InvalidArgument("bad per-tenant license count range");
  }
  WorkloadConfig probe = base;
  probe.num_licenses = max_licenses;
  probe.num_records = 0;
  return probe.Validate();
}

MultiTenantWorkload::MultiTenantWorkload(const MultiTenantConfig& config)
    : config_(config), zipf_(config.num_tenants, config.zipf_s) {}

WorkloadConfig MultiTenantWorkload::TenantConfig(uint64_t tenant_id) const {
  WorkloadConfig tenant = config_.base;
  tenant.seed = MixSeed(config_.seed, tenant_id);
  tenant.num_records = 0;
  Rng rng(tenant.seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  tenant.num_licenses = static_cast<int>(
      rng.UniformInt(config_.min_licenses, config_.max_licenses));
  return tenant;
}

Result<Workload> MultiTenantWorkload::MakeTenant(uint64_t tenant_id) const {
  if (tenant_id >= config_.num_tenants) {
    return Status::InvalidArgument("tenant id " + std::to_string(tenant_id) +
                                   " out of range (num_tenants " +
                                   std::to_string(config_.num_tenants) + ")");
  }
  WorkloadGenerator generator(TenantConfig(tenant_id));
  return generator.GenerateLicensesOnly();
}

License MultiTenantWorkload::DrawRequest(const Workload& tenant, Rng* rng,
                                         int64_t sequence) const {
  GEOLIC_CHECK(!tenant.licenses->empty());
  WorkloadGenerator generator(config_.base);
  const int index =
      static_cast<int>(rng->UniformIndex(
          static_cast<size_t>(tenant.licenses->size())));
  return generator.DrawUsageLicense(tenant, index, rng, sequence);
}

}  // namespace geolic
