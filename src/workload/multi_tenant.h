#ifndef GEOLIC_WORKLOAD_MULTI_TENANT_H_
#define GEOLIC_WORKLOAD_MULTI_TENANT_H_

#include <cstdint>
#include <vector>

#include "workload/workload.h"
#include "util/random.h"
#include "util/status.h"

namespace geolic {

// Bounded Zipf(s) sampler over ranks {0, ..., n-1} via Hörmann &
// Derflinger rejection-inversion: O(1) per draw with no table, so it
// scales to millions of tenants. P(rank = r) ∝ (r + 1)^{-s}. Deterministic
// given the Rng stream.
class ZipfSampler {
 public:
  // n >= 1, s > 0.
  ZipfSampler(uint64_t n, double s);

  // Draws a 0-based rank in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  // Generalized harmonic number H_{k,s} = sum_{i=1..k} i^{-s} — the
  // closed-form normalizer; exposed so statistics tests can compare
  // empirical rank masses against exact expectations.
  static double Harmonic(uint64_t k, double s);

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double u) const;

  uint64_t n_;
  double s_;
  double h_integral_x1_;       // H(1.5) - 1.
  double h_integral_n_;        // H(n + 0.5).
  double threshold_;           // 2 - HInverse(H(2.5) - 2^{-s}).
};

// Parameters of a multi-tenant catalog workload: T tenants ("contents"),
// each with its own small license set generated from `base`, request
// traffic distributed over tenants by Zipf(s) popularity (tenant id 0 is
// the most popular rank). The per-tenant license count is drawn uniformly
// from [min_licenses, max_licenses] so catalogs differ in shape as well as
// geometry.
struct MultiTenantConfig {
  uint64_t num_tenants = 1000;
  double zipf_s = 1.1;
  // Per-tenant template. num_licenses is overridden per tenant by the
  // [min_licenses, max_licenses] draw; num_records is ignored (tenant
  // baselines are licenses-only — traffic comes from DrawRequest).
  WorkloadConfig base;
  int min_licenses = 2;
  int max_licenses = 6;
  uint64_t seed = 42;

  Status Validate() const;
};

// Deterministic multi-tenant workload: per-tenant configs, lazily
// materialized per-tenant license catalogs, and the Zipf-popularity
// request stream. Everything is a pure function of (config, tenant_id) or
// of the caller's Rng stream, so two instances with the same config agree
// tenant-for-tenant — the property the catalog layer's lazy compilation
// and crash recovery both lean on.
class MultiTenantWorkload {
 public:
  explicit MultiTenantWorkload(const MultiTenantConfig& config);

  const MultiTenantConfig& config() const { return config_; }

  // The derived WorkloadConfig for one tenant (seed mixed from the global
  // seed and the tenant id; license count from the per-tenant draw).
  WorkloadConfig TenantConfig(uint64_t tenant_id) const;

  // Materializes tenant `tenant_id`'s baseline: schema + licenses, no log.
  // Deterministic: same (config, tenant_id) ⇒ identical licenses.
  Result<Workload> MakeTenant(uint64_t tenant_id) const;

  // Draws the tenant of the next request by Zipf popularity.
  uint64_t DrawTenant(Rng* rng) const { return zipf_.Sample(rng); }

  // Draws one usage request against a materialized tenant baseline: a
  // random sub-rectangle of one of its redistribution licenses.
  License DrawRequest(const Workload& tenant, Rng* rng,
                      int64_t sequence) const;

  const ZipfSampler& zipf() const { return zipf_; }

 private:
  MultiTenantConfig config_;
  ZipfSampler zipf_;
};

}  // namespace geolic

#endif  // GEOLIC_WORKLOAD_MULTI_TENANT_H_
