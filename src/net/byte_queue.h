#ifndef GEOLIC_NET_BYTE_QUEUE_H_
#define GEOLIC_NET_BYTE_QUEUE_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace geolic::net {

// Per-connection byte FIFO: the read ring an incremental decoder consumes
// from and the write ring partial sends drain. A string plus a head offset
// — consumption is O(1), and the consumed prefix is reclaimed only when it
// dominates the buffer, so steady-state traffic memmoves amortized O(1)
// bytes and the buffer's capacity is reused across frames.
class ByteQueue {
 public:
  void Append(std::string_view bytes) { buffer_.append(bytes); }

  // The unconsumed bytes, in order. Valid until the next mutation.
  std::string_view data() const {
    return std::string_view(buffer_).substr(head_);
  }

  // Drops `n` bytes from the front (n <= size()).
  void Consume(size_t n) {
    head_ += n;
    if (head_ >= kCompactThreshold && head_ * 2 >= buffer_.size()) {
      buffer_.erase(0, head_);
      head_ = 0;
    }
  }

  size_t size() const { return buffer_.size() - head_; }
  bool empty() const { return head_ == buffer_.size(); }

  void Clear() {
    buffer_.clear();
    head_ = 0;
  }

 private:
  static constexpr size_t kCompactThreshold = 4096;

  std::string buffer_;
  size_t head_ = 0;
};

}  // namespace geolic::net

#endif  // GEOLIC_NET_BYTE_QUEUE_H_
