#include "net/wire.h"

#include <sstream>

#include "licensing/license_serialization.h"
#include "persist/framing.h"
#include "util/crc32c.h"

namespace geolic::net {

using framing::GetScalar;
using framing::PutScalar;

bool IsRequestKind(FrameKind kind) {
  return kind == FrameKind::kIssueRequest || kind == FrameKind::kPing ||
         kind == FrameKind::kTenantIssueRequest;
}

bool IsKnownKind(FrameKind kind) {
  switch (kind) {
    case FrameKind::kIssueRequest:
    case FrameKind::kPing:
    case FrameKind::kTenantIssueRequest:
    case FrameKind::kIssueResult:
    case FrameKind::kPong:
    case FrameKind::kShed:
    case FrameKind::kError:
      return true;
  }
  return false;
}

void EncodeFrame(FrameKind kind, uint64_t request_id,
                 std::string_view payload, std::string* out) {
  const size_t header_start = out->size();
  PutScalar(out, static_cast<uint32_t>(payload.size()));
  PutScalar(out, static_cast<uint32_t>(kind));
  PutScalar(out, request_id);
  PutScalar(out, Crc32c(std::string_view(out->data() + header_start, 16)));
  PutScalar(out, Crc32c(payload));
  out->append(payload);
}

DecodeResult TryDecodeFrame(std::string_view bytes, Frame* frame,
                            size_t* consumed, std::string* error) {
  if (bytes.size() < kWireHeaderBytes) {
    return DecodeResult::kNeedMore;
  }
  size_t pos = 0;
  uint32_t payload_len = 0;
  uint32_t kind_word = 0;
  uint64_t request_id = 0;
  uint32_t header_crc = 0;
  uint32_t payload_crc = 0;
  GetScalar(bytes, &pos, &payload_len);
  GetScalar(bytes, &pos, &kind_word);
  GetScalar(bytes, &pos, &request_id);
  GetScalar(bytes, &pos, &header_crc);
  GetScalar(bytes, &pos, &payload_crc);
  if (Crc32c(bytes.substr(0, 16)) != header_crc) {
    *error = "frame header crc mismatch";
    return DecodeResult::kBad;
  }
  // The header CRC held, so these fields are what the peer framed —
  // anything implausible now is a dialect mismatch, not line noise.
  if (payload_len > kWireMaxPayloadBytes) {
    *error = "implausible payload length " + std::to_string(payload_len);
    return DecodeResult::kBad;
  }
  if (!IsKnownKind(static_cast<FrameKind>(kind_word))) {
    *error = "unknown frame kind " + std::to_string(kind_word);
    return DecodeResult::kBad;
  }
  if (bytes.size() - pos < payload_len) {
    return DecodeResult::kNeedMore;
  }
  const std::string_view payload = bytes.substr(pos, payload_len);
  if (Crc32c(payload) != payload_crc) {
    *error = "frame payload crc mismatch";
    return DecodeResult::kBad;
  }
  frame->kind = static_cast<FrameKind>(kind_word);
  frame->request_id = request_id;
  frame->payload.assign(payload.data(), payload.size());
  *consumed = pos + payload_len;
  return DecodeResult::kFrame;
}

Status EncodeIssueRequest(const License& license, std::string* out) {
  std::ostringstream body;
  GEOLIC_RETURN_IF_ERROR(WriteLicenseBinary(license, &body));
  out->append(body.str());
  return Status::Ok();
}

Result<License> DecodeIssueRequest(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  GEOLIC_ASSIGN_OR_RETURN(License license, ReadLicenseBinary(&in));
  if (in.peek() != std::char_traits<char>::eof()) {
    return Status::ParseError("trailing bytes after issue request license");
  }
  return license;
}

Status EncodeTenantIssueRequest(uint64_t tenant_id, const License& license,
                                std::string* out) {
  PutScalar(out, tenant_id);
  return EncodeIssueRequest(license, out);
}

Result<TenantIssueRequest> DecodeTenantIssueRequest(std::string_view payload) {
  size_t pos = 0;
  TenantIssueRequest request;
  if (!GetScalar(payload, &pos, &request.tenant_id)) {
    return Status::ParseError("tenant issue request payload truncated");
  }
  GEOLIC_ASSIGN_OR_RETURN(request.license,
                          DecodeIssueRequest(payload.substr(pos)));
  return request;
}

void EncodeIssueResult(const IssueResult& result, std::string* out) {
  PutScalar(out, static_cast<uint8_t>(result.outcome));
  PutScalar(out, result.catalog_epoch);
  PutScalar(out, result.equations_checked);
}

Status DecodeIssueResult(std::string_view payload, IssueResult* result) {
  size_t pos = 0;
  uint8_t outcome = 0;
  if (!GetScalar(payload, &pos, &outcome) ||
      !GetScalar(payload, &pos, &result->catalog_epoch) ||
      !GetScalar(payload, &pos, &result->equations_checked)) {
    return Status::ParseError("issue result payload truncated");
  }
  if (outcome > static_cast<uint8_t>(IssueResult::Outcome::kRejectedAggregate)) {
    return Status::ParseError("unknown issue result outcome");
  }
  if (pos != payload.size()) {
    return Status::ParseError("trailing bytes after issue result");
  }
  result->outcome = static_cast<IssueResult::Outcome>(outcome);
  return Status::Ok();
}

}  // namespace geolic::net
