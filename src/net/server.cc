#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace geolic::net {
namespace {

// epoll user-data ids for the two non-connection descriptors.
constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

// Per-wake recv budget: with level-triggered epoll the remaining bytes
// re-arm immediately, so a firehose client cannot starve its neighbours
// or balloon one read ring inside a single loop turn.
constexpr size_t kMaxReadPerWake = 64 * 1024;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

uint64_t NowMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Server::Server(IssuanceService* service, CatalogService* catalog,
               const ServerOptions& options)
    : service_(service), catalog_(catalog), options_(options) {
  if (options_.max_batch == 0) {
    options_.max_batch = 1;
  }
}

Result<std::unique_ptr<Server>> Server::Start(IssuanceService* service,
                                              const ServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("server needs a service");
  }
  auto server =
      std::unique_ptr<Server>(new Server(service, nullptr, options));
  GEOLIC_RETURN_IF_ERROR(server->Listen());
  server->io_thread_ = std::thread(&Server::IoLoop, server.get());
  server->worker_thread_ = std::thread(&Server::WorkerLoop, server.get());
  return server;
}

Result<std::unique_ptr<Server>> Server::StartWithCatalog(
    CatalogService* catalog, const ServerOptions& options) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("server needs a catalog");
  }
  auto server =
      std::unique_ptr<Server>(new Server(nullptr, catalog, options));
  GEOLIC_RETURN_IF_ERROR(server->Listen());
  server->io_thread_ = std::thread(&Server::IoLoop, server.get());
  server->worker_thread_ = std::thread(&Server::WorkerLoop, server.get());
  return server;
}

Status Server::Listen() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Errno("epoll_create1");
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Errno("eventfd");
  }
  listen_fd_ =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Errno("socket");
  }
  const int enable = 1;
  if (setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof(enable)) < 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("unparseable bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Errno("bind " + options_.bind_address + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, options_.listen_backlog) < 0) {
    return Errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenId;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  event.events = EPOLLIN;
  event.data.u64 = kWakeId;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) < 0) {
    return Errno("epoll_ctl(wake)");
  }
  return Status::Ok();
}

Server::~Server() {
  Drain();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
  }
  if (wake_fd_ >= 0) {
    close(wake_fd_);
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

void Server::Drain() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  if (drained_) {
    return;
  }
  drained_ = true;
  // Phase 1: stop intake. The I/O thread sees the flag on its next turn,
  // closes the listener and parks every connection's read side, so the
  // admission queue can only shrink from here.
  draining_.store(true, std::memory_order_release);
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
  // Phase 2: flush in-flight batches. The worker keeps dispatching until
  // the queue is empty, then exits; joining it guarantees no TryIssueBatch
  // call — and therefore no pinned catalog epoch — is still in flight.
  {
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    stop_worker_ = true;
  }
  queue_cv_.notify_all();
  if (worker_thread_.joinable()) {
    worker_thread_.join();
  }
  // Stragglers that slipped into the queue after the worker's final empty
  // check (the I/O thread may briefly see a stale draining flag) still get
  // an explicit answer instead of a silent hang.
  {
    std::lock_guard<std::mutex> queue_lock(queue_mutex_);
    std::lock_guard<std::mutex> completion_lock(completion_mutex_);
    for (PendingRequest& request : queue_) {
      std::string encoded;
      EncodeFrame(FrameKind::kError, request.request_id, "server draining",
                  &encoded);
      completions_.push_back(Completion{request.conn_id, std::move(encoded)});
    }
    queue_.clear();
    stats_.queue_depth.store(0, std::memory_order_relaxed);
  }
  worker_done_.store(true, std::memory_order_release);
  (void)!write(wake_fd_, &one, sizeof(one));
  // Phase 3: the I/O thread pushes the last responses out (bounded by
  // drain_timeout_ms against clients that stopped reading) and exits.
  if (io_thread_.joinable()) {
    io_thread_.join();
  }
  // Phase 4: make the drained state durable before reporting done.
  if (service_ != nullptr) {
    (void)service_->SyncJournal();
  }
  if (catalog_ != nullptr) {
    (void)catalog_->SyncJournals();
  }
}

bool Server::IoDone() const {
  if (!draining_.load(std::memory_order_acquire) ||
      !worker_done_.load(std::memory_order_acquire)) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    if (!completions_.empty()) {
      return false;
    }
  }
  for (const auto& entry : conns_) {
    if (!entry.second->write_buf.empty()) {
      return false;
    }
  }
  return true;
}

void Server::IoLoop() {
  epoll_event events[64];
  bool accepting = true;
  uint64_t drain_deadline_ms = 0;
  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining) {
      if (accepting) {
        // Stop accepting and stop reading: intake ends, outflow continues.
        accepting = false;
        listening_.store(false, std::memory_order_release);
        close(listen_fd_);
        listen_fd_ = -1;
        for (auto& entry : conns_) {
          entry.second->paused = true;
          UpdateInterest(entry.second.get());
        }
        drain_deadline_ms =
            NowMillis() +
            static_cast<uint64_t>(std::max(options_.drain_timeout_ms, 0));
      }
      if (IoDone() || NowMillis() >= drain_deadline_ms) {
        break;
      }
    }
    const int timeout_ms = draining ? 20 : -1;
    const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // epoll itself failed; nothing recoverable remains.
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t mask = events[i].events;
      if (id == kListenId) {
        if (accepting) {
          AcceptReady();
        }
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained_count = 0;
        (void)!read(wake_fd_, &drained_count, sizeof(drained_count));
        DrainCompletions();
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) {
        continue;  // Closed earlier in this batch of events.
      }
      Connection* conn = it->second.get();
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(id);
        continue;
      }
      if ((mask & EPOLLIN) != 0) {
        HandleReadable(conn);
      }
      if (conns_.find(id) == conns_.end()) {
        continue;  // HandleReadable closed it.
      }
      if ((mask & EPOLLOUT) != 0) {
        FlushWrites(conn);
      }
    }
  }
  // Teardown: whatever is still connected gets a hard close (drain either
  // finished flushing or timed out on an unreading peer).
  for (auto& entry : conns_) {
    close(entry.second->fd);
    stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptReady() {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN or a transient accept error: try next wake.
    }
    if (conns_.size() >= options_.max_connections) {
      close(fd);  // At capacity: refuse before the handshake.
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
      close(fd);
      continue;
    }
    stats_.connections_opened.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void Server::HandleReadable(Connection* conn) {
#ifndef GEOLIC_DISABLE_TRACING
  const uint64_t read_start =
      options_.tracer != nullptr ? TraceNowNanos() : 0;
#endif
  bool peer_closed = false;
  char buf[16384];
  size_t read_this_wake = 0;
  while (read_this_wake < kMaxReadPerWake) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->read_buf.Append(std::string_view(buf, static_cast<size_t>(n)));
      stats_.bytes_read.fetch_add(static_cast<uint64_t>(n),
                                  std::memory_order_relaxed);
      read_this_wake += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConnection(conn->id);  // Unrecoverable socket error.
    return;
  }

  if (!conn->saw_magic) {
    if (conn->read_buf.size() < sizeof(kWireMagic)) {
      if (peer_closed) {
        CloseConnection(conn->id);
      }
      return;
    }
    if (std::memcmp(conn->read_buf.data().data(), kWireMagic,
                    sizeof(kWireMagic)) != 0) {
      ProtocolError(conn, "bad connection magic");
      return;
    }
    conn->read_buf.Consume(sizeof(kWireMagic));
    conn->saw_magic = true;
  }

  uint64_t frames_this_wake = 0;
  while (!conn->closing) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const DecodeResult decoded =
        TryDecodeFrame(conn->read_buf.data(), &frame, &consumed, &error);
    if (decoded == DecodeResult::kNeedMore) {
      break;
    }
    if (decoded == DecodeResult::kBad) {
      ProtocolError(conn, error);
      return;
    }
    conn->read_buf.Consume(consumed);
    ++frames_this_wake;
    stats_.frames_decoded.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(conn, frame);
    if (conns_.find(conn->id) == conns_.end()) {
      return;  // A fatal send error closed the connection mid-frame.
    }
  }
#ifndef GEOLIC_DISABLE_TRACING
  if (options_.tracer != nullptr && frames_this_wake > 0) {
    // One span per loop turn that completed frames: recv + ring append +
    // incremental decode for everything this wake delivered.
    TraceSpan span;
    span.request_id = 0;
    span.stage = TraceStage::kNetRead;
    span.outcome = TraceOutcome::kOk;
    span.start_nanos = read_start;
    span.duration_nanos = TraceNowNanos() - read_start;
    options_.tracer->Record(span);
  }
#else
  (void)frames_this_wake;
#endif
  if (peer_closed) {
    // The peer half-closed its write side; flush what we owe, then close.
    conn->closing = true;
    FlushWrites(conn);
  }
}

void Server::HandleFrame(Connection* conn, const Frame& frame) {
  if (!IsRequestKind(frame.kind)) {
    ProtocolError(conn, "response kind from client");
    return;
  }
  if (frame.kind == FrameKind::kPing) {
    SendFrame(conn, FrameKind::kPong, frame.request_id, {});
    return;
  }
  // Issue requests. Semantic failures answer kError but keep the
  // connection: the framing was sound, only this request was bad.
  uint64_t tenant_id = 0;
  Result<License> license = [&]() -> Result<License> {
    if (frame.kind == FrameKind::kTenantIssueRequest) {
      if (catalog_ == nullptr) {
        return Status::FailedPrecondition(
            "tenant-addressed request on a single-service server");
      }
      GEOLIC_ASSIGN_OR_RETURN(TenantIssueRequest request,
                              DecodeTenantIssueRequest(frame.payload));
      tenant_id = request.tenant_id;
      return std::move(request.license);
    }
    if (catalog_ != nullptr) {
      return Status::FailedPrecondition(
          "catalog server requires tenant-addressed requests");
    }
    return DecodeIssueRequest(frame.payload);
  }();
  if (!license.ok()) {
    SendFrame(conn, FrameKind::kError, frame.request_id,
              license.status().message());
    return;
  }
  if (license->aggregate_count() <= 0) {
    // Pre-checked here because the service fails a whole batch on it —
    // one hostile request must not poison its batchmates' admissions.
    SendFrame(conn, FrameKind::kError, frame.request_id,
              "issued license must carry a positive count");
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    SendFrame(conn, FrameKind::kError, frame.request_id, "server draining");
    return;
  }
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= options_.queue_capacity) {
      shed = true;
    } else {
      queue_.push_back(PendingRequest{conn->id, frame.request_id,
                                      TraceNowNanos(), tenant_id,
                                      *std::move(license)});
      const uint64_t depth = queue_.size();
      stats_.queue_depth.store(depth, std::memory_order_relaxed);
      uint64_t peak = stats_.queue_depth_peak.load(std::memory_order_relaxed);
      while (depth > peak && !stats_.queue_depth_peak.compare_exchange_weak(
                                 peak, depth, std::memory_order_relaxed)) {
      }
    }
  }
  if (shed) {
    stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
    SendFrame(conn, FrameKind::kShed, frame.request_id, {});
  } else {
    stats_.requests_enqueued.fetch_add(1, std::memory_order_relaxed);
    queue_cv_.notify_one();
  }
}

void Server::SendFrame(Connection* conn, FrameKind kind, uint64_t request_id,
                       std::string_view payload) {
  std::string encoded;
  EncodeFrame(kind, request_id, payload, &encoded);
  conn->write_buf.Append(encoded);
  FlushWrites(conn);
}

void Server::ProtocolError(Connection* conn, const std::string& message) {
  stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  // Stream-level error (request_id 0): the connection cannot resync, so
  // the error frame is the last thing it will ever receive.
  std::string encoded;
  EncodeFrame(FrameKind::kError, 0, message, &encoded);
  conn->write_buf.Append(encoded);
  conn->closing = true;
  FlushWrites(conn);
}

void Server::FlushWrites(Connection* conn) {
#ifndef GEOLIC_DISABLE_TRACING
  const uint64_t write_start =
      options_.tracer != nullptr ? TraceNowNanos() : 0;
#endif
  uint64_t sent_total = 0;
  while (!conn->write_buf.empty()) {
    const std::string_view chunk = conn->write_buf.data();
    const ssize_t sent =
        send(conn->fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;  // Kernel buffer full; EPOLLOUT will resume the flush.
      }
      CloseConnection(conn->id);  // Peer is gone; drop the backlog.
      return;
    }
    conn->write_buf.Consume(static_cast<size_t>(sent));
    sent_total += static_cast<uint64_t>(sent);
  }
  if (sent_total > 0) {
    stats_.bytes_written.fetch_add(sent_total, std::memory_order_relaxed);
#ifndef GEOLIC_DISABLE_TRACING
    if (options_.tracer != nullptr) {
      TraceSpan span;
      span.request_id = 0;
      span.stage = TraceStage::kNetWrite;
      span.outcome = TraceOutcome::kOk;
      span.start_nanos = write_start;
      span.duration_nanos = TraceNowNanos() - write_start;
      options_.tracer->Record(span);
    }
#endif
  }
  if (conn->closing && conn->write_buf.empty()) {
    CloseConnection(conn->id);
    return;
  }
  // Backpressure: a swollen write buffer parks the read side; a
  // half-drained one un-parks it (hysteresis so one borderline send does
  // not flap the epoll interest).
  if (!conn->paused && conn->write_buf.size() > options_.max_write_buffer) {
    conn->paused = true;
  } else if (conn->paused && !conn->closing &&
             !draining_.load(std::memory_order_acquire) &&
             conn->write_buf.size() < options_.max_write_buffer / 2) {
    conn->paused = false;
  }
  conn->want_write = !conn->write_buf.empty();
  UpdateInterest(conn);
}

void Server::UpdateInterest(Connection* conn) {
  epoll_event event{};
  event.events = 0;
  if (!conn->paused && !conn->closing) {
    event.events |= EPOLLIN;
  }
  if (conn->want_write) {
    event.events |= EPOLLOUT;
  }
  event.data.u64 = conn->id;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event);
}

void Server::CloseConnection(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  close(it->second->fd);  // Also deregisters from epoll.
  conns_.erase(it);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void Server::DrainCompletions() {
  std::deque<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    ready.swap(completions_);
  }
  for (Completion& completion : ready) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) {
      continue;  // The connection died while its batch was in flight.
    }
    it->second->write_buf.Append(completion.bytes);
    FlushWrites(it->second.get());
  }
}

void Server::WorkerLoop() {
  std::vector<PendingRequest> batch;
  std::vector<const License*> requests;
  std::vector<OnlineDecision> decisions;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_worker_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_worker_) {
          return;  // Drained: every enqueued request was dispatched.
        }
        continue;
      }
      const size_t take = std::min(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.queue_depth.store(queue_.size(), std::memory_order_relaxed);
    }

#ifndef GEOLIC_DISABLE_TRACING
    if (options_.tracer != nullptr) {
      // The coalescing window each request sat through, stamped with the
      // client's correlation id (diagnostic, not a tracer request id).
      const uint64_t now = TraceNowNanos();
      for (const PendingRequest& request : batch) {
        TraceSpan span;
        span.request_id = request.request_id;
        span.stage = TraceStage::kNetBatchWait;
        span.outcome = TraceOutcome::kOk;
        span.start_nanos = request.enqueue_nanos;
        span.duration_nanos = now - request.enqueue_nanos;
        options_.tracer->Record(span);
      }
    }
#endif

    if (catalog_ != nullptr) {
      DispatchCatalogBatch(batch);
      stats_.batches_dispatched.fetch_add(1, std::memory_order_relaxed);
      stats_.batch_requests_dispatched.fetch_add(batch.size(),
                                                 std::memory_order_relaxed);
      uint64_t wake = 1;
      (void)!write(wake_fd_, &wake, sizeof(wake));
      continue;
    }

    requests.clear();
    for (const PendingRequest& request : batch) {
      requests.push_back(&request.license);
    }
    decisions.assign(batch.size(), OnlineDecision());
    const Status admitted = service_->TryIssueBatch(
        std::span<const License* const>(requests.data(), requests.size()),
        std::span<OnlineDecision>(decisions.data(), decisions.size()));
    stats_.batches_dispatched.fetch_add(1, std::memory_order_relaxed);
    stats_.batch_requests_dispatched.fetch_add(batch.size(),
                                               std::memory_order_relaxed);

    // Encode responses, coalescing consecutive same-connection entries
    // into one completion (pipelined clients get one write burst).
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      for (size_t i = 0; i < batch.size(); ++i) {
        std::string encoded;
        if (admitted.ok()) {
          IssueResult result;
          const OnlineDecision& decision = decisions[i];
          result.outcome = decision.accepted()
                               ? IssueResult::Outcome::kAccepted
                               : (decision.instance_valid
                                      ? IssueResult::Outcome::kRejectedAggregate
                                      : IssueResult::Outcome::kRejectedInstance);
          result.catalog_epoch = decision.catalog_epoch;
          result.equations_checked =
              static_cast<uint64_t>(decision.equations_checked);
          std::string payload;
          EncodeIssueResult(result, &payload);
          EncodeFrame(FrameKind::kIssueResult, batch[i].request_id, payload,
                      &encoded);
        } else {
          // A batch-level failure (journal I/O) fails every member loudly;
          // nothing was silently half-admitted on the wire's watch.
          EncodeFrame(FrameKind::kError, batch[i].request_id,
                      admitted.message(), &encoded);
        }
        if (!completions_.empty() &&
            completions_.back().conn_id == batch[i].conn_id) {
          completions_.back().bytes.append(encoded);
        } else {
          completions_.push_back(
              Completion{batch[i].conn_id, std::move(encoded)});
        }
      }
    }
    uint64_t one = 1;
    (void)!write(wake_fd_, &one, sizeof(one));
  }
}

void Server::DispatchCatalogBatch(const std::vector<PendingRequest>& batch) {
  // Per-request routing: each request may hit a different tenant (and may
  // compile or evict one), so the shared-lock coalescing the single-service
  // batch path exploits does not apply across tenants. Responses are still
  // coalesced per connection below.
  std::vector<std::string> encoded(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const PendingRequest& request = batch[i];
    Result<OnlineDecision> decision =
        catalog_->TryIssue(request.tenant_id, request.license);
    if (!decision.ok()) {
      EncodeFrame(FrameKind::kError, request.request_id,
                  decision.status().message(), &encoded[i]);
      continue;
    }
    IssueResult result;
    result.outcome = decision->accepted()
                         ? IssueResult::Outcome::kAccepted
                         : (decision->instance_valid
                                ? IssueResult::Outcome::kRejectedAggregate
                                : IssueResult::Outcome::kRejectedInstance);
    result.catalog_epoch = decision->catalog_epoch;
    result.equations_checked =
        static_cast<uint64_t>(decision->equations_checked);
    std::string payload;
    EncodeIssueResult(result, &payload);
    EncodeFrame(FrameKind::kIssueResult, request.request_id, payload,
                &encoded[i]);
  }
  std::lock_guard<std::mutex> lock(completion_mutex_);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!completions_.empty() &&
        completions_.back().conn_id == batch[i].conn_id) {
      completions_.back().bytes.append(encoded[i]);
    } else {
      completions_.push_back(
          Completion{batch[i].conn_id, std::move(encoded[i])});
    }
  }
}

NetStats Server::Stats() const {
  NetStats stats;
  stats.connections_opened =
      stats_.connections_opened.load(std::memory_order_relaxed);
  stats.connections_closed =
      stats_.connections_closed.load(std::memory_order_relaxed);
  stats.frames_decoded =
      stats_.frames_decoded.load(std::memory_order_relaxed);
  stats.requests_enqueued =
      stats_.requests_enqueued.load(std::memory_order_relaxed);
  stats.requests_shed = stats_.requests_shed.load(std::memory_order_relaxed);
  stats.protocol_errors =
      stats_.protocol_errors.load(std::memory_order_relaxed);
  stats.batches_dispatched =
      stats_.batches_dispatched.load(std::memory_order_relaxed);
  stats.batch_requests_dispatched =
      stats_.batch_requests_dispatched.load(std::memory_order_relaxed);
  stats.queue_depth = stats_.queue_depth.load(std::memory_order_relaxed);
  stats.queue_depth_peak =
      stats_.queue_depth_peak.load(std::memory_order_relaxed);
  stats.bytes_read = stats_.bytes_read.load(std::memory_order_relaxed);
  stats.bytes_written = stats_.bytes_written.load(std::memory_order_relaxed);
  return stats;
}

ExpositionInput Server::Snap() const {
  ExpositionInput input =
      catalog_ != nullptr ? catalog_->Snap() : service_->Snap();
  input.has_net = true;
  const NetStats stats = Stats();
  input.net.connections_opened = stats.connections_opened;
  input.net.connections_closed = stats.connections_closed;
  input.net.frames_decoded = stats.frames_decoded;
  input.net.requests_enqueued = stats.requests_enqueued;
  input.net.requests_shed = stats.requests_shed;
  input.net.protocol_errors = stats.protocol_errors;
  input.net.batches_dispatched = stats.batches_dispatched;
  input.net.batch_requests_dispatched = stats.batch_requests_dispatched;
  input.net.queue_depth = stats.queue_depth;
  input.net.queue_depth_peak = stats.queue_depth_peak;
  input.net.bytes_read = stats.bytes_read;
  input.net.bytes_written = stats.bytes_written;
  return input;
}

}  // namespace geolic::net
