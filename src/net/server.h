#ifndef GEOLIC_NET_SERVER_H_
#define GEOLIC_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/catalog_service.h"
#include "net/byte_queue.h"
#include "net/wire.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "service/issuance_service.h"
#include "util/status.h"

namespace geolic::net {

// Epoll-based TCP front-end for one IssuanceService (ROADMAP item 1,
// docs/WIRE.md). Two threads:
//
//  * The I/O thread owns every socket: it accepts, reads, decodes frames
//    incrementally off per-connection byte queues, answers pings inline,
//    and pushes issue requests into a bounded admission queue. A request
//    arriving on a full queue is shed with an explicit kShed response —
//    overload degrades to fast rejections, never to unbounded memory.
//    It also drains the completion queue back into per-connection write
//    buffers, with non-blocking sends (MSG_NOSIGNAL, EINTR/EAGAIN and
//    partial writes handled) and EPOLLOUT re-arming.
//  * The batch worker pops up to max_batch queued requests at a time and
//    admits them through one TryIssueBatch call — the wire-level
//    realization of the per-shard lock coalescing: requests from many
//    connections that landed in the same epoll turn share one lock
//    acquisition per shard touched.
//
// Backpressure: a connection whose write buffer exceeds max_write_buffer
// stops being read until the backlog half-drains, so a client that will
// not read its responses throttles itself, not the server.
//
// Graceful drain (Drain(), also run by the destructor): stop accepting
// and reading, let the worker flush every queued request, push the last
// responses out (bounded by drain_timeout_ms), sync the journal, join
// both threads. Joining the worker guarantees no in-flight batch still
// pins a catalog epoch, so a checkpoint cutover after Drain sees fully
// quiesced shards.
struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; Server::port() reports the choice.
  int listen_backlog = 128;
  size_t max_connections = 1024;
  // Bounded admission queue (requests decoded but not yet batched).
  size_t queue_capacity = 1024;
  // Batch window: closes at this size or when the queue runs dry.
  size_t max_batch = 64;
  // Per-connection write-buffer cap before reads pause (backpressure).
  size_t max_write_buffer = 256 * 1024;
  // How long Drain waits for unread responses before force-closing.
  int drain_timeout_ms = 5000;
  // Optional span sink for the net_read / net_batch_wait / net_write
  // stages; must outlive the server.
  Tracer* tracer = nullptr;
};

// Monotonic counters, snapshot by value. All grow except queue_depth.
struct NetStats {
  uint64_t connections_opened = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_decoded = 0;
  uint64_t requests_enqueued = 0;
  uint64_t requests_shed = 0;
  uint64_t protocol_errors = 0;
  uint64_t batches_dispatched = 0;
  uint64_t batch_requests_dispatched = 0;
  uint64_t queue_depth = 0;
  uint64_t queue_depth_peak = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

class Server {
 public:
  // Binds, listens, and starts both threads. `service` (and
  // options.tracer, when set) must outlive the server. A single-service
  // server answers kIssueRequest; tenant-addressed requests are semantic
  // errors.
  static Result<std::unique_ptr<Server>> Start(IssuanceService* service,
                                               const ServerOptions& options);

  // Multi-tenant front-end: the server routes kTenantIssueRequest frames
  // through `catalog` (content_id → lazy per-tenant service). Plain
  // kIssueRequest frames are semantic errors on this server. `catalog`
  // must outlive the server.
  static Result<std::unique_ptr<Server>> StartWithCatalog(
      CatalogService* catalog, const ServerOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  ~Server();  // Runs Drain().

  // The bound TCP port (resolves port 0 to the kernel's pick).
  uint16_t port() const { return port_; }

  // Graceful shutdown; see the class comment. Idempotent, thread-safe.
  void Drain();

  NetStats Stats() const;

  // The service's observability snapshot with the net section filled in.
  ExpositionInput Snap() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    bool saw_magic = false;
    bool closing = false;  // Flush the write buffer, then close.
    bool paused = false;   // EPOLLIN parked for backpressure.
    bool want_write = false;  // EPOLLOUT armed.
    ByteQueue read_buf;
    ByteQueue write_buf;
  };

  struct PendingRequest {
    uint64_t conn_id;
    uint64_t request_id;
    uint64_t enqueue_nanos;
    uint64_t tenant_id;  // Catalog mode only.
    License license;
  };

  struct Completion {
    uint64_t conn_id;
    std::string bytes;  // Encoded response frames.
  };

  Server(IssuanceService* service, CatalogService* catalog,
         const ServerOptions& options);

  Status Listen();
  void IoLoop();
  void WorkerLoop();
  // Catalog-mode dispatch of one popped batch (per-request routing; the
  // per-tenant services still coalesce within themselves).
  void DispatchCatalogBatch(const std::vector<PendingRequest>& batch);

  // --- I/O-thread only ---
  void AcceptReady();
  void HandleReadable(Connection* conn);
  void HandleFrame(Connection* conn, const Frame& frame);
  void FlushWrites(Connection* conn);
  void SendFrame(Connection* conn, FrameKind kind, uint64_t request_id,
                 std::string_view payload);
  void ProtocolError(Connection* conn, const std::string& message);
  void CloseConnection(uint64_t conn_id);
  void DrainCompletions();
  void UpdateInterest(Connection* conn);
  bool IoDone() const;

  IssuanceService* service_;   // Null in catalog mode.
  CatalogService* catalog_;    // Null in single-service mode.
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: worker -> I/O thread.

  std::thread io_thread_;
  std::thread worker_thread_;

  // Drain protocol flags. draining_: no new accepts/reads/enqueues.
  // worker_done_: every queued request has been dispatched and completed.
  std::atomic<bool> draining_{false};
  std::atomic<bool> worker_done_{false};
  std::atomic<bool> listening_{true};
  std::mutex drain_mutex_;  // Serializes Drain() callers.
  bool drained_ = false;    // Guarded by drain_mutex_.

  // Admission queue: I/O thread pushes, worker pops.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;  // Guarded by queue_mutex_.
  bool stop_worker_ = false;          // Guarded by queue_mutex_.

  // Completion queue: worker pushes + wakes wake_fd_, I/O thread pops.
  mutable std::mutex completion_mutex_;
  std::deque<Completion> completions_;  // Guarded by completion_mutex_.

  // I/O-thread-owned connection table (id -> state).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = wake fd.

  struct AtomicStats {
    std::atomic<uint64_t> connections_opened{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> frames_decoded{0};
    std::atomic<uint64_t> requests_enqueued{0};
    std::atomic<uint64_t> requests_shed{0};
    std::atomic<uint64_t> protocol_errors{0};
    std::atomic<uint64_t> batches_dispatched{0};
    std::atomic<uint64_t> batch_requests_dispatched{0};
    std::atomic<uint64_t> queue_depth{0};
    std::atomic<uint64_t> queue_depth_peak{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
  };
  AtomicStats stats_;
};

}  // namespace geolic::net

#endif  // GEOLIC_NET_SERVER_H_
