#ifndef GEOLIC_NET_WIRE_H_
#define GEOLIC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "licensing/license.h"
#include "util/status.h"

namespace geolic::net {

// The wire protocol of the network front-end (docs/WIRE.md): the journal's
// framing discipline (persist/journal.h) applied to a socket. A stream is
// an 8-byte magic preamble from the client, then CRC32C-framed messages in
// both directions (little-endian):
//
//   payload_len u32 | kind u32 | request_id u64 |
//   header_crc u32 (CRC32C of the 16 preceding bytes) |
//   payload_crc u32 (CRC32C of the payload) | payload
//
// The header CRC means a flipped length or kind can never masquerade as a
// short frame: any single corrupted bit fails one of the two checksums and
// the connection dies with an explicit error frame, exactly like a corrupt
// journal frame fails recovery loudly. request_id is a client-chosen
// correlation token echoed verbatim on the response, so clients may
// pipeline: responses to admitted requests can arrive batch-reordered.

inline constexpr char kWireMagic[8] = {'G', 'L', 'W', 'I', 'R', 'E', '1',
                                       '\0'};
inline constexpr size_t kWireHeaderBytes = 4 + 4 + 8 + 4 + 4;
// Issue payloads are one serialized license; 64 KiB bounds every sane
// payload (same cap as the journal) and rejects corrupt lengths early.
inline constexpr uint32_t kWireMaxPayloadBytes = 64 * 1024;

// Message kinds. Requests flow client -> server; responses (high bit set)
// flow back. An unknown kind is a protocol error (the header CRC proves
// the peer really sent it, so the peer speaks a different dialect).
enum class FrameKind : uint32_t {
  // Requests.
  kIssueRequest = 1,  // Payload: one license (license_serialization.h).
  kPing = 2,          // Empty payload; answered inline with kPong.
  kTenantIssueRequest = 3,  // Payload: content_id u64, then one license —
                            // the multi-tenant catalog route (the server
                            // must be fronting a CatalogService).
  // Responses.
  kIssueResult = 0x80000001,  // Payload: EncodeIssueResult.
  kPong = 0x80000002,         // Empty payload.
  kShed = 0x80000003,  // Admission queue full — explicit overload reject,
                       // empty payload; the client should back off.
  kError = 0x80000004,  // Payload: UTF-8 message. request_id 0 = stream-
                        // level (connection closes after the flush).
};

// True for the kinds a client may send.
bool IsRequestKind(FrameKind kind);
// True for any kind defined above.
bool IsKnownKind(FrameKind kind);

// One decoded message.
struct Frame {
  FrameKind kind = FrameKind::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

// Appends one encoded frame to `out`.
void EncodeFrame(FrameKind kind, uint64_t request_id,
                 std::string_view payload, std::string* out);

enum class DecodeResult {
  kFrame,     // One complete frame decoded; *consumed bytes were used.
  kNeedMore,  // `bytes` is a valid proper prefix — read more and retry.
  kBad,       // Corrupt or alien bytes; `*error` says why. The connection
              // cannot resynchronize and must close.
};

// Incremental decode of the next frame from the front of `bytes`. On
// kFrame, `*frame` and `*consumed` are set; on kBad, `*error`. Truncation
// is never an error here — a split recv() is indistinguishable from a
// frame still in flight.
DecodeResult TryDecodeFrame(std::string_view bytes, Frame* frame,
                            size_t* consumed, std::string* error);

// --- Issue payloads ---

// Request payload: one license in the shared binary form.
Status EncodeIssueRequest(const License& license, std::string* out);
Result<License> DecodeIssueRequest(std::string_view payload);

// Tenant-addressed request payload: the content id the license should be
// validated against, then the license itself.
Status EncodeTenantIssueRequest(uint64_t tenant_id, const License& license,
                                std::string* out);
struct TenantIssueRequest {
  uint64_t tenant_id = 0;
  License license;
};
Result<TenantIssueRequest> DecodeTenantIssueRequest(std::string_view payload);

// Response payload: the decision, compressed to what a client acts on.
struct IssueResult {
  enum class Outcome : uint8_t {
    kAccepted = 0,
    kRejectedInstance = 1,
    kRejectedAggregate = 2,
  };
  Outcome outcome = Outcome::kRejectedInstance;
  uint64_t catalog_epoch = 0;
  uint64_t equations_checked = 0;
};

void EncodeIssueResult(const IssueResult& result, std::string* out);
Status DecodeIssueResult(std::string_view payload, IssueResult* result);

}  // namespace geolic::net

#endif  // GEOLIC_NET_WIRE_H_
