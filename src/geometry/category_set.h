#ifndef GEOLIC_GEOMETRY_CATEGORY_SET_H_
#define GEOLIC_GEOMETRY_CATEGORY_SET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace geolic {

// A set of categories out of a universe of at most 64, encoded as a bitmask.
// Categorical instance-based constraints (regions, device classes, output
// formats) are category sets: "R={Asia, Europe}" in a redistribution license,
// "R={India}" in a usage license. Containment is subset, overlap is
// non-empty intersection — exactly the per-dimension algebra Theorems 1 and 2
// of the paper rely on.
class CategorySet {
 public:
  // Default-constructs the empty set.
  CategorySet() : mask_(0) {}
  explicit CategorySet(uint64_t mask) : mask_(mask) {}

  static CategorySet Empty() { return CategorySet(); }

  uint64_t mask() const { return mask_; }
  bool empty() const { return mask_ == 0; }
  int size() const { return std::popcount(mask_); }

  // True iff `other` ⊆ this.
  bool Contains(const CategorySet& other) const {
    return (other.mask_ & ~mask_) == 0;
  }

  // True iff the sets share a category.
  bool Overlaps(const CategorySet& other) const {
    return (mask_ & other.mask_) != 0;
  }

  CategorySet Intersect(const CategorySet& other) const {
    return CategorySet(mask_ & other.mask_);
  }
  CategorySet Union(const CategorySet& other) const {
    return CategorySet(mask_ | other.mask_);
  }

  friend bool operator==(const CategorySet& a, const CategorySet& b) {
    return a.mask_ == b.mask_;
  }

 private:
  uint64_t mask_;
};

// Names the categories of one constraint dimension and resolves hierarchy.
// Categories may nest ("India" inside "Asia"): every category owns one bit,
// and a parent's *resolved set* is its own bit plus all descendants' bits.
// Resolving "{Asia}" therefore yields a set that contains the resolved set
// of "{India}" — this is how Example 1's usage license with R=[India]
// instance-validates against redistribution licenses with R=[Asia, Europe].
class CategoryUniverse {
 public:
  CategoryUniverse() = default;

  // Registers a top-level category. Fails with ALREADY_EXISTS on duplicate
  // names and CAPACITY_EXCEEDED past 64 categories.
  Status Define(std::string_view name);

  // Registers a category nested inside `parent` (which must already exist).
  Status DefineUnder(std::string_view name, std::string_view parent);

  // Number of defined categories.
  int size() const { return static_cast<int>(categories_.size()); }

  // True iff `name` is a defined category.
  bool Has(std::string_view name) const;

  // Resolved set for one category: its own bit plus all descendants.
  Result<CategorySet> Resolve(std::string_view name) const;

  // Union of the resolved sets of several categories.
  Result<CategorySet> ResolveAll(const std::vector<std::string>& names) const;

  // Set containing every defined category.
  CategorySet All() const;

  // Renders a set as a minimal list of defined names, greedily preferring
  // the broadest categories: the resolved set of {Asia} prints as "Asia",
  // not as the list of Asian countries. Bits not reachable by any defined
  // category render as "#<bit>".
  std::string ToString(const CategorySet& set) const;

  // Built-in universe of world regions used by examples and tests:
  // continents Asia/Europe/America/Africa/Oceania with a few countries each.
  static CategoryUniverse WorldRegions();

 private:
  struct CategoryInfo {
    std::string name;
    int bit = 0;             // Own bit position.
    int parent = -1;         // Index into categories_, -1 for top-level.
    uint64_t resolved = 0;   // Own bit | descendants' bits.
  };

  Status DefineInternal(std::string_view name, int parent_index);

  std::vector<CategoryInfo> categories_;
  std::unordered_map<std::string, int> index_by_name_;
};

}  // namespace geolic

#endif  // GEOLIC_GEOMETRY_CATEGORY_SET_H_
