#ifndef GEOLIC_GEOMETRY_MULTI_INTERVAL_H_
#define GEOLIC_GEOMETRY_MULTI_INTERVAL_H_

#include <string>
#include <vector>

#include "geometry/interval.h"

namespace geolic {

// A union of disjoint closed intervals — a non-contiguous instance-based
// constraint range, e.g. a distribution window with blackout dates
// ("T=[2026-01-01,2026-02-28]|[2026-04-01,2026-06-30]"). Kept normalised:
// pieces sorted ascending, non-empty, pairwise disjoint and non-adjacent
// (adjacent pieces [1,3],[4,6] merge to [1,6] since the domain is integer).
//
// All the geometric machinery of the paper only needs per-dimension
// emptiness/containment/overlap/intersection, which unions of intervals
// provide, so multi-intervals slot into hyper-rectangles unchanged:
// Theorems 1 and 2 hold verbatim.
class MultiInterval {
 public:
  // Constructs the empty multi-interval.
  MultiInterval() = default;

  // Normalising constructor: empty inputs are dropped, overlapping or
  // adjacent inputs merge.
  static MultiInterval FromIntervals(std::vector<Interval> intervals);

  // Single-piece convenience.
  static MultiInterval Of(Interval interval) {
    return FromIntervals({interval});
  }

  bool empty() const { return pieces_.empty(); }
  // Normalised pieces, ascending.
  const std::vector<Interval>& pieces() const { return pieces_; }
  int piece_count() const { return static_cast<int>(pieces_.size()); }

  // Total number of integer points covered (saturating).
  int64_t TotalLength() const;

  // Smallest single interval covering everything.
  Interval BoundingInterval() const;

  bool Contains(int64_t value) const;
  // True iff every point of `other` is covered — each of other's pieces
  // lies inside one of this union's pieces.
  bool Contains(const MultiInterval& other) const;
  bool Overlaps(const MultiInterval& other) const;

  MultiInterval Intersect(const MultiInterval& other) const;
  MultiInterval Union(const MultiInterval& other) const;

  // "[1, 3]|[7, 9]" or "[]".
  std::string ToString() const;

  friend bool operator==(const MultiInterval& a, const MultiInterval& b) {
    return a.pieces_ == b.pieces_;
  }

 private:
  std::vector<Interval> pieces_;
};

}  // namespace geolic

#endif  // GEOLIC_GEOMETRY_MULTI_INTERVAL_H_
