#ifndef GEOLIC_GEOMETRY_SOA_RECTS_H_
#define GEOLIC_GEOMETRY_SOA_RECTS_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/hyper_rect.h"
#include "util/cpu_dispatch.h"

namespace geolic {

// Structure-of-arrays compile of N hyper-rectangles, built once (shard
// compile time) and queried per request: the instance containment/overlap
// fast-reject runs as contiguous per-dimension column sweeps through the
// runtime-dispatched SIMD kernels (util/simd_kernels.h) instead of N
// virtual-free but pointer-chasing HyperRect calls.
//
// Layout. Each dimension owns three padded columns over the N rects:
//   lo_/hi_   int64 interval bounds. Ordered cells store their bounding
//             interval; empty ordered cells and category cells store the
//             fail-closed sentinel (INT64_MAX, INT64_MIN).
//   cat_      uint64 category masks; 0 (fail-closed) for ordered cells.
// plus three per-dimension word masks classifying the cells: ordered_,
// nonempty_ordered_ and category_. A query dimension of the wrong kind
// clears the mismatched rects in one AND — the kind-mismatch rule of
// ConstraintRange (category never relates to ordered, not even empty).
//
// Exactness. The column test is exact for every cell except multi-piece
// ordered cells (a bounding interval over-approximates a union with gaps);
// those rects are listed in exact_ and re-checked with the scalar
// predicate only when they survive the column sweep. Multi-piece *query*
// dims are exact by construction: containment of a union reduces to its
// bounding interval, overlap is the OR of the per-piece sweeps. Rects
// whose dimensionality differs from the build's majority are kept aside
// and always checked scalar. Containing/Overlapping are therefore
// bit-identical to a HyperRect::Contains/Overlaps loop on every input —
// the property the fuzz equivalence test (tests/geometry/soa_rects_test)
// pins across all kernel tiers.
class SoaRects {
 public:
  SoaRects() = default;

  // Compiles `rects` (at most kMaxLicensesLarge of them). Rect j keeps
  // index j in every query result.
  static SoaRects Build(std::span<const HyperRect> rects);

  int size() const { return static_cast<int>(n_); }
  int dimensions() const { return dims_; }

  // Words a result mask needs for n rects.
  static size_t WordsFor(size_t n) { return (n + 63) / 64; }
  size_t result_words() const { return words_; }

  // Sets bit j of `out` iff rects[j].Contains(query) — the paper's
  // instance-based validation predicate, exactly. `out` must have
  // result_words() entries (all are written).
  void Containing(const HyperRect& query, uint64_t* out) const {
    ContainingWithKernels(simd::ActiveKernels(), query, out);
  }

  // Sets bit j of `out` iff rects[j].Overlaps(query) — the paper's
  // overlapping-licenses predicate, exactly.
  void Overlapping(const HyperRect& query, uint64_t* out) const {
    OverlappingWithKernels(simd::ActiveKernels(), query, out);
  }

  // Explicit-tier variants for the equivalence tests and ablation A/B rows.
  void ContainingWithKernels(const simd::Kernels& kernels,
                             const HyperRect& query, uint64_t* out) const;
  void OverlappingWithKernels(const simd::Kernels& kernels,
                              const HyperRect& query, uint64_t* out) const;

 private:
  // Column base offset of dimension d (columns share one stride).
  size_t Col(int d) const { return static_cast<size_t>(d) * padded_; }
  size_t MaskRow(int d) const { return static_cast<size_t>(d) * words_; }

  size_t n_ = 0;
  size_t padded_ = 0;  // n_ rounded up to simd::kColumnPad (column stride).
  size_t words_ = 0;   // WordsFor(n_), min 1.
  int dims_ = 0;       // Majority dimensionality of the build.

  std::vector<int64_t> lo_;        // dims_ × padded_.
  std::vector<int64_t> hi_;        // dims_ × padded_.
  std::vector<uint64_t> cat_;      // dims_ × padded_.
  std::vector<uint64_t> ordered_;           // dims_ × words_.
  std::vector<uint64_t> nonempty_ordered_;  // dims_ × words_.
  std::vector<uint64_t> category_;          // dims_ × words_.
  std::vector<uint64_t> regular_;  // words_: rects with dims() == dims_.

  // Rects needing the scalar confirm after the column sweep (some
  // multi-piece ordered cell), by slot.
  std::vector<std::pair<uint32_t, HyperRect>> exact_;
  // Rects whose dimensionality differs from dims_ — always scalar.
  std::vector<std::pair<uint32_t, HyperRect>> irregular_;
};

}  // namespace geolic

#endif  // GEOLIC_GEOMETRY_SOA_RECTS_H_
