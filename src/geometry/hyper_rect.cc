#include "geometry/hyper_rect.h"

namespace geolic {

bool HyperRect::IsEmpty() const {
  for (const ConstraintRange& range : dims_) {
    if (range.empty()) {
      return true;
    }
  }
  return false;
}

bool HyperRect::Contains(const HyperRect& other) const {
  if (dims_.size() != other.dims_.size()) {
    return false;
  }
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].Contains(other.dims_[i])) {
      return false;
    }
  }
  return true;
}

bool HyperRect::Overlaps(const HyperRect& other) const {
  if (dims_.size() != other.dims_.size()) {
    return false;
  }
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].Overlaps(other.dims_[i])) {
      return false;
    }
  }
  return true;
}

Result<HyperRect> HyperRect::Intersect(const HyperRect& other) const {
  if (dims_.size() != other.dims_.size()) {
    return Status::InvalidArgument(
        "cannot intersect hyper-rectangles of different dimensionality");
  }
  std::vector<ConstraintRange> out;
  out.reserve(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    out.push_back(dims_[i].Intersect(other.dims_[i]));
  }
  return HyperRect(std::move(out));
}

Result<HyperRect> HyperRect::CommonRegion(
    const std::vector<HyperRect>& rects) {
  if (rects.empty()) {
    return Status::InvalidArgument(
        "common region of an empty rectangle list is undefined");
  }
  HyperRect region = rects[0];
  for (size_t i = 1; i < rects.size(); ++i) {
    GEOLIC_ASSIGN_OR_RETURN(region, region.Intersect(rects[i]));
  }
  return region;
}

std::vector<Interval> HyperRect::BoundingBox() const {
  std::vector<Interval> box;
  box.reserve(dims_.size());
  for (const ConstraintRange& range : dims_) {
    box.push_back(range.BoundingInterval());
  }
  return box;
}

std::string HyperRect::ToString() const {
  std::string out;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      out += " x ";
    }
    out += dims_[i].ToString();
  }
  return out;
}

}  // namespace geolic
