#include "geometry/soa_rects.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/license_set.h"

namespace geolic {
namespace {

constexpr int64_t kFailLo = std::numeric_limits<int64_t>::max();
constexpr int64_t kFailHi = std::numeric_limits<int64_t>::min();

// Most frequent dimensionality — ties break toward the first seen, and a
// uniform input (the only case the catalog produces) is just that value.
int MajorityDims(std::span<const HyperRect> rects) {
  int best = 0;
  size_t best_count = 0;
  for (size_t i = 0; i < rects.size(); ++i) {
    const int dims = rects[i].dimensions();
    size_t count = 0;
    for (size_t j = 0; j < rects.size(); ++j) {
      if (rects[j].dimensions() == dims) {
        ++count;
      }
    }
    if (count > best_count) {
      best_count = count;
      best = dims;
    }
  }
  return best;
}

inline void SetBit(uint64_t* words, size_t j) {
  words[j / 64] |= uint64_t{1} << (j % 64);
}

inline bool TestBit(const uint64_t* words, size_t j) {
  return (words[j / 64] >> (j % 64)) & 1;
}

inline void AndWords(uint64_t* out, const uint64_t* with, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    out[w] &= with[w];
  }
}

inline bool AllZero(const uint64_t* words, size_t count) {
  for (size_t w = 0; w < count; ++w) {
    if (words[w] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

SoaRects SoaRects::Build(std::span<const HyperRect> rects) {
  GEOLIC_DCHECK(rects.size() <= static_cast<size_t>(kMaxLicensesLarge));
  SoaRects soa;
  soa.n_ = rects.size();
  soa.padded_ = ((rects.size() + simd::kColumnPad - 1) / simd::kColumnPad) *
                simd::kColumnPad;
  soa.padded_ = std::max(soa.padded_, simd::kColumnPad);
  soa.words_ = std::max<size_t>(WordsFor(rects.size()), 1);
  soa.dims_ = MajorityDims(rects);

  const size_t dims = static_cast<size_t>(soa.dims_);
  soa.lo_.assign(dims * soa.padded_, kFailLo);
  soa.hi_.assign(dims * soa.padded_, kFailHi);
  soa.cat_.assign(dims * soa.padded_, 0);
  soa.ordered_.assign(dims * soa.words_, 0);
  soa.nonempty_ordered_.assign(dims * soa.words_, 0);
  soa.category_.assign(dims * soa.words_, 0);
  soa.regular_.assign(soa.words_, 0);

  for (size_t j = 0; j < rects.size(); ++j) {
    const HyperRect& rect = rects[j];
    if (rect.dimensions() != soa.dims_) {
      soa.irregular_.emplace_back(static_cast<uint32_t>(j), rect);
      continue;  // Fail-closed columns; the scalar check decides.
    }
    SetBit(soa.regular_.data(), j);
    bool needs_exact = false;
    for (int d = 0; d < soa.dims_; ++d) {
      const ConstraintRange& cell = rect.dim(d);
      const size_t col = soa.Col(d) + j;
      uint64_t* ordered_row = soa.ordered_.data() + soa.MaskRow(d);
      uint64_t* nonempty_row = soa.nonempty_ordered_.data() + soa.MaskRow(d);
      uint64_t* category_row = soa.category_.data() + soa.MaskRow(d);
      if (cell.is_categories()) {
        SetBit(category_row, j);
        soa.cat_[col] = cell.categories().mask();
        continue;
      }
      SetBit(ordered_row, j);
      if (cell.empty()) {
        continue;  // Fail sentinel stays; empty passes only empty queries,
                   // which skip the column sweep.
      }
      SetBit(nonempty_row, j);
      const Interval bounding = cell.BoundingInterval();
      soa.lo_[col] = bounding.lo();
      soa.hi_[col] = bounding.hi();
      if (cell.is_multi_interval() && cell.multi_interval().piece_count() > 1) {
        // The column holds the bounding interval of a union with gaps:
        // necessary but not sufficient — survivors re-check scalar.
        needs_exact = true;
      }
    }
    if (needs_exact) {
      soa.exact_.emplace_back(static_cast<uint32_t>(j), rect);
    }
  }
  return soa;
}

void SoaRects::ContainingWithKernels(const simd::Kernels& kernels,
                                     const HyperRect& query,
                                     uint64_t* out) const {
  std::copy_n(regular_.data(), words_, out);
  if (query.dimensions() != dims_) {
    std::fill_n(out, words_, 0);  // Mixed dimensionality never contains.
  } else {
    for (int d = 0; d < dims_ && !AllZero(out, words_); ++d) {
      const ConstraintRange& qd = query.dim(d);
      if (qd.is_categories()) {
        AndWords(out, category_.data() + MaskRow(d), words_);
        const uint64_t q_mask = qd.categories().mask();
        if (q_mask != 0) {
          kernels.mask_superset(cat_.data() + Col(d), n_, q_mask, out);
        }
        // Empty query set: contained in every category cell.
        continue;
      }
      AndWords(out, ordered_.data() + MaskRow(d), words_);
      if (qd.empty()) {
        continue;  // Empty is contained in every ordered cell.
      }
      // Union containment reduces to the union's bounding interval for
      // single-piece cells (exact); multi-piece cells re-check below.
      const Interval bounding = qd.BoundingInterval();
      kernels.interval_contain(lo_.data() + Col(d), hi_.data() + Col(d), n_,
                               bounding.lo(), bounding.hi(), out);
    }
    for (const auto& [slot, rect] : exact_) {
      if (TestBit(out, slot) && !rect.Contains(query)) {
        out[slot / 64] &= ~(uint64_t{1} << (slot % 64));
      }
    }
  }
  for (const auto& [slot, rect] : irregular_) {
    if (rect.Contains(query)) {
      SetBit(out, slot);
    }
  }
}

void SoaRects::OverlappingWithKernels(const simd::Kernels& kernels,
                                      const HyperRect& query,
                                      uint64_t* out) const {
  std::copy_n(regular_.data(), words_, out);
  if (query.dimensions() != dims_) {
    std::fill_n(out, words_, 0);
  } else {
    for (int d = 0; d < dims_ && !AllZero(out, words_); ++d) {
      const ConstraintRange& qd = query.dim(d);
      if (qd.empty()) {
        std::fill_n(out, words_, 0);  // Nothing overlaps an empty range.
        break;
      }
      if (qd.is_categories()) {
        AndWords(out, category_.data() + MaskRow(d), words_);
        kernels.mask_intersects(cat_.data() + Col(d), n_,
                                qd.categories().mask(), out);
        continue;
      }
      // Empty cells must fail here, and their (INT64_MAX, INT64_MIN)
      // sentinel would pass a full-range query — mask them out up front.
      AndWords(out, nonempty_ordered_.data() + MaskRow(d), words_);
      if (qd.is_interval()) {
        const Interval& piece = qd.interval();
        kernels.interval_overlap(lo_.data() + Col(d), hi_.data() + Col(d), n_,
                                 piece.lo(), piece.hi(), out);
        continue;
      }
      // Overlap distributes over a union: OR of the per-piece sweeps —
      // exact for single-piece cells.
      uint64_t dim_bits[kMaxLicenseWords] = {};
      uint64_t piece_bits[kMaxLicenseWords];
      for (const Interval& piece : qd.multi_interval().pieces()) {
        std::fill_n(piece_bits, words_, ~uint64_t{0});
        kernels.interval_overlap(lo_.data() + Col(d), hi_.data() + Col(d), n_,
                                 piece.lo(), piece.hi(), piece_bits);
        for (size_t w = 0; w < words_; ++w) {
          dim_bits[w] |= piece_bits[w];
        }
      }
      AndWords(out, dim_bits, words_);
    }
    for (const auto& [slot, rect] : exact_) {
      if (TestBit(out, slot) && !rect.Overlaps(query)) {
        out[slot / 64] &= ~(uint64_t{1} << (slot % 64));
      }
    }
  }
  for (const auto& [slot, rect] : irregular_) {
    if (rect.Overlaps(query)) {
      SetBit(out, slot);
    }
  }
}

}  // namespace geolic
