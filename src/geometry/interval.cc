#include "geometry/interval.h"

#include <limits>

namespace geolic {

int64_t Interval::Length() const {
  if (empty()) {
    return 0;
  }
  const uint64_t span =
      static_cast<uint64_t>(hi_) - static_cast<uint64_t>(lo_);
  if (span >= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(span) + 1;
}

std::string Interval::ToString() const {
  if (empty()) {
    return "[]";
  }
  return "[" + std::to_string(lo_) + ", " + std::to_string(hi_) + "]";
}

std::ostream& operator<<(std::ostream& os, const Interval& interval) {
  return os << interval.ToString();
}

}  // namespace geolic
