#ifndef GEOLIC_GEOMETRY_RTREE_H_
#define GEOLIC_GEOMETRY_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/interval.h"
#include "util/status.h"

namespace geolic {

// Axis-aligned box over plain intervals — the spatial key of the R-tree.
// Category dimensions enter as their bounding intervals (lossy), so R-tree
// results are *candidates* that callers confirm with exact HyperRect tests.
struct IntervalBox {
  std::vector<Interval> dims;

  bool Contains(const IntervalBox& other) const;
  bool Overlaps(const IntervalBox& other) const;
  // Grows this box to cover `other`.
  void Extend(const IntervalBox& other);
  // Product of dimension lengths as a double (saturating, index heuristics
  // only).
  double Measure() const;
};

// In-memory R-tree (Guttman, quadratic split) mapping interval boxes to
// int64 ids. The instance validator uses it to find, for a freshly issued
// license, the candidate redistribution licenses whose hyper-rectangle could
// contain it — the lookup the paper performs implicitly when it computes the
// set S for each log record. With N ≤ 64 a linear scan is also fine; the
// R-tree exists for realistic catalogue sizes (thousands of contents ×
// licenses) and is ablated against the linear backend in bench/.
class Rtree {
 public:
  // `dimensions` must be ≥ 1; `max_entries` ≥ 4 (min fill is half of max).
  explicit Rtree(int dimensions, int max_entries = 8);

  Rtree(const Rtree&) = delete;
  Rtree& operator=(const Rtree&) = delete;
  Rtree(Rtree&&) noexcept = default;
  Rtree& operator=(Rtree&&) noexcept = default;

  // Inserts `box` with payload `id`. Fails on dimensionality mismatch or a
  // box with an empty dimension.
  Status Insert(const IntervalBox& box, int64_t id);

  // Ids of entries whose box fully contains `query` (candidate containers).
  std::vector<int64_t> FindContaining(const IntervalBox& query) const;

  // Ids of entries whose box overlaps `query`.
  std::vector<int64_t> FindOverlapping(const IntervalBox& query) const;

  size_t size() const { return size_; }
  int dimensions() const { return dimensions_; }

  // Height of the tree (0 when empty, 1 for a single leaf root).
  int Height() const;

  // Verifies structural invariants (bounding boxes cover children, fill
  // factors, uniform leaf depth). Exposed for tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    IntervalBox box;
    std::unique_ptr<Node> child;  // Internal entries.
    int64_t id = 0;               // Leaf entries.
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  Node* ChooseLeaf(Node* node, const IntervalBox& box,
                   std::vector<Node*>* path) const;
  // Splits `node` in place; returns the new sibling.
  std::unique_ptr<Node> SplitNode(Node* node);
  static IntervalBox NodeBox(const Node& node);
  void FindContainingImpl(const Node& node, const IntervalBox& query,
                          std::vector<int64_t>* out) const;
  void FindOverlappingImpl(const Node& node, const IntervalBox& query,
                           std::vector<int64_t>* out) const;
  Status CheckNode(const Node& node, int depth, int leaf_depth) const;
  int LeafDepth() const;

  int dimensions_;
  int max_entries_;
  int min_entries_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace geolic

#endif  // GEOLIC_GEOMETRY_RTREE_H_
