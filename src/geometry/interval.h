#ifndef GEOLIC_GEOMETRY_INTERVAL_H_
#define GEOLIC_GEOMETRY_INTERVAL_H_

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

#include "util/check.h"

namespace geolic {

// Closed integer interval [lo, hi], or the empty interval. Instance-based
// constraints with a natural ordering (validity periods as day numbers,
// resolution, device-class codes, ...) are modelled as intervals; a
// single-valued usage-license constraint is the degenerate interval [v, v].
class Interval {
 public:
  // Default-constructs the empty interval.
  Interval() : lo_(0), hi_(-1) {}

  // Builds [lo, hi]. A reversed pair (lo > hi) is normalised to empty.
  Interval(int64_t lo, int64_t hi) : lo_(lo), hi_(hi) {
    if (lo_ > hi_) {
      *this = Empty();
    }
  }

  static Interval Empty() { return Interval(); }
  static Interval Point(int64_t value) { return Interval(value, value); }

  bool empty() const { return lo_ > hi_; }
  int64_t lo() const {
    GEOLIC_DCHECK(!empty());
    return lo_;
  }
  int64_t hi() const {
    GEOLIC_DCHECK(!empty());
    return hi_;
  }

  // Number of integer points in the interval (0 when empty). Saturates at
  // INT64_MAX for astronomically wide intervals.
  int64_t Length() const;

  // True iff `value` lies in [lo, hi].
  bool Contains(int64_t value) const {
    return !empty() && lo_ <= value && value <= hi_;
  }

  // True iff `other` ⊆ this. The empty interval is contained in everything.
  bool Contains(const Interval& other) const {
    if (other.empty()) {
      return true;
    }
    return !empty() && lo_ <= other.lo_ && other.hi_ <= hi_;
  }

  // True iff the intervals share at least one point.
  bool Overlaps(const Interval& other) const {
    if (empty() || other.empty()) {
      return false;
    }
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  // Set intersection.
  Interval Intersect(const Interval& other) const {
    if (empty() || other.empty()) {
      return Empty();
    }
    return Interval(std::max(lo_, other.lo_), std::min(hi_, other.hi_));
  }

  // Smallest interval covering both (empty operands are identity).
  Interval Hull(const Interval& other) const {
    if (empty()) {
      return other;
    }
    if (other.empty()) {
      return *this;
    }
    Interval hull;
    hull.lo_ = std::min(lo_, other.lo_);
    hull.hi_ = std::max(hi_, other.hi_);
    return hull;
  }

  // "[lo, hi]" or "[]".
  std::string ToString() const;

  friend bool operator==(const Interval& a, const Interval& b) {
    if (a.empty() && b.empty()) {
      return true;
    }
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  int64_t lo_;
  int64_t hi_;
};

std::ostream& operator<<(std::ostream& os, const Interval& interval);

}  // namespace geolic

#endif  // GEOLIC_GEOMETRY_INTERVAL_H_
