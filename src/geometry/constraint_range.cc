#include "geometry/constraint_range.h"

#include <cinttypes>
#include <cstdio>

namespace geolic {

MultiInterval ConstraintRange::AsMultiInterval() const {
  GEOLIC_DCHECK(is_ordered());
  if (is_interval()) {
    return MultiInterval::Of(interval());
  }
  return multi_interval();
}

bool ConstraintRange::empty() const {
  if (is_interval()) {
    return interval().empty();
  }
  if (is_multi_interval()) {
    return multi_interval().empty();
  }
  return categories().empty();
}

bool ConstraintRange::Contains(const ConstraintRange& other) const {
  if (is_categories() || other.is_categories()) {
    if (is_categories() && other.is_categories()) {
      return categories().Contains(other.categories());
    }
    return false;
  }
  // Both ordered; the common single-interval case avoids promotion.
  if (is_interval() && other.is_interval()) {
    return interval().Contains(other.interval());
  }
  return AsMultiInterval().Contains(other.AsMultiInterval());
}

bool ConstraintRange::Overlaps(const ConstraintRange& other) const {
  if (is_categories() || other.is_categories()) {
    if (is_categories() && other.is_categories()) {
      return categories().Overlaps(other.categories());
    }
    return false;
  }
  if (is_interval() && other.is_interval()) {
    return interval().Overlaps(other.interval());
  }
  return AsMultiInterval().Overlaps(other.AsMultiInterval());
}

ConstraintRange ConstraintRange::Intersect(const ConstraintRange& other) const {
  if (is_categories() || other.is_categories()) {
    if (is_categories() && other.is_categories()) {
      return ConstraintRange(categories().Intersect(other.categories()));
    }
    return ConstraintRange(Interval::Empty());
  }
  if (is_interval() && other.is_interval()) {
    return ConstraintRange(interval().Intersect(other.interval()));
  }
  return ConstraintRange(
      AsMultiInterval().Intersect(other.AsMultiInterval()));
}

Interval ConstraintRange::BoundingInterval() const {
  if (is_interval()) {
    return interval();
  }
  if (is_multi_interval()) {
    return multi_interval().BoundingInterval();
  }
  const uint64_t mask = categories().mask();
  if (mask == 0) {
    return Interval::Empty();
  }
  const int lo = std::countr_zero(mask);
  const int hi = 63 - std::countl_zero(mask);
  return Interval(lo, hi);
}

std::string ConstraintRange::ToString() const {
  if (is_interval()) {
    return interval().ToString();
  }
  if (is_multi_interval()) {
    return multi_interval().ToString();
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "<cats:0x%" PRIx64 ">",
                categories().mask());
  return buffer;
}

}  // namespace geolic
