#include "geometry/multi_interval.h"

#include <algorithm>
#include <limits>

namespace geolic {

MultiInterval MultiInterval::FromIntervals(std::vector<Interval> intervals) {
  MultiInterval out;
  // Drop empties, sort by lower endpoint, then sweep-merge.
  intervals.erase(std::remove_if(intervals.begin(), intervals.end(),
                                 [](const Interval& interval) {
                                   return interval.empty();
                                 }),
                  intervals.end());
  if (intervals.empty()) {
    return out;
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              if (a.lo() != b.lo()) {
                return a.lo() < b.lo();
              }
              return a.hi() < b.hi();
            });
  Interval current = intervals.front();
  for (size_t i = 1; i < intervals.size(); ++i) {
    const Interval& next = intervals[i];
    // Merge overlapping and integer-adjacent pieces ([1,3] + [4,6]).
    const bool adjacent =
        current.hi() < std::numeric_limits<int64_t>::max() &&
        next.lo() == current.hi() + 1;
    if (next.lo() <= current.hi() || adjacent) {
      current = Interval(current.lo(), std::max(current.hi(), next.hi()));
    } else {
      out.pieces_.push_back(current);
      current = next;
    }
  }
  out.pieces_.push_back(current);
  return out;
}

int64_t MultiInterval::TotalLength() const {
  int64_t total = 0;
  for (const Interval& piece : pieces_) {
    const int64_t length = piece.Length();
    if (total > std::numeric_limits<int64_t>::max() - length) {
      return std::numeric_limits<int64_t>::max();
    }
    total += length;
  }
  return total;
}

Interval MultiInterval::BoundingInterval() const {
  if (pieces_.empty()) {
    return Interval::Empty();
  }
  return Interval(pieces_.front().lo(), pieces_.back().hi());
}

bool MultiInterval::Contains(int64_t value) const {
  // Binary search on the sorted disjoint pieces.
  const auto it = std::partition_point(
      pieces_.begin(), pieces_.end(),
      [value](const Interval& piece) { return piece.hi() < value; });
  return it != pieces_.end() && it->Contains(value);
}

bool MultiInterval::Contains(const MultiInterval& other) const {
  // Every piece of `other` must lie within a single piece of this (pieces
  // are maximal, so a piece spanning a gap is never contained).
  size_t mine = 0;
  for (const Interval& piece : other.pieces_) {
    while (mine < pieces_.size() && pieces_[mine].hi() < piece.lo()) {
      ++mine;
    }
    if (mine == pieces_.size() || !pieces_[mine].Contains(piece)) {
      return false;
    }
  }
  return true;
}

bool MultiInterval::Overlaps(const MultiInterval& other) const {
  size_t a = 0;
  size_t b = 0;
  while (a < pieces_.size() && b < other.pieces_.size()) {
    if (pieces_[a].Overlaps(other.pieces_[b])) {
      return true;
    }
    if (pieces_[a].hi() < other.pieces_[b].hi()) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

MultiInterval MultiInterval::Intersect(const MultiInterval& other) const {
  std::vector<Interval> result;
  size_t a = 0;
  size_t b = 0;
  while (a < pieces_.size() && b < other.pieces_.size()) {
    const Interval meet = pieces_[a].Intersect(other.pieces_[b]);
    if (!meet.empty()) {
      result.push_back(meet);
    }
    if (pieces_[a].hi() < other.pieces_[b].hi()) {
      ++a;
    } else {
      ++b;
    }
  }
  // Pieces are produced sorted and disjoint; FromIntervals normalises
  // adjacency anyway.
  return FromIntervals(std::move(result));
}

MultiInterval MultiInterval::Union(const MultiInterval& other) const {
  std::vector<Interval> all = pieces_;
  all.insert(all.end(), other.pieces_.begin(), other.pieces_.end());
  return FromIntervals(std::move(all));
}

std::string MultiInterval::ToString() const {
  if (pieces_.empty()) {
    return "[]";
  }
  std::string out;
  for (size_t i = 0; i < pieces_.size(); ++i) {
    if (i > 0) {
      out += "|";
    }
    out += pieces_[i].ToString();
  }
  return out;
}

}  // namespace geolic
