#include "geometry/category_set.h"

#include <algorithm>

#include "util/check.h"

namespace geolic {

Status CategoryUniverse::Define(std::string_view name) {
  return DefineInternal(name, -1);
}

Status CategoryUniverse::DefineUnder(std::string_view name,
                                     std::string_view parent) {
  const auto it = index_by_name_.find(std::string(parent));
  if (it == index_by_name_.end()) {
    return Status::NotFound("parent category not defined: " +
                            std::string(parent));
  }
  return DefineInternal(name, it->second);
}

Status CategoryUniverse::DefineInternal(std::string_view name,
                                        int parent_index) {
  if (name.empty()) {
    return Status::InvalidArgument("category name must be non-empty");
  }
  if (index_by_name_.contains(std::string(name))) {
    return Status::AlreadyExists("category already defined: " +
                                 std::string(name));
  }
  if (categories_.size() >= 64) {
    return Status::CapacityExceeded(
        "category universe supports at most 64 categories");
  }
  CategoryInfo info;
  info.name = std::string(name);
  info.bit = static_cast<int>(categories_.size());
  info.parent = parent_index;
  info.resolved = uint64_t{1} << info.bit;
  index_by_name_[info.name] = static_cast<int>(categories_.size());
  categories_.push_back(info);
  // Fold the new bit into every ancestor's resolved set.
  for (int ancestor = parent_index; ancestor != -1;
       ancestor = categories_[static_cast<size_t>(ancestor)].parent) {
    categories_[static_cast<size_t>(ancestor)].resolved |=
        uint64_t{1} << info.bit;
  }
  return Status::Ok();
}

bool CategoryUniverse::Has(std::string_view name) const {
  return index_by_name_.contains(std::string(name));
}

Result<CategorySet> CategoryUniverse::Resolve(std::string_view name) const {
  const auto it = index_by_name_.find(std::string(name));
  if (it == index_by_name_.end()) {
    return Status::NotFound("category not defined: " + std::string(name));
  }
  return CategorySet(categories_[static_cast<size_t>(it->second)].resolved);
}

Result<CategorySet> CategoryUniverse::ResolveAll(
    const std::vector<std::string>& names) const {
  CategorySet set;
  for (const std::string& name : names) {
    GEOLIC_ASSIGN_OR_RETURN(const CategorySet one, Resolve(name));
    set = set.Union(one);
  }
  return set;
}

CategorySet CategoryUniverse::All() const {
  uint64_t mask = 0;
  for (const CategoryInfo& info : categories_) {
    mask |= uint64_t{1} << info.bit;
  }
  return CategorySet(mask);
}

std::string CategoryUniverse::ToString(const CategorySet& set) const {
  // Greedy cover: repeatedly take the defined category with the largest
  // resolved set still fully inside the remainder.
  uint64_t remaining = set.mask();
  std::vector<std::string> names;
  // Categories sorted by descending resolved-set size, stable by bit.
  std::vector<const CategoryInfo*> order;
  order.reserve(categories_.size());
  for (const CategoryInfo& info : categories_) {
    order.push_back(&info);
  }
  std::sort(order.begin(), order.end(),
            [](const CategoryInfo* a, const CategoryInfo* b) {
              const int sa = std::popcount(a->resolved);
              const int sb = std::popcount(b->resolved);
              if (sa != sb) {
                return sa > sb;
              }
              return a->bit < b->bit;
            });
  for (const CategoryInfo* info : order) {
    if (info->resolved != 0 && (info->resolved & ~remaining) == 0 &&
        (info->resolved & remaining) != 0) {
      names.push_back(info->name);
      remaining &= ~info->resolved;
    }
  }
  for (int bit = 0; bit < 64; ++bit) {
    if ((remaining >> bit) & 1) {
      names.push_back("#" + std::to_string(bit));
    }
  }
  std::string out = "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += names[i];
  }
  out += "}";
  return out;
}

CategoryUniverse CategoryUniverse::WorldRegions() {
  CategoryUniverse universe;
  struct Entry {
    const char* name;
    const char* parent;  // nullptr for continents.
  };
  static constexpr Entry kEntries[] = {
      {"Asia", nullptr},      {"Europe", nullptr},  {"America", nullptr},
      {"Africa", nullptr},    {"Oceania", nullptr}, {"India", "Asia"},
      {"Japan", "Asia"},      {"China", "Asia"},    {"Singapore", "Asia"},
      {"Germany", "Europe"},  {"France", "Europe"}, {"UK", "Europe"},
      {"USA", "America"},     {"Canada", "America"},{"Brazil", "America"},
      {"Egypt", "Africa"},    {"Kenya", "Africa"},  {"Australia", "Oceania"},
      {"NewZealand", "Oceania"},
  };
  for (const Entry& entry : kEntries) {
    const Status status =
        entry.parent == nullptr
            ? universe.Define(entry.name)
            : universe.DefineUnder(entry.name, entry.parent);
    GEOLIC_CHECK(status.ok());
  }
  return universe;
}

}  // namespace geolic
