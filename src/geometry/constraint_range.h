#ifndef GEOLIC_GEOMETRY_CONSTRAINT_RANGE_H_
#define GEOLIC_GEOMETRY_CONSTRAINT_RANGE_H_

#include <string>
#include <variant>

#include "geometry/category_set.h"
#include "geometry/interval.h"
#include "geometry/multi_interval.h"
#include "util/check.h"

namespace geolic {

// The value of one instance-based constraint dimension: an ordered interval
// (validity period, resolution, ...), a union of intervals (a window with
// blackout gaps), or a category set (region, device class, ...). All kinds
// support the same per-dimension algebra — emptiness, containment, overlap,
// intersection — which is all the paper's geometric arguments use, so
// hyper-rectangles may freely mix them.
//
// Interval and multi-interval are mutually comparable (an interval is a
// one-piece union); category sets never relate to ordered kinds.
class ConstraintRange {
 public:
  // Default-constructs an empty interval range.
  ConstraintRange() : value_(Interval::Empty()) {}
  explicit ConstraintRange(Interval interval) : value_(interval) {}
  explicit ConstraintRange(MultiInterval multi) : value_(std::move(multi)) {}
  explicit ConstraintRange(CategorySet categories) : value_(categories) {}

  bool is_interval() const {
    return std::holds_alternative<Interval>(value_);
  }
  bool is_multi_interval() const {
    return std::holds_alternative<MultiInterval>(value_);
  }
  // True for both single intervals and multi-intervals.
  bool is_ordered() const { return is_interval() || is_multi_interval(); }
  bool is_categories() const {
    return std::holds_alternative<CategorySet>(value_);
  }

  const Interval& interval() const {
    GEOLIC_DCHECK(is_interval());
    return std::get<Interval>(value_);
  }
  const MultiInterval& multi_interval() const {
    GEOLIC_DCHECK(is_multi_interval());
    return std::get<MultiInterval>(value_);
  }
  const CategorySet& categories() const {
    GEOLIC_DCHECK(is_categories());
    return std::get<CategorySet>(value_);
  }

  // View of any ordered kind as a multi-interval (single intervals promote
  // to a one-piece union). Must not be called on category ranges.
  MultiInterval AsMultiInterval() const;

  bool empty() const;

  // True iff `other` ⊆ this. Ordered kinds compare with each other;
  // category sets only with category sets.
  bool Contains(const ConstraintRange& other) const;

  // True iff the ranges intersect. Same kind-mixing rules as Contains.
  bool Overlaps(const ConstraintRange& other) const;

  // Set intersection. Incompatible kinds yield an empty range.
  ConstraintRange Intersect(const ConstraintRange& other) const;

  // Interval bounding box used by the R-tree: ordered ranges map to their
  // bounding interval; category sets map to [lowest bit, highest bit]
  // (lossy over-approximations — exact tests run after candidate lookup).
  Interval BoundingInterval() const;

  // "[10, 20]" / "[1, 3]|[7, 9]" for ordered kinds, "<cats:0x5>" for
  // category sets (the licensing layer renders category names via its
  // universe; this form is for logs and debugging only).
  std::string ToString() const;

  friend bool operator==(const ConstraintRange& a, const ConstraintRange& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<Interval, MultiInterval, CategorySet> value_;
};

}  // namespace geolic

#endif  // GEOLIC_GEOMETRY_CONSTRAINT_RANGE_H_
