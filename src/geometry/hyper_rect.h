#ifndef GEOLIC_GEOMETRY_HYPER_RECT_H_
#define GEOLIC_GEOMETRY_HYPER_RECT_H_

#include <string>
#include <vector>

#include "geometry/constraint_range.h"
#include "util/status.h"

namespace geolic {

// Product of M constraint ranges — the paper's geometric representation of
// a license (Section 3.1): with M instance-based constraints every license
// is an M-dimensional hyper-rectangle. Dimensions may mix intervals and
// category sets; operations require equal dimensionality.
class HyperRect {
 public:
  HyperRect() = default;
  explicit HyperRect(std::vector<ConstraintRange> dims)
      : dims_(std::move(dims)) {}

  int dimensions() const { return static_cast<int>(dims_.size()); }
  const std::vector<ConstraintRange>& dims() const { return dims_; }
  const ConstraintRange& dim(int i) const {
    return dims_[static_cast<size_t>(i)];
  }

  // Appends one more dimension.
  void AddDim(ConstraintRange range) { dims_.push_back(std::move(range)); }

  // True iff any dimension is empty (the rectangle covers no point).
  // A zero-dimensional rectangle is the non-empty unit.
  bool IsEmpty() const;

  // True iff `other` ⊆ this in every dimension — the paper's instance-based
  // validation test ("the hyper-rectangle formed by the issued license is
  // completely contained in the redistribution license's"). False when the
  // dimensionalities differ.
  bool Contains(const HyperRect& other) const;

  // True iff all dimensions intersect — the paper's *overlapping licenses*
  // predicate (Section 3.2): two licenses overlap iff every constraint
  // dimension overlaps. False when the dimensionalities differ.
  bool Overlaps(const HyperRect& other) const;

  // Per-dimension intersection; empty in some dimension ⇒ IsEmpty().
  // Requires equal dimensionality.
  Result<HyperRect> Intersect(const HyperRect& other) const;

  // Common region of many rectangles; the result is non-empty iff the
  // rectangles have a common overlap region (the premise of Theorem 1).
  // An empty list yields INVALID_ARGUMENT.
  static Result<HyperRect> CommonRegion(const std::vector<HyperRect>& rects);

  // Pure-interval over-approximation for spatial indexing (see
  // ConstraintRange::BoundingInterval).
  std::vector<Interval> BoundingBox() const;

  // "[10, 20] x <cats:0x3>".
  std::string ToString() const;

  friend bool operator==(const HyperRect& a, const HyperRect& b) {
    return a.dims_ == b.dims_;
  }

 private:
  std::vector<ConstraintRange> dims_;
};

}  // namespace geolic

#endif  // GEOLIC_GEOMETRY_HYPER_RECT_H_
