#include "geometry/rtree.h"

#include <algorithm>
#include <limits>

namespace geolic {

bool IntervalBox::Contains(const IntervalBox& other) const {
  if (dims.size() != other.dims.size()) {
    return false;
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    if (!dims[i].Contains(other.dims[i])) {
      return false;
    }
  }
  return true;
}

bool IntervalBox::Overlaps(const IntervalBox& other) const {
  if (dims.size() != other.dims.size()) {
    return false;
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    if (!dims[i].Overlaps(other.dims[i])) {
      return false;
    }
  }
  return true;
}

void IntervalBox::Extend(const IntervalBox& other) {
  if (dims.empty()) {
    dims = other.dims;
    return;
  }
  for (size_t i = 0; i < dims.size(); ++i) {
    dims[i] = dims[i].Hull(other.dims[i]);
  }
}

double IntervalBox::Measure() const {
  // Saturating product. Interval::Length() saturates at INT64_MAX per
  // dimension, so the true product of a wide box overflows double to inf
  // from ~17 full-range dimensions on — and once two boxes both measure
  // inf, Enlargement and the quadratic-split waste become inf − inf = NaN.
  // NaN compares false against everything, so Guttman's least-enlargement
  // scan would keep no best entry (null deref in ChooseLeaf) and the split
  // seed/pick loops would fall through with out-of-range indexes. Clamping
  // at DBL_MAX keeps every downstream difference finite; boxes tied at the
  // cap fall to the orderings' deterministic first-wins tiebreaks.
  constexpr double kCap = std::numeric_limits<double>::max();
  double measure = 1.0;
  for (const Interval& dim : dims) {
    measure *= static_cast<double>(dim.Length());
    if (measure > kCap) {
      measure = kCap;
    }
  }
  return measure;
}

namespace {

// Measure of `box` extended to cover `addition`, minus the original
// measure — Guttman's least-enlargement heuristic. Always finite: Measure
// saturates at DBL_MAX (a saturated box reports zero enlargement, so ties
// resolve by the callers' first-wins ordering).
double Enlargement(const IntervalBox& box, const IntervalBox& addition) {
  IntervalBox extended = box;
  extended.Extend(addition);
  return extended.Measure() - box.Measure();
}

}  // namespace

Rtree::Rtree(int dimensions, int max_entries)
    : dimensions_(dimensions),
      max_entries_(max_entries),
      min_entries_(std::max(2, max_entries / 2)),
      root_(std::make_unique<Node>()) {
  GEOLIC_CHECK(dimensions >= 1);
  GEOLIC_CHECK(max_entries >= 4);
}

Status Rtree::Insert(const IntervalBox& box, int64_t id) {
  if (static_cast<int>(box.dims.size()) != dimensions_) {
    return Status::InvalidArgument("box dimensionality mismatch");
  }
  for (const Interval& dim : box.dims) {
    if (dim.empty()) {
      return Status::InvalidArgument(
          "cannot index a box with an empty dimension");
    }
  }

  std::vector<Node*> path;
  Node* leaf = ChooseLeaf(root_.get(), box, &path);
  leaf->entries.push_back(Entry{box, nullptr, id});
  ++size_;

  // Walk back up: refresh the parent's bounding box for every node on the
  // path, splitting overflowing nodes as we go (bottom-up, so every box a
  // split reads is already up to date).
  Node* node = leaf;
  size_t level = path.size();
  while (true) {
    std::unique_ptr<Node> sibling;
    if (static_cast<int>(node->entries.size()) > max_entries_) {
      sibling = SplitNode(node);
    }
    if (node == root_.get()) {
      if (sibling != nullptr) {
        // Grow a new root over the two halves.
        auto new_root = std::make_unique<Node>();
        new_root->leaf = false;
        new_root->entries.push_back(
            Entry{NodeBox(*root_), std::move(root_), 0});
        new_root->entries.push_back(
            Entry{NodeBox(*sibling), std::move(sibling), 0});
        root_ = std::move(new_root);
      }
      break;
    }
    Node* parent = path[level - 1];
    for (Entry& entry : parent->entries) {
      if (entry.child.get() == node) {
        entry.box = NodeBox(*node);
        break;
      }
    }
    if (sibling != nullptr) {
      parent->entries.push_back(
          Entry{NodeBox(*sibling), std::move(sibling), 0});
    }
    node = parent;
    --level;
  }
  return Status::Ok();
}

Rtree::Node* Rtree::ChooseLeaf(Node* node, const IntervalBox& box,
                               std::vector<Node*>* path) const {
  while (!node->leaf) {
    path->push_back(node);
    Entry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_measure = std::numeric_limits<double>::infinity();
    for (Entry& entry : node->entries) {
      const double enlargement = Enlargement(entry.box, box);
      const double measure = entry.box.Measure();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && measure < best_measure)) {
        best = &entry;
        best_enlargement = enlargement;
        best_measure = measure;
      }
    }
    GEOLIC_DCHECK(best != nullptr);
    node = best->child.get();
  }
  return node;
}

std::unique_ptr<Rtree::Node> Rtree::SplitNode(Node* node) {
  // Guttman quadratic split: pick the pair of entries whose combined box
  // wastes the most space as seeds, then assign the rest greedily.
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();

  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      IntervalBox combined = entries[i].box;
      combined.Extend(entries[j].box);
      const double waste = combined.Measure() - entries[i].box.Measure() -
                           entries[j].box.Measure();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  IntervalBox box_a = entries[seed_a].box;
  IntervalBox box_b = entries[seed_b].box;
  std::vector<bool> assigned(entries.size(), false);
  node->entries.push_back(std::move(entries[seed_a]));
  sibling->entries.push_back(std::move(entries[seed_b]));
  assigned[seed_a] = true;
  assigned[seed_b] = true;

  size_t remaining = entries.size() - 2;
  while (remaining > 0) {
    // Force-assign if one side must take everything left to reach min fill.
    const size_t need_a =
        static_cast<size_t>(min_entries_) > node->entries.size()
            ? static_cast<size_t>(min_entries_) - node->entries.size()
            : 0;
    const size_t need_b =
        static_cast<size_t>(min_entries_) > sibling->entries.size()
            ? static_cast<size_t>(min_entries_) - sibling->entries.size()
            : 0;
    const bool force_a = need_a == remaining;
    const bool force_b = need_b == remaining;

    // Pick the unassigned entry with the largest preference difference.
    size_t pick = entries.size();
    double best_diff = -1.0;
    double pick_da = 0.0;
    double pick_db = 0.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (assigned[i]) {
        continue;
      }
      const double da = Enlargement(box_a, entries[i].box);
      const double db = Enlargement(box_b, entries[i].box);
      const double diff = da > db ? da - db : db - da;
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_da = da;
        pick_db = db;
      }
    }
    GEOLIC_DCHECK(pick < entries.size());

    const bool to_a =
        force_a || (!force_b && (pick_da < pick_db ||
                                 (pick_da == pick_db &&
                                  node->entries.size() <=
                                      sibling->entries.size())));
    if (to_a) {
      box_a.Extend(entries[pick].box);
      node->entries.push_back(std::move(entries[pick]));
    } else {
      box_b.Extend(entries[pick].box);
      sibling->entries.push_back(std::move(entries[pick]));
    }
    assigned[pick] = true;
    --remaining;
  }
  return sibling;
}

IntervalBox Rtree::NodeBox(const Node& node) {
  IntervalBox box;
  for (const Entry& entry : node.entries) {
    box.Extend(entry.box);
  }
  return box;
}

std::vector<int64_t> Rtree::FindContaining(const IntervalBox& query) const {
  std::vector<int64_t> out;
  if (static_cast<int>(query.dims.size()) == dimensions_ && size_ > 0) {
    FindContainingImpl(*root_, query, &out);
  }
  return out;
}

void Rtree::FindContainingImpl(const Node& node, const IntervalBox& query,
                               std::vector<int64_t>* out) const {
  for (const Entry& entry : node.entries) {
    if (node.leaf) {
      if (entry.box.Contains(query)) {
        out->push_back(entry.id);
      }
    } else if (entry.box.Contains(query)) {
      // Only subtrees whose bounding box contains the query can hold a
      // containing entry.
      FindContainingImpl(*entry.child, query, out);
    }
  }
}

std::vector<int64_t> Rtree::FindOverlapping(const IntervalBox& query) const {
  std::vector<int64_t> out;
  if (static_cast<int>(query.dims.size()) == dimensions_ && size_ > 0) {
    FindOverlappingImpl(*root_, query, &out);
  }
  return out;
}

void Rtree::FindOverlappingImpl(const Node& node, const IntervalBox& query,
                                std::vector<int64_t>* out) const {
  for (const Entry& entry : node.entries) {
    if (!entry.box.Overlaps(query)) {
      continue;
    }
    if (node.leaf) {
      out->push_back(entry.id);
    } else {
      FindOverlappingImpl(*entry.child, query, out);
    }
  }
}

int Rtree::Height() const {
  if (size_ == 0) {
    return 0;
  }
  int height = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++height;
    node = node->entries.front().child.get();
  }
  return height;
}

int Rtree::LeafDepth() const {
  int depth = 0;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++depth;
    node = node->entries.front().child.get();
  }
  return depth;
}

Status Rtree::CheckInvariants() const {
  if (size_ == 0) {
    if (!root_->entries.empty()) {
      return Status::Internal("empty tree with root entries");
    }
    return Status::Ok();
  }
  return CheckNode(*root_, 0, LeafDepth());
}

Status Rtree::CheckNode(const Node& node, int depth, int leaf_depth) const {
  if (node.leaf != (depth == leaf_depth)) {
    return Status::Internal("leaves at non-uniform depth");
  }
  if (static_cast<int>(node.entries.size()) > max_entries_) {
    return Status::Internal("node overflow");
  }
  if (&node != root_.get() &&
      static_cast<int>(node.entries.size()) < min_entries_) {
    return Status::Internal("node underflow");
  }
  for (const Entry& entry : node.entries) {
    if (node.leaf) {
      if (entry.child != nullptr) {
        return Status::Internal("leaf entry with a child pointer");
      }
      continue;
    }
    if (entry.child == nullptr) {
      return Status::Internal("internal entry without a child");
    }
    const IntervalBox child_box = NodeBox(*entry.child);
    if (!(entry.box.Contains(child_box) && child_box.Contains(entry.box))) {
      return Status::Internal("stale bounding box");
    }
    GEOLIC_RETURN_IF_ERROR(CheckNode(*entry.child, depth + 1, leaf_depth));
  }
  return Status::Ok();
}

}  // namespace geolic
