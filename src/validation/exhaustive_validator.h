#ifndef GEOLIC_VALIDATION_EXHAUSTIVE_VALIDATOR_H_
#define GEOLIC_VALIDATION_EXHAUSTIVE_VALIDATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "validation/validation_report.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// The baseline offline aggregate validator of reference [10] (the paper's
// Algorithm 2): for every i = 1 .. 2^N − 1, interpret i as a set S of
// redistribution licenses, compute CV = C⟨S⟩ from the validation tree and
// AV = A[S] from the aggregate array, and flag S when CV > AV.
//
// `aggregates[j]` is the aggregate constraint count of the j-th (0-based)
// redistribution license; N = aggregates.size(). Requires N ≤ 64 and — for
// the 2^N enumeration to be tractable — realistically N ≲ 30; callers
// wanting the paper's efficient method use core/GroupedValidator instead.
//
// Compatibility wrapper, slated for [[deprecated]]: new code should call
// Validate(tree, aggregates, {.mode = ValidationMode::kExhaustive})
// (validation/validate.h). Both entry points below delegate to that facade
// and produce byte-identical reports.
Result<ValidationReport> ValidateExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates);

// Like ValidateExhaustive, but stops after `max_equations` equations
// (report.equations_evaluated tells how far it got). Benchmarks use this to
// bound baseline runtime at large N; a partial run never reports
// `all_valid` semantics beyond the equations it evaluated.
Result<ValidationReport> ValidateExhaustiveLimited(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates,
    uint64_t max_equations);

// Reference implementation of a single equation's LHS, straight from merged
// log counts: Σ counts over keys that are subsets of `set`. O(#distinct
// sets) per call; used by tests to pin down the tree traversal and by the
// online validator.
int64_t LhsFromMergedCounts(
    const std::unordered_map<LicenseMask, int64_t>& merged_counts,
    LicenseMask set);

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_EXHAUSTIVE_VALIDATOR_H_
