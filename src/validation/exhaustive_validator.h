#ifndef GEOLIC_VALIDATION_EXHAUSTIVE_VALIDATOR_H_
#define GEOLIC_VALIDATION_EXHAUSTIVE_VALIDATOR_H_

#include <cstdint>
#include <unordered_map>

#include "util/license_set.h"

namespace geolic {

// The baseline offline validators that used to live here
// (ValidateExhaustive, ValidateExhaustiveLimited, and ValidateZeta from
// the former zeta_validator.h) are folded into the Validate facade:
//
//   Validate(tree, aggregates, {.mode = ValidationMode::kExhaustive})
//   Validate(tree, aggregates, {.mode = ValidationMode::kZeta})
//
// with options.max_equations / options.max_dense_n replacing the extra
// parameters. See validation/validate.h. Only the reference LHS evaluator
// below remains.

// Reference implementation of a single equation's LHS, straight from merged
// log counts: Σ counts over keys that are subsets of `set`. O(#distinct
// sets) per call; used by tests to pin down the tree traversal and by the
// online validator.
int64_t LhsFromMergedCounts(
    const std::unordered_map<LicenseSet, int64_t>& merged_counts,
    const LicenseSet& set);

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_EXHAUSTIVE_VALIDATOR_H_
