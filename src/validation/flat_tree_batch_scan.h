#ifndef GEOLIC_VALIDATION_FLAT_TREE_BATCH_SCAN_H_
#define GEOLIC_VALIDATION_FLAT_TREE_BATCH_SCAN_H_

// Shared body of the 64-lane batched equation scan, included ONLY by the
// per-ISA tier translation units (flat_tree_batch_{scalar,sse42,avx2}.cc).
// Each tier instantiates BatchScan with its own LaneOps policy:
//
//   struct LaneOps {
//     // Smallest popcount(on_path) at which the wide lane step beats the
//     // in-loop per-lane bit scan for this tier (65 = never), given the
//     // compile-time mask width (0 = runtime width).
//     static constexpr int LaneThreshold(int kwords);
//     // Fused covered-test + sum-vs-count accumulate over every lane in
//     // `on_path`; returns the lanes that keep descending. Same contract
//     // as the in-loop scalar fallback below — tiers must be
//     // bit-identical in sums AND visit accounting. kWords is the
//     // compile-time mask width (0 = use the runtime `words` argument).
//     template <int kWords>
//     static uint64_t LaneStep(const uint64_t* mask, uint32_t words,
//                              const uint64_t* qcol, uint64_t on_path,
//                              int64_t node_sum, int64_t node_count,
//                              int64_t* sums);
//   };
//
// The policy is a template parameter so LaneStep inlines into the node
// loop — the whole scan is compiled under the tier's ISA flags and
// dispatch happens once per batch call (see flat_tree_batch.h). The mask
// width is specialized at compile time for the 1- and 2-word layouts
// (every catalog up to 128 licenses) so the per-word loops fully unroll;
// wider compiles take the runtime-width path.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>

#include "util/license_set.h"
#include "validation/flat_tree_batch.h"

namespace geolic {
namespace internal {

// 64 queries share one pruned preorder pass: lane q of the `alive` bitset
// says query q still descends the current subtree, so each node is loaded
// once per chunk instead of once per query, and every pruning decision
// (off-set skip, Theorem-1 skip, covered-subtree summarize) is taken per
// lane. Sums and nodes-touched accounting are per (node, query) and
// therefore bit-identical to scalar SumSubsets calls, independent of how
// callers chunk their equations or which tier runs the scan.
template <int kWords, typename LaneOps>
uint64_t BatchScan(const FlatTreeBatchView& view,
                   std::span<const LicenseSet> sets,
                   std::span<int64_t> sums) {
  const size_t size = view.size;
  const uint32_t words = kWords == 0 ? view.mask_words : kWords;
  uint64_t touched = 0;
  for (size_t base = 0; base < sets.size(); base += 64) {
    const size_t chunk = std::min<size_t>(64, sets.size() - base);
    const LicenseSet* chunk_sets = sets.data() + base;
    int64_t* chunk_sums = sums.data() + base;
    // qcol[w * 64 + q]: query q's word w — column-major so the lane step
    // reads one contiguous 64-entry column per mask word. Dead lanes stay
    // zero-extended; per-word tests never index past a narrow query. Only
    // the `words` columns in use are zeroed — blanket initialization of
    // the worst-case array is measurable per chunk.
    constexpr size_t kQueryWordSlots =
        64u * (kWords == 1 ? 1u : static_cast<size_t>(kMaxLicenseWords));
    uint64_t qcol[kQueryWordSlots];
    std::fill_n(qcol, static_cast<size_t>(words) * 64, uint64_t{0});
    for (size_t q = 0; q < chunk; ++q) {
      for (uint32_t w = 0; w < words; ++w) {
        qcol[w * 64 + q] = chunk_sets[q].Word(static_cast<int>(w));
      }
    }
    // Lane sums accumulate in a dense local array (the lane step's unit
    // of work) and copy out once per chunk.
    int64_t lane_sums[64] = {};
    // member[j]: lanes whose query set contains license j. Only the
    // prefix up to the highest present index is ever read; query licenses
    // beyond it can't match any node and are skipped.
    uint64_t member[kMaxLicensesLarge];
    std::fill_n(member, view.member_span, uint64_t{0});
    for (size_t q = 0; q < chunk; ++q) {
      for (int idx : chunk_sets[q].Indexes()) {
        if (static_cast<uint32_t>(idx) < view.member_span) {
          member[static_cast<size_t>(idx)] |= uint64_t{1} << q;
        }
      }
    }
    // (subtree end, lanes to restore on leaving that subtree). Depth is
    // bounded by kMaxLicensesLarge (path indexes strictly increase), so
    // the frame array tops out at ~16 KiB of stack — fine for the worker
    // threads this runs on; revisit before raising kMaxLicensesLarge.
    std::pair<uint32_t, uint64_t> stack[kMaxLicensesLarge + 1];
    size_t depth = 0;
    uint64_t alive = chunk == 64 ? ~uint64_t{0} : (uint64_t{1} << chunk) - 1;
    size_t i = 0;
    while (i < size) {
      while (depth > 0 && stack[depth - 1].first == i) {
        alive = stack[--depth].second;
      }
      touched += static_cast<uint64_t>(std::popcount(alive));
      const uint64_t on_path = alive & member[view.index[i]];
      if (on_path == 0) {
        i = view.subtree_end[i];
        continue;
      }
      const uint64_t* mask = &view.subtree_mask_words[i * words];
      const int64_t node_count = view.count[i];
      const int64_t node_sum = view.subtree_sum[i];
      uint64_t descend;
      if (std::popcount(on_path) >= LaneOps::LaneThreshold(kWords)) {
        // Enough lanes on this path for the wide step to win: whole lane
        // groups are tested in vector registers, all mask words folded
        // into one stray accumulator, and the sum-vs-count accumulate
        // splits off the same compare mask.
        descend = LaneOps::template LaneStep<kWords>(
            mask, words, qcol, on_path, node_sum, node_count, lane_sums);
      } else {
        descend = 0;
        for (uint64_t lanes = on_path; lanes != 0; lanes &= lanes - 1) {
          const size_t q = static_cast<size_t>(std::countr_zero(lanes));
          bool covered;
          if constexpr (kWords == 1) {
            covered = (mask[0] & ~qcol[q]) == 0;
          } else {
            covered = true;
            for (uint32_t w = 0; w < words; ++w) {
              covered = covered && (mask[w] & ~qcol[w * 64 + q]) == 0;
            }
          }
          if (covered) {
            lane_sums[q] += node_sum;  // Covered: summarize, stop here.
          } else {
            lane_sums[q] += node_count;
            descend |= uint64_t{1} << q;
          }
        }
      }
      if (descend == 0 || view.subtree_end[i] == i + 1) {
        i = view.subtree_end[i];
        continue;
      }
      stack[depth++] = {view.subtree_end[i], alive};
      alive = descend;
      ++i;
    }
    for (size_t q = 0; q < chunk; ++q) {
      chunk_sums[q] = lane_sums[q];
    }
  }
  return touched;
}

// Branches the runtime mask width into the compile-time specializations
// (`single_word` is the caller's mask_words == 1 flag).
template <typename LaneOps>
uint64_t BatchScanTier(const FlatTreeBatchView& view, bool single_word,
                       std::span<const LicenseSet> sets,
                       std::span<int64_t> sums) {
  if (single_word) {
    return BatchScan<1, LaneOps>(view, sets, sums);
  }
  if (view.mask_words == 2) {
    return BatchScan<2, LaneOps>(view, sets, sums);
  }
  return BatchScan<0, LaneOps>(view, sets, sums);
}

}  // namespace internal
}  // namespace geolic

#endif  // GEOLIC_VALIDATION_FLAT_TREE_BATCH_SCAN_H_
