#include "validation/report_json.h"

#include <cinttypes>
#include <cstdio>

#include "util/json_writer.h"

namespace geolic {
namespace {

void WriteEquationResult(const EquationResult& result, JsonWriter* json) {
  json->BeginObject();
  char mask_hex[24];
  std::snprintf(mask_hex, sizeof(mask_hex), "0x%" PRIx64 "", result.set);
  json->KeyValue("set_mask", std::string_view(mask_hex));
  json->Key("licenses");
  json->BeginArray();
  for (int index : MaskToIndexes(result.set)) {
    json->Int(index + 1);  // 1-based, matching the paper's L_D^i.
  }
  json->EndArray();
  json->KeyValue("lhs", result.lhs);
  json->KeyValue("rhs", result.rhs);
  json->KeyValue("excess", result.lhs - result.rhs);
  json->EndObject();
}

}  // namespace

std::string EquationResultToJson(const EquationResult& result) {
  JsonWriter json;
  WriteEquationResult(result, &json);
  return std::move(json).Take();
}

std::string ReportToJson(const ValidationReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("valid", report.all_valid());
  json.KeyValue("equations_evaluated", report.equations_evaluated);
  json.KeyValue("nodes_visited", report.nodes_visited);
  json.Key("violations");
  json.BeginArray();
  for (const EquationResult& violation : report.violations) {
    WriteEquationResult(violation, &json);
  }
  json.EndArray();
  json.EndObject();
  return std::move(json).Take();
}

}  // namespace geolic
