#include "validation/report_json.h"


#include "util/json_writer.h"

namespace geolic {
namespace {

void WriteEquationResult(const EquationResult& result, JsonWriter* json) {
  json->BeginObject();
  json->KeyValue("set_mask", result.set.ToHex());
  json->Key("licenses");
  json->BeginArray();
  for (int index : result.set.Indexes()) {
    json->Int(index + 1);  // 1-based, matching the paper's L_D^i.
  }
  json->EndArray();
  json->KeyValue("lhs", result.lhs);
  json->KeyValue("rhs", result.rhs);
  json->KeyValue("excess", result.lhs - result.rhs);
  json->EndObject();
}

}  // namespace

std::string EquationResultToJson(const EquationResult& result) {
  JsonWriter json;
  WriteEquationResult(result, &json);
  return std::move(json).Take();
}

std::string ReportToJson(const ValidationReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("valid", report.all_valid());
  json.KeyValue("equations_evaluated", report.equations_evaluated);
  json.KeyValue("nodes_visited", report.nodes_visited);
  json.Key("violations");
  json.BeginArray();
  for (const EquationResult& violation : report.violations) {
    WriteEquationResult(violation, &json);
  }
  json.EndArray();
  json.EndObject();
  return std::move(json).Take();
}

}  // namespace geolic
