#include "validation/validation_tree.h"

#include <algorithm>

namespace geolic {
namespace {

// NodeCount, TotalCount and CheckNode walk with an explicit stack: they
// run against freshly deserialized checkpoints, where an adversarial (or
// just deep) chain-shaped tree would overflow the call stack if the walk
// recursed once per level.
size_t NodeCountImpl(const ValidationTreeNode& root) {
  size_t count = 0;
  std::vector<const ValidationTreeNode*> stack{&root};
  while (!stack.empty()) {
    const ValidationTreeNode* node = stack.back();
    stack.pop_back();
    count += node->children.size();
    for (const auto& child : node->children) {
      stack.push_back(child.get());
    }
  }
  return count;
}

int64_t TotalCountImpl(const ValidationTreeNode& root) {
  int64_t total = 0;
  std::vector<const ValidationTreeNode*> stack{&root};
  while (!stack.empty()) {
    const ValidationTreeNode* node = stack.back();
    stack.pop_back();
    total += node->count;
    for (const auto& child : node->children) {
      stack.push_back(child.get());
    }
  }
  return total;
}

// Heap bytes of one node: its own payload plus its child-pointer vector.
// Every node is heap-allocated (the root via the tree's unique_ptr), so
// the per-node payload applies to the root too — excluding it undercounts
// the figure-10 storage series by one node per tree, which matters once
// division multiplies the number of roots.
size_t MemoryBytesImpl(const ValidationTreeNode& node) {
  size_t bytes = sizeof(ValidationTreeNode) +
                 node.children.capacity() *
                     sizeof(std::unique_ptr<ValidationTreeNode>);
  for (const auto& child : node.children) {
    bytes += MemoryBytesImpl(*child);
  }
  return bytes;
}

int64_t SumSubsetsImpl(const ValidationTreeNode& node, const LicenseSet& set,
                       uint64_t* nodes_visited) {
  int64_t sum = 0;
  for (const auto& child : node.children) {
    if (!set.Contains(child->index)) {
      continue;
    }
    if (nodes_visited != nullptr) {
      ++*nodes_visited;
    }
    sum += child->count + SumSubsetsImpl(*child, set, nodes_visited);
  }
  return sum;
}

LicenseSet PresentLicensesImpl(const ValidationTreeNode& node) {
  LicenseSet mask;
  for (const auto& child : node.children) {
    mask |= LicenseSet::Singleton(child->index) | PresentLicensesImpl(*child);
  }
  return mask;
}

Status CheckNode(const ValidationTreeNode& root) {
  std::vector<const ValidationTreeNode*> stack{&root};
  while (!stack.empty()) {
    const ValidationTreeNode* node = stack.back();
    stack.pop_back();
    if (node->count < 0) {
      return Status::Internal("negative count in validation tree");
    }
    int previous = node->index;
    for (const auto& child : node->children) {
      if (child == nullptr) {
        return Status::Internal("null child in validation tree");
      }
      if (child->index <= previous) {
        return Status::Internal(
            "children not strictly ascending / path not increasing");
      }
      previous = child->index;
      stack.push_back(child.get());
    }
  }
  return Status::Ok();
}

void ToStringImpl(const ValidationTreeNode& node, int depth,
                  std::string* out) {
  for (const auto& child : node.children) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append("L" + std::to_string(child->index + 1) + ":" +
                std::to_string(child->count) + "\n");
    ToStringImpl(*child, depth + 1, out);
  }
}

// Drains a subtree iteratively — unique_ptr's natural chain destruction
// recurses once per level and would overflow on deep chain-shaped trees.
void DrainIteratively(std::unique_ptr<ValidationTreeNode> root) {
  if (root == nullptr) {
    return;
  }
  std::vector<std::unique_ptr<ValidationTreeNode>> pending;
  pending.push_back(std::move(root));
  while (!pending.empty()) {
    std::unique_ptr<ValidationTreeNode> node = std::move(pending.back());
    pending.pop_back();
    for (auto& child : node->children) {
      pending.push_back(std::move(child));
    }
    // `node` itself is destroyed here with an empty child list.
  }
}

}  // namespace

ValidationTree::~ValidationTree() { DrainIteratively(std::move(root_)); }

ValidationTree& ValidationTree::operator=(ValidationTree&& other) noexcept {
  if (this != &other) {
    DrainIteratively(std::move(root_));
    root_ = std::move(other.root_);
  }
  return *this;
}

Status ValidationTree::Insert(const LicenseSet& set, int64_t count) {
  if (set.Empty()) {
    return Status::InvalidArgument("cannot insert the empty set");
  }
  if (count <= 0) {
    return Status::InvalidArgument("insert count must be positive, got " +
                                   std::to_string(count));
  }
  ValidationTreeNode* node = root_.get();
  for (const int index : set.Indexes()) {
    // Step 1 of Algorithm 1: scan the ordered children for the first child
    // with child.index >= index.
    auto it = std::lower_bound(
        node->children.begin(), node->children.end(), index,
        [](const std::unique_ptr<ValidationTreeNode>& child, int idx) {
          return child->index < idx;
        });
    if (it == node->children.end() || (*it)->index != index) {
      // Step 3: create the missing node in order.
      auto child = std::make_unique<ValidationTreeNode>();
      child->index = index;
      it = node->children.insert(it, std::move(child));
    }
    node = it->get();
  }
  // Step 4: accumulate the count at the final node.
  node->count += count;
  return Status::Ok();
}

Result<ValidationTree> ValidationTree::BuildFromLog(const LogStore& store) {
  ValidationTree tree;
  for (const LogRecord& record : store.records()) {
    GEOLIC_RETURN_IF_ERROR(tree.Insert(record.set, record.count));
  }
  return tree;
}

int64_t ValidationTree::SumSubsets(const LicenseSet& set,
                                   uint64_t* nodes_visited) const {
  return SumSubsetsImpl(*root_, set, nodes_visited);
}

int64_t ValidationTree::CountOf(const LicenseSet& set) const {
  const ValidationTreeNode* node = root_.get();
  for (const int index : set.Indexes()) {
    const ValidationTreeNode* next = nullptr;
    for (const auto& child : node->children) {
      if (child->index == index) {
        next = child.get();
        break;
      }
      if (child->index > index) {
        break;
      }
    }
    if (next == nullptr) {
      return 0;
    }
    node = next;
  }
  return node->count;
}

size_t ValidationTree::NodeCount() const { return NodeCountImpl(*root_); }

int64_t ValidationTree::TotalCount() const { return TotalCountImpl(*root_); }

size_t ValidationTree::MemoryBytes() const { return MemoryBytesImpl(*root_); }

LicenseSet ValidationTree::PresentLicenses() const {
  return PresentLicensesImpl(*root_);
}

namespace {

void ForEachSetImpl(const ValidationTreeNode& node, const LicenseSet& path,
                    const std::function<void(const LicenseSet&, int64_t)>& fn) {
  for (const auto& child : node.children) {
    const LicenseSet child_path = path | LicenseSet::Singleton(child->index);
    if (child->count != 0) {
      fn(child_path, child->count);
    }
    ForEachSetImpl(*child, child_path, fn);
  }
}

}  // namespace

void ValidationTree::ForEachSet(
    const std::function<void(const LicenseSet&, int64_t)>& fn) const {
  ForEachSetImpl(*root_, LicenseSet(), fn);
}

Status ValidationTree::CheckInvariants() const {
  if (root_->index != -1 || root_->count != 0) {
    return Status::Internal("root must be index -1 with zero count");
  }
  return CheckNode(*root_);
}

std::string ValidationTree::ToString() const {
  std::string out;
  ToStringImpl(*root_, 0, &out);
  return out;
}

}  // namespace geolic
