#include "validation/tree_serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "persist/checkpoint.h"

namespace geolic {
namespace {

constexpr char kLegacyMagic[8] = {'G', 'L', 'T', 'R', 'E', 'E', '1', '\0'};
constexpr uint64_t kMaxNodes = uint64_t{1} << 32;  // Sanity bound on load.

void WriteTriple(const ValidationTreeNode& node, std::ostream* out) {
  const int32_t index = node.index;
  const uint32_t child_count = static_cast<uint32_t>(node.children.size());
  out->write(reinterpret_cast<const char*>(&index), sizeof(index));
  out->write(reinterpret_cast<const char*>(&node.count), sizeof(node.count));
  out->write(reinterpret_cast<const char*>(&child_count),
             sizeof(child_count));
}

uint64_t CountNodes(const ValidationTreeNode& root) {
  uint64_t count = 0;
  std::vector<const ValidationTreeNode*> stack{&root};
  while (!stack.empty()) {
    const ValidationTreeNode* node = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& child : node->children) {
      stack.push_back(child.get());
    }
  }
  return count;
}

// Body = node count + preorder triples. Iterative preorder: a recursive
// WriteNode overflows the stack on chain-shaped trees deeper than the call
// stack, the same flaw the reader had.
void WriteTreeBody(const ValidationTree& tree, std::ostream* out) {
  const uint64_t nodes = CountNodes(tree.root());
  out->write(reinterpret_cast<const char*>(&nodes), sizeof(nodes));
  struct Frame {
    const ValidationTreeNode* node;
    size_t next_child;
  };
  WriteTriple(tree.root(), out);
  std::vector<Frame> stack;
  stack.push_back({&tree.root(), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child == top.node->children.size()) {
      stack.pop_back();
      continue;
    }
    const ValidationTreeNode* child =
        top.node->children[top.next_child].get();
    ++top.next_child;
    WriteTriple(*child, out);
    stack.push_back({child, 0});  // Invalidates `top`; re-read next turn.
  }
}

// Reads the body into `tree` with an explicit stack (fixing the unbounded
// recursion of the original ReadNode), enforcing the declared node budget.
Status ReadTreeBody(std::istream* in, ValidationTree* tree) {
  uint64_t nodes = 0;
  in->read(reinterpret_cast<char*>(&nodes), sizeof(nodes));
  if (!*in) {
    return Status::ParseError("truncated tree header");
  }
  if (nodes == 0 || nodes > kMaxNodes) {
    return Status::ParseError("implausible node count");
  }
  uint64_t remaining = nodes;
  struct Frame {
    ValidationTreeNode* node;
    uint32_t pending_children;
  };
  std::vector<Frame> stack;
  const auto read_into =
      [&](ValidationTreeNode* node) -> Result<uint32_t> {
    int32_t index = 0;
    uint32_t child_count = 0;
    in->read(reinterpret_cast<char*>(&index), sizeof(index));
    in->read(reinterpret_cast<char*>(&node->count), sizeof(node->count));
    in->read(reinterpret_cast<char*>(&child_count), sizeof(child_count));
    if (!*in) {
      return Status::ParseError("truncated tree node");
    }
    // Root carries -1; everything below that is corrupt. No upper bound:
    // the format is legal at any strictly-increasing index depth (deep
    // chains), and mask-space consumers enforce kMaxLicensesLarge
    // themselves.
    if (index < -1) {
      return Status::ParseError("negative license index");
    }
    node->index = index;
    // Each child consumes at least one declared node, so a child count
    // above the remaining budget is corrupt. Growth happens via push_back
    // — never reserve from an untrusted count (a mutated header must not
    // drive a giant allocation).
    if (child_count > remaining) {
      return Status::ParseError("implausible child count");
    }
    return child_count;
  };
  --remaining;  // The root consumes one declared node (nodes >= 1 here).
  GEOLIC_ASSIGN_OR_RETURN(uint32_t root_children,
                          read_into(tree->mutable_root()));
  stack.push_back({tree->mutable_root(), root_children});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.pending_children == 0) {
      stack.pop_back();
      continue;
    }
    --top.pending_children;
    if (remaining == 0) {
      return Status::ParseError("tree payload exceeds declared node count");
    }
    --remaining;
    auto child = std::make_unique<ValidationTreeNode>();
    GEOLIC_ASSIGN_OR_RETURN(uint32_t grandchildren, read_into(child.get()));
    ValidationTreeNode* child_ptr = child.get();
    top.node->children.push_back(std::move(child));
    stack.push_back({child_ptr, grandchildren});  // Invalidates `top`.
  }
  if (remaining != 0) {
    return Status::ParseError("tree payload shorter than declared");
  }
  return Status::Ok();
}

Result<ValidationTree> FinishTree(ValidationTree tree) {
  if (tree.root().index != -1) {
    return Status::ParseError("checkpoint root is not a root node");
  }
  // The root's count must be zero and the structure ordered; reuse the
  // tree's own invariant checker so a corrupted checkpoint cannot produce
  // an inconsistent validator state.
  const Status invariants = tree.CheckInvariants();
  if (!invariants.ok()) {
    return Status::ParseError("checkpoint violates tree invariants: " +
                              invariants.message());
  }
  return tree;
}

}  // namespace

Status SerializeTree(const ValidationTree& tree, std::ostream* out) {
  std::ostringstream body;
  WriteTreeBody(tree, &body);
  GEOLIC_RETURN_IF_ERROR(WriteCheckpoint(CheckpointKind::kValidationTree,
                                         body.str(), out));
  return Status::Ok();
}

Status SerializeTreeV1(const ValidationTree& tree, std::ostream* out) {
  out->write(kLegacyMagic, sizeof(kLegacyMagic));
  WriteTreeBody(tree, out);
  if (!*out) {
    return Status::IoError("tree serialization write failed");
  }
  return Status::Ok();
}

Result<ValidationTree> DeserializeTree(std::istream* in) {
  char magic[sizeof(kLegacyMagic)];
  in->read(magic, sizeof(magic));
  if (!*in) {
    return Status::ParseError("not a geolic tree checkpoint");
  }
  if (IsCheckpointMagic(magic)) {
    GEOLIC_ASSIGN_OR_RETURN(
        const std::string payload,
        ReadCheckpointPayloadAfterMagic(CheckpointKind::kValidationTree, in));
    std::istringstream body(payload);
    ValidationTree tree;
    GEOLIC_RETURN_IF_ERROR(ReadTreeBody(&body, &tree));
    if (body.peek() != std::istringstream::traits_type::eof()) {
      return Status::ParseError("trailing bytes after tree payload");
    }
    return FinishTree(std::move(tree));
  }
  if (std::memcmp(magic, kLegacyMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a geolic tree checkpoint");
  }
  ValidationTree tree;
  GEOLIC_RETURN_IF_ERROR(ReadTreeBody(in, &tree));
  return FinishTree(std::move(tree));
}

Status SaveTree(const ValidationTree& tree, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return SerializeTree(tree, &out);
}

Result<ValidationTree> LoadTree(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return DeserializeTree(&in);
}

}  // namespace geolic
