#include "validation/tree_serialization.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace geolic {
namespace {

constexpr char kMagic[8] = {'G', 'L', 'T', 'R', 'E', 'E', '1', '\0'};
constexpr uint64_t kMaxNodes = uint64_t{1} << 32;  // Sanity bound on load.

void WriteNode(const ValidationTreeNode& node, std::ostream* out) {
  const int32_t index = node.index;
  const uint32_t child_count = static_cast<uint32_t>(node.children.size());
  out->write(reinterpret_cast<const char*>(&index), sizeof(index));
  out->write(reinterpret_cast<const char*>(&node.count), sizeof(node.count));
  out->write(reinterpret_cast<const char*>(&child_count),
             sizeof(child_count));
  for (const auto& child : node.children) {
    WriteNode(*child, out);
  }
}

Status ReadNode(std::istream* in, ValidationTreeNode* node,
                uint64_t* nodes_remaining) {
  if (*nodes_remaining == 0) {
    return Status::ParseError("tree payload exceeds declared node count");
  }
  --*nodes_remaining;
  int32_t index = 0;
  uint32_t child_count = 0;
  in->read(reinterpret_cast<char*>(&index), sizeof(index));
  in->read(reinterpret_cast<char*>(&node->count), sizeof(node->count));
  in->read(reinterpret_cast<char*>(&child_count), sizeof(child_count));
  if (!*in) {
    return Status::ParseError("truncated tree node");
  }
  node->index = index;
  // Each child consumes at least one declared node, so a child count above
  // the remaining budget is corrupt. Growth happens via push_back — never
  // reserve from an untrusted count (a mutated header must not drive a
  // giant allocation).
  if (child_count > *nodes_remaining) {
    return Status::ParseError("implausible child count");
  }
  for (uint32_t i = 0; i < child_count; ++i) {
    auto child = std::make_unique<ValidationTreeNode>();
    GEOLIC_RETURN_IF_ERROR(ReadNode(in, child.get(), nodes_remaining));
    node->children.push_back(std::move(child));
  }
  return Status::Ok();
}

uint64_t CountNodes(const ValidationTreeNode& node) {
  uint64_t count = 1;
  for (const auto& child : node.children) {
    count += CountNodes(*child);
  }
  return count;
}

}  // namespace

Status SerializeTree(const ValidationTree& tree, std::ostream* out) {
  out->write(kMagic, sizeof(kMagic));
  const uint64_t nodes = CountNodes(tree.root());
  out->write(reinterpret_cast<const char*>(&nodes), sizeof(nodes));
  WriteNode(tree.root(), out);
  if (!*out) {
    return Status::IoError("tree serialization write failed");
  }
  return Status::Ok();
}

Result<ValidationTree> DeserializeTree(std::istream* in) {
  char magic[sizeof(kMagic)];
  in->read(magic, sizeof(magic));
  if (!*in || std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a geolic tree checkpoint");
  }
  uint64_t nodes = 0;
  in->read(reinterpret_cast<char*>(&nodes), sizeof(nodes));
  if (!*in) {
    return Status::ParseError("truncated tree header");
  }
  if (nodes == 0 || nodes > kMaxNodes) {
    return Status::ParseError("implausible node count");
  }
  ValidationTree tree;
  uint64_t remaining = nodes;
  GEOLIC_RETURN_IF_ERROR(ReadNode(in, tree.mutable_root(), &remaining));
  if (remaining != 0) {
    return Status::ParseError("tree payload shorter than declared");
  }
  if (tree.root().index != -1) {
    return Status::ParseError("checkpoint root is not a root node");
  }
  // The root's count must be zero and the structure ordered; reuse the
  // tree's own invariant checker so a corrupted checkpoint cannot produce
  // an inconsistent validator state.
  const Status invariants = tree.CheckInvariants();
  if (!invariants.ok()) {
    return Status::ParseError("checkpoint violates tree invariants: " +
                              invariants.message());
  }
  return tree;
}

Status SaveTree(const ValidationTree& tree, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return SerializeTree(tree, &out);
}

Result<ValidationTree> LoadTree(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return DeserializeTree(&in);
}

}  // namespace geolic
