#ifndef GEOLIC_VALIDATION_ZETA_VALIDATOR_H_
#define GEOLIC_VALIDATION_ZETA_VALIDATOR_H_

#include <vector>

#include "validation/validation_report.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// Alternative offline validator based on the subset-sum (zeta) transform.
//
// Where Algorithm 2 recomputes each equation's LHS by a pruned tree
// traversal (cost ~tree nodes per equation), this validator materialises a
// dense table lhs[S] for every S ⊆ {0..N−1}: seed lhs[S] = C[S] from the
// tree, then one sum-over-subsets DP pass turns it into lhs[S] = C⟨S⟩ in
// O(2^N · N) additions total. RHS values accumulate in the same pass.
//
// Trade-off (ablated in bench/ablation_zeta): the DP touches all 2^N cells
// regardless of tree sparsity but with perfect locality; the traversal
// skips empty regions but chases pointers. The DP also needs O(2^N) × 16
// bytes of memory, so it is capped at `max_dense_n` (default 26 ≈ 1 GiB).
//
// Produces the identical ValidationReport (same violations in the same
// ascending-set order; nodes_visited is 0 — no tree walks).
//
// Compatibility wrapper, slated for [[deprecated]]: new code should call
// Validate(tree, aggregates, {.mode = ValidationMode::kZeta})
// (validation/validate.h); this delegates there.
Result<ValidationReport> ValidateZeta(const ValidationTree& tree,
                                      const std::vector<int64_t>& aggregates,
                                      int max_dense_n = 26);

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_ZETA_VALIDATOR_H_
