#include "validation/flat_tree.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/check.h"
#include "util/cpu_dispatch.h"
#include "validation/flat_tree_batch.h"

namespace geolic {
namespace {

// Emits `node`'s children (not `node` itself) in preorder and returns
// nothing; each emitted slot's subtree columns are filled after its own
// children are emitted. Depth is bounded by kMaxLicensesLarge (path indexes
// strictly increase), so recursion is safe.
struct Compiler {
  std::vector<int32_t>* index;
  std::vector<int64_t>* count;
  std::vector<uint32_t>* subtree_end;
  std::vector<LicenseSet>* subtree_mask;
  std::vector<int64_t>* subtree_sum;

  void EmitChildren(const ValidationTreeNode& node) {
    for (const auto& child : node.children) {
      const size_t slot = index->size();
      index->push_back(child->index);
      count->push_back(child->count);
      subtree_end->push_back(0);  // Patched below.
      subtree_mask->push_back(LicenseSet());  // Accumulated below.
      subtree_sum->push_back(0);
      EmitChildren(*child);
      (*subtree_end)[slot] = static_cast<uint32_t>(index->size());
      LicenseSet mask = LicenseSet::Singleton(child->index);
      int64_t sum = child->count;
      // The children of `slot` occupy [slot+1, subtree_end); hop sibling to
      // sibling, folding their already-final subtree columns.
      for (size_t c = slot + 1; c < index->size(); c = (*subtree_end)[c]) {
        mask |= (*subtree_mask)[c];
        sum += (*subtree_sum)[c];
      }
      (*subtree_mask)[slot] = mask;
      (*subtree_sum)[slot] = sum;
    }
  }
};

}  // namespace

FlatValidationTree FlatValidationTree::Compile(const ValidationTree& tree) {
  FlatValidationTree flat;
  const size_t nodes = tree.NodeCount();
  flat.index_.reserve(nodes);
  flat.count_.reserve(nodes);
  flat.subtree_end_.reserve(nodes);
  flat.subtree_sum_.reserve(nodes);
  std::vector<LicenseSet> masks;
  masks.reserve(nodes);
  Compiler compiler{&flat.index_, &flat.count_, &flat.subtree_end_, &masks,
                    &flat.subtree_sum_};
  compiler.EmitChildren(tree.root());
  for (size_t i = 0; i < flat.index_.size(); i = flat.subtree_end_[i]) {
    flat.present_ |= masks[i];
    flat.total_count_ += flat.subtree_sum_[i];
  }
  // Slice the masks into a contiguous word arena at the compile-wide width.
  // present_ is the union of every subtree mask, so its word count bounds
  // them all; a tree confined to indexes < 64 keeps the stride at 1 and the
  // arena is exactly the historical u64 column.
  flat.mask_words_ = static_cast<uint32_t>(flat.present_.WordCount());
  for (const int32_t idx : flat.index_) {
    flat.member_span_ =
        std::max(flat.member_span_, static_cast<uint32_t>(idx) + 1);
  }
  flat.subtree_mask_words_.assign(masks.size() * flat.mask_words_, 0);
  for (size_t i = 0; i < masks.size(); ++i) {
    for (uint32_t w = 0; w < flat.mask_words_; ++w) {
      flat.subtree_mask_words_[i * flat.mask_words_ + w] =
          masks[i].Word(static_cast<int>(w));
    }
  }
  return flat;
}

template <bool kSingleWord>
int64_t FlatValidationTree::SumSubsetsImpl(const LicenseSet& set,
                                           uint64_t* nodes_visited) const {
  const size_t size = index_.size();
  const uint32_t words = kSingleWord ? 1 : mask_words_;
  uint64_t set_words[kMaxLicenseWords];
  for (uint32_t w = 0; w < words; ++w) {
    set_words[w] = set.Word(static_cast<int>(w));
  }
  int64_t sum = 0;
  uint64_t touched = 0;
  size_t i = 0;
  while (i < size) {
    ++touched;
    const uint64_t* mask = &subtree_mask_words_[i * words];
    bool covered;
    bool empty;
    if constexpr (kSingleWord) {
      const uint64_t inter = mask[0] & set_words[0];
      covered = inter == mask[0];
      empty = inter == 0;
    } else {
      covered = true;
      empty = true;
      for (uint32_t w = 0; w < words; ++w) {
        const uint64_t inter = mask[w] & set_words[w];
        covered = covered && inter == mask[w];
        empty = empty && inter == 0;
      }
    }
    if (covered) {
      // Fully covered region: one add replaces the whole descent. Every
      // leaf whose index is in `set` lands here too.
      sum += subtree_sum_[i];
      i = subtree_end_[i];
      continue;
    }
    if (empty) {
      // Theorem 1, per query: nothing below overlaps `set`.
      i = subtree_end_[i];
      continue;
    }
    if (!set.Contains(index_[i])) {
      // Every path through this node spells its index; off-set ⇒ the whole
      // subtree contributes nothing (the structural ref [10] rule).
      i = subtree_end_[i];
      continue;
    }
    sum += count_[i];
    ++i;
  }
  if (nodes_visited != nullptr) {
    *nodes_visited += touched;
  }
  return sum;
}

int64_t FlatValidationTree::SumSubsets(const LicenseSet& set,
                                       uint64_t* nodes_visited) const {
  return mask_words_ == 1 ? SumSubsetsImpl<true>(set, nodes_visited)
                          : SumSubsetsImpl<false>(set, nodes_visited);
}

int64_t FlatValidationTree::SumSubsetsWideReference(
    const LicenseSet& set, uint64_t* nodes_visited) const {
  return SumSubsetsImpl<false>(set, nodes_visited);
}

int64_t FlatValidationTree::SumSubsetsNoAccel(const LicenseSet& set,
                                              uint64_t* nodes_visited) const {
  const size_t size = index_.size();
  int64_t sum = 0;
  uint64_t touched = 0;
  size_t i = 0;
  while (i < size) {
    ++touched;
    if (!set.Contains(index_[i])) {
      i = subtree_end_[i];
      continue;
    }
    sum += count_[i];
    ++i;
  }
  if (nodes_visited != nullptr) {
    *nodes_visited += touched;
  }
  return sum;
}

internal::FlatTreeBatchView FlatValidationTree::BatchView() const {
  return internal::FlatTreeBatchView{
      index_.data(),          count_.data(), subtree_end_.data(),
      subtree_mask_words_.data(),            subtree_sum_.data(),
      index_.size(),          mask_words_,   member_span_};
}

void FlatValidationTree::SumSubsetsBatch(std::span<const LicenseSet> sets,
                                         std::span<int64_t> sums,
                                         uint64_t* nodes_visited) const {
  GEOLIC_DCHECK(sums.size() >= sets.size());
  // One tier pick per batch call; the chosen translation unit runs the
  // whole chunked scan with its lane step inlined (flat_tree_batch.h).
  const bool single_word = mask_words_ == 1;
  uint64_t touched;
  switch (simd::ActiveTier()) {
    case simd::Tier::kAvx2:
      touched = internal::SumSubsetsBatchAvx2Tier(BatchView(), single_word,
                                                  sets, sums);
      break;
    case simd::Tier::kSse42:
      touched = internal::SumSubsetsBatchSse42Tier(BatchView(), single_word,
                                                   sets, sums);
      break;
    default:
      touched = internal::SumSubsetsBatchScalarTier(BatchView(), single_word,
                                                    sets, sums);
      break;
  }
  if (nodes_visited != nullptr) {
    *nodes_visited += touched;
  }
}

void FlatValidationTree::SumSubsetsBatchScalar(std::span<const LicenseSet> sets,
                                               std::span<int64_t> sums,
                                               uint64_t* nodes_visited) const {
  GEOLIC_DCHECK(sums.size() >= sets.size());
  const uint64_t touched = internal::SumSubsetsBatchScalarTier(
      BatchView(), mask_words_ == 1, sets, sums);
  if (nodes_visited != nullptr) {
    *nodes_visited += touched;
  }
}

void FlatValidationTree::SumSubsetsBatchWideReference(
    std::span<const LicenseSet> sets, std::span<int64_t> sums,
    uint64_t* nodes_visited) const {
  GEOLIC_DCHECK(sums.size() >= sets.size());
  const uint64_t touched =
      internal::SumSubsetsBatchGenericReference(BatchView(), sets, sums);
  if (nodes_visited != nullptr) {
    *nodes_visited += touched;
  }
}

template <bool kSingleWord>
void FlatValidationTree::SumSubsetsBatchWordSlicedImpl(
    std::span<const LicenseSet> sets, std::span<int64_t> sums,
    uint64_t* nodes_visited) const {
  GEOLIC_DCHECK(sums.size() >= sets.size());
  const size_t size = index_.size();
  const uint32_t words = kSingleWord ? 1 : mask_words_;
  uint64_t touched = 0;
  for (size_t base = 0; base < sets.size(); base += 64) {
    const size_t chunk = std::min<size_t>(64, sets.size() - base);
    const LicenseSet* chunk_sets = sets.data() + base;
    int64_t* chunk_sums = sums.data() + base;
    for (size_t q = 0; q < chunk; ++q) {
      chunk_sums[q] = 0;
    }
    // qwords[q * words + w]: query q's set, zero-extended to the compile's
    // mask width so per-word tests never index past a narrow query.
    constexpr size_t kQueryWordSlots =
        64u * (kSingleWord ? 1u : static_cast<size_t>(kMaxLicenseWords));
    uint64_t qwords[kQueryWordSlots];
    for (size_t q = 0; q < chunk; ++q) {
      for (uint32_t w = 0; w < words; ++w) {
        qwords[q * words + w] = chunk_sets[q].Word(static_cast<int>(w));
      }
    }
    // member[j]: lanes whose query set contains license j.
    uint64_t member[kMaxLicensesLarge] = {};
    for (size_t q = 0; q < chunk; ++q) {
      for (int idx : chunk_sets[q].Indexes()) {
        member[static_cast<size_t>(idx)] |= uint64_t{1} << q;
      }
    }
    std::pair<uint32_t, uint64_t> stack[kMaxLicensesLarge + 1];
    size_t depth = 0;
    uint64_t alive = chunk == 64 ? ~uint64_t{0} : (uint64_t{1} << chunk) - 1;
    size_t i = 0;
    while (i < size) {
      while (depth > 0 && stack[depth - 1].first == i) {
        alive = stack[--depth].second;
      }
      touched += static_cast<uint64_t>(std::popcount(alive));
      const uint64_t on_path = alive & member[index_[i]];
      if (on_path == 0) {
        i = subtree_end_[i];
        continue;
      }
      const uint64_t* mask = &subtree_mask_words_[i * words];
      const int64_t node_count = count_[i];
      const int64_t node_sum = subtree_sum_[i];
      uint64_t descend = 0;
      for (uint64_t lanes = on_path; lanes != 0; lanes &= lanes - 1) {
        const int q = std::countr_zero(lanes);
        bool covered;
        if constexpr (kSingleWord) {
          covered = (mask[0] & ~qwords[q]) == 0;
        } else {
          covered = true;
          const uint64_t* qw = &qwords[static_cast<uint32_t>(q) * words];
          for (uint32_t w = 0; w < words; ++w) {
            covered = covered && (mask[w] & ~qw[w]) == 0;
          }
        }
        if (covered) {
          chunk_sums[q] += node_sum;  // Covered: summarize, stop here.
        } else {
          chunk_sums[q] += node_count;
          descend |= uint64_t{1} << q;
        }
      }
      if (descend == 0 || subtree_end_[i] == i + 1) {
        i = subtree_end_[i];
        continue;
      }
      stack[depth++] = {subtree_end_[i], alive};
      alive = descend;
      ++i;
    }
  }
  if (nodes_visited != nullptr) {
    *nodes_visited += touched;
  }
}

void FlatValidationTree::SumSubsetsBatchWordSliced(
    std::span<const LicenseSet> sets, std::span<int64_t> sums,
    uint64_t* nodes_visited) const {
  if (mask_words_ == 1) {
    SumSubsetsBatchWordSlicedImpl<true>(sets, sums, nodes_visited);
  } else {
    SumSubsetsBatchWordSlicedImpl<false>(sets, sums, nodes_visited);
  }
}

int64_t FlatValidationTree::CountOf(const LicenseSet& set) const {
  if (set.Empty()) {
    return 0;  // The (virtual) root holds no count.
  }
  size_t begin = 0;
  size_t end = index_.size();
  LicenseSet remaining = set;
  while (true) {
    const int idx = remaining.Lowest();
    remaining.RemoveLowest();
    size_t found = end;
    // Siblings of a level are adjacent subtrees, sorted by ascending index.
    for (size_t i = begin; i < end; i = subtree_end_[i]) {
      if (index_[i] >= idx) {
        if (index_[i] == idx) {
          found = i;
        }
        break;
      }
    }
    if (found == end) {
      return 0;
    }
    if (remaining.Empty()) {
      return count_[found];
    }
    begin = found + 1;
    end = subtree_end_[found];
  }
}

size_t FlatValidationTree::MemoryBytes() const {
  return index_.capacity() * sizeof(int32_t) +
         count_.capacity() * sizeof(int64_t) +
         subtree_end_.capacity() * sizeof(uint32_t) +
         subtree_mask_words_.capacity() * sizeof(uint64_t) +
         subtree_sum_.capacity() * sizeof(int64_t);
}

void FlatValidationTree::ForEachSet(
    const std::function<void(const LicenseSet&, int64_t)>& fn) const {
  // (subtree end, path mask to restore on leaving that subtree).
  std::vector<std::pair<uint32_t, LicenseSet>> stack;
  LicenseSet path;
  for (size_t i = 0; i < index_.size(); ++i) {
    while (!stack.empty() && stack.back().first == i) {
      path = stack.back().second;
      stack.pop_back();
    }
    const LicenseSet node_mask = path | LicenseSet::Singleton(index_[i]);
    if (count_[i] != 0) {
      fn(node_mask, count_[i]);
    }
    if (subtree_end_[i] > i + 1) {
      stack.emplace_back(subtree_end_[i], path);
      path = node_mask;
    }
  }
}

}  // namespace geolic
