// SSE4.2 tier of the batched equation scan: 2 × int64 lanes per register
// pass (PCMPEQQ/BLENDV arrived with SSE4.x). The mid tier for hosts
// without AVX2; same bit-exactness contract as the other tiers. Only this
// translation unit in the validation library is compiled with -msse4.2.

#include "validation/flat_tree_batch.h"

#if defined(__SSE4_2__)

#include <nmmintrin.h>
#include <smmintrin.h>

#include <array>

#include "validation/flat_tree_batch_scan.h"

namespace geolic {
namespace internal {
namespace {

// kPairMask[n] is the 2 × 64-bit lane mask spelled by the 2-bit group
// pattern n — one aligned load replaces rebuilding the per-group on_path
// mask from lane-bit compares.
struct alignas(16) PairRow {
  uint64_t lane[2];
};
constexpr std::array<PairRow, 4> kPairMask = [] {
  std::array<PairRow, 4> rows{};
  for (int n = 0; n < 4; ++n) {
    for (int k = 0; k < 2; ++k) {
      rows[static_cast<size_t>(n)].lane[static_cast<size_t>(k)] =
          (n >> k) & 1 ? ~uint64_t{0} : 0;
    }
  }
  return rows;
}();

struct Sse42LaneOps {
  // Two lanes per register pay off later than AVX2's four; multi-word
  // compiles still amortize the per-word loads sooner than single-word.
  static constexpr int LaneThreshold(int kwords) {
    return kwords == 1 ? 16 : 8;
  }

  template <int kWords>
  static uint64_t LaneStep(const uint64_t* mask, uint32_t words,
                           const uint64_t* qcol, uint64_t on_path,
                           int64_t node_sum, int64_t node_count,
                           int64_t* sums) {
    const uint32_t nw = kWords == 0 ? words : kWords;
    const __m128i v_zero = _mm_setzero_si128();
    const __m128i v_sum = _mm_set1_epi64x(node_sum);
    const __m128i v_count = _mm_set1_epi64x(node_count);
    // The node's mask words broadcast once, outside the group loop.
    __m128i v_mask[kWords == 0 ? kMaxLicenseWords
                               : static_cast<size_t>(kWords)];
    for (uint32_t w = 0; w < nw; ++w) {
      v_mask[w] = _mm_set1_epi64x(static_cast<int64_t>(mask[w]));
    }
    uint64_t covered = 0;
    // Fold each 2-bit group onto its low bit, giving one marker bit (at
    // position 2k) per lane pair with any on_path lane; the loop then
    // bit-scans straight to active pairs — no per-empty-pair branch to
    // mispredict at mid densities.
    uint64_t active = on_path | (on_path >> 1);
    active &= 0x5555555555555555u;
    // One register pass per active 2-lane group: mask words fold into a
    // single stray accumulator and the covered test and the accumulate
    // share its compare mask.
    for (; active != 0; active &= active - 1) {
      const size_t g = static_cast<size_t>(std::countr_zero(active));
      const unsigned pair = (on_path >> g) & 0x3;
      __m128i stray = v_zero;
      for (uint32_t w = 0; w < nw; ++w) {
        const __m128i v_q = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(qcol + w * 64 + g));
        stray = _mm_or_si128(stray, _mm_andnot_si128(v_q, v_mask[w]));
      }
      const __m128i cov_m = _mm_cmpeq_epi64(stray, v_zero);
      const __m128i path_m = _mm_load_si128(
          reinterpret_cast<const __m128i*>(kPairMask[pair].lane));
      __m128i value = _mm_blendv_epi8(v_count, v_sum, cov_m);
      value = _mm_and_si128(value, path_m);
      __m128i* slot = reinterpret_cast<__m128i*>(sums + g);
      _mm_storeu_si128(slot, _mm_add_epi64(_mm_loadu_si128(slot), value));
      covered |= static_cast<uint64_t>(static_cast<unsigned>(
                     _mm_movemask_pd(_mm_castsi128_pd(cov_m))))
                 << g;
    }
    return on_path & ~covered;
  }
};

}  // namespace

uint64_t SumSubsetsBatchSse42Tier(const FlatTreeBatchView& view,
                                  bool single_word,
                                  std::span<const LicenseSet> sets,
                                  std::span<int64_t> sums) {
  return BatchScanTier<Sse42LaneOps>(view, single_word, sets, sums);
}

}  // namespace internal
}  // namespace geolic

#else  // !defined(__SSE4_2__)

namespace geolic {
namespace internal {
uint64_t SumSubsetsBatchSse42Tier(const FlatTreeBatchView& view,
                                  bool single_word,
                                  std::span<const LicenseSet> sets,
                                  std::span<int64_t> sums) {
  return SumSubsetsBatchScalarTier(view, single_word, sets, sums);
}
}  // namespace internal
}  // namespace geolic

#endif  // defined(__SSE4_2__)
