#ifndef GEOLIC_VALIDATION_FLAT_TREE_H_
#define GEOLIC_VALIDATION_FLAT_TREE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "validation/validation_tree.h"
#include "util/license_set.h"

namespace geolic {

namespace internal {
struct FlatTreeBatchView;
}  // namespace internal

// Read-only arena compile of a ValidationTree, built once per offline run
// and queried for every validation equation. The pointer tree stays the
// mutable build/admission structure; this is the equation hot path.
//
// Layout: nodes in preorder (root excluded) as structure-of-arrays columns,
// so one SumSubsets query is a forward scan over contiguous memory instead
// of a pointer chase:
//
//   slot        0    1    2  ...                 (preorder position)
//   index_      license index of the node
//   count_      C of the exact set spelled by the node's path
//   subtree_end_  one past the node's last descendant — [i, subtree_end_[i])
//                 is the node's whole subtree, so a subtree skip is `i =
//                 subtree_end_[i]`
//   subtree_mask_words_  node's index ∪ every license index below it,
//                 word-sliced: slot i's mask is the mask_words_ u64 words at
//                 [i * mask_words_, (i+1) * mask_words_), zero-padded to the
//                 compile-wide width. mask_words_ == 1 whenever every present
//                 license index is < 64, and the scan then takes a
//                 single-word fast path identical to the historical u64
//                 column.
//   subtree_sum_  node's count + every count below it
//
// The two precomputed columns turn the ref [10] descent into a pruned scan:
//
//   * subtree_mask[i] & set == 0  ⇒ no node below i can lie inside `set`
//     (the per-query form of Theorem 1: no overlap ⇒ contributes nothing)
//     — skip the subtree after reading one cache line.
//   * subtree_mask[i] ⊆ set  ⇒ every path through i stays inside `set` —
//     add subtree_sum_[i] and skip, one add for a whole covered region.
//
// `nodes_visited` semantics differ from the pointer tree by design: the
// flat tree reports *nodes touched after pruning* — every preorder slot
// whose columns were read, counting a skipped or summarized subtree as the
// single slot that decided it. Sums are always exactly equal to the
// pointer tree's; visit counts are not comparable across layouts (the
// pointer walk counts only nodes it descends into, while the flat scan
// also counts the slot that takes each skip decision), so the two columns
// in the ablation measure different work units.
class FlatValidationTree {
 public:
  // An empty compile (no nodes); SumSubsets returns 0 for every set.
  FlatValidationTree() = default;

  // Compiles a snapshot of `tree`. O(nodes); the result is immutable and
  // safe to query from any number of threads concurrently.
  static FlatValidationTree Compile(const ValidationTree& tree);

  // LHS of the validation equation for `set` (the paper's C⟨S⟩), exactly
  // equal to ValidationTree::SumSubsets on the compiled-from tree. If
  // `nodes_visited` is non-null, the number of nodes touched after pruning
  // is added to it.
  int64_t SumSubsets(const LicenseSet& set,
                     uint64_t* nodes_visited = nullptr) const;

  // Ablation baseline: the same contiguous scan with only the structural
  // ref [10] rule (skip a subtree when the node's index ∉ set), no
  // mask/sum accelerators. Isolates layout gains from pruning gains.
  int64_t SumSubsetsNoAccel(const LicenseSet& set,
                            uint64_t* nodes_visited = nullptr) const;

  // Evaluates one equation per entry of `sets` (sums[i] = SumSubsets(
  // sets[i])) with up to 64 equations sharing a single pruned pass over
  // the arena: each node is loaded once per 64-query chunk and pruning
  // decisions are taken per query via a 64-bit lane mask — the shape of
  // the exhaustive and grouped validator loops. When enough lanes are on
  // a node's path, the fused covered-test-and-accumulate lane step runs
  // in vector registers. The whole scan is compiled once per ISA tier
  // (validation/flat_tree_batch_*.cc) and dispatched per call via
  // util/cpu_dispatch.h, so the hot loop never pays a per-node indirect
  // call; results and nodes-visited accounting stay bit-identical to
  // per-query SumSubsets calls regardless of tier or how callers chunk.
  // `sums` must have at least sets.size() entries.
  void SumSubsetsBatch(std::span<const LicenseSet> sets,
                       std::span<int64_t> sums,
                       uint64_t* nodes_visited = nullptr) const;

  // The same batch scan pinned to the scalar lane tier (the per-lane
  // bitmask loop always runs — what GEOLIC_FORCE_SCALAR dispatches to).
  // Shares this revision's scan-layer improvements (column-major query
  // words, trimmed per-chunk zeroing); only the lane step differs.
  void SumSubsetsBatchScalar(std::span<const LicenseSet> sets,
                             std::span<int64_t> sums,
                             uint64_t* nodes_visited = nullptr) const;

  // Ablation baseline, preserved verbatim: the pre-SIMD word-sliced batch
  // scan (row-major query words, per-lane bit-scan loop, untrimmed
  // per-chunk zeroing) exactly as it shipped before the vectorized scan
  // replaced it. Kept — like SumSubsetsNoAccel — so the ablation's A/B
  // measures this revision's full delta rather than a baseline that
  // silently inherited its scan-layer improvements. Bit-identical sums
  // and visit accounting to SumSubsetsBatch.
  void SumSubsetsBatchWordSliced(std::span<const LicenseSet> sets,
                                 std::span<int64_t> sums,
                                 uint64_t* nodes_visited = nullptr) const;

  // Equivalence-gating references: the generic word-sliced implementations,
  // forced even when the compile is single-word (and, for the batch, pinned
  // to the scalar kernel tier). Bit-identical to SumSubsets/SumSubsetsBatch
  // by construction; tests run both paths over the same equations to gate
  // the inline fast path against the wide one.
  int64_t SumSubsetsWideReference(const LicenseSet& set,
                                  uint64_t* nodes_visited = nullptr) const;
  void SumSubsetsBatchWideReference(std::span<const LicenseSet> sets,
                                    std::span<int64_t> sums,
                                    uint64_t* nodes_visited = nullptr) const;

  // Exact count stored for `set` (0 if the set never appeared in the log).
  int64_t CountOf(const LicenseSet& set) const;

  // Number of nodes (the pointer tree's NodeCount, root excluded).
  size_t NodeCount() const { return index_.size(); }

  // Sum of all node counts (equals the log's total count).
  int64_t TotalCount() const { return total_count_; }

  // Mask of every license index present in the tree.
  LicenseSet PresentLicenses() const { return present_; }

  // Words per sliced subtree mask (1 unless some present index is ≥ 64).
  int MaskWords() const { return static_cast<int>(mask_words_); }

  // Exact heap footprint of the five columns — the flat-layout entry of
  // the figure-10 storage comparison.
  size_t MemoryBytes() const;

  // Invokes `fn(set, count)` for every node with a non-zero count, in
  // preorder — same visit order and values as the pointer tree.
  void ForEachSet(
      const std::function<void(const LicenseSet&, int64_t)>& fn) const;

 private:
  template <bool kSingleWord>
  int64_t SumSubsetsImpl(const LicenseSet& set, uint64_t* nodes_visited) const;
  template <bool kSingleWord>
  void SumSubsetsBatchWordSlicedImpl(std::span<const LicenseSet> sets,
                                     std::span<int64_t> sums,
                                     uint64_t* nodes_visited) const;

  // Column-pointer view handed to the per-tier batch-scan entry points.
  internal::FlatTreeBatchView BatchView() const;

  std::vector<int32_t> index_;
  std::vector<int64_t> count_;
  std::vector<uint32_t> subtree_end_;
  std::vector<uint64_t> subtree_mask_words_;  // NodeCount() × mask_words_.
  std::vector<int64_t> subtree_sum_;
  uint32_t mask_words_ = 1;
  // 1 + the highest license index present — the prefix of the batch
  // scan's per-chunk membership table that actually needs zeroing.
  uint32_t member_span_ = 0;
  int64_t total_count_ = 0;
  LicenseSet present_;
};

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_FLAT_TREE_H_
