#include "validation/zeta_validator.h"

#include "validation/validate.h"

namespace geolic {

// Thin wrapper over the Validate facade; the dense subset-sum engine lives
// in validate.cc.
Result<ValidationReport> ValidateZeta(const ValidationTree& tree,
                                      const std::vector<int64_t>& aggregates,
                                      int max_dense_n) {
  ValidateOptions options;
  options.mode = ValidationMode::kZeta;
  options.max_dense_n = max_dense_n;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(tree, aggregates, options));
  return std::move(outcome.report);
}

}  // namespace geolic
