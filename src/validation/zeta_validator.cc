#include "validation/zeta_validator.h"

namespace geolic {

Result<ValidationReport> ValidateZeta(const ValidationTree& tree,
                                      const std::vector<int64_t>& aggregates,
                                      int max_dense_n) {
  const int n = static_cast<int>(aggregates.size());
  if (n > kMaxLicenses) {
    return Status::CapacityExceeded("at most 64 redistribution licenses");
  }
  if (n > max_dense_n) {
    return Status::CapacityExceeded(
        "dense zeta validation capped at N = " +
        std::to_string(max_dense_n) + ", got " + std::to_string(n));
  }
  ValidationReport report;
  if (n == 0) {
    return report;
  }
  if (!IsSubsetOf(tree.PresentLicenses(), FullMask(n))) {
    return Status::InvalidArgument(
        "tree references license indexes beyond the aggregate array");
  }

  const size_t table_size = size_t{1} << n;
  // lhs[S] starts as the exact count C[S]; after the zeta transform it is
  // C⟨S⟩ = Σ_{T ⊆ S} C[T].
  std::vector<int64_t> lhs(table_size, 0);
  tree.ForEachSet([&lhs](LicenseMask set, int64_t count) {
    lhs[static_cast<size_t>(set)] += count;
  });
  for (int bit = 0; bit < n; ++bit) {
    const size_t stride = size_t{1} << bit;
    for (size_t set = 0; set < table_size; ++set) {
      if (set & stride) {
        lhs[set] += lhs[set ^ stride];
      }
    }
  }

  // rhs[S] via the same recurrence on a rolling basis: A[S] =
  // A[S without lowest bit] + A[lowest bit].
  std::vector<int64_t> rhs(table_size, 0);
  for (size_t set = 1; set < table_size; ++set) {
    const LicenseMask mask = static_cast<LicenseMask>(set);
    const int lowest = LowestLicense(mask);
    rhs[set] = rhs[set & (set - 1)] + aggregates[static_cast<size_t>(lowest)];
  }

  for (size_t set = 1; set < table_size; ++set) {
    ++report.equations_evaluated;
    if (lhs[set] > rhs[set]) {
      report.violations.push_back(EquationResult{
          static_cast<LicenseMask>(set), lhs[set], rhs[set]});
    }
  }
  return report;
}

}  // namespace geolic
