#include "validation/log_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "persist/checkpoint.h"
#include "util/check.h"
#include "util/str_util.h"

namespace geolic {
namespace {

constexpr char kBinaryMagic[8] = {'G', 'L', 'O', 'G', 'B', 'I', 'N', '1'};

}  // namespace

Status LogStore::Append(LogRecord record) {
  if (record.set.Empty()) {
    return Status::InvalidArgument(
        "log record set must be non-empty (license " +
        record.issued_license_id + ")");
  }
  if (record.count <= 0) {
    return Status::InvalidArgument(
        "log record count must be positive, got " +
        std::to_string(record.count));
  }
  records_.push_back(std::move(record));
  return Status::Ok();
}

std::unordered_map<LicenseSet, int64_t> LogStore::MergedCounts() const {
  std::unordered_map<LicenseSet, int64_t> merged;
  for (const LogRecord& record : records_) {
    merged[record.set] += record.count;
  }
  return merged;
}

int64_t LogStore::TotalCount() const {
  int64_t total = 0;
  for (const LogRecord& record : records_) {
    total += record.count;
  }
  return total;
}

LogStore LogStore::Compacted() const {
  const std::unordered_map<LicenseSet, int64_t> merged = MergedCounts();
  std::vector<LicenseSet> sets;
  sets.reserve(merged.size());
  for (const auto& [set, count] : merged) {
    sets.push_back(set);
  }
  std::sort(sets.begin(), sets.end());
  LogStore compacted;
  for (const LicenseSet& set : sets) {
    LogRecord record;
    record.set = set;
    record.count = merged.at(set);
    GEOLIC_CHECK(compacted.Append(std::move(record)).ok());
  }
  return compacted;
}

Status LogStore::SaveText(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "# geolic log: id mask count\n";
  for (const LogRecord& record : records_) {
    out << (record.issued_license_id.empty() ? "-"
                                             : record.issued_license_id)
        << ' ' << record.set.ToHex() << ' ' << record.count << '\n';
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Result<LogStore> LogStore::LoadText(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  LogStore store;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    std::istringstream fields{std::string(stripped)};
    std::string id;
    std::string mask_text;
    int64_t count = 0;
    if (!(fields >> id >> mask_text >> count)) {
      return Status::ParseError(path + ":" + std::to_string(line_number) +
                                ": malformed log line");
    }
    LicenseSet mask;
    if (StartsWith(mask_text, "0x") || StartsWith(mask_text, "0X")) {
      if (!LicenseSet::FromHex(mask_text, &mask)) {
        return Status::ParseError(path + ":" + std::to_string(line_number) +
                                  ": bad mask " + mask_text);
      }
    } else {
      GEOLIC_ASSIGN_OR_RETURN(const int64_t decimal, ParseInt64(mask_text));
      mask = LicenseSet::FromWord(static_cast<uint64_t>(decimal));
    }
    LogRecord record;
    record.issued_license_id = id == "-" ? "" : id;
    record.set = mask;
    record.count = count;
    GEOLIC_RETURN_IF_ERROR(store.Append(std::move(record)));
  }
  return store;
}

void LogStore::SerializeRecords(std::ostream* out) const {
  const uint64_t count = records_.size();
  out->write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const LogRecord& record : records_) {
    // v3 set encoding, byte-identical to v2 for inline (single-word) sets:
    // sets are non-empty in every stored record, so a u64 value of 0 never
    // occurs in the v2 slot and doubles as the wide-set escape, followed by
    // an explicit word count and the word span (see persist/journal.cc).
    if (record.set.WordCount() == 1) {
      const uint64_t word = record.set.AsWord();
      out->write(reinterpret_cast<const char*>(&word), sizeof(word));
    } else {
      const uint64_t escape = 0;
      out->write(reinterpret_cast<const char*>(&escape), sizeof(escape));
      const uint32_t word_count =
          static_cast<uint32_t>(record.set.WordCount());
      out->write(reinterpret_cast<const char*>(&word_count),
                 sizeof(word_count));
      for (int w = 0; w < record.set.WordCount(); ++w) {
        const uint64_t word = record.set.Word(w);
        out->write(reinterpret_cast<const char*>(&word), sizeof(word));
      }
    }
    out->write(reinterpret_cast<const char*>(&record.count),
               sizeof(record.count));
    const uint32_t id_size =
        static_cast<uint32_t>(record.issued_license_id.size());
    out->write(reinterpret_cast<const char*>(&id_size), sizeof(id_size));
    out->write(record.issued_license_id.data(), id_size);
  }
}

namespace {

// Smallest possible serialized record: set (u64) + count (i64) + id_len
// (u32) with an empty id — the divisor for the file-size-derived cap on a
// legacy file's declared record total.
constexpr uint64_t kMinRecordBytes =
    sizeof(uint64_t) + sizeof(int64_t) + sizeof(uint32_t);

// No real log approaches this per-record count; a value beyond it is
// corruption (e.g. a flipped high byte), not data.
constexpr int64_t kMaxPlausibleRecordCount = int64_t{1} << 40;

Result<LogStore> DeserializeRecordsCapped(std::istream* in,
                                          uint64_t max_records,
                                          int64_t max_record_count) {
  uint64_t count = 0;
  in->read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!*in) {
    return Status::ParseError("truncated log header");
  }
  if (count > max_records) {
    return Status::ParseError(
        "implausible record total " + std::to_string(count) +
        ": the file can hold at most " + std::to_string(max_records) +
        " records");
  }
  LogStore store;
  for (uint64_t i = 0; i < count; ++i) {
    LogRecord record;
    uint32_t id_size = 0;
    uint64_t first_word = 0;
    in->read(reinterpret_cast<char*>(&first_word), sizeof(first_word));
    if (!*in) {
      return Status::ParseError("truncated log record");
    }
    if (first_word != 0) {
      record.set = LicenseSet::FromWord(first_word);
    } else {
      // Wide-set escape (see SerializeRecords). A declared width of 1 or a
      // zero top word would make the encoding non-canonical — corruption.
      uint32_t word_count = 0;
      in->read(reinterpret_cast<char*>(&word_count), sizeof(word_count));
      if (!*in || word_count < 2 ||
          word_count > static_cast<uint32_t>(kMaxLicenseWords)) {
        return Status::ParseError("implausible set word count in log record");
      }
      uint64_t words[kMaxLicenseWords];
      for (uint32_t w = 0; w < word_count; ++w) {
        in->read(reinterpret_cast<char*>(&words[w]), sizeof(words[w]));
      }
      if (!*in) {
        return Status::ParseError("truncated log record");
      }
      if (words[word_count - 1] == 0) {
        return Status::ParseError("non-canonical wide set in log record");
      }
      record.set = LicenseSet::FromWords({words, word_count});
    }
    in->read(reinterpret_cast<char*>(&record.count), sizeof(record.count));
    in->read(reinterpret_cast<char*>(&id_size), sizeof(id_size));
    if (!*in) {
      return Status::ParseError("truncated log record");
    }
    if (id_size > 4096) {
      return Status::ParseError("implausible id length in log record");
    }
    if (record.count > max_record_count) {
      return Status::ParseError(
          "implausible count " + std::to_string(record.count) +
          " in log record " + std::to_string(i));
    }
    record.issued_license_id.resize(id_size);
    in->read(record.issued_license_id.data(), id_size);
    if (!*in) {
      return Status::ParseError("truncated log record id");
    }
    GEOLIC_RETURN_IF_ERROR(store.Append(std::move(record)));
  }
  return store;
}

}  // namespace

Result<LogStore> LogStore::DeserializeRecords(std::istream* in) {
  return DeserializeRecordsCapped(in, std::numeric_limits<uint64_t>::max(),
                                  std::numeric_limits<int64_t>::max());
}

Status LogStore::SaveBinary(const std::string& path) const {
  std::ostringstream body;
  SerializeRecords(&body);
  return WriteCheckpointFile(CheckpointKind::kLogStore, body.str(), path);
}

Status LogStore::SaveBinaryV1(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  SerializeRecords(&out);
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Result<LogStore> LogStore::LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in) {
    return Status::ParseError("not a geolic binary log: " + path);
  }
  if (IsCheckpointMagic(magic)) {
    GEOLIC_ASSIGN_OR_RETURN(
        const std::string payload,
        ReadCheckpointPayloadAfterMagic(CheckpointKind::kLogStore, &in));
    std::istringstream body(payload);
    GEOLIC_ASSIGN_OR_RETURN(LogStore store, DeserializeRecords(&body));
    if (body.peek() != std::istringstream::traits_type::eof()) {
      return Status::ParseError("trailing bytes after log payload: " + path);
    }
    return store;
  }
  if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a geolic binary log: " + path);
  }
  // Legacy v1 carries no checksums, so corruption is detectable only by
  // plausibility: cap the declared record total by what the file could
  // physically hold and every per-record count by a sanity bound, so a
  // flipped high byte fails the load instead of silently inflating C⟨S⟩.
  // Low-bit flips remain invisible in v1 — that is why v2 wraps the same
  // record body in the CRC-checked checkpoint container.
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  in.seekg(static_cast<std::streamoff>(sizeof(kBinaryMagic)), std::ios::beg);
  if (end < 0 || !in) {
    return Status::IoError("cannot size binary log: " + path);
  }
  const uint64_t body_bytes =
      static_cast<uint64_t>(end) - sizeof(kBinaryMagic);
  const uint64_t max_records =
      body_bytes < sizeof(uint64_t)
          ? 0
          : (body_bytes - sizeof(uint64_t)) / kMinRecordBytes;
  return DeserializeRecordsCapped(&in, max_records, kMaxPlausibleRecordCount);
}

}  // namespace geolic
