#include "validation/log_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "persist/checkpoint.h"
#include "util/check.h"
#include "util/str_util.h"

namespace geolic {
namespace {

constexpr char kBinaryMagic[8] = {'G', 'L', 'O', 'G', 'B', 'I', 'N', '1'};

}  // namespace

Status LogStore::Append(LogRecord record) {
  if (record.set == 0) {
    return Status::InvalidArgument(
        "log record set must be non-empty (license " +
        record.issued_license_id + ")");
  }
  if (record.count <= 0) {
    return Status::InvalidArgument(
        "log record count must be positive, got " +
        std::to_string(record.count));
  }
  records_.push_back(std::move(record));
  return Status::Ok();
}

std::unordered_map<LicenseMask, int64_t> LogStore::MergedCounts() const {
  std::unordered_map<LicenseMask, int64_t> merged;
  for (const LogRecord& record : records_) {
    merged[record.set] += record.count;
  }
  return merged;
}

int64_t LogStore::TotalCount() const {
  int64_t total = 0;
  for (const LogRecord& record : records_) {
    total += record.count;
  }
  return total;
}

LogStore LogStore::Compacted() const {
  const std::unordered_map<LicenseMask, int64_t> merged = MergedCounts();
  std::vector<LicenseMask> sets;
  sets.reserve(merged.size());
  for (const auto& [set, count] : merged) {
    sets.push_back(set);
  }
  std::sort(sets.begin(), sets.end());
  LogStore compacted;
  for (const LicenseMask set : sets) {
    LogRecord record;
    record.set = set;
    record.count = merged.at(set);
    GEOLIC_CHECK(compacted.Append(std::move(record)).ok());
  }
  return compacted;
}

Status LogStore::SaveText(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "# geolic log: id mask count\n";
  for (const LogRecord& record : records_) {
    char mask_hex[24];
    std::snprintf(mask_hex, sizeof(mask_hex), "0x%" PRIx64 "", record.set);
    out << (record.issued_license_id.empty() ? "-"
                                             : record.issued_license_id)
        << ' ' << mask_hex << ' ' << record.count << '\n';
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Result<LogStore> LogStore::LoadText(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  LogStore store;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    std::istringstream fields{std::string(stripped)};
    std::string id;
    std::string mask_text;
    int64_t count = 0;
    if (!(fields >> id >> mask_text >> count)) {
      return Status::ParseError(path + ":" + std::to_string(line_number) +
                                ": malformed log line");
    }
    LicenseMask mask = 0;
    if (StartsWith(mask_text, "0x") || StartsWith(mask_text, "0X")) {
      char* end = nullptr;
      mask = std::strtoull(mask_text.c_str() + 2, &end, 16);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError(path + ":" + std::to_string(line_number) +
                                  ": bad mask " + mask_text);
      }
    } else {
      GEOLIC_ASSIGN_OR_RETURN(const int64_t decimal, ParseInt64(mask_text));
      mask = static_cast<LicenseMask>(decimal);
    }
    LogRecord record;
    record.issued_license_id = id == "-" ? "" : id;
    record.set = mask;
    record.count = count;
    GEOLIC_RETURN_IF_ERROR(store.Append(std::move(record)));
  }
  return store;
}

void LogStore::SerializeRecords(std::ostream* out) const {
  const uint64_t count = records_.size();
  out->write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const LogRecord& record : records_) {
    out->write(reinterpret_cast<const char*>(&record.set),
               sizeof(record.set));
    out->write(reinterpret_cast<const char*>(&record.count),
               sizeof(record.count));
    const uint32_t id_size =
        static_cast<uint32_t>(record.issued_license_id.size());
    out->write(reinterpret_cast<const char*>(&id_size), sizeof(id_size));
    out->write(record.issued_license_id.data(), id_size);
  }
}

namespace {

// Smallest possible serialized record: set (u64) + count (i64) + id_len
// (u32) with an empty id — the divisor for the file-size-derived cap on a
// legacy file's declared record total.
constexpr uint64_t kMinRecordBytes =
    sizeof(uint64_t) + sizeof(int64_t) + sizeof(uint32_t);

// No real log approaches this per-record count; a value beyond it is
// corruption (e.g. a flipped high byte), not data.
constexpr int64_t kMaxPlausibleRecordCount = int64_t{1} << 40;

Result<LogStore> DeserializeRecordsCapped(std::istream* in,
                                          uint64_t max_records,
                                          int64_t max_record_count) {
  uint64_t count = 0;
  in->read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!*in) {
    return Status::ParseError("truncated log header");
  }
  if (count > max_records) {
    return Status::ParseError(
        "implausible record total " + std::to_string(count) +
        ": the file can hold at most " + std::to_string(max_records) +
        " records");
  }
  LogStore store;
  for (uint64_t i = 0; i < count; ++i) {
    LogRecord record;
    uint32_t id_size = 0;
    in->read(reinterpret_cast<char*>(&record.set), sizeof(record.set));
    in->read(reinterpret_cast<char*>(&record.count), sizeof(record.count));
    in->read(reinterpret_cast<char*>(&id_size), sizeof(id_size));
    if (!*in) {
      return Status::ParseError("truncated log record");
    }
    if (id_size > 4096) {
      return Status::ParseError("implausible id length in log record");
    }
    if (record.count > max_record_count) {
      return Status::ParseError(
          "implausible count " + std::to_string(record.count) +
          " in log record " + std::to_string(i));
    }
    record.issued_license_id.resize(id_size);
    in->read(record.issued_license_id.data(), id_size);
    if (!*in) {
      return Status::ParseError("truncated log record id");
    }
    GEOLIC_RETURN_IF_ERROR(store.Append(std::move(record)));
  }
  return store;
}

}  // namespace

Result<LogStore> LogStore::DeserializeRecords(std::istream* in) {
  return DeserializeRecordsCapped(in, std::numeric_limits<uint64_t>::max(),
                                  std::numeric_limits<int64_t>::max());
}

Status LogStore::SaveBinary(const std::string& path) const {
  std::ostringstream body;
  SerializeRecords(&body);
  return WriteCheckpointFile(CheckpointKind::kLogStore, body.str(), path);
}

Status LogStore::SaveBinaryV1(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  SerializeRecords(&out);
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Result<LogStore> LogStore::LoadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  char magic[sizeof(kBinaryMagic)];
  in.read(magic, sizeof(magic));
  if (!in) {
    return Status::ParseError("not a geolic binary log: " + path);
  }
  if (IsCheckpointMagic(magic)) {
    GEOLIC_ASSIGN_OR_RETURN(
        const std::string payload,
        ReadCheckpointPayloadAfterMagic(CheckpointKind::kLogStore, &in));
    std::istringstream body(payload);
    GEOLIC_ASSIGN_OR_RETURN(LogStore store, DeserializeRecords(&body));
    if (body.peek() != std::istringstream::traits_type::eof()) {
      return Status::ParseError("trailing bytes after log payload: " + path);
    }
    return store;
  }
  if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a geolic binary log: " + path);
  }
  // Legacy v1 carries no checksums, so corruption is detectable only by
  // plausibility: cap the declared record total by what the file could
  // physically hold and every per-record count by a sanity bound, so a
  // flipped high byte fails the load instead of silently inflating C⟨S⟩.
  // Low-bit flips remain invisible in v1 — that is why v2 wraps the same
  // record body in the CRC-checked checkpoint container.
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  in.seekg(static_cast<std::streamoff>(sizeof(kBinaryMagic)), std::ios::beg);
  if (end < 0 || !in) {
    return Status::IoError("cannot size binary log: " + path);
  }
  const uint64_t body_bytes =
      static_cast<uint64_t>(end) - sizeof(kBinaryMagic);
  const uint64_t max_records =
      body_bytes < sizeof(uint64_t)
          ? 0
          : (body_bytes - sizeof(uint64_t)) / kMinRecordBytes;
  return DeserializeRecordsCapped(&in, max_records, kMaxPlausibleRecordCount);
}

}  // namespace geolic
