#ifndef GEOLIC_VALIDATION_FLAT_TREE_BATCH_H_
#define GEOLIC_VALIDATION_FLAT_TREE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/license_set.h"

namespace geolic {
namespace internal {

// Borrowed view of FlatValidationTree's compiled columns, handed to the
// per-ISA batch-scan translation units (flat_tree_batch_*.cc). The batch
// scan is compiled whole per tier — dispatch happens once per SumSubsets-
// Batch call, not once per node, so the tier's lane step inlines into the
// node loop instead of sitting behind a per-node indirect call (which
// costs more than the vector step saves). Pointers borrow from the tree;
// the view must not outlive it.
struct FlatTreeBatchView {
  const int32_t* index;
  const int64_t* count;
  const uint32_t* subtree_end;
  const uint64_t* subtree_mask_words;  // size × mask_words, row-major.
  const int64_t* subtree_sum;
  size_t size;           // Node count (preorder slots).
  uint32_t mask_words;   // Words per sliced subtree mask.
  uint32_t member_span;  // 1 + highest present license index.
};

// One batched-scan entry point per ISA tier. Each writes sums[i] for
// i < sets.size() and returns the number of (node, lane) visits after
// pruning — the batch's nodes_visited increment. `single_word` selects
// the mask_words == 1 fast path; passing false forces the generic
// word-sliced scan (the wide-reference equivalence gate uses this).
// Results are bit-identical across tiers by construction. The SSE4.2 and
// AVX2 entries must only be called on hosts where util/cpu_dispatch.h
// reports the tier available; on toolchains built without the ISA they
// degrade to the scalar tier.
uint64_t SumSubsetsBatchScalarTier(const FlatTreeBatchView& view,
                                   bool single_word,
                                   std::span<const LicenseSet> sets,
                                   std::span<int64_t> sums);
uint64_t SumSubsetsBatchSse42Tier(const FlatTreeBatchView& view,
                                  bool single_word,
                                  std::span<const LicenseSet> sets,
                                  std::span<int64_t> sums);
uint64_t SumSubsetsBatchAvx2Tier(const FlatTreeBatchView& view,
                                 bool single_word,
                                 std::span<const LicenseSet> sets,
                                 std::span<int64_t> sums);

// Equivalence-gating reference: the scalar tier's scan pinned to the
// fully generic runtime-width path, bypassing the 1- and 2-word
// compile-time specializations the entries above pick automatically.
uint64_t SumSubsetsBatchGenericReference(const FlatTreeBatchView& view,
                                         std::span<const LicenseSet> sets,
                                         std::span<int64_t> sums);

}  // namespace internal
}  // namespace geolic

#endif  // GEOLIC_VALIDATION_FLAT_TREE_BATCH_H_
