#ifndef GEOLIC_VALIDATION_VALIDATE_H_
#define GEOLIC_VALIDATION_VALIDATE_H_

#include <cstdint>
#include <vector>

#include "licensing/license_catalog.h"
#include "obs/trace.h"
#include "validation/log_store.h"
#include "validation/validation_report.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// Unified entry point for every offline aggregate-validation engine. Every
// engine compiles the (static) pointer tree into a FlatValidationTree
// (validation/flat_tree.h) once per run — per group in grouped modes — and
// evaluates all equations against the flat, pruning-aware form. The

// historical functions — ValidateExhaustive, ValidateExhaustiveLimited,
// ValidateExhaustiveFrequencyOrdered, ValidateZeta, ValidateGrouped,
// ValidateGroupedFromLog, ValidateExhaustiveParallel and
// ValidateGroupedParallel — remain as thin wrappers that delegate here and
// should be considered deprecated in new code; prefer Validate + options.
//
// The license-set overloads (grouped modes) are implemented in the core
// library because they dispatch into grouping/tree-division; linking the
// aggregate `geolic` target (or geolic_core) provides them. The tree/log
// overloads live in geolic_validation.

// Which equation-evaluation engine to run.
enum class ValidationMode {
  // Pick for the input: grouped when a LicenseCatalog is available, otherwise
  // zeta for N ≤ max_dense_n and exhaustive beyond it.
  kAuto,
  // Algorithm 2: all 2^N − 1 equations by pruned tree traversal.
  kExhaustive,
  // Dense subset-sum DP over all 2^N cells (O(2^N·N); memory-capped by
  // max_dense_n). Identical report to kExhaustive.
  kZeta,
  // The paper's pipeline: grouping + tree division + Algorithm 2 per group.
  // Requires a LicenseCatalog overload.
  kGrouped,
  // Grouped with the dense engine per group (groups above max_dense_n fall
  // back to traversal). Requires a LicenseCatalog overload.
  kGroupedZeta,
};

// How to label license indexes when building a tree from a log.
enum class TreeOrder {
  kIndex,                // As logged (ascending original index).
  kDescendingFrequency,  // ref [8] relabeling: hot licenses near the root.
};

struct ValidateOptions {
  ValidationMode mode = ValidationMode::kAuto;
  // Only meaningful for log-based overloads (the tree is built here).
  TreeOrder order = TreeOrder::kIndex;
  // 1 = serial; 0 = one shard per hardware thread; > 1 = that many workers.
  // Parallelism shards the equation range (ungrouped modes) or validates
  // groups concurrently (grouped modes); reports are byte-identical to the
  // serial run.
  int num_threads = 1;
  // Stop after this many equations (exhaustive engine only; forces the
  // serial path). The report then covers only the evaluated prefix.
  uint64_t max_equations = UINT64_MAX;
  // Dense-table cap for the zeta engine (2^n × 16 bytes of memory).
  int max_dense_n = 26;
  // Optional span sink (obs/trace.h): tree build/compile records a
  // kTreeDivision span (the paper's D_T), the equation engine a
  // kOfflineValidation span (V_T). Must outlive the call. Null = off.
  Tracer* tracer = nullptr;
};

// Superset of ValidationReport and GroupedValidationResult: ungrouped runs
// leave the group fields at their defaults (group_count == 0).
struct ValidationOutcome {
  ValidationReport report;
  int group_count = 0;  // 0 ⇔ an ungrouped engine ran.
  std::vector<int> group_sizes;
  double division_micros = 0.0;    // D_T: grouping + division + reindexing.
  double validation_micros = 0.0;  // V_T: equation evaluation.
};

// Validates a pre-built tree against the aggregate array (N =
// aggregates.size()). Grouped modes are rejected — grouping needs the
// licenses' geometry; use a LicenseCatalog overload.
Result<ValidationOutcome> Validate(const ValidationTree& tree,
                                   const std::vector<int64_t>& aggregates,
                                   const ValidateOptions& options = {});

// Builds the tree from `log` (honouring options.order) and validates it.
// Frequency ordering translates reported violation sets back to original
// indexes, so results are interchangeable with kIndex up to violation
// order.
Result<ValidationOutcome> Validate(const LogStore& log,
                                   const std::vector<int64_t>& aggregates,
                                   const ValidateOptions& options = {});

// Validates a tree against a license set; grouped modes derive the overlap
// grouping from the licenses' geometry. The tree is consumed (division
// splices its nodes). Implemented in geolic_core.
Result<ValidationOutcome> Validate(const LicenseCatalog& licenses,
                                   ValidationTree tree,
                                   const ValidateOptions& options = {});

// Builds the tree from `log`, then validates against the license set.
// Implemented in geolic_core.
Result<ValidationOutcome> Validate(const LicenseCatalog& licenses,
                                   const LogStore& log,
                                   const ValidateOptions& options = {});

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_VALIDATE_H_
