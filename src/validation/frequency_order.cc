#include "validation/frequency_order.h"

#include <algorithm>
#include <numeric>

#include "validation/validate.h"
#include "util/check.h"

namespace geolic {

LicensePermutation::LicensePermutation(int n)
    : to_new_(static_cast<size_t>(n)), to_old_(static_cast<size_t>(n)) {
  GEOLIC_CHECK(n >= 0 && n <= kMaxLicensesLarge);
  std::iota(to_new_.begin(), to_new_.end(), 0);
  std::iota(to_old_.begin(), to_old_.end(), 0);
}

Result<LicensePermutation> LicensePermutation::ByDescendingFrequency(
    const LogStore& log, int n) {
  if (n < 0 || n > kMaxLicensesLarge) {
    return Status::InvalidArgument(
        "license count out of range for a permutation");
  }
  std::vector<int64_t> frequency(static_cast<size_t>(n), 0);
  for (const LogRecord& record : log.records()) {
    if (!record.set.IsSubsetOf(LicenseSet::Full(n))) {
      return Status::InvalidArgument(
          "log record references license indexes beyond the aggregate "
          "array");
    }
    for (int index : (record.set).ToIndexes()) {
      ++frequency[static_cast<size_t>(index)];
    }
  }
  LicensePermutation permutation(n);
  std::sort(permutation.to_old_.begin(), permutation.to_old_.end(),
            [&frequency](int a, int b) {
              if (frequency[static_cast<size_t>(a)] !=
                  frequency[static_cast<size_t>(b)]) {
                return frequency[static_cast<size_t>(a)] >
                       frequency[static_cast<size_t>(b)];
              }
              return a < b;
            });
  for (int relabeled = 0; relabeled < n; ++relabeled) {
    permutation.to_new_[static_cast<size_t>(
        permutation.to_old_[static_cast<size_t>(relabeled)])] = relabeled;
  }
  return permutation;
}

LicenseSet LicensePermutation::MapMask(const LicenseSet& original) const {
  LicenseSet mapped;
  for (int index : original.Indexes()) {
    mapped |= LicenseSet::Singleton(ToNew(index));
  }
  return mapped;
}

LicenseSet LicensePermutation::UnmapMask(const LicenseSet& relabeled) const {
  LicenseSet mapped;
  for (int index : relabeled.Indexes()) {
    mapped |= LicenseSet::Singleton(ToOld(index));
  }
  return mapped;
}

std::vector<int64_t> LicensePermutation::MapValues(
    const std::vector<int64_t>& values) const {
  GEOLIC_CHECK(values.size() == to_old_.size());
  std::vector<int64_t> mapped(values.size());
  for (size_t relabeled = 0; relabeled < mapped.size(); ++relabeled) {
    mapped[relabeled] = values[static_cast<size_t>(
        to_old_[relabeled])];
  }
  return mapped;
}

Result<ValidationTree> BuildFrequencyOrderedTree(
    const LogStore& log, const LicensePermutation& permutation) {
  ValidationTree tree;
  for (const LogRecord& record : log.records()) {
    GEOLIC_RETURN_IF_ERROR(
        tree.Insert(permutation.MapMask(record.set), record.count));
  }
  return tree;
}

Result<ValidationReport> ValidateExhaustiveFrequencyOrdered(
    const LogStore& log, const std::vector<int64_t>& aggregates) {
  // Thin wrapper over the Validate facade; the relabel–validate–unmap
  // pipeline lives in validate.cc.
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  options.order = TreeOrder::kDescendingFrequency;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(log, aggregates, options));
  return std::move(outcome.report);
}

}  // namespace geolic
