#ifndef GEOLIC_VALIDATION_LOG_RECORD_H_
#define GEOLIC_VALIDATION_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "util/license_set.h"

namespace geolic {

// One row of the paper's log (Table 2): when a license is issued, the
// validation authority records the set S of redistribution licenses whose
// instance-based constraints the issued license satisfies (a LicenseSet)
// and the issued license's permission count. Aggregate validation runs
// offline over these records.
struct LogRecord {
  std::string issued_license_id;  // e.g. "LU1"; optional, may be empty.
  LicenseSet set;                 // S — must be non-empty for a valid issue.
  int64_t count = 0;              // Permission counts in the issued license.

  friend bool operator==(const LogRecord& a, const LogRecord& b) {
    return a.issued_license_id == b.issued_license_id && a.set == b.set &&
           a.count == b.count;
  }
};

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_LOG_RECORD_H_
