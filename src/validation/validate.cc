#include "validation/validate.h"

#include <algorithm>
#include <array>
#include <bit>
#include <string>
#include <utility>

#include "validation/flat_tree.h"
#include "validation/frequency_order.h"
#include "util/thread_pool.h"

namespace geolic {
namespace {

// Equations are evaluated in batches of this many masks per
// SumSubsetsBatch call, so the flat arena stays hot in cache across
// consecutive equations.
constexpr size_t kEquationBatch = 256;

// AV: sum of aggregate values of the licenses selected by `set`.
int64_t AggregateValue(const std::vector<int64_t>& aggregates,
                       const LicenseSet& set) {
  int64_t av = 0;
  for (int j : set.Indexes()) {
    av += aggregates[static_cast<size_t>(j)];
  }
  return av;
}

// Dense equation enumeration walks every non-empty subset of {0..n-1} as an
// incrementing integer, so the exhaustive and zeta engines are inherently
// single-word; 2^n is infeasible long before n reaches 64 anyway. Wider
// universes go through the grouped modes, which enumerate per group.
uint64_t FullWord(int n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

// ---- Serial exhaustive engine (Algorithm 2) --------------------------------

Result<ValidationReport> ExhaustiveSerial(
    const FlatValidationTree& tree, const std::vector<int64_t>& aggregates,
    uint64_t max_equations) {
  const int n = static_cast<int>(aggregates.size());
  ValidationReport report;
  if (n == 0) {
    return report;
  }
  // The batch enumerates every non-empty subset of {0..n-1}; the bits of a
  // mask select the licenses in that equation's set.
  const uint64_t full = FullWord(n);
  std::array<LicenseSet, kEquationBatch> sets;
  std::array<int64_t, kEquationBatch> sums;
  uint64_t next = 1;
  bool exhausted = false;
  while (!exhausted && report.equations_evaluated < max_equations) {
    size_t batch = 0;
    while (batch < kEquationBatch &&
           report.equations_evaluated + batch < max_equations) {
      sets[batch++] = LicenseSet::FromWord(next);
      if (next == full) {
        exhausted = true;
        break;
      }
      ++next;
    }
    // CV for the whole batch: pruned arena scans over contiguous nodes.
    tree.SumSubsetsBatch({sets.data(), batch}, {sums.data(), batch},
                         &report.nodes_visited);
    for (size_t k = 0; k < batch; ++k) {
      const int64_t av = AggregateValue(aggregates, sets[k]);
      ++report.equations_evaluated;
      if (sums[k] > av) {
        report.violations.push_back(EquationResult{sets[k], sums[k], av});
      }
    }
  }
  return report;
}

// ---- Parallel exhaustive engine (equation-range sharding) ------------------

// Evaluates equations for sets in [begin, end] (inclusive masks) against
// the read-only tree; appends violations to *out in ascending order.
void EvaluateRange(const FlatValidationTree& tree,
                   const std::vector<int64_t>& aggregates, uint64_t begin,
                   uint64_t end, std::vector<EquationResult>* out,
                   uint64_t* nodes_visited) {
  std::array<LicenseSet, kEquationBatch> sets;
  std::array<int64_t, kEquationBatch> sums;
  uint64_t next = begin;
  bool exhausted = false;
  while (!exhausted) {
    size_t batch = 0;
    while (batch < kEquationBatch) {
      sets[batch++] = LicenseSet::FromWord(next);
      if (next == end) {
        exhausted = true;
        break;
      }
      ++next;
    }
    tree.SumSubsetsBatch({sets.data(), batch}, {sums.data(), batch},
                         nodes_visited);
    for (size_t k = 0; k < batch; ++k) {
      const int64_t av = AggregateValue(aggregates, sets[k]);
      if (sums[k] > av) {
        out->push_back(EquationResult{sets[k], sums[k], av});
      }
    }
  }
}

Result<ValidationReport> ExhaustiveSharded(
    const FlatValidationTree& tree, const std::vector<int64_t>& aggregates,
    int num_threads) {
  const int n = static_cast<int>(aggregates.size());
  ValidationReport report;
  if (n == 0) {
    return report;
  }
  const uint64_t total = FullWord(n);  // Number of non-empty sets = 2^n − 1.
  const uint64_t shard_count =
      std::min<uint64_t>(static_cast<uint64_t>(num_threads) * 4, total);
  std::vector<std::vector<EquationResult>> shard_violations(shard_count);
  std::vector<uint64_t> shard_nodes(shard_count, 0);

  {
    ThreadPool pool(num_threads);
    for (uint64_t shard = 0; shard < shard_count; ++shard) {
      // Masks 1..full split into contiguous shards.
      const uint64_t begin = 1 + shard * total / shard_count;
      const uint64_t end = (shard + 1) * total / shard_count;
      pool.Schedule([&tree, &aggregates, begin, end,
                     violations = &shard_violations[shard],
                     nodes = &shard_nodes[shard]] {
        EvaluateRange(tree, aggregates, begin, end, violations, nodes);
      });
    }
    pool.Wait();
  }

  report.equations_evaluated = total;
  for (uint64_t shard = 0; shard < shard_count; ++shard) {
    report.nodes_visited += shard_nodes[shard];
    report.violations.insert(report.violations.end(),
                             shard_violations[shard].begin(),
                             shard_violations[shard].end());
  }
  return report;
}

// ---- Dense zeta (subset-sum DP) engine -------------------------------------

Result<ValidationReport> ZetaDense(const FlatValidationTree& tree,
                                   const std::vector<int64_t>& aggregates,
                                   int max_dense_n) {
  const int n = static_cast<int>(aggregates.size());
  if (n > max_dense_n) {
    return Status::CapacityExceeded(
        "dense zeta validation capped at N = " +
        std::to_string(max_dense_n) + ", got " + std::to_string(n));
  }
  ValidationReport report;
  if (n == 0) {
    return report;
  }

  const size_t table_size = size_t{1} << n;
  // lhs[S] starts as the exact count C[S]; after the zeta transform it is
  // C⟨S⟩ = Σ_{T ⊆ S} C[T].
  std::vector<int64_t> lhs(table_size, 0);
  tree.ForEachSet([&lhs](const LicenseSet& set, int64_t count) {
    lhs[static_cast<size_t>(set.AsWord())] += count;
  });
  for (int bit = 0; bit < n; ++bit) {
    const size_t stride = size_t{1} << bit;
    for (size_t set = 0; set < table_size; ++set) {
      if (set & stride) {
        lhs[set] += lhs[set ^ stride];
      }
    }
  }

  // rhs[S] via the same recurrence on a rolling basis: A[S] =
  // A[S without lowest bit] + A[lowest bit].
  std::vector<int64_t> rhs(table_size, 0);
  for (size_t set = 1; set < table_size; ++set) {
    const int lowest = std::countr_zero(set);
    rhs[set] = rhs[set & (set - 1)] + aggregates[static_cast<size_t>(lowest)];
  }

  for (size_t set = 1; set < table_size; ++set) {
    ++report.equations_evaluated;
    if (lhs[set] > rhs[set]) {
      report.violations.push_back(EquationResult{
          LicenseSet::FromWord(static_cast<uint64_t>(set)), lhs[set],
          rhs[set]});
    }
  }
  return report;
}

}  // namespace

Result<ValidationOutcome> Validate(const ValidationTree& tree,
                                   const std::vector<int64_t>& aggregates,
                                   const ValidateOptions& options) {
  const int n = static_cast<int>(aggregates.size());
  if (n > kMaxLicensesLarge) {
    return Status::CapacityExceeded(
        "at most " + std::to_string(kMaxLicensesLarge) +
        " redistribution licenses");
  }
  if (n == 0) {
    return ValidationOutcome{};
  }
  // One arena compile per run; every equation below queries the flat form.
  // The compile is the D_T half of this overload (the log overloads also
  // count tree building).
  const FlatValidationTree flat = [&] {
    ScopedTracerSpan span(options.tracer, TraceStage::kTreeDivision);
    return FlatValidationTree::Compile(tree);
  }();
  // Licenses the tree mentions must all have an aggregate entry.
  if (!flat.PresentLicenses().IsSubsetOf(LicenseSet::Full(n))) {
    return Status::InvalidArgument(
        "tree references license indexes beyond the aggregate array");
  }

  ValidationMode mode = options.mode;
  if (mode == ValidationMode::kAuto) {
    mode = n <= options.max_dense_n ? ValidationMode::kZeta
                                    : ValidationMode::kExhaustive;
  }
  if (n > kMaxLicensesInline &&
      (mode == ValidationMode::kExhaustive || mode == ValidationMode::kZeta)) {
    // Both ungrouped engines enumerate all 2^N − 1 equations as a dense
    // integer range — infeasible and unrepresentable past 64 licenses.
    // Wider universes must be grouped first (per-group enumeration).
    return Status::CapacityExceeded(
        "ungrouped validation enumerates 2^N equations and is capped at " +
        std::to_string(kMaxLicensesInline) +
        " licenses; use a grouped mode for wider universes");
  }

  ValidationOutcome outcome;
  // V_T: everything from here to return is equation evaluation.
  ScopedTracerSpan engine_span(options.tracer,
                               TraceStage::kOfflineValidation);
  switch (mode) {
    case ValidationMode::kExhaustive: {
      const int threads = options.num_threads == 0
                              ? ThreadPool::DefaultThreadCount()
                              : options.num_threads;
      // The equation limit is a serial-engine notion: parallel shards
      // cannot stop "after the first k equations" deterministically.
      if (threads <= 1 || options.max_equations != UINT64_MAX) {
        GEOLIC_ASSIGN_OR_RETURN(
            outcome.report,
            ExhaustiveSerial(flat, aggregates, options.max_equations));
      } else {
        GEOLIC_ASSIGN_OR_RETURN(outcome.report,
                                ExhaustiveSharded(flat, aggregates, threads));
      }
      return outcome;
    }
    case ValidationMode::kZeta: {
      GEOLIC_ASSIGN_OR_RETURN(
          outcome.report, ZetaDense(flat, aggregates, options.max_dense_n));
      return outcome;
    }
    case ValidationMode::kGrouped:
    case ValidationMode::kGroupedZeta:
      return Status::InvalidArgument(
          "grouped validation needs the licenses' geometry; call the "
          "LicenseCatalog overload of Validate");
    case ValidationMode::kAuto:
      break;  // Resolved above.
  }
  return Status::Internal("unreachable validation mode");
}

Result<ValidationOutcome> Validate(const LogStore& log,
                                   const std::vector<int64_t>& aggregates,
                                   const ValidateOptions& options) {
  const int n = static_cast<int>(aggregates.size());
  if (n > kMaxLicensesLarge) {
    return Status::CapacityExceeded(
        "at most " + std::to_string(kMaxLicensesLarge) +
        " redistribution licenses");
  }
  if (options.order == TreeOrder::kIndex) {
    auto built = [&] {
      ScopedTracerSpan span(options.tracer, TraceStage::kTreeDivision);
      return ValidationTree::BuildFromLog(log);
    }();
    GEOLIC_ASSIGN_OR_RETURN(const ValidationTree tree, std::move(built));
    return Validate(tree, aggregates, options);
  }

  // Frequency relabeling: build the tree under the permutation, validate in
  // relabeled space, then translate violation sets back. Permutation +
  // relabeled build are D_T work, covered by one kTreeDivision span.
  struct Prepared {
    LicensePermutation permutation;
    ValidationTree tree;
  };
  auto prepared = [&]() -> Result<Prepared> {
    ScopedTracerSpan span(options.tracer, TraceStage::kTreeDivision);
    GEOLIC_ASSIGN_OR_RETURN(
        LicensePermutation permutation,
        LicensePermutation::ByDescendingFrequency(log, n));
    GEOLIC_ASSIGN_OR_RETURN(ValidationTree tree,
                            BuildFrequencyOrderedTree(log, permutation));
    return Prepared{std::move(permutation), std::move(tree)};
  }();
  GEOLIC_RETURN_IF_ERROR(prepared.status());
  const LicensePermutation& permutation = prepared->permutation;
  GEOLIC_ASSIGN_OR_RETURN(
      ValidationOutcome outcome,
      Validate(prepared->tree, permutation.MapValues(aggregates), options));
  for (EquationResult& violation : outcome.report.violations) {
    violation.set = permutation.UnmapMask(violation.set);
  }
  return outcome;
}

}  // namespace geolic
