// Scalar tier of the batched equation scan: the portable reference the
// vector tiers are gated against, and the tier GEOLIC_FORCE_SCALAR pins.
// Compiled with the project's baseline flags (no ISA extensions).

#include "validation/flat_tree_batch.h"
#include "validation/flat_tree_batch_scan.h"

namespace geolic {
namespace internal {
namespace {

struct ScalarLaneOps {
  // Without vector registers the wide step is the same bit-scan loop the
  // scan already runs inline; 65 disables it (popcount tops out at 64).
  static constexpr int LaneThreshold(int /*kwords*/) { return 65; }

  template <int kWords>
  static uint64_t LaneStep(const uint64_t* mask, uint32_t words,
                           const uint64_t* qcol, uint64_t on_path,
                           int64_t node_sum, int64_t node_count,
                           int64_t* sums) {
    const uint32_t nw = kWords == 0 ? words : kWords;
    uint64_t descend = 0;
    for (uint64_t lanes = on_path; lanes != 0; lanes &= lanes - 1) {
      const size_t q = static_cast<size_t>(std::countr_zero(lanes));
      bool covered = true;
      for (uint32_t w = 0; w < nw; ++w) {
        covered = covered && (mask[w] & ~qcol[w * 64 + q]) == 0;
      }
      if (covered) {
        sums[q] += node_sum;
      } else {
        sums[q] += node_count;
        descend |= uint64_t{1} << q;
      }
    }
    return descend;
  }
};

}  // namespace

uint64_t SumSubsetsBatchScalarTier(const FlatTreeBatchView& view,
                                   bool single_word,
                                   std::span<const LicenseSet> sets,
                                   std::span<int64_t> sums) {
  return BatchScanTier<ScalarLaneOps>(view, single_word, sets, sums);
}

uint64_t SumSubsetsBatchGenericReference(const FlatTreeBatchView& view,
                                         std::span<const LicenseSet> sets,
                                         std::span<int64_t> sums) {
  return BatchScan<0, ScalarLaneOps>(view, sets, sums);
}

}  // namespace internal
}  // namespace geolic
