#ifndef GEOLIC_VALIDATION_VALIDATION_REPORT_H_
#define GEOLIC_VALIDATION_VALIDATION_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/license_set.h"

namespace geolic {

// Outcome of one validation equation C⟨S⟩ ≤ A[S].
struct EquationResult {
  LicenseSet set;  // S, in original (pre-division) license indexes.
  int64_t lhs = 0;      // C⟨S⟩ — issued counts attributable to S.
  int64_t rhs = 0;      // A[S] — aggregate budget of S.

  bool valid() const { return lhs <= rhs; }
};

// Outcome of an offline aggregate validation pass.
struct ValidationReport {
  // Every violated equation (lhs > rhs), in enumeration order.
  std::vector<EquationResult> violations;
  // Number of equations evaluated (the paper's key cost metric: 2^N − 1 for
  // the baseline, Σ_k (2^{N_k} − 1) after grouping).
  uint64_t equations_evaluated = 0;
  // Tree nodes touched while computing LHS values (secondary cost metric;
  // explains why the experimental gain exceeds the theoretical one).
  uint64_t nodes_visited = 0;

  bool all_valid() const { return violations.empty(); }

  // "OK (31 equations)" or a per-violation listing.
  std::string ToString() const;
};

// Filters `violations` down to the subset-minimal ones: a violated set S
// is dropped when some violated T ⊊ S exists, because C⟨S⟩ > A[S] is then
// (usually) collateral of the tighter violation. The minimal sets are the
// actionable diagnostics — the smallest license groups whose combined
// budget was overshot. Input order is preserved.
std::vector<EquationResult> MinimalViolations(
    const std::vector<EquationResult>& violations);

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_VALIDATION_REPORT_H_
