#ifndef GEOLIC_VALIDATION_REPORT_JSON_H_
#define GEOLIC_VALIDATION_REPORT_JSON_H_

#include <string>

#include "validation/validation_report.h"

namespace geolic {

// JSON export of validation results, for dashboards/tooling. Sets are
// rendered both as hex masks (machine) and 1-based license lists (human):
//
//   {"valid":false,"equations_evaluated":31,"nodes_visited":12,
//    "violations":[{"set_mask":"0x3","licenses":[1,2],
//                   "lhs":1240,"rhs":1000,"excess":240}]}
std::string ReportToJson(const ValidationReport& report);

// One equation result as a JSON object (the element shape used above).
std::string EquationResultToJson(const EquationResult& result);

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_REPORT_JSON_H_
