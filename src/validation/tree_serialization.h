#ifndef GEOLIC_VALIDATION_TREE_SERIALIZATION_H_
#define GEOLIC_VALIDATION_TREE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// Binary persistence for validation trees, so a validation authority can
// checkpoint the accumulated tree between offline audit runs instead of
// replaying the whole log.
//
// Format (little-endian): magic "GLTREE1\0", uint64 node count, then the
// tree in preorder as (int32 index, int64 count, uint32 child_count)
// triples. The root is written with index −1.

// Writes `tree` to `path`, overwriting.
Status SaveTree(const ValidationTree& tree, const std::string& path);

// Reads a tree written by SaveTree. Validates structure (child ordering,
// strictly increasing path indexes) before returning.
Result<ValidationTree> LoadTree(const std::string& path);

// Stream variants (used by the file variants; exposed for embedding the
// tree in larger checkpoint files).
Status SerializeTree(const ValidationTree& tree, std::ostream* out);
Result<ValidationTree> DeserializeTree(std::istream* in);

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_TREE_SERIALIZATION_H_
