#ifndef GEOLIC_VALIDATION_TREE_SERIALIZATION_H_
#define GEOLIC_VALIDATION_TREE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// Binary persistence for validation trees, so a validation authority can
// checkpoint the accumulated tree between offline audit runs instead of
// replaying the whole log.
//
// Current format (v2): the tree body — uint64 node count, then the tree in
// preorder as (int32 index, int64 count, uint32 child_count) triples, root
// written with index −1 — wrapped in the CRC-protected checkpoint-v2
// container (persist/checkpoint.h, kind = validation-tree). A flipped bit
// anywhere in the file fails the load instead of silently changing a
// count.
//
// Legacy format (v1): magic "GLTREE1\0" followed by the same body, no
// checksums. Loaders accept both; writers emit v2 only. v1 files cannot
// detect payload corruption — a flipped count byte loads cleanly — which
// is why the format was replaced.
//
// Both serializer and deserializer walk with explicit stacks: a deep
// chain-shaped tree (adversarial checkpoint, or any tree deeper than the
// call stack) must round-trip without recursing once per level.

// Writes `tree` to `path` in v2 framing, overwriting.
Status SaveTree(const ValidationTree& tree, const std::string& path);

// Reads a tree written by SaveTree (v2) or by the legacy v1 writer.
// Validates structure (child ordering, strictly increasing path indexes)
// before returning; v2 additionally verifies header and payload CRCs.
Result<ValidationTree> LoadTree(const std::string& path);

// Stream variants (used by the file variants; exposed for embedding the
// tree in larger checkpoint files).
Status SerializeTree(const ValidationTree& tree, std::ostream* out);
Result<ValidationTree> DeserializeTree(std::istream* in);

// Legacy v1 writer, kept so tests can exercise the compatibility load
// path and demonstrate v1's missing corruption detection. New code must
// not call this.
Status SerializeTreeV1(const ValidationTree& tree, std::ostream* out);

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_TREE_SERIALIZATION_H_
