#ifndef GEOLIC_VALIDATION_LOG_STORE_H_
#define GEOLIC_VALIDATION_LOG_STORE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "validation/log_record.h"
#include "util/status.h"

namespace geolic {

// Append-only store of issuance log records, with text and binary
// persistence. The validation authority fills one store per content and
// periodically feeds it to the offline aggregate validator.
class LogStore {
 public:
  LogStore() = default;

  // Appends a record. Fails if the set is empty (an issued license always
  // instance-validates against at least one redistribution license — an
  // empty set means instance validation already failed and the license is
  // invalid outright) or the count is not positive.
  Status Append(LogRecord record);

  // Pre-sizes the record table so the next `capacity` appends never regrow
  // it (the allocation-free admission path reserves up front).
  void Reserve(size_t capacity) { records_.reserve(capacity); }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<LogRecord>& records() const { return records_; }
  const LogRecord& at(size_t i) const { return records_[i]; }

  // Sum of counts grouped by exact set — C[S] for every S present in the
  // log. The reference the validation tree is checked against in tests.
  std::unordered_map<LicenseSet, int64_t> MergedCounts() const;

  // Sum of all counts in the store.
  int64_t TotalCount() const;

  // Returns a compacted copy: one record per distinct set with the summed
  // count (issued-license ids are dropped — compaction is for archival and
  // faster tree rebuilds, not per-license attribution). Record order is
  // ascending by set mask. Validation results over a compacted store are
  // identical to the original.
  LogStore Compacted() const;

  // Text persistence: one record per line, "id mask count" with the mask in
  // hex ("LU1 0x3 800"). '#' starts a comment line.
  Status SaveText(const std::string& path) const;
  static Result<LogStore> LoadText(const std::string& path);

  // Binary persistence. Writes the record table inside the CRC-protected
  // checkpoint-v2 container (persist/checkpoint.h, kind = log-store), so a
  // flipped bit fails the load instead of silently changing a count.
  // LoadBinary also accepts the legacy unchecksummed "GLOGBIN1" format.
  Status SaveBinary(const std::string& path) const;
  static Result<LogStore> LoadBinary(const std::string& path);

  // Legacy v1 writer ("GLOGBIN1", no checksums), kept so tests can
  // exercise the compatibility load path. New code must not call this.
  Status SaveBinaryV1(const std::string& path) const;

  // The raw record table (uint64 record count, then per record: set u64,
  // count i64, id_len u32, id bytes) — the body both binary formats share,
  // exposed for embedding in larger checkpoints (service snapshots).
  void SerializeRecords(std::ostream* out) const;
  static Result<LogStore> DeserializeRecords(std::istream* in);

 private:
  std::vector<LogRecord> records_;
};

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_LOG_STORE_H_
