#include "validation/validation_report.h"

namespace geolic {

std::string ValidationReport::ToString() const {
  if (all_valid()) {
    return "OK (" + std::to_string(equations_evaluated) + " equations)";
  }
  std::string out = std::to_string(violations.size()) + " violation(s) in " +
                    std::to_string(equations_evaluated) + " equations:\n";
  for (const EquationResult& violation : violations) {
    out += "  C<" + (violation.set).ToString() +
           "> = " + std::to_string(violation.lhs) + " > A[" +
           (violation.set).ToString() +
           "] = " + std::to_string(violation.rhs) + "\n";
  }
  return out;
}

std::vector<EquationResult> MinimalViolations(
    const std::vector<EquationResult>& violations) {
  std::vector<EquationResult> minimal;
  for (const EquationResult& candidate : violations) {
    bool has_smaller = false;
    for (const EquationResult& other : violations) {
      if (other.set != candidate.set &&
          (other.set).IsSubsetOf(candidate.set)) {
        has_smaller = true;
        break;
      }
    }
    if (!has_smaller) {
      minimal.push_back(candidate);
    }
  }
  return minimal;
}

}  // namespace geolic
