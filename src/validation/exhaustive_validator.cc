#include "validation/exhaustive_validator.h"

namespace geolic {

int64_t LhsFromMergedCounts(
    const std::unordered_map<LicenseSet, int64_t>& merged_counts,
    const LicenseSet& set) {
  int64_t sum = 0;
  for (const auto& [mask, count] : merged_counts) {
    if (mask.IsSubsetOf(set)) {
      sum += count;
    }
  }
  return sum;
}

}  // namespace geolic
