#include "validation/exhaustive_validator.h"

namespace geolic {
namespace {

Result<ValidationReport> ValidateImpl(const ValidationTree& tree,
                                      const std::vector<int64_t>& aggregates,
                                      uint64_t max_equations) {
  const int n = static_cast<int>(aggregates.size());
  if (n > kMaxLicenses) {
    return Status::CapacityExceeded("at most 64 redistribution licenses");
  }
  ValidationReport report;
  if (n == 0) {
    return report;
  }
  // Licenses the tree mentions must all have an aggregate entry.
  const LicenseMask present = tree.PresentLicenses();
  if (!IsSubsetOf(present, FullMask(n))) {
    return Status::InvalidArgument(
        "tree references license indexes beyond the aggregate array");
  }

  // Algorithm 2: i enumerates every non-empty subset of {0..n-1}; the bits
  // of i select the licenses in the current equation's set.
  const LicenseMask full = FullMask(n);
  for (LicenseMask i = 1;; ++i) {
    if (report.equations_evaluated >= max_equations) {
      break;
    }
    // AV: sum of aggregate values of the selected licenses.
    int64_t av = 0;
    for (int j = 0; j < n; ++j) {
      if (MaskContains(i, j)) {
        av += aggregates[static_cast<size_t>(j)];
      }
    }
    // CV: pruned tree traversal summing counts of all subsets of i.
    const int64_t cv = tree.SumSubsets(i, &report.nodes_visited);
    ++report.equations_evaluated;
    if (cv > av) {
      report.violations.push_back(EquationResult{i, cv, av});
    }
    if (i == full) {
      break;
    }
  }
  return report;
}

}  // namespace

Result<ValidationReport> ValidateExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  return ValidateImpl(tree, aggregates, UINT64_MAX);
}

Result<ValidationReport> ValidateExhaustiveLimited(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates,
    uint64_t max_equations) {
  return ValidateImpl(tree, aggregates, max_equations);
}

int64_t LhsFromMergedCounts(
    const std::unordered_map<LicenseMask, int64_t>& merged_counts,
    LicenseMask set) {
  int64_t sum = 0;
  for (const auto& [mask, count] : merged_counts) {
    if (IsSubsetOf(mask, set)) {
      sum += count;
    }
  }
  return sum;
}

}  // namespace geolic
