#include "validation/exhaustive_validator.h"

#include "validation/validate.h"

namespace geolic {

// Both historical entry points are thin wrappers over the Validate facade;
// the serial Algorithm 2 engine lives in validate.cc.

Result<ValidationReport> ValidateExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(tree, aggregates, options));
  return std::move(outcome.report);
}

Result<ValidationReport> ValidateExhaustiveLimited(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates,
    uint64_t max_equations) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  options.max_equations = max_equations;
  GEOLIC_ASSIGN_OR_RETURN(ValidationOutcome outcome,
                          Validate(tree, aggregates, options));
  return std::move(outcome.report);
}

int64_t LhsFromMergedCounts(
    const std::unordered_map<LicenseMask, int64_t>& merged_counts,
    LicenseMask set) {
  int64_t sum = 0;
  for (const auto& [mask, count] : merged_counts) {
    if (IsSubsetOf(mask, set)) {
      sum += count;
    }
  }
  return sum;
}

}  // namespace geolic
