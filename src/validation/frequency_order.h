#ifndef GEOLIC_VALIDATION_FREQUENCY_ORDER_H_
#define GEOLIC_VALIDATION_FREQUENCY_ORDER_H_

#include <cstdint>
#include <vector>

#include "validation/log_store.h"
#include "validation/validation_report.h"
#include "validation/validation_tree.h"
#include "util/status.h"

namespace geolic {

// License index relabeling. The validation tree orders nodes by license
// index, so the *labeling* decides how much prefix sharing the log enjoys:
// the frequent-pattern-tree literature the paper's reference [10] builds on
// (its reference [8], "ascending frequency ordered prefix-tree") orders
// items by frequency to shrink the tree. A permutation is a bijection over
// 0..n−1; masks map bit-by-bit, so every algorithm downstream (Algorithm 2,
// grouping, division) works unchanged on relabeled inputs.
class LicensePermutation {
 public:
  // Identity over n licenses.
  explicit LicensePermutation(int n);

  // Relabels so that the license appearing in the most log records gets
  // index 0 (descending frequency; ties by original index). Hot licenses
  // land near the root, maximising prefix sharing. A log record whose set
  // references a license index >= n is an InvalidArgument error (the same
  // contract as validating a tree against a too-short aggregate array):
  // silently skipping such records would relabel against undercounted
  // frequencies and later read past the permutation's arrays.
  static Result<LicensePermutation> ByDescendingFrequency(const LogStore& log,
                                                          int n);

  int size() const { return static_cast<int>(to_new_.size()); }
  // Original index → relabeled index and back.
  int ToNew(int original) const {
    return to_new_[static_cast<size_t>(original)];
  }
  int ToOld(int relabeled) const {
    return to_old_[static_cast<size_t>(relabeled)];
  }

  // Mask translation (bit i of the input becomes bit ToNew(i) / ToOld(i)).
  LicenseSet MapMask(const LicenseSet& original) const;
  LicenseSet UnmapMask(const LicenseSet& relabeled) const;

  // Reorders an index-aligned vector (e.g. the aggregate array A) into
  // relabeled order.
  std::vector<int64_t> MapValues(const std::vector<int64_t>& values) const;

 private:
  std::vector<int> to_new_;
  std::vector<int> to_old_;
};

// Builds the validation tree under the permutation's labeling.
Result<ValidationTree> BuildFrequencyOrderedTree(
    const LogStore& log, const LicensePermutation& permutation);

// Algorithm 2 over a frequency-ordered tree; the report's violation sets
// are translated back to original license indexes, so the result is
// interchangeable with ValidateExhaustive(BuildFromLog(log), aggregates)
// up to violation order (ascending in *relabeled* masks).
//
// Compatibility wrapper, slated for [[deprecated]]: new code should call
// Validate(log, aggregates, {.order = TreeOrder::kDescendingFrequency})
// (validation/validate.h); this delegates there.
Result<ValidationReport> ValidateExhaustiveFrequencyOrdered(
    const LogStore& log, const std::vector<int64_t>& aggregates);

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_FREQUENCY_ORDER_H_
