#ifndef GEOLIC_VALIDATION_VALIDATION_TREE_H_
#define GEOLIC_VALIDATION_VALIDATION_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "validation/log_store.h"
#include "util/license_set.h"
#include "util/status.h"

namespace geolic {

// Node of the validation tree. The set a node represents is spelled by the
// license indexes on the path from the root (exclusive) to the node;
// `count` is that set's accumulated C[S]. Children are kept ordered by
// ascending license index, and indexes strictly increase along any
// root-to-leaf path (the paper orders each log record's licenses by
// increasing index before insertion).
struct ValidationTreeNode {
  int index = -1;       // 0-based redistribution license index; -1 = root.
  int64_t count = 0;    // C of the set spelled by the path to this node.
  std::vector<std::unique_ptr<ValidationTreeNode>> children;
};

// The prefix-tree ("validation tree") of reference [10], built from the
// offline log. It stores every distinct set S seen in the log exactly once
// and computes the LHS of any validation equation by a pruned traversal.
class ValidationTree {
 public:
  ValidationTree() : root_(std::make_unique<ValidationTreeNode>()) {}

  // Iterative teardown: the natural unique_ptr chain destruction recurses
  // once per level, and checkpoint loading must survive adversarially deep
  // chain-shaped trees without overflowing the stack.
  ~ValidationTree();

  ValidationTree(const ValidationTree&) = delete;
  ValidationTree& operator=(const ValidationTree&) = delete;
  ValidationTree(ValidationTree&&) noexcept = default;
  ValidationTree& operator=(ValidationTree&& other) noexcept;

  // Paper Algorithm 1 (Insert): walks/creates nodes for the licenses of
  // `set` in ascending index order and adds `count` to the final node.
  // Fails on an empty set or non-positive count.
  Status Insert(const LicenseSet& set, int64_t count);

  // Builds a tree from every record in `store`.
  static Result<ValidationTree> BuildFromLog(const LogStore& store);

  // LHS of the validation equation for `set` (the paper's C⟨S⟩): the sum of
  // counts over all subsets of `set` present in the tree. Implemented as the
  // ref [10] traversal — descend only into children whose index ∈ set, sum
  // every visited node's count. If `nodes_visited` is non-null, the number
  // of nodes touched is added to it (benchmarks report this).
  int64_t SumSubsets(const LicenseSet& set,
                     uint64_t* nodes_visited = nullptr) const;

  // Exact count stored for `set` (0 if the set never appeared in the log).
  int64_t CountOf(const LicenseSet& set) const;

  // Number of nodes excluding the root.
  size_t NodeCount() const;

  // Sum of all node counts (equals the log's total count).
  int64_t TotalCount() const;

  // Approximate heap footprint in bytes (node payloads + child vectors,
  // root node included — every node is heap-allocated); the storage metric
  // of the paper's figure 10.
  size_t MemoryBytes() const;

  // Mask of every license index present in the tree.
  LicenseSet PresentLicenses() const;

  // Invokes `fn(set, count)` for every node with a non-zero count, where
  // `set` is the mask spelled by the node's path. Equivalent to iterating
  // the merged log counts. Order is tree preorder.
  void ForEachSet(
      const std::function<void(const LicenseSet&, int64_t)>& fn) const;

  // Verifies structural invariants: children sorted strictly ascending,
  // path indexes strictly increasing, non-negative counts.
  Status CheckInvariants() const;

  // Multi-line rendering for debugging/tests: one "L<i+1>:count" per node,
  // two-space indentation per depth.
  std::string ToString() const;

  // Mutable access for the tree-division and index-modification algorithms
  // (core layer). The root always exists.
  ValidationTreeNode* mutable_root() { return root_.get(); }
  const ValidationTreeNode& root() const { return *root_; }

 private:
  std::unique_ptr<ValidationTreeNode> root_;
};

}  // namespace geolic

#endif  // GEOLIC_VALIDATION_VALIDATION_TREE_H_
