// AVX2 tier of the batched equation scan: 4 × int64 lanes per register
// pass. This translation unit is the only one in the validation library
// compiled with -mavx2 (see validation/CMakeLists.txt), so AVX2
// instructions never leak into code that runs before the dispatch probe.
// Only 64-bit integer compare/blend/add units are used — results are
// bit-identical to the scalar tier.

#include "validation/flat_tree_batch.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <array>

#include "validation/flat_tree_batch_scan.h"

namespace geolic {
namespace internal {
namespace {

// kNibbleMask[n] is the 4 × 64-bit lane mask spelled by nibble n — one
// aligned load replaces the broadcast/and/compare sequence that would
// otherwise rebuild the per-group on_path mask.
struct alignas(32) NibbleRow {
  uint64_t lane[4];
};
constexpr std::array<NibbleRow, 16> kNibbleMask = [] {
  std::array<NibbleRow, 16> rows{};
  for (int n = 0; n < 16; ++n) {
    for (int k = 0; k < 4; ++k) {
      rows[static_cast<size_t>(n)].lane[static_cast<size_t>(k)] =
          (n >> k) & 1 ? ~uint64_t{0} : 0;
    }
  }
  return rows;
}();

struct Avx2LaneOps {
  // The per-lane scalar test costs one load per mask word, so the wide
  // step amortizes sooner on multi-word compiles; single-word lanes are
  // cheap enough scalar that the crossover sits higher.
  static constexpr int LaneThreshold(int kwords) {
    return kwords == 1 ? 8 : 4;
  }

  template <int kWords>
  static uint64_t LaneStep(const uint64_t* mask, uint32_t words,
                           const uint64_t* qcol, uint64_t on_path,
                           int64_t node_sum, int64_t node_count,
                           int64_t* sums) {
    const uint32_t nw = kWords == 0 ? words : kWords;
    const __m256i v_zero = _mm256_setzero_si256();
    const __m256i v_sum = _mm256_set1_epi64x(node_sum);
    const __m256i v_count = _mm256_set1_epi64x(node_count);
    // The node's mask words broadcast once, outside the group loop.
    __m256i v_mask[kWords == 0 ? kMaxLicenseWords
                               : static_cast<size_t>(kWords)];
    for (uint32_t w = 0; w < nw; ++w) {
      v_mask[w] = _mm256_set1_epi64x(static_cast<int64_t>(mask[w]));
    }
    uint64_t covered = 0;
    // Fold each nibble's four bits onto its low bit, giving one marker
    // bit (at position 4k) per 4-lane group with any on_path lane; the
    // loop then bit-scans straight to active groups — no per-empty-group
    // branch to mispredict at mid densities.
    uint64_t active = on_path | (on_path >> 1);
    active |= active >> 2;
    active &= 0x1111111111111111u;
    // One register pass per active 4-lane group: all mask words fold into
    // a single stray accumulator and the covered test and the
    // sum-vs-count accumulate share its compare mask.
    for (; active != 0; active &= active - 1) {
      const size_t g = static_cast<size_t>(std::countr_zero(active));
      const unsigned nibble = (on_path >> g) & 0xF;
      __m256i stray = v_zero;
      for (uint32_t w = 0; w < nw; ++w) {
        const __m256i v_q = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(qcol + w * 64 + g));
        // Covered iff mask & ~q == 0 per word (andnot computes ~q & mask).
        stray = _mm256_or_si256(stray, _mm256_andnot_si256(v_q, v_mask[w]));
      }
      const __m256i cov_m = _mm256_cmpeq_epi64(stray, v_zero);
      const __m256i path_m = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kNibbleMask[nibble].lane));
      __m256i value = _mm256_blendv_epi8(v_count, v_sum, cov_m);
      value = _mm256_and_si256(value, path_m);
      __m256i* slot = reinterpret_cast<__m256i*>(sums + g);
      _mm256_storeu_si256(slot,
                          _mm256_add_epi64(_mm256_loadu_si256(slot), value));
      covered |= static_cast<uint64_t>(static_cast<unsigned>(
                     _mm256_movemask_pd(_mm256_castsi256_pd(cov_m))))
                 << g;
    }
    return on_path & ~covered;
  }
};

}  // namespace

uint64_t SumSubsetsBatchAvx2Tier(const FlatTreeBatchView& view,
                                 bool single_word,
                                 std::span<const LicenseSet> sets,
                                 std::span<int64_t> sums) {
  return BatchScanTier<Avx2LaneOps>(view, single_word, sets, sums);
}

}  // namespace internal
}  // namespace geolic

#else  // !defined(__AVX2__)

// Non-x86 (or AVX2-less) toolchain: the entry still links but degrades to
// the scalar tier; cpu_dispatch never selects AVX2 on such hosts.
namespace geolic {
namespace internal {
uint64_t SumSubsetsBatchAvx2Tier(const FlatTreeBatchView& view,
                                 bool single_word,
                                 std::span<const LicenseSet> sets,
                                 std::span<int64_t> sums) {
  return SumSubsetsBatchScalarTier(view, single_word, sets, sums);
}
}  // namespace internal
}  // namespace geolic

#endif  // defined(__AVX2__)
