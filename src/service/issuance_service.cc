#include "service/issuance_service.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>

#include "persist/checkpoint.h"
#include "util/check.h"
#include "util/request_arena.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

// Cooperative suspension point for the simulation harness; a no-op branch
// in production (hooks are null). Call sites must hold no locks.
inline void SimYield(const OnlineValidatorOptions& options,
                     const char* point) {
  if (options.sim_hooks != nullptr) {
    options.sim_hooks->Yield(point);
  }
}

// Request timer that reads the simulation's virtual clock when hooks are
// installed (making latency metrics a deterministic function of the seed)
// and the monotonic wall clock otherwise.
class RequestTimer {
 public:
  explicit RequestTimer(SimHooks* hooks)
      : hooks_(hooks), sim_start_(hooks != nullptr ? hooks->NowNanos() : 0) {}

  int64_t ElapsedNanos() const {
    if (hooks_ != nullptr) {
      return static_cast<int64_t>(hooks_->NowNanos() - sim_start_);
    }
    return real_.ElapsedNanos();
  }

 private:
  SimHooks* hooks_;
  uint64_t sim_start_;
  Stopwatch real_;
};

}  // namespace

IssuanceService::IssuanceService(const LicenseCatalog* licenses,
                                 const OnlineValidatorOptions& options,
                                 LicenseGrouping grouping)
    : licenses_(licenses),
      options_(options),
      grouping_(std::move(grouping)),
      instance_validator_(licenses),
      metrics_(options.metrics != nullptr ? options.metrics : &owned_metrics_) {
  int shard_count = 1;
  if (options_.use_grouping) {
    shard_count = grouping_.group_count();
    if (options_.shard_hint > 0) {
      shard_count = std::min(shard_count, options_.shard_hint);
    }
    shard_count = std::max(shard_count, 1);
  }
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Precompute every equation scope once: RouteSet hands out references
  // into these, so the per-request path never copies a LicenseSet.
  all_mask_ = licenses_->AllMask();
  group_scopes_.reserve(static_cast<size_t>(grouping_.group_count()));
  for (int g = 0; g < grouping_.group_count(); ++g) {
    group_scopes_.push_back(grouping_.GroupMask(g));
  }
}

Result<std::unique_ptr<IssuanceService>> IssuanceService::Create(
    const LicenseCatalog* licenses, const OnlineValidatorOptions& options) {
  if (licenses == nullptr || licenses->empty()) {
    return Status::InvalidArgument(
        "issuance service needs at least one redistribution license");
  }
  // Not make_unique: the constructor is private.
  return std::unique_ptr<IssuanceService>(new IssuanceService(
      licenses, options, LicenseGrouping::FromLicenses(*licenses)));
}

Result<std::unique_ptr<IssuanceService>> IssuanceService::CreateWithHistory(
    const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
    const LogStore& history) {
  GEOLIC_ASSIGN_OR_RETURN(std::unique_ptr<IssuanceService> service,
                          Create(licenses, options));
  for (const LogRecord& record : history.records()) {
    if (!record.set.IsSubsetOf(licenses->AllMask())) {
      return Status::InvalidArgument(
          "history record references unknown license indexes");
    }
    size_t shard_index = 0;
    const LicenseSet& scope = service->RouteSet(record.set, &shard_index);
    if (!(record.set).IsSubsetOf(scope)) {
      // Satisfying sets always lie within one overlap group (every member
      // contains the issued rectangle, so they pairwise overlap); a record
      // spanning groups cannot have come from a valid issuance.
      return Status::InvalidArgument(
          "history record spans overlap groups");
    }
    Shard* shard = service->shards_[shard_index].get();
    GEOLIC_RETURN_IF_ERROR(shard->tree.Insert(record.set, record.count));
    GEOLIC_RETURN_IF_ERROR(shard->log.Append(record));
    service->issue_sequence_.fetch_add(1, std::memory_order_relaxed);
  }
  return service;
}

size_t IssuanceService::ShardOf(int group) const {
  return static_cast<size_t>(group) % shards_.size();
}

const LicenseSet& IssuanceService::RouteSet(const LicenseSet& s,
                                            size_t* shard) const {
  if (options_.use_grouping) {
    const int group = grouping_.GroupOf(s.Lowest());
    *shard = ShardOf(group);
    return group_scopes_[static_cast<size_t>(group)];
  }
  *shard = 0;
  return all_mask_;
}

Status IssuanceService::AdmitLocked(Shard* shard, const License& issued,
                                    const LicenseSet& scope,
                                    OnlineDecision* decision,
                                    RequestTrace* trace) {
  const LicenseSet s = decision->satisfying_set;
  const int64_t count = issued.aggregate_count();
  GEOLIC_DCHECK((s).IsSubsetOf(scope));

  // Check every equation T with S ⊆ T ⊆ scope: its LHS gains `count`.
  decision->aggregate_valid = true;
  {
    ScopedStageTimer stage(trace, TraceStage::kEquationScan);
    for (AscendingSubsetIterator it(scope - s); !it.Done(); it.Next()) {
      if (it.AtLast() && options_.sim_skip_last_equation) {
        // Planted bug for the simulation harness's mutation smoke mode:
        // the full-scope equation T = scope goes unchecked, so an
        // issuance that only that equation would reject slips through.
        break;
      }
      const LicenseSet t = s | it.subset();
      const int64_t cv = shard->tree.SumSubsets(t) + count;
      const int64_t av = licenses_->AggregateSum(t);
      ++decision->equations_checked;
      if (cv > av) {
        decision->aggregate_valid = false;
        decision->limiting = EquationResult{t, cv, av};
        return Status::Ok();
      }
    }
  }

  // Accepted. Write-ahead order: the framed record reaches the journal
  // before any in-memory state changes, so a crash can never leave the
  // tree/log knowing an issuance the journal does not. A journal failure
  // rejects the admission with all state unchanged.
  LogRecord record;
  record.issued_license_id =
      issued.id().empty()
          ? "LU" + std::to_string(
                issue_sequence_.fetch_add(1, std::memory_order_relaxed) + 1)
          : issued.id();
  record.set = s;
  record.count = count;
  if (has_journal_.load(std::memory_order_acquire)) {
    ScopedStageTimer stage(trace, TraceStage::kJournalAppend);
    std::lock_guard<std::mutex> lock(journal_mutex_);
    GEOLIC_RETURN_IF_ERROR(journal_->Append(journal_seq_ + 1, record));
    ++journal_seq_;
  }
  GEOLIC_RETURN_IF_ERROR(shard->tree.Insert(s, count));
  GEOLIC_RETURN_IF_ERROR(shard->log.Append(std::move(record)));
  return Status::Ok();
}

Result<OnlineDecision> IssuanceService::TryIssue(const License& issued) {
  RequestTimer timer(options_.sim_hooks);
  if (issued.aggregate_count() <= 0) {
    return Status::InvalidArgument(
        "issued license must carry a positive count");
  }
  OnlineDecision decision;
  RequestTrace trace(options_.tracer);
  // Lock-free fast-reject: the geometry is immutable, so the satisfying-set
  // lookup needs no shard lock.
  {
    ScopedStageTimer stage(&trace, TraceStage::kInstanceSoaScan);
    decision.satisfying_set = instance_validator_.SatisfyingSet(issued);
  }
  if (decision.satisfying_set.Empty()) {
    metrics_->RecordRejectedInstance(timer.ElapsedNanos());
    trace.Finish(TraceOutcome::kRejectedInstance);
    return decision;  // Fails instance-based validation; nothing recorded.
  }
  decision.instance_valid = true;
  SimYield(options_, "instance_checked");

  size_t shard_index = 0;
  const LicenseSet& scope = RouteSet(decision.satisfying_set, &shard_index);
  Shard* shard = shards_[shard_index].get();
  SimYield(options_, "pre_shard_lock");
  {
    std::unique_lock<std::mutex> lock(shard->mutex, std::defer_lock);
    {
      ScopedStageTimer stage(&trace, TraceStage::kShardLockWait);
      lock.lock();
    }
    const Status admitted = AdmitLocked(shard, issued, scope, &decision,
                                        &trace);
    if (!admitted.ok()) {
      trace.Finish(TraceOutcome::kError);
      return admitted;
    }
  }
  if (decision.aggregate_valid) {
    metrics_->RecordAccepted(decision.equations_checked, timer.ElapsedNanos());
    trace.Finish(TraceOutcome::kAccepted);
  } else {
    metrics_->RecordRejectedAggregate(decision.equations_checked,
                                      timer.ElapsedNanos());
    trace.Finish(TraceOutcome::kRejectedAggregate);
  }
  return decision;
}

Result<std::vector<OnlineDecision>> IssuanceService::TryIssueBatch(
    const std::vector<License>& batch) {
  std::vector<OnlineDecision> decisions(batch.size());
  GEOLIC_RETURN_IF_ERROR(TryIssueBatch(std::span<const License>(batch),
                                       std::span<OnlineDecision>(decisions)));
  return decisions;
}

Status IssuanceService::TryIssueBatch(std::span<const License> batch,
                                      std::span<OnlineDecision> decisions) {
  GEOLIC_DCHECK(decisions.size() >= batch.size());
  RequestTimer timer(options_.sim_hooks);
  metrics_->RecordBatch(batch.size());

  // Batch scratch lives in the calling thread's request arena and is
  // released wholesale when the call returns — zero heap traffic after the
  // arena's first-use warmup.
  RequestArena& arena = ThreadLocalRequestArena();
  const ArenaScope scratch(&arena);

  // Pass 1, lock-free: satisfying sets, instance rejects, shard routing.
  // Scopes are routed per admission in pass 2 (a reference lookup, not a
  // copy), so a pending entry stays a trivially-destructible POD the arena
  // can drop without running destructors.
  struct Pending {
    size_t shard;
    size_t index;
  };
  Pending* pending = arena.AllocateArray<Pending>(batch.size());
  size_t pending_count = 0;
  {
    // One standalone span for the whole lock-free pass (request_id 0): the
    // per-request work here is too fine to time individually.
    ScopedTracerSpan pass1(options_.tracer, TraceStage::kInstanceSoaScan);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].aggregate_count() <= 0) {
        return Status::InvalidArgument(
            "issued license must carry a positive count");
      }
      decisions[i] = OnlineDecision();
      decisions[i].satisfying_set =
          instance_validator_.SatisfyingSet(batch[i]);
      if (decisions[i].satisfying_set.Empty()) {
        metrics_->RecordRejectedInstance(timer.ElapsedNanos());
        continue;
      }
      decisions[i].instance_valid = true;
      size_t shard_index = 0;
      (void)RouteSet(decisions[i].satisfying_set, &shard_index);
      pending[pending_count++] = Pending{shard_index, i};
    }
  }

  // Pass 2: group by shard so each touched shard is locked once per batch.
  // Sorting by (shard, index) keeps the batch's relative order within a
  // shard — the same order a stable shard-only sort would give, without
  // stable_sort's temporary buffer — so the decisions match a sequential
  // TryIssue loop (cross-shard order cannot matter: different shards share
  // no equations).
  std::sort(pending, pending + pending_count,
            [](const Pending& a, const Pending& b) {
              return a.shard != b.shard ? a.shard < b.shard
                                        : a.index < b.index;
            });
  SimYield(options_, "batch_routed");
  size_t at = 0;
  while (at < pending_count) {
    const size_t shard_index = pending[at].shard;
    Shard* shard = shards_[shard_index].get();
    SimYield(options_, "pre_shard_lock");
    std::unique_lock<std::mutex> lock(shard->mutex, std::defer_lock);
    {
      ScopedTracerSpan wait(options_.tracer, TraceStage::kShardLockWait);
      lock.lock();
    }
    for (; at < pending_count && pending[at].shard == shard_index; ++at) {
      const Pending& p = pending[at];
      RequestTrace trace(options_.tracer);
      size_t routed_shard = 0;
      const LicenseSet& scope =
          RouteSet(decisions[p.index].satisfying_set, &routed_shard);
      const Status admitted = AdmitLocked(shard, batch[p.index], scope,
                                          &decisions[p.index], &trace);
      if (!admitted.ok()) {
        trace.Finish(TraceOutcome::kError);
        return admitted;
      }
      if (decisions[p.index].aggregate_valid) {
        metrics_->RecordAccepted(decisions[p.index].equations_checked,
                                 timer.ElapsedNanos());
        trace.Finish(TraceOutcome::kAccepted);
      } else {
        metrics_->RecordRejectedAggregate(
            decisions[p.index].equations_checked, timer.ElapsedNanos());
        trace.Finish(TraceOutcome::kRejectedAggregate);
      }
    }
  }
  return Status::Ok();
}

void IssuanceService::ReserveLogCapacity(size_t records_per_shard) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->log.Reserve(records_per_shard);
  }
}

LogStore IssuanceService::CollectLog() const {
  LogStore merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const LogRecord& record : shard->log.records()) {
      // Append only fails on empty sets / nonpositive counts, which the
      // admission path already rejected.
      Status append_status = merged.Append(record);
      (void)append_status;
    }
  }
  return merged;
}

Result<ValidationTree> IssuanceService::CollectTree() const {
  ValidationTree merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    Status status = Status::Ok();
    shard->tree.ForEachSet([&](LicenseSet set, int64_t count) {
      if (status.ok()) {
        status = merged.Insert(set, count);
      }
    });
    GEOLIC_RETURN_IF_ERROR(status);
  }
  return merged;
}

Result<FlatValidationTree> IssuanceService::CollectFlatTree() const {
  GEOLIC_ASSIGN_OR_RETURN(const ValidationTree merged, CollectTree());
  return FlatValidationTree::Compile(merged);
}

Status IssuanceService::AttachJournal(std::unique_ptr<JournalWriter> journal) {
  if (journal == nullptr) {
    return Status::InvalidArgument("cannot attach a null journal");
  }
  if (journal->frames_appended() != 0) {
    return Status::InvalidArgument(
        "journal already carries frames; attach a fresh journal file");
  }
  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (journal_ != nullptr) {
    return Status::FailedPrecondition("a journal is already attached");
  }
  journal_ = std::move(journal);
  journal_->set_tracer(options_.tracer);
  journal_seq_ = 0;
  has_journal_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status IssuanceService::SyncJournal() {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (journal_ == nullptr) {
    return Status::Ok();
  }
  return journal_->Sync();
}

uint64_t IssuanceService::journal_sequence() const {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  return journal_seq_;
}

ExpositionInput IssuanceService::Snap() const {
  ExpositionInput input;
  input.metrics = metrics_->Snap();
  if (options_.tracer != nullptr) {
    input.has_stages = true;
    input.stages = options_.tracer->ProfileSnapshot();
  }
  if (has_journal()) {
    input.has_journal = true;
    input.journal_sequence = journal_sequence();
  }
  return input;
}

Status IssuanceService::WriteCheckpoint(const std::string& path) const {
  ScopedTracerSpan span(options_.tracer, TraceStage::kCheckpointWrite);
  SimYield(options_, "pre_checkpoint");
  // Exact cut: every shard lock in index order, then the journal lock —
  // the same order AdmitLocked uses, so no admission can be half-applied
  // (journaled but not yet in its shard) while we read.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard_locks.emplace_back(shard->mutex);
  }
  std::lock_guard<std::mutex> journal_lock(journal_mutex_);

  LogStore merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const LogRecord& record : shard->log.records()) {
      GEOLIC_RETURN_IF_ERROR(merged.Append(record));
    }
  }
  // Payload: the journal sequence this snapshot covers, then the record
  // table. Recovery replays only journal frames with seq > covered.
  std::ostringstream body;
  const uint64_t covered_seq = journal_seq_;
  body.write(reinterpret_cast<const char*>(&covered_seq),
             sizeof(covered_seq));
  merged.SerializeRecords(&body);
  return WriteCheckpointFile(CheckpointKind::kServiceSnapshot, body.str(),
                             path);
}

Result<std::unique_ptr<IssuanceService>> IssuanceService::Recover(
    const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
    const std::string& checkpoint_path, const std::string& journal_path,
    RecoveryStats* stats) {
  if (checkpoint_path.empty() && journal_path.empty()) {
    return Status::InvalidArgument(
        "recovery needs a checkpoint path, a journal path, or both");
  }
  ScopedTracerSpan span(options.tracer, TraceStage::kRecoveryReplay);
  RecoveryStats local;
  uint64_t covered_seq = 0;
  LogStore combined;
  if (!checkpoint_path.empty()) {
    GEOLIC_ASSIGN_OR_RETURN(
        const std::string payload,
        ReadCheckpointFile(CheckpointKind::kServiceSnapshot,
                           checkpoint_path));
    std::istringstream body(payload);
    body.read(reinterpret_cast<char*>(&covered_seq), sizeof(covered_seq));
    if (!body) {
      return Status::ParseError("service checkpoint payload truncated: " +
                                checkpoint_path);
    }
    GEOLIC_ASSIGN_OR_RETURN(LogStore records,
                            LogStore::DeserializeRecords(&body));
    if (body.peek() != std::istringstream::traits_type::eof()) {
      return Status::ParseError("trailing bytes after checkpoint records: " +
                                checkpoint_path);
    }
    local.checkpoint_records = records.size();
    for (const LogRecord& record : records.records()) {
      GEOLIC_RETURN_IF_ERROR(combined.Append(record));
    }
  }
  if (!journal_path.empty()) {
    GEOLIC_ASSIGN_OR_RETURN(const JournalReplay replay,
                            JournalReader::ReadFile(journal_path));
    local.journal_torn_tail = replay.torn_tail;
    for (const JournalEntry& entry : replay.entries) {
      // The reader guarantees seqs are contiguous from 1, so the frames
      // past the checkpoint's covered seq are exactly the uncovered tail.
      if (entry.seq <= covered_seq) {
        ++local.journal_records_skipped;
        continue;
      }
      ++local.journal_records_replayed;
      GEOLIC_RETURN_IF_ERROR(combined.Append(entry.record));
    }
  }
  GEOLIC_ASSIGN_OR_RETURN(std::unique_ptr<IssuanceService> service,
                          CreateWithHistory(licenses, options, combined));
  // Cross-check the sharded rebuild against a serial replay of the same
  // records: recovery must reproduce the exact pre-crash accepted set or
  // fail — never return silently wrong state.
  GEOLIC_ASSIGN_OR_RETURN(const ValidationTree recovered,
                          service->CollectTree());
  GEOLIC_ASSIGN_OR_RETURN(const ValidationTree serial,
                          ValidationTree::BuildFromLog(combined));
  if (recovered.ToString() != serial.ToString() ||
      recovered.TotalCount() != serial.TotalCount()) {
    return Status::Internal(
        "recovered state diverges from a serial replay of the records");
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return service;
}

}  // namespace geolic
