#include "service/issuance_service.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>

#include "persist/checkpoint.h"
#include "util/check.h"
#include "util/request_arena.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

// Cooperative suspension point for the simulation harness; a no-op branch
// in production (hooks are null). Call sites must hold no locks.
inline void SimYield(const OnlineValidatorOptions& options,
                     const char* point) {
  if (options.sim_hooks != nullptr) {
    options.sim_hooks->Yield(point);
  }
}

// Request timer that reads the simulation's virtual clock when hooks are
// installed (making latency metrics a deterministic function of the seed)
// and the monotonic wall clock otherwise.
class RequestTimer {
 public:
  explicit RequestTimer(SimHooks* hooks)
      : hooks_(hooks), sim_start_(hooks != nullptr ? hooks->NowNanos() : 0) {}

  int64_t ElapsedNanos() const {
    if (hooks_ != nullptr) {
      return static_cast<int64_t>(hooks_->NowNanos() - sim_start_);
    }
    return real_.ElapsedNanos();
  }

 private:
  SimHooks* hooks_;
  uint64_t sim_start_;
  Stopwatch real_;
};

// First u64 of a v3 service-checkpoint payload. A legacy payload starts
// with the covered journal sequence, which can never be 2^64-1, so the
// sentinel cleanly separates the two layouts.
constexpr uint64_t kCheckpointV3Sentinel = ~uint64_t{0};
constexpr uint32_t kCheckpointV3Version = 3;

// Upper end of an ordered constraint range (for a multi-interval: the last
// piece's hi — pieces are kept sorted and disjoint).
Result<int64_t> OrderedHi(const ConstraintRange& range) {
  if (range.is_interval()) {
    return range.interval().hi();
  }
  if (range.is_multi_interval() &&
      range.multi_interval().piece_count() > 0) {
    return range.multi_interval().pieces().back().hi();
  }
  return Status::InvalidArgument(
      "expiry needs an ordered (interval) dimension");
}

// Ascending indexes of the licenses whose `dim` range ends strictly below
// `cutoff` — the expiry rule, shared between the live path and journal
// replay so the two can never disagree.
Result<std::vector<int>> ComputeExpired(const std::vector<License>& active,
                                        int dim, int64_t cutoff) {
  std::vector<int> expired;
  for (size_t i = 0; i < active.size(); ++i) {
    const HyperRect& rect = active[i].rect();
    if (dim < 0 || dim >= rect.dimensions()) {
      return Status::OutOfRange("expiry dimension out of range");
    }
    GEOLIC_ASSIGN_OR_RETURN(const int64_t hi, OrderedHi(rect.dim(dim)));
    if (hi < cutoff) {
      expired.push_back(static_cast<int>(i));
    }
  }
  return expired;
}

// Carries one pre-reconfiguration record into the next epoch's index
// space: dropped (returns false) when its set touches a removed license —
// usage granted under a revoked right is revoked with it — otherwise
// renumbered densely through `old_to_new` (paper Algorithm 5).
// `skip_renumbering` is the planted lifecycle bug for the simulation
// harness's mutation smoke: survivors keep their stale bit positions.
bool RemapRecord(const LicenseSet& removed, const std::vector<int>& old_to_new,
                 bool skip_renumbering, LogRecord* record) {
  if (record->set.Intersects(removed)) {
    return false;
  }
  if (removed.Empty() || skip_renumbering) {
    return true;  // Acquisition (or the planted bug): indexes unchanged.
  }
  LicenseSet renumbered;
  for (int i : record->set.Indexes()) {
    renumbered.Add(old_to_new[static_cast<size_t>(i)]);
  }
  record->set = renumbered;
  return true;
}

// How one journaled reconfiguration transforms license indexes.
struct CatalogEvolution {
  LicenseSet removed;           // Old-space indexes dropped (empty: acquire).
  std::vector<int> old_to_new;  // Surviving old index → new index, else -1.
};

// Applies one reconfiguration frame to the evolving catalog `active`,
// cross-checking the frame against what the live service would have done.
// Admission frames are not accepted here.
Status EvolveCatalog(const JournalEntry& entry, std::vector<License>* active,
                     CatalogEvolution* evolution) {
  evolution->removed = LicenseSet();
  evolution->old_to_new.clear();
  const int old_size = static_cast<int>(active->size());
  switch (entry.kind) {
    case JournalEntryKind::kAdmission:
      return Status::Internal("admission frame is not a reconfiguration");
    case JournalEntryKind::kTenantOp:
      // Tenant-tagged frames belong to the multi-tenant catalog's shared
      // journals (catalog/catalog_service.h), never to a single service's
      // own WAL.
      return Status::ParseError(
          "tenant-tagged frame in a single-service journal");
    case JournalEntryKind::kAcquire:
      evolution->old_to_new.reserve(static_cast<size_t>(old_size));
      for (int i = 0; i < old_size; ++i) {
        evolution->old_to_new.push_back(i);
      }
      active->push_back(*entry.acquired);
      return Status::Ok();
    case JournalEntryKind::kRevoke: {
      if (entry.revoked_index < 0 || entry.revoked_index >= old_size) {
        return Status::ParseError("revoke frame index out of range");
      }
      const License& victim =
          (*active)[static_cast<size_t>(entry.revoked_index)];
      if (victim.id() != entry.revoked_id) {
        return Status::ParseError(
            "revoke frame id disagrees with the catalog evolution");
      }
      evolution->removed.Add(entry.revoked_index);
      break;
    }
    case JournalEntryKind::kExpire: {
      GEOLIC_ASSIGN_OR_RETURN(
          const std::vector<int> expired,
          ComputeExpired(*active, entry.expire_dim, entry.expire_cutoff));
      if (expired.empty()) {
        // The live service never journals a no-op expiry.
        return Status::ParseError("expire frame removed no licenses");
      }
      if (expired != entry.expired_indexes) {
        return Status::ParseError(
            "expire frame's removed set disagrees with the catalog evolution");
      }
      for (int i : expired) {
        evolution->removed.Add(i);
      }
      break;
    }
  }
  if (evolution->removed.Size() >= old_size) {
    return Status::ParseError(
        "reconfiguration frame would empty the catalog");
  }
  evolution->old_to_new.reserve(static_cast<size_t>(old_size));
  int next = 0;
  for (int i = 0; i < old_size; ++i) {
    evolution->old_to_new.push_back(
        evolution->removed.Contains(i) ? -1 : next++);
  }
  std::vector<License> survivors;
  survivors.reserve(static_cast<size_t>(old_size) -
                    static_cast<size_t>(evolution->removed.Size()));
  for (int i = 0; i < old_size; ++i) {
    if (!evolution->removed.Contains(i)) {
      survivors.push_back(std::move((*active)[static_cast<size_t>(i)]));
    }
  }
  *active = std::move(survivors);
  return Status::Ok();
}

}  // namespace

IssuanceService::IssuanceService(const LicenseCatalog* licenses,
                                 const OnlineValidatorOptions& options,
                                 std::shared_ptr<CatalogEpoch> epoch0)
    : options_(options),
      dyn_grouping_(licenses->schema().dimensions() > 0
                        ? DynamicGrouping(licenses->schema().dimensions())
                        : DynamicGrouping()),
      metrics_(options.metrics != nullptr ? options.metrics : &owned_metrics_) {
  // Mirror the catalog into the incremental grouping — the structure later
  // reconfigurations update in place. Within a catalog every license
  // shares content and permission, so rectangle overlap is license
  // overlap and the components match FromLicenses exactly.
  for (const License& license : licenses->licenses()) {
    const Result<int> added = dyn_grouping_.AddLicense(license.rect());
    GEOLIC_CHECK(added.ok());
  }
  state_.store(std::move(epoch0), std::memory_order_release);
}

std::shared_ptr<IssuanceService::CatalogEpoch> IssuanceService::BuildEpoch(
    const OnlineValidatorOptions& options, uint64_t epoch_number,
    const LicenseCatalog* catalog, std::unique_ptr<LicenseCatalog> owned,
    LicenseGrouping grouping) {
  auto epoch = std::make_shared<CatalogEpoch>(catalog, std::move(owned),
                                              std::move(grouping));
  epoch->epoch = epoch_number;
  int shard_count = 1;
  if (options.use_grouping) {
    shard_count = epoch->grouping.group_count();
    if (options.shard_hint > 0) {
      shard_count = std::min(shard_count, options.shard_hint);
    }
    shard_count = std::max(shard_count, 1);
  }
  epoch->shards.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    epoch->shards.push_back(std::make_unique<Shard>());
  }
  // Precompute every equation scope once: RouteSet hands out references
  // into these, so the per-request path never copies a LicenseSet.
  epoch->all_mask = catalog->AllMask();
  epoch->group_scopes.reserve(
      static_cast<size_t>(epoch->grouping.group_count()));
  for (int g = 0; g < epoch->grouping.group_count(); ++g) {
    epoch->group_scopes.push_back(epoch->grouping.GroupMask(g));
  }
  return epoch;
}

Result<std::unique_ptr<IssuanceService>> IssuanceService::Create(
    const LicenseCatalog* licenses, const OnlineValidatorOptions& options) {
  return CreateOwned(licenses, nullptr, options, LogStore());
}

Result<std::unique_ptr<IssuanceService>> IssuanceService::CreateWithHistory(
    const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
    const LogStore& history) {
  return CreateOwned(licenses, nullptr, options, history);
}

Result<std::unique_ptr<IssuanceService>> IssuanceService::CreateOwned(
    const LicenseCatalog* licenses, std::unique_ptr<LicenseCatalog> owned,
    const OnlineValidatorOptions& options, const LogStore& history) {
  if (licenses == nullptr || licenses->empty()) {
    return Status::InvalidArgument(
        "issuance service needs at least one redistribution license");
  }
  std::shared_ptr<CatalogEpoch> epoch0 =
      BuildEpoch(options, 0, licenses, std::move(owned),
                 LicenseGrouping::FromLicenses(*licenses));
  // Not make_unique: the constructor is private.
  std::unique_ptr<IssuanceService> service(
      new IssuanceService(licenses, options, epoch0));
  // Pre-load the history through the same routing the admission path uses
  // (records of already-validated issuances — they are not re-checked).
  for (const LogRecord& record : history.records()) {
    GEOLIC_RETURN_IF_ERROR(service->ApplyRecordToEpoch(epoch0.get(), record));
    service->issue_sequence_.fetch_add(1, std::memory_order_relaxed);
  }
  return service;
}

Status IssuanceService::ApplyRecordToEpoch(CatalogEpoch* epoch,
                                           const LogRecord& record) const {
  if (!record.set.IsSubsetOf(epoch->all_mask)) {
    return Status::InvalidArgument(
        "history record references unknown license indexes");
  }
  size_t shard_index = 0;
  const LicenseSet& scope = RouteSet(*epoch, record.set, &shard_index);
  if (!record.set.IsSubsetOf(scope)) {
    // Satisfying sets always lie within one overlap group (every member
    // contains the issued rectangle, so they pairwise overlap); a record
    // spanning groups cannot have come from a valid issuance.
    return Status::InvalidArgument("history record spans overlap groups");
  }
  Shard* shard = epoch->shards[shard_index].get();
  GEOLIC_RETURN_IF_ERROR(shard->tree.Insert(record.set, record.count));
  GEOLIC_RETURN_IF_ERROR(shard->log.Append(record));
  return Status::Ok();
}

const LicenseSet& IssuanceService::RouteSet(const CatalogEpoch& epoch,
                                            const LicenseSet& s,
                                            size_t* shard) const {
  if (options_.use_grouping) {
    const int group = epoch.grouping.GroupOf(s.Lowest());
    *shard = static_cast<size_t>(group) % epoch.shards.size();
    return epoch.group_scopes[static_cast<size_t>(group)];
  }
  *shard = 0;
  return epoch.all_mask;
}

Status IssuanceService::AdmitLocked(const CatalogEpoch& epoch, Shard* shard,
                                    const License& issued,
                                    const LicenseSet& scope,
                                    OnlineDecision* decision,
                                    RequestTrace* trace) {
  const LicenseSet s = decision->satisfying_set;
  const int64_t count = issued.aggregate_count();
  GEOLIC_DCHECK((s).IsSubsetOf(scope));

  // Check every equation T with S ⊆ T ⊆ scope: its LHS gains `count`.
  decision->aggregate_valid = true;
  {
    ScopedStageTimer stage(trace, TraceStage::kEquationScan);
    for (AscendingSubsetIterator it(scope - s); !it.Done(); it.Next()) {
      if (it.AtLast() && options_.sim_skip_last_equation) {
        // Planted bug for the simulation harness's mutation smoke mode:
        // the full-scope equation T = scope goes unchecked, so an
        // issuance that only that equation would reject slips through.
        break;
      }
      const LicenseSet t = s | it.subset();
      const int64_t cv = shard->tree.SumSubsets(t) + count;
      const int64_t av = epoch.catalog->AggregateSum(t);
      ++decision->equations_checked;
      if (cv > av) {
        decision->aggregate_valid = false;
        decision->limiting = EquationResult{t, cv, av};
        return Status::Ok();
      }
    }
  }

  // Accepted. Write-ahead order: the framed record reaches the journal
  // before any in-memory state changes, so a crash can never leave the
  // tree/log knowing an issuance the journal does not. A journal failure
  // rejects the admission with all state unchanged.
  LogRecord record;
  record.issued_license_id =
      issued.id().empty()
          ? "LU" + std::to_string(
                issue_sequence_.fetch_add(1, std::memory_order_relaxed) + 1)
          : issued.id();
  record.set = s;
  record.count = count;
  if (has_journal_.load(std::memory_order_acquire)) {
    ScopedStageTimer stage(trace, TraceStage::kJournalAppend);
    std::lock_guard<std::mutex> lock(journal_mutex_);
    GEOLIC_RETURN_IF_ERROR(journal_->Append(journal_seq_ + 1, record));
    ++journal_seq_;
  }
  GEOLIC_RETURN_IF_ERROR(shard->tree.Insert(s, count));
  GEOLIC_RETURN_IF_ERROR(shard->log.Append(std::move(record)));
  return Status::Ok();
}

Result<OnlineDecision> IssuanceService::TryIssue(const License& issued) {
  RequestTimer timer(options_.sim_hooks);
  if (issued.aggregate_count() <= 0) {
    return Status::InvalidArgument(
        "issued license must carry a positive count");
  }
  OnlineDecision decision;
  RequestTrace trace(options_.tracer);
  for (;;) {
    // Pin the current epoch: the shared_ptr refcount is the reader count a
    // retiring reconfiguration waits out. Lock-free fast-reject — the
    // pinned geometry is immutable, so the satisfying-set lookup needs no
    // shard lock.
    const std::shared_ptr<const CatalogEpoch> epoch = Pin();
    decision = OnlineDecision();
    decision.catalog_epoch = epoch->epoch;
    {
      ScopedStageTimer stage(&trace, TraceStage::kInstanceSoaScan);
      decision.satisfying_set = epoch->instance.SatisfyingSet(issued);
    }
    if (decision.satisfying_set.Empty()) {
      metrics_->RecordRejectedInstance(timer.ElapsedNanos());
      trace.Finish(TraceOutcome::kRejectedInstance);
      return decision;  // Fails instance-based validation; nothing recorded.
    }
    decision.instance_valid = true;
    SimYield(options_, "instance_checked");

    size_t shard_index = 0;
    const LicenseSet& scope = RouteSet(*epoch, decision.satisfying_set,
                                       &shard_index);
    Shard* shard = epoch->shards[shard_index].get();
    SimYield(options_, "pre_shard_lock");
    std::unique_lock<std::mutex> lock(shard->mutex, std::defer_lock);
    {
      ScopedStageTimer stage(&trace, TraceStage::kShardLockWait);
      lock.lock();
    }
    if (epoch->retired.load(std::memory_order_acquire)) {
      // A reconfiguration replaced this epoch between pin and lock: the
      // satisfying set and routing are stale. The publish order (new state
      // first, retired flag second) guarantees the re-pin sees the new
      // epoch — retry against it.
      continue;
    }
    const Status admitted = AdmitLocked(*epoch, shard, issued, scope,
                                        &decision, &trace);
    if (!admitted.ok()) {
      trace.Finish(TraceOutcome::kError);
      return admitted;
    }
    break;
  }
  if (decision.aggregate_valid) {
    metrics_->RecordAccepted(decision.equations_checked, timer.ElapsedNanos());
    trace.Finish(TraceOutcome::kAccepted);
  } else {
    metrics_->RecordRejectedAggregate(decision.equations_checked,
                                      timer.ElapsedNanos());
    trace.Finish(TraceOutcome::kRejectedAggregate);
  }
  return decision;
}

Result<std::vector<OnlineDecision>> IssuanceService::TryIssueBatch(
    const std::vector<License>& batch) {
  std::vector<OnlineDecision> decisions(batch.size());
  GEOLIC_RETURN_IF_ERROR(TryIssueBatch(std::span<const License>(batch),
                                       std::span<OnlineDecision>(decisions)));
  return decisions;
}

Status IssuanceService::TryIssueBatch(std::span<const License> batch,
                                      std::span<OnlineDecision> decisions) {
  // Thin shim over the pointer form: the pointer array is arena scratch,
  // so this stays allocation-free after warmup.
  RequestArena& arena = ThreadLocalRequestArena();
  const ArenaScope scratch(&arena);
  const License** pointers =
      arena.AllocateArray<const License*>(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    pointers[i] = &batch[i];
  }
  return TryIssueBatch(
      std::span<const License* const>(pointers, batch.size()), decisions);
}

Status IssuanceService::TryIssueBatch(std::span<const License* const> batch,
                                      std::span<OnlineDecision> decisions) {
  GEOLIC_DCHECK(decisions.size() >= batch.size());
  RequestTimer timer(options_.sim_hooks);
  metrics_->RecordBatch(batch.size());
  for (const License* issued : batch) {
    if (issued->aggregate_count() <= 0) {
      return Status::InvalidArgument(
          "issued license must carry a positive count");
    }
  }

  // Batch scratch lives in the calling thread's request arena and is
  // released wholesale when the call returns — zero heap traffic after the
  // arena's first-use warmup.
  RequestArena& arena = ThreadLocalRequestArena();
  const ArenaScope scratch(&arena);

  // Requests still awaiting a decision. A round processes all of them
  // against one pinned epoch; if a reconfiguration retires that epoch
  // mid-round, the unadmitted remainder re-routes against the new one.
  size_t* todo = arena.AllocateArray<size_t>(batch.size());
  size_t todo_count = batch.size();
  for (size_t i = 0; i < batch.size(); ++i) {
    todo[i] = i;
  }

  struct Pending {
    size_t shard;
    size_t index;
  };
  while (todo_count > 0) {
    const std::shared_ptr<const CatalogEpoch> epoch = Pin();

    // Pass 1, lock-free: satisfying sets, instance rejects, shard routing.
    // Scopes are routed per admission in pass 2 (a reference lookup, not a
    // copy), so a pending entry stays a trivially-destructible POD the
    // arena can drop without running destructors.
    Pending* pending = arena.AllocateArray<Pending>(todo_count);
    size_t pending_count = 0;
    {
      // One standalone span for the whole lock-free pass (request_id 0):
      // the per-request work here is too fine to time individually.
      ScopedTracerSpan pass1(options_.tracer, TraceStage::kInstanceSoaScan);
      for (size_t k = 0; k < todo_count; ++k) {
        const size_t i = todo[k];
        decisions[i] = OnlineDecision();
        decisions[i].catalog_epoch = epoch->epoch;
        decisions[i].satisfying_set =
            epoch->instance.SatisfyingSet(*batch[i]);
        if (decisions[i].satisfying_set.Empty()) {
          metrics_->RecordRejectedInstance(timer.ElapsedNanos());
          continue;
        }
        decisions[i].instance_valid = true;
        size_t shard_index = 0;
        (void)RouteSet(*epoch, decisions[i].satisfying_set, &shard_index);
        pending[pending_count++] = Pending{shard_index, i};
      }
    }

    // Pass 2: group by shard so each touched shard is locked once per
    // round. Sorting by (shard, index) keeps the batch's relative order
    // within a shard — the same order a stable shard-only sort would give,
    // without stable_sort's temporary buffer — so the decisions match a
    // sequential TryIssue loop (cross-shard order cannot matter: different
    // shards share no equations).
    std::sort(pending, pending + pending_count,
              [](const Pending& a, const Pending& b) {
                return a.shard != b.shard ? a.shard < b.shard
                                          : a.index < b.index;
              });
    SimYield(options_, "batch_routed");
    size_t at = 0;
    bool epoch_retired = false;
    while (at < pending_count) {
      const size_t shard_index = pending[at].shard;
      Shard* shard = epoch->shards[shard_index].get();
      SimYield(options_, "pre_shard_lock");
      std::unique_lock<std::mutex> lock(shard->mutex, std::defer_lock);
      {
        ScopedTracerSpan wait(options_.tracer, TraceStage::kShardLockWait);
        lock.lock();
      }
      if (epoch->retired.load(std::memory_order_acquire)) {
        epoch_retired = true;
        break;
      }
      for (; at < pending_count && pending[at].shard == shard_index; ++at) {
        const Pending& p = pending[at];
        RequestTrace trace(options_.tracer);
        size_t routed_shard = 0;
        const LicenseSet& scope =
            RouteSet(*epoch, decisions[p.index].satisfying_set, &routed_shard);
        const Status admitted = AdmitLocked(*epoch, shard, *batch[p.index],
                                            scope, &decisions[p.index],
                                            &trace);
        if (!admitted.ok()) {
          trace.Finish(TraceOutcome::kError);
          return admitted;
        }
        if (decisions[p.index].aggregate_valid) {
          metrics_->RecordAccepted(decisions[p.index].equations_checked,
                                   timer.ElapsedNanos());
          trace.Finish(TraceOutcome::kAccepted);
        } else {
          metrics_->RecordRejectedAggregate(
              decisions[p.index].equations_checked, timer.ElapsedNanos());
          trace.Finish(TraceOutcome::kRejectedAggregate);
        }
      }
    }
    if (!epoch_retired) {
      return Status::Ok();
    }
    // A reconfiguration landed mid-round. Decisions already finalized
    // stand (they linearized before the swap); the remainder retries
    // against the new epoch.
    size_t remaining = 0;
    for (size_t k = at; k < pending_count; ++k) {
      todo[remaining++] = pending[k].index;
    }
    todo_count = remaining;
  }
  return Status::Ok();
}

// --- Live license lifecycle ---

Result<int> IssuanceService::ReconfigureLocked(const ReconfigPlan& plan) {
  ScopedTracerSpan span(options_.tracer, TraceStage::kShardSwap);
  const std::shared_ptr<const CatalogEpoch> cur = Pin();

  // Phase 1: next catalog + incremental grouping, fully off to the side —
  // admissions keep running against `cur` throughout.
  const int old_size = cur->catalog->size();
  auto next_catalog = std::make_unique<LicenseCatalog>(&cur->catalog->schema());
  std::vector<int> old_to_new;
  old_to_new.reserve(static_cast<size_t>(old_size));
  int next_index = 0;
  for (int i = 0; i < old_size; ++i) {
    if (plan.removed.Contains(i)) {
      old_to_new.push_back(-1);
      continue;
    }
    old_to_new.push_back(next_index++);
    GEOLIC_ASSIGN_OR_RETURN(const int added,
                            next_catalog->Add(cur->catalog->at(i)));
    GEOLIC_DCHECK(added == old_to_new[static_cast<size_t>(i)]);
    (void)added;
  }
  // The grouping updates on a scratch copy, committed only on success —
  // a failed reconfiguration leaves no trace.
  DynamicGrouping next_grouping = dyn_grouping_;
  int result = 0;
  if (plan.acquire != nullptr) {
    GEOLIC_ASSIGN_OR_RETURN(result, next_catalog->Add(*plan.acquire));
    GEOLIC_ASSIGN_OR_RETURN(const int grouped,
                            next_grouping.AddLicense(plan.acquire->rect()));
    if (grouped != result) {
      return Status::Internal(
          "grouping and catalog disagree on the acquired index");
    }
  } else {
    const std::vector<int> removing = plan.removed.ToIndexes();
    result = static_cast<int>(removing.size());
    // Descending, so earlier removals don't shift the later indexes.
    for (auto it = removing.rbegin(); it != removing.rend(); ++it) {
      GEOLIC_RETURN_IF_ERROR(next_grouping.RemoveLicense(*it));
    }
  }
  const LicenseCatalog* next_catalog_ptr = next_catalog.get();
  std::shared_ptr<CatalogEpoch> next = BuildEpoch(
      options_, cur->epoch + 1, next_catalog_ptr, std::move(next_catalog),
      LicenseGrouping::FromComponents(next_grouping.Components()));

  // Phase 2: snapshot each shard's log (one lock at a time — issuance on
  // the other shards never stalls) and seed the new shards with the
  // remapped survivors, re-dividing the trees into the new overlap groups
  // (paper Algorithms 4–5). Admissions that land after a shard's snapshot
  // are caught up in phase 3.
  std::vector<size_t> snapshotted(cur->shards.size(), 0);
  for (size_t s = 0; s < cur->shards.size(); ++s) {
    Shard* shard = cur->shards[s].get();
    std::lock_guard<std::mutex> lock(shard->mutex);
    snapshotted[s] = shard->log.size();
    for (size_t r = 0; r < snapshotted[s]; ++r) {
      LogRecord record = shard->log.records()[r];
      if (!RemapRecord(plan.removed, old_to_new,
                       options_.sim_skip_renumbering, &record)) {
        continue;
      }
      GEOLIC_RETURN_IF_ERROR(ApplyRecordToEpoch(next.get(), record));
    }
  }

  // Phase 3: catch-up, journal, publish — under every current shard lock
  // (index order) and then the journal lock, the same order the admission
  // path uses, so no admission is in flight half-applied while we cut
  // over and none can start against the old epoch after we publish.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(cur->shards.size());
  for (const std::unique_ptr<Shard>& shard : cur->shards) {
    shard_locks.emplace_back(shard->mutex);
  }
  for (size_t s = 0; s < cur->shards.size(); ++s) {
    const std::vector<LogRecord>& records = cur->shards[s]->log.records();
    for (size_t r = snapshotted[s]; r < records.size(); ++r) {
      LogRecord record = records[r];
      if (!RemapRecord(plan.removed, old_to_new,
                       options_.sim_skip_renumbering, &record)) {
        continue;
      }
      GEOLIC_RETURN_IF_ERROR(ApplyRecordToEpoch(next.get(), record));
    }
  }
  if (has_journal_.load(std::memory_order_acquire)) {
    // Write-ahead: the reconfiguration frame reaches the journal before
    // the new epoch publishes; a journal failure aborts the whole
    // reconfiguration with the old epoch untouched.
    std::lock_guard<std::mutex> journal_lock(journal_mutex_);
    if (plan.acquire != nullptr) {
      GEOLIC_RETURN_IF_ERROR(
          journal_->AppendAcquire(journal_seq_ + 1, *plan.acquire));
    } else if (plan.expire_dim >= 0) {
      GEOLIC_RETURN_IF_ERROR(
          journal_->AppendExpire(journal_seq_ + 1, plan.expire_dim,
                                 plan.expire_cutoff, plan.removed.ToIndexes()));
    } else {
      GEOLIC_RETURN_IF_ERROR(journal_->AppendRevoke(
          journal_seq_ + 1, plan.revoke_index, plan.revoke_id));
    }
    ++journal_seq_;
  }
  // Publish, then retire — in this order: a reader that finds its pinned
  // epoch retired is guaranteed to observe the new state on re-pin. The
  // old epoch's memory is reclaimed when its last in-flight reader drops
  // its pin (the shared_ptr count).
  state_.store(std::shared_ptr<const CatalogEpoch>(next),
               std::memory_order_release);
  cur->retired.store(true, std::memory_order_release);
  dyn_grouping_ = std::move(next_grouping);
  return result;
}

Result<int> IssuanceService::AcquireLicense(const License& license) {
  SimYield(options_, "pre_reconfig");
  std::lock_guard<std::mutex> reconfig_lock(reconfig_mutex_);
  ReconfigPlan plan;
  plan.acquire = &license;
  return ReconfigureLocked(plan);
}

Status IssuanceService::RevokeLicense(int index) {
  SimYield(options_, "pre_reconfig");
  std::lock_guard<std::mutex> reconfig_lock(reconfig_mutex_);
  return RevokeIndexLocked(index);
}

Status IssuanceService::RevokeLicenseById(const std::string& id) {
  SimYield(options_, "pre_reconfig");
  std::lock_guard<std::mutex> reconfig_lock(reconfig_mutex_);
  const Result<int> index = Pin()->catalog->IndexOfId(id);
  if (!index.ok()) {
    return index.status();
  }
  return RevokeIndexLocked(*index);
}

Status IssuanceService::RevokeIndexLocked(int index) {
  const std::shared_ptr<const CatalogEpoch> cur = Pin();
  if (index < 0 || index >= cur->catalog->size()) {
    return Status::OutOfRange("revoke index out of range");
  }
  if (cur->catalog->size() == 1) {
    // An empty catalog has nothing to route or validate against.
    return Status::FailedPrecondition("cannot revoke the last license");
  }
  ReconfigPlan plan;
  plan.removed.Add(index);
  plan.revoke_index = index;
  plan.revoke_id = cur->catalog->at(index).id();
  return ReconfigureLocked(plan).status();
}

Result<int> IssuanceService::ExpireDimensionBelow(int dim, int64_t cutoff) {
  SimYield(options_, "pre_reconfig");
  std::lock_guard<std::mutex> reconfig_lock(reconfig_mutex_);
  const std::shared_ptr<const CatalogEpoch> cur = Pin();
  GEOLIC_ASSIGN_OR_RETURN(const std::vector<int> expired,
                          ComputeExpired(cur->catalog->licenses(), dim,
                                         cutoff));
  if (expired.empty()) {
    return 0;  // Nothing expires: no epoch change, no journal frame.
  }
  if (static_cast<int>(expired.size()) == cur->catalog->size()) {
    return Status::FailedPrecondition("expiry would remove every license");
  }
  ReconfigPlan plan;
  for (int i : expired) {
    plan.removed.Add(i);
  }
  plan.expire_dim = dim;
  plan.expire_cutoff = cutoff;
  return ReconfigureLocked(plan);
}

Result<int> IssuanceService::ExpireBefore(Date cutoff) {
  // The schema is shared by every epoch, so reading it unpinned is safe.
  const ConstraintSchema& schema = Pin()->catalog->schema();
  for (int dim = 0; dim < schema.dimensions(); ++dim) {
    if (schema.kind(dim) == DimensionKind::kInterval &&
        schema.format(dim) == IntervalFormat::kDate) {
      return ExpireDimensionBelow(dim, cutoff.day_number());
    }
  }
  return Status::InvalidArgument(
      "schema has no date dimension to expire against");
}

uint64_t IssuanceService::catalog_epoch() const { return Pin()->epoch; }

const LicenseCatalog& IssuanceService::licenses() const {
  return *Pin()->catalog;
}

const LicenseGrouping& IssuanceService::grouping() const {
  return Pin()->grouping;
}

int IssuanceService::shard_count() const {
  return static_cast<int>(Pin()->shards.size());
}

void IssuanceService::ReserveLogCapacity(size_t records_per_shard) {
  const std::shared_ptr<const CatalogEpoch> epoch = Pin();
  for (const std::unique_ptr<Shard>& shard : epoch->shards) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->log.Reserve(records_per_shard);
  }
}

LogStore IssuanceService::CollectLog() const {
  const std::shared_ptr<const CatalogEpoch> epoch = Pin();
  LogStore merged;
  for (const std::unique_ptr<Shard>& shard : epoch->shards) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const LogRecord& record : shard->log.records()) {
      // Append only fails on empty sets / nonpositive counts, which the
      // admission path already rejected.
      Status append_status = merged.Append(record);
      (void)append_status;
    }
  }
  return merged;
}

Result<ValidationTree> IssuanceService::CollectTree() const {
  const std::shared_ptr<const CatalogEpoch> epoch = Pin();
  ValidationTree merged;
  for (const std::unique_ptr<Shard>& shard : epoch->shards) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    Status status = Status::Ok();
    shard->tree.ForEachSet([&](LicenseSet set, int64_t count) {
      if (status.ok()) {
        status = merged.Insert(set, count);
      }
    });
    GEOLIC_RETURN_IF_ERROR(status);
  }
  return merged;
}

Result<FlatValidationTree> IssuanceService::CollectFlatTree() const {
  GEOLIC_ASSIGN_OR_RETURN(const ValidationTree merged, CollectTree());
  return FlatValidationTree::Compile(merged);
}

Status IssuanceService::AttachJournal(std::unique_ptr<JournalWriter> journal) {
  if (journal == nullptr) {
    return Status::InvalidArgument("cannot attach a null journal");
  }
  if (journal->frames_appended() != 0) {
    return Status::InvalidArgument(
        "journal already carries frames; attach a fresh journal file");
  }
  if (Pin()->epoch != 0) {
    // Replay needs the journal to cover every reconfiguration since the
    // construction-time catalog; attaching after one would leave a gap no
    // recovery could bridge.
    return Status::FailedPrecondition(
        "attach the journal before any catalog reconfiguration");
  }
  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (journal_ != nullptr) {
    return Status::FailedPrecondition("a journal is already attached");
  }
  journal_ = std::move(journal);
  journal_->set_tracer(options_.tracer);
  journal_seq_ = 0;
  has_journal_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status IssuanceService::SyncJournal() {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (journal_ == nullptr) {
    return Status::Ok();
  }
  return journal_->Sync();
}

uint64_t IssuanceService::journal_sequence() const {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  return journal_seq_;
}

ExpositionInput IssuanceService::Snap() const {
  ExpositionInput input;
  input.metrics = metrics_->Snap();
  if (options_.tracer != nullptr) {
    input.has_stages = true;
    input.stages = options_.tracer->ProfileSnapshot();
  }
  if (has_journal()) {
    input.has_journal = true;
    input.journal_sequence = journal_sequence();
  }
  return input;
}

Status IssuanceService::WriteCheckpoint(const std::string& path) const {
  ScopedTracerSpan span(options_.tracer, TraceStage::kCheckpointWrite);
  SimYield(options_, "pre_checkpoint");
  for (;;) {
    // Exact cut: every shard lock in index order, then the journal lock —
    // the same order AdmitLocked and ReconfigureLocked use, so no
    // admission can be half-applied (journaled but not yet in its shard)
    // while we read. A reconfiguration that won the race retires our
    // pinned epoch before we got the locks; detect that and retry against
    // the published epoch, whose shards hold the carried-over records.
    const std::shared_ptr<const CatalogEpoch> epoch = Pin();
    std::vector<std::unique_lock<std::mutex>> shard_locks;
    shard_locks.reserve(epoch->shards.size());
    for (const std::unique_ptr<Shard>& shard : epoch->shards) {
      shard_locks.emplace_back(shard->mutex);
    }
    if (epoch->retired.load(std::memory_order_acquire)) {
      continue;
    }
    std::lock_guard<std::mutex> journal_lock(journal_mutex_);

    LogStore merged;
    for (const std::unique_ptr<Shard>& shard : epoch->shards) {
      for (const LogRecord& record : shard->log.records()) {
        GEOLIC_RETURN_IF_ERROR(merged.Append(record));
      }
    }
    // v3 payload: sentinel, version, the catalog epoch the records are
    // numbered in, the journal sequence this snapshot covers, then the
    // record table. Recovery replays only journal frames with seq >
    // covered — and checks the epoch tag against the journal's
    // reconfiguration history up to that point.
    std::ostringstream body;
    const uint64_t sentinel = kCheckpointV3Sentinel;
    body.write(reinterpret_cast<const char*>(&sentinel), sizeof(sentinel));
    const uint32_t version = kCheckpointV3Version;
    body.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t epoch_number = epoch->epoch;
    body.write(reinterpret_cast<const char*>(&epoch_number),
               sizeof(epoch_number));
    const uint64_t covered_seq = journal_seq_;
    body.write(reinterpret_cast<const char*>(&covered_seq),
               sizeof(covered_seq));
    merged.SerializeRecords(&body);
    return WriteCheckpointFile(CheckpointKind::kServiceSnapshot, body.str(),
                               path);
  }
}

Result<std::unique_ptr<IssuanceService>> IssuanceService::Recover(
    const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
    const std::string& checkpoint_path, const std::string& journal_path,
    RecoveryStats* stats) {
  if (checkpoint_path.empty() && journal_path.empty()) {
    return Status::InvalidArgument(
        "recovery needs a checkpoint path, a journal path, or both");
  }
  if (licenses == nullptr || licenses->empty()) {
    return Status::InvalidArgument(
        "recovery needs the catalog the journal started from");
  }
  ScopedTracerSpan span(options.tracer, TraceStage::kRecoveryReplay);
  RecoveryStats local;
  uint64_t covered_seq = 0;
  uint64_t ckpt_epoch = 0;
  bool have_checkpoint = false;
  LogStore checkpoint_records;
  if (!checkpoint_path.empty()) {
    GEOLIC_ASSIGN_OR_RETURN(
        const std::string payload,
        ReadCheckpointFile(CheckpointKind::kServiceSnapshot,
                           checkpoint_path));
    std::istringstream body(payload);
    uint64_t first = 0;
    body.read(reinterpret_cast<char*>(&first), sizeof(first));
    if (!body) {
      return Status::ParseError("service checkpoint payload truncated: " +
                                checkpoint_path);
    }
    if (first == kCheckpointV3Sentinel) {
      uint32_t version = 0;
      body.read(reinterpret_cast<char*>(&version), sizeof(version));
      body.read(reinterpret_cast<char*>(&ckpt_epoch), sizeof(ckpt_epoch));
      body.read(reinterpret_cast<char*>(&covered_seq), sizeof(covered_seq));
      if (!body) {
        return Status::ParseError("service checkpoint payload truncated: " +
                                  checkpoint_path);
      }
      if (version != kCheckpointV3Version) {
        return Status::ParseError(
            "unsupported service checkpoint payload version");
      }
    } else {
      // Legacy payload: the first word is the covered sequence; written
      // before reconfigurations existed, so it covers epoch 0.
      covered_seq = first;
    }
    GEOLIC_ASSIGN_OR_RETURN(LogStore records,
                            LogStore::DeserializeRecords(&body));
    if (body.peek() != std::istringstream::traits_type::eof()) {
      return Status::ParseError("trailing bytes after checkpoint records: " +
                                checkpoint_path);
    }
    local.checkpoint_records = records.size();
    checkpoint_records = std::move(records);
    have_checkpoint = true;
  }
  JournalReplay replay;
  if (!journal_path.empty()) {
    GEOLIC_ASSIGN_OR_RETURN(replay, JournalReader::ReadFile(journal_path));
    local.journal_torn_tail = replay.torn_tail;
  }

  // Stage 1 — frames the checkpoint covers. Admissions are already inside
  // the checkpoint's record table; reconfigurations must still evolve the
  // catalog, because the checkpoint's records are numbered in the evolved
  // index space.
  std::vector<License> active = licenses->licenses();
  uint64_t epoch = 0;
  CatalogEvolution evolution;
  size_t at = 0;
  for (; at < replay.entries.size() && replay.entries[at].seq <= covered_seq;
       ++at) {
    const JournalEntry& entry = replay.entries[at];
    if (entry.kind == JournalEntryKind::kAdmission) {
      // The reader guarantees seqs are contiguous from 1, so the frames
      // past the checkpoint's covered seq are exactly the uncovered tail.
      ++local.journal_records_skipped;
      continue;
    }
    GEOLIC_RETURN_IF_ERROR(EvolveCatalog(entry, &active, &evolution));
    ++epoch;
    ++local.reconfig_records_replayed;
  }
  if (have_checkpoint && epoch != ckpt_epoch) {
    return Status::ParseError(
        "checkpoint catalog epoch disagrees with the journal's "
        "reconfiguration history");
  }
  const auto in_range = [](const LicenseSet& set, size_t catalog_size) {
    return set.IsSubsetOf(LicenseSet::Full(static_cast<int>(catalog_size)));
  };
  std::vector<LogRecord> combined;
  combined.reserve(checkpoint_records.size());
  for (const LogRecord& record : checkpoint_records.records()) {
    if (!in_range(record.set, active.size())) {
      return Status::ParseError(
          "checkpoint record references unknown license indexes");
    }
    combined.push_back(record);
  }

  // Stage 2 — the uncovered tail: admissions append; reconfigurations
  // evolve the catalog and remap everything accumulated so far, exactly
  // as the live service did.
  for (; at < replay.entries.size(); ++at) {
    const JournalEntry& entry = replay.entries[at];
    ++local.journal_records_replayed;
    if (entry.kind == JournalEntryKind::kAdmission) {
      if (!in_range(entry.record.set, active.size())) {
        return Status::ParseError(
            "journal record references unknown license indexes");
      }
      combined.push_back(entry.record);
      continue;
    }
    GEOLIC_RETURN_IF_ERROR(EvolveCatalog(entry, &active, &evolution));
    ++epoch;
    ++local.reconfig_records_replayed;
    std::vector<LogRecord> remapped;
    remapped.reserve(combined.size());
    for (LogRecord& record : combined) {
      if (RemapRecord(evolution.removed, evolution.old_to_new,
                      /*skip_renumbering=*/false, &record)) {
        remapped.push_back(std::move(record));
      }
    }
    combined = std::move(remapped);
  }
  local.recovered_catalog_epoch = epoch;

  // Final catalog: unevolved recovery borrows the caller's; an evolved one
  // is rebuilt and owned by the recovered service (which restarts at epoch
  // 0 — the recovered catalog is the new baseline).
  std::unique_ptr<LicenseCatalog> owned;
  const LicenseCatalog* final_catalog = licenses;
  if (epoch != 0) {
    owned = std::make_unique<LicenseCatalog>(&licenses->schema());
    for (License& license : active) {
      GEOLIC_ASSIGN_OR_RETURN(const int added, owned->Add(std::move(license)));
      (void)added;
    }
    final_catalog = owned.get();
  }
  LogStore combined_store;
  for (LogRecord& record : combined) {
    GEOLIC_RETURN_IF_ERROR(combined_store.Append(std::move(record)));
  }
  GEOLIC_ASSIGN_OR_RETURN(
      std::unique_ptr<IssuanceService> service,
      CreateOwned(final_catalog, std::move(owned), options, combined_store));
  // Cross-check the sharded rebuild against a serial replay of the same
  // records: recovery must reproduce the exact pre-crash accepted set or
  // fail — never return silently wrong state.
  GEOLIC_ASSIGN_OR_RETURN(const ValidationTree recovered,
                          service->CollectTree());
  GEOLIC_ASSIGN_OR_RETURN(const ValidationTree serial,
                          ValidationTree::BuildFromLog(combined_store));
  if (recovered.ToString() != serial.ToString() ||
      recovered.TotalCount() != serial.TotalCount()) {
    return Status::Internal(
        "recovered state diverges from a serial replay of the records");
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return service;
}

}  // namespace geolic
