#ifndef GEOLIC_SERVICE_ISSUANCE_SERVICE_H_
#define GEOLIC_SERVICE_ISSUANCE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/grouping.h"
#include "core/instance_validator.h"
#include "core/online_validator.h"
#include "licensing/license_catalog.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "persist/journal.h"
#include "validation/flat_tree.h"
#include "validation/log_store.h"
#include "validation/validation_tree.h"
#include "util/metrics.h"
#include "util/status.h"

namespace geolic {

// What IssuanceService::Recover reconstructed the state from.
struct RecoveryStats {
  size_t checkpoint_records = 0;         // Records loaded from the checkpoint.
  size_t journal_records_replayed = 0;   // Journal frames past the checkpoint.
  size_t journal_records_skipped = 0;    // Frames the checkpoint already covers.
  bool journal_torn_tail = false;        // Journal ended in a torn write.
};

// Thread-safe online admission for one (content, permission) domain — the
// concurrent counterpart of OnlineValidator.
//
// The paper's grouping result doubles as a sharding theorem: licenses in
// different overlap groups share no validation equations (Theorem 2), so
// issuances whose satisfying sets fall in different groups can admit fully
// in parallel with no coordination. The service therefore splits the
// running validation tree and log into per-overlap-group shards, each
// guarded by its own mutex; a request only ever locks the one shard its
// satisfying set lives in.
//
// Concurrency contract:
//  * TryIssue / TryIssueBatch are safe to call from any number of threads.
//  * The instance-based fast-reject path is lock-free: the satisfying-set
//    lookup reads only immutable state (the license geometry), so requests
//    outside every license never contend.
//  * CollectLog / CollectTree lock shards one at a time and return
//    snapshots; they can run concurrently with issuance (the snapshot is a
//    consistent prefix per shard, not a cross-shard instant).
//  * Accessors (licenses, grouping, options, shard_count) touch immutable
//    state only.
//
// Admissions are linearized per shard, so for any interleaving the final
// tree/log equal a serial replay of the accepted set (order within a shard
// is the shard's admission order; cross-shard order is immaterial because
// the shards share no equations).
class IssuanceService {
 public:
  // `licenses` must be non-empty and outlive the service; so must
  // `options.metrics` when set. options.use_grouping=false degrades to a
  // single shard covering all licenses (every admission serializes — the
  // baseline the concurrency ablation measures against);
  // options.shard_hint caps the number of lock shards (groups are striped
  // over min(hint, group_count) mutexes).
  static Result<std::unique_ptr<IssuanceService>> Create(
      const LicenseCatalog* licenses, const OnlineValidatorOptions& options = {});

  // Pre-loads already-validated issuances (not re-checked) into the
  // shards, as OnlineValidator::CreateWithHistory does.
  static Result<std::unique_ptr<IssuanceService>> CreateWithHistory(
      const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
      const LogStore& history);

  // Rebuilds a service from a crash: the newest checkpoint (may be empty —
  // journal-only recovery) plus the journal tail past it (may be empty —
  // checkpoint-only). Frames the checkpoint already covers are skipped; a
  // torn final frame (crash mid-append, never acknowledged as synced) is
  // dropped; any other journal or checkpoint corruption fails loudly with
  // the bad frame's byte offset. The rebuilt state is verified against a
  // serial replay of the combined record sequence before returning — the
  // result is the exact pre-crash accepted set or an error, never silently
  // wrong. The recovered service has no journal attached; call
  // AttachJournal with a fresh journal file to resume durable admission.
  static Result<std::unique_ptr<IssuanceService>> Recover(
      const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
      const std::string& checkpoint_path, const std::string& journal_path,
      RecoveryStats* stats = nullptr);

  IssuanceService(const IssuanceService&) = delete;
  IssuanceService& operator=(const IssuanceService&) = delete;

  // Validates one issuance and records it when accepted. Identical
  // decision semantics to OnlineValidator::TryIssue.
  Result<OnlineDecision> TryIssue(const License& issued);

  // Admits a batch, returning decisions in input order. Requests are
  // processed shard-by-shard (one lock acquisition per shard touched, not
  // per request); within a shard the batch's relative order is preserved,
  // so the decisions equal a sequential TryIssue loop over the batch.
  Result<std::vector<OnlineDecision>> TryIssueBatch(
      const std::vector<License>& batch);

  // Allocation-free variant: identical decision semantics, but the caller
  // owns the decision storage (`decisions.size() >= batch.size()`; entries
  // are overwritten) and all batch scratch comes from the calling thread's
  // RequestArena — after warmup the steady state performs no heap
  // allocation (see docs/DESIGN.md, "Arena lifetime rules").
  Status TryIssueBatch(std::span<const License> batch,
                       std::span<OnlineDecision> decisions);

  // Snapshot of all accepted issuances, shard by shard (within a shard:
  // admission order). Feedable to the offline validators; equal as a
  // multiset to any serial replay of the accepted set.
  LogStore CollectLog() const;

  // Snapshot of the combined validation tree (the union of the shard
  // trees; shards share no license indexes, so this is a plain merge).
  Result<ValidationTree> CollectTree() const;

  // Snapshot compiled straight into the offline hot-path form: the shards
  // keep their mutable pointer trees for admission, but offline audits of
  // a running service should query this flat, pruning-aware arena
  // (validation/flat_tree.h) instead of walking pointers.
  Result<FlatValidationTree> CollectFlatTree() const;

  // Turns on write-ahead journaling: every subsequently accepted issuance
  // is framed and appended to `journal` before the shard's in-memory state
  // changes or the decision returns, so a crash can never have accepted an
  // issuance the journal does not know. A journal append failure rejects
  // the admission (error from TryIssue) and leaves all state unchanged.
  // Must be called before issuance traffic starts (it is not synchronized
  // against in-flight TryIssue calls); fails if a journal is already
  // attached or frames were already written to this journal.
  Status AttachJournal(std::unique_ptr<JournalWriter> journal);

  // Forces every journaled frame to stable storage (for fsync_interval
  // batching); no-op without a journal.
  Status SyncJournal();

  bool has_journal() const {
    return has_journal_.load(std::memory_order_acquire);
  }

  // Sequence number of the last journaled admission (0 = none yet).
  uint64_t journal_sequence() const;

  // Atomically snapshots the full accepted set plus the journal sequence
  // it covers into a v2 checkpoint file (persist/checkpoint.h, kind =
  // service-snapshot). Takes every shard lock (in index order) and the
  // journal lock, so the cut is exact: recovery from this checkpoint plus
  // the same journal's tail reproduces the state byte-for-byte. Safe to
  // call while issuance traffic is running.
  Status WriteCheckpoint(const std::string& path) const;

  const LicenseCatalog& licenses() const { return *licenses_; }
  const LicenseGrouping& grouping() const { return grouping_; }
  const OnlineValidatorOptions& options() const { return options_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }

  // Pre-sizes every shard's log record table for `records_per_shard`
  // appends, so steady-state admission never regrows it. Call before
  // issuance traffic starts (not synchronized against in-flight requests).
  void ReserveLogCapacity(size_t records_per_shard);

  // Decision counters and latency histogram. Points at options.metrics
  // when that was set, else at a service-owned block.
  const IssuanceMetrics& metrics() const { return *metrics_; }

  // Point-in-time observability snapshot, ready for the obs exposition
  // renderers: decision counters + request latency, the per-stage profile
  // when a tracer is attached (options.tracer), and the journal sequence
  // when a journal is. Safe to call concurrently with issuance traffic.
  // Recovery counters are per-Recover-call (RecoveryStats); callers merge
  // them into the returned input themselves.
  ExpositionInput Snap() const;

 private:
  struct Shard {
    std::mutex mutex;
    ValidationTree tree;  // Masks in original license indexes.
    LogStore log;
  };

  IssuanceService(const LicenseCatalog* licenses,
                  const OnlineValidatorOptions& options,
                  LicenseGrouping grouping);

  // Shard that owns license group `group` (groups striped over shards).
  size_t ShardOf(int group) const;
  // Equation scope for satisfying set `s` (its group's mask, or the full
  // set without grouping), plus the owning shard index. The returned
  // reference aliases a scope precomputed at construction (group_scopes_ /
  // all_mask_) — no copy, valid for the service's lifetime.
  const LicenseSet& RouteSet(const LicenseSet& s, size_t* shard) const;
  // Equation check + tree/log update for one request. Caller holds
  // `shard.mutex`. `decision` already carries the satisfying set; `trace`
  // collects the equation-scan and journal-append spans (never null — pass
  // a RequestTrace built from a null tracer to run untraced).
  Status AdmitLocked(Shard* shard, const License& issued,
                     const LicenseSet& scope, OnlineDecision* decision,
                     RequestTrace* trace);

  const LicenseCatalog* licenses_;
  OnlineValidatorOptions options_;
  LicenseGrouping grouping_;
  SoaInstanceValidator instance_validator_;  // Immutable ⇒ lock-free.
  // Equation scopes, one per overlap group, plus the ungrouped full mask —
  // built once so the hot path hands out references instead of copying a
  // LicenseSet (which may heap-allocate) per request.
  std::vector<LicenseSet> group_scopes_;
  LicenseSet all_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
  IssuanceMetrics owned_metrics_;
  IssuanceMetrics* metrics_;  // == options_.metrics or &owned_metrics_.
  std::atomic<int64_t> issue_sequence_{0};

  // Write-ahead journal. `has_journal_` gates the accept path so services
  // without a journal never touch `journal_mutex_` (the sharded fast path
  // stays lock-disjoint across groups). Lock order: shard mutex(es), then
  // journal_mutex_ — AdmitLocked and WriteCheckpoint both follow it.
  std::atomic<bool> has_journal_{false};
  mutable std::mutex journal_mutex_;
  std::unique_ptr<JournalWriter> journal_;  // Guarded by journal_mutex_.
  uint64_t journal_seq_ = 0;                // Guarded by journal_mutex_.
};

}  // namespace geolic

#endif  // GEOLIC_SERVICE_ISSUANCE_SERVICE_H_
