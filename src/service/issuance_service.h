#ifndef GEOLIC_SERVICE_ISSUANCE_SERVICE_H_
#define GEOLIC_SERVICE_ISSUANCE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/dynamic_grouping.h"
#include "core/grouping.h"
#include "core/instance_validator.h"
#include "core/online_validator.h"
#include "licensing/license_catalog.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "persist/journal.h"
#include "validation/flat_tree.h"
#include "validation/log_store.h"
#include "validation/validation_tree.h"
#include "util/date.h"
#include "util/metrics.h"
#include "util/status.h"

namespace geolic {

// What IssuanceService::Recover reconstructed the state from.
struct RecoveryStats {
  size_t checkpoint_records = 0;         // Records loaded from the checkpoint.
  size_t journal_records_replayed = 0;   // Journal frames past the checkpoint.
  size_t journal_records_skipped = 0;    // Frames the checkpoint already covers.
  size_t reconfig_records_replayed = 0;  // Acquire/revoke/expire frames applied
                                         // to the catalog evolution (covered or
                                         // not — all are needed for indexes).
  uint64_t recovered_catalog_epoch = 0;  // Final epoch in the journal's
                                         // numbering (the recovered service
                                         // itself restarts at epoch 0).
  bool journal_torn_tail = false;        // Journal ended in a torn write.
};

// Thread-safe online admission for one (content, permission) domain — the
// concurrent counterpart of OnlineValidator.
//
// The paper's grouping result doubles as a sharding theorem: licenses in
// different overlap groups share no validation equations (Theorem 2), so
// issuances whose satisfying sets fall in different groups can admit fully
// in parallel with no coordination. The service therefore splits the
// running validation tree and log into per-overlap-group shards, each
// guarded by its own mutex; a request only ever locks the one shard its
// satisfying set lives in.
//
// Live license lifecycle (paper Figure 6 + Algorithms 4–5): the catalog,
// grouping, instance geometry and shard map together form one immutable
// `CatalogEpoch`, published through an atomic shared_ptr. AcquireLicense /
// RevokeLicense / ExpireBefore build the next epoch off to the side —
// re-dividing the shard trees into the new overlap groups and renumbering
// license indexes densely past a removal — then publish it with a single
// atomic swap and mark the old epoch retired. Issuance never stops:
// readers pin the current epoch (a shared_ptr ref, no lock) for the
// instance fast-reject, and an admission that finds its pinned epoch
// retired after taking the shard lock simply re-pins and retries against
// the new shard map. The retired epoch is freed when its last in-flight
// reader drains (the shared_ptr count).
//
// Concurrency contract:
//  * TryIssue / TryIssueBatch are safe to call from any number of threads,
//    including concurrently with the lifecycle calls.
//  * The instance-based fast-reject path is lock-free: the satisfying-set
//    lookup reads only the pinned epoch's immutable geometry.
//  * Lifecycle calls serialize against each other (one reconfiguration at
//    a time) but never against the admission fast path.
//  * CollectLog / CollectTree lock shards one at a time and return
//    snapshots; they can run concurrently with issuance (the snapshot is a
//    consistent prefix per shard, not a cross-shard instant).
//  * Accessors (licenses, grouping, shard_count) read the current epoch;
//    the references they return are valid until the next reconfiguration.
//
// Admissions are linearized per shard, so for any interleaving the final
// tree/log equal a serial replay of the accepted set (order within a shard
// is the shard's admission order; cross-shard order is immaterial because
// the shards share no equations). A reconfiguration linearizes at its
// publish point: admissions before it are carried into the new epoch
// (renumbered, with records touching a removed license cascade-dropped),
// admissions after it run against the new catalog.
class IssuanceService {
 public:
  // `licenses` must be non-empty and outlive the service; so must
  // `options.metrics` when set. options.use_grouping=false degrades to a
  // single shard covering all licenses (every admission serializes — the
  // baseline the concurrency ablation measures against);
  // options.shard_hint caps the number of lock shards (groups are striped
  // over min(hint, group_count) mutexes).
  static Result<std::unique_ptr<IssuanceService>> Create(
      const LicenseCatalog* licenses, const OnlineValidatorOptions& options = {});

  // Pre-loads already-validated issuances (not re-checked) into the
  // shards, as OnlineValidator::CreateWithHistory does.
  static Result<std::unique_ptr<IssuanceService>> CreateWithHistory(
      const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
      const LogStore& history);

  // Rebuilds a service from a crash: the newest checkpoint (may be empty —
  // journal-only recovery) plus the journal tail past it (may be empty —
  // checkpoint-only). Frames the checkpoint already covers are skipped; a
  // torn final frame (crash mid-append, never acknowledged as synced) is
  // dropped; any other journal or checkpoint corruption fails loudly with
  // the bad frame's byte offset.
  //
  // Reconfiguration frames replay in sequence with admissions: `licenses`
  // must be the catalog the journal started from (epoch 0), and each
  // acquire/revoke/expire frame evolves it — renumbering and cascade-
  // dropping the accumulated records exactly as the live service did — so
  // recovery lands on the post-reconfiguration catalog. A v3 checkpoint
  // carries the epoch it covers, which must match the journal's
  // reconfiguration history up to the covered sequence. The recovered
  // service owns its evolved catalog and restarts at epoch 0 (its catalog
  // is the new baseline; RecoveryStats reports the journal-space epoch).
  //
  // The rebuilt state is verified against a serial replay of the combined
  // record sequence before returning — the result is the exact pre-crash
  // accepted set or an error, never silently wrong. The recovered service
  // has no journal attached; call AttachJournal with a fresh journal file
  // to resume durable admission.
  static Result<std::unique_ptr<IssuanceService>> Recover(
      const LicenseCatalog* licenses, const OnlineValidatorOptions& options,
      const std::string& checkpoint_path, const std::string& journal_path,
      RecoveryStats* stats = nullptr);

  IssuanceService(const IssuanceService&) = delete;
  IssuanceService& operator=(const IssuanceService&) = delete;

  // Validates one issuance and records it when accepted. Identical
  // decision semantics to OnlineValidator::TryIssue. The decision carries
  // the catalog epoch it was made against.
  Result<OnlineDecision> TryIssue(const License& issued);

  // Admits a batch, returning decisions in input order. Requests are
  // processed shard-by-shard (one lock acquisition per shard touched, not
  // per request); within a shard the batch's relative order is preserved,
  // so the decisions equal a sequential TryIssue loop over the batch. If a
  // reconfiguration lands mid-batch, the not-yet-admitted remainder
  // retries against the new epoch — decisions then carry mixed epochs.
  Result<std::vector<OnlineDecision>> TryIssueBatch(
      const std::vector<License>& batch);

  // Allocation-free variant: identical decision semantics, but the caller
  // owns the decision storage (`decisions.size() >= batch.size()`; entries
  // are overwritten) and all batch scratch comes from the calling thread's
  // RequestArena — after warmup the steady state performs no heap
  // allocation (see docs/DESIGN.md, "Arena lifetime rules").
  Status TryIssueBatch(std::span<const License> batch,
                       std::span<OnlineDecision> decisions);

  // Pointer-batch intake for callers whose requests are not contiguous —
  // the network front-end (net/server.h) batches requests popped from its
  // admission queue without copying the licenses into a dense array.
  // Same semantics and arena discipline as the span form above.
  Status TryIssueBatch(std::span<const License* const> batch,
                       std::span<OnlineDecision> decisions);

  // --- Live license lifecycle (one reconfiguration at a time) ---

  // Adds `license` to the running catalog; returns its index in the new
  // epoch (always the highest — existing indexes are unchanged by an
  // acquisition). The license must match the catalog's content key,
  // permission, type and dimensionality, and carry a unique id. The
  // overlap grouping updates incrementally (DynamicGrouping); if the
  // newcomer bridges groups, their shards merge in the new epoch.
  Result<int> AcquireLicense(const License& license);

  // Removes the license at `index` (current-epoch index). Cascade
  // semantics: every recorded issuance whose satisfying set contains the
  // revoked license is dropped from the validation state — usage granted
  // under a revoked right is revoked with it. Surviving records renumber
  // densely (indexes above `index` shift down, paper Algorithm 5).
  // Rejects removing the last license.
  Status RevokeLicense(int index);

  // Id-addressed form: resolves `id` to its current-epoch index under the
  // reconfiguration lock, so the caller cannot race a concurrent
  // reconfiguration that renumbers indexes between lookup and revoke.
  // Fails with NotFound when no license carries `id`.
  Status RevokeLicenseById(const std::string& id);

  // Revokes every license whose validity-period dimension ends strictly
  // before `cutoff` — the schema's first date-formatted interval dimension
  // — and returns how many were removed (0 = no-op, no epoch change).
  // Fails if the schema has no date dimension or if every license would
  // expire.
  Result<int> ExpireBefore(Date cutoff);

  // Generalized form: expires licenses whose interval in dimension `dim`
  // ends strictly below `cutoff` (any ordered dimension, e.g. an integer
  // version range).
  Result<int> ExpireDimensionBelow(int dim, int64_t cutoff);

  // Reconfigurations applied over this service's lifetime. 0 at
  // construction; each successful acquire/revoke/expire increments it.
  uint64_t catalog_epoch() const;

  // Snapshot of all accepted issuances, shard by shard (within a shard:
  // admission order). Feedable to the offline validators; equal as a
  // multiset to any serial replay of the accepted set.
  LogStore CollectLog() const;

  // Snapshot of the combined validation tree (the union of the shard
  // trees; shards share no license indexes, so this is a plain merge).
  Result<ValidationTree> CollectTree() const;

  // Snapshot compiled straight into the offline hot-path form: the shards
  // keep their mutable pointer trees for admission, but offline audits of
  // a running service should query this flat, pruning-aware arena
  // (validation/flat_tree.h) instead of walking pointers.
  Result<FlatValidationTree> CollectFlatTree() const;

  // Turns on write-ahead journaling: every subsequently accepted issuance
  // is framed and appended to `journal` before the shard's in-memory state
  // changes or the decision returns, so a crash can never have accepted an
  // issuance the journal does not know. Reconfigurations journal the same
  // way (frame first, publish second). A journal append failure rejects
  // the admission or reconfiguration with all state unchanged.
  // Must be called before issuance traffic starts (it is not synchronized
  // against in-flight TryIssue calls) and before any reconfiguration (the
  // journal must cover the catalog's evolution from epoch 0); fails if a
  // journal is already attached or frames were already written to this
  // journal.
  Status AttachJournal(std::unique_ptr<JournalWriter> journal);

  // Forces every journaled frame to stable storage (for fsync_interval
  // batching); no-op without a journal.
  Status SyncJournal();

  bool has_journal() const {
    return has_journal_.load(std::memory_order_acquire);
  }

  // Sequence number of the last journaled frame (0 = none yet).
  uint64_t journal_sequence() const;

  // Atomically snapshots the full accepted set plus the journal sequence
  // and catalog epoch it covers into a v2 checkpoint file
  // (persist/checkpoint.h, kind = service-snapshot, v3 payload). Takes
  // every shard lock (in index order) and the journal lock, so the cut is
  // exact: recovery from this checkpoint plus the same journal's tail
  // reproduces the state byte-for-byte. Safe to call while issuance
  // traffic and reconfigurations are running.
  Status WriteCheckpoint(const std::string& path) const;

  // Current-epoch views; the references stay valid until the next
  // reconfiguration retires the epoch (plus reader drain).
  const LicenseCatalog& licenses() const;
  const LicenseGrouping& grouping() const;
  const OnlineValidatorOptions& options() const { return options_; }
  int shard_count() const;

  // Pre-sizes every current shard's log record table for
  // `records_per_shard` appends, so steady-state admission never regrows
  // it. Call before issuance traffic starts (not synchronized against
  // in-flight requests); shards built by a later reconfiguration size
  // themselves from the records they inherit.
  void ReserveLogCapacity(size_t records_per_shard);

  // Decision counters and latency histogram. Points at options.metrics
  // when that was set, else at a service-owned block.
  const IssuanceMetrics& metrics() const { return *metrics_; }

  // Point-in-time observability snapshot, ready for the obs exposition
  // renderers: decision counters + request latency, the per-stage profile
  // when a tracer is attached (options.tracer), and the journal sequence
  // when a journal is. Safe to call concurrently with issuance traffic.
  // Recovery counters are per-Recover-call (RecoveryStats); callers merge
  // them into the returned input themselves.
  ExpositionInput Snap() const;

 private:
  struct Shard {
    std::mutex mutex;
    ValidationTree tree;  // Masks in the owning epoch's license indexes.
    LogStore log;
  };

  // One immutable generation of the catalog + derived admission state.
  // Everything here is fixed at build time except the shard contents
  // (guarded by the shard mutexes) and the retirement flag.
  struct CatalogEpoch {
    CatalogEpoch(const LicenseCatalog* catalog_in,
                 std::unique_ptr<LicenseCatalog> owned,
                 LicenseGrouping grouping_in)
        : owned_catalog(std::move(owned)),
          catalog(catalog_in),
          grouping(std::move(grouping_in)),
          instance(catalog_in) {}

    uint64_t epoch = 0;
    // Epoch 0 borrows the caller's catalog (owned_catalog null); every
    // later epoch owns the catalog it was built from.
    std::unique_ptr<LicenseCatalog> owned_catalog;
    const LicenseCatalog* catalog;
    LicenseGrouping grouping;
    SoaInstanceValidator instance;  // Immutable ⇒ lock-free.
    // Equation scopes, one per overlap group, plus the ungrouped full
    // mask — built once so the hot path hands out references instead of
    // copying a LicenseSet (which may heap-allocate) per request.
    std::vector<LicenseSet> group_scopes;
    LicenseSet all_mask;
    std::vector<std::unique_ptr<Shard>> shards;
    // Set (under every shard lock) when a newer epoch replaces this one.
    // An admission that observes it after locking re-pins and retries;
    // the publish order (state_ first, retired second) guarantees the
    // retry sees the new epoch.
    mutable std::atomic<bool> retired{false};
  };

  // What one reconfiguration does, in current-epoch index space.
  struct ReconfigPlan {
    const License* acquire = nullptr;  // Non-null: acquisition.
    LicenseSet removed;                // Revoke/expire: indexes to drop.
    // Journal frame fields.
    int revoke_index = -1;
    std::string revoke_id;
    int expire_dim = -1;
    int64_t expire_cutoff = 0;
  };

  IssuanceService(const LicenseCatalog* licenses,
                  const OnlineValidatorOptions& options,
                  std::shared_ptr<CatalogEpoch> epoch0);

  static Result<std::unique_ptr<IssuanceService>> CreateOwned(
      const LicenseCatalog* licenses, std::unique_ptr<LicenseCatalog> owned,
      const OnlineValidatorOptions& options, const LogStore& history);

  // Assembles a fully-derived epoch (shards, scopes, instance geometry)
  // around `catalog` — the publish step is the caller's.
  static std::shared_ptr<CatalogEpoch> BuildEpoch(
      const OnlineValidatorOptions& options, uint64_t epoch_number,
      const LicenseCatalog* catalog, std::unique_ptr<LicenseCatalog> owned,
      LicenseGrouping grouping);

  // Routes one record into `epoch`'s shards (scope-checked tree + log
  // insert). Caller owns exclusivity: history preload at construction,
  // off-side epoch build, or the catch-up under every old shard lock.
  Status ApplyRecordToEpoch(CatalogEpoch* epoch,
                            const LogRecord& record) const;

  // The shared reconfiguration path (caller holds reconfig_mutex_): builds
  // the next epoch from `plan`, journals it, publishes, retires. Returns
  // the acquired index or the removed count.
  Result<int> ReconfigureLocked(const ReconfigPlan& plan);

  // Validates and executes a single-index revocation. Caller holds
  // reconfig_mutex_, so `index` is stable in the current epoch.
  Status RevokeIndexLocked(int index);

  std::shared_ptr<const CatalogEpoch> Pin() const {
    return state_.load(std::memory_order_acquire);
  }

  // Equation scope for satisfying set `s` within `epoch` (its group's
  // mask, or the full set without grouping), plus the owning shard index.
  // The returned reference aliases a scope precomputed at epoch build — no
  // copy, valid for the epoch's lifetime.
  const LicenseSet& RouteSet(const CatalogEpoch& epoch, const LicenseSet& s,
                             size_t* shard) const;
  // Equation check + tree/log update for one request. Caller holds
  // `shard.mutex` on a shard of `epoch`. `decision` already carries the
  // satisfying set; `trace` collects the equation-scan and journal-append
  // spans (never null — pass a RequestTrace built from a null tracer to
  // run untraced).
  Status AdmitLocked(const CatalogEpoch& epoch, Shard* shard,
                     const License& issued, const LicenseSet& scope,
                     OnlineDecision* decision, RequestTrace* trace);

  OnlineValidatorOptions options_;
  // The current epoch. Readers pin with a plain atomic load (shared_ptr
  // refcount = reader count); Reconfigure is the only writer.
  std::atomic<std::shared_ptr<const CatalogEpoch>> state_;
  // Serializes reconfigurations and guards dyn_grouping_. Lock order:
  // reconfig_mutex_ → shard mutexes (index order) → journal_mutex_.
  mutable std::mutex reconfig_mutex_;
  // Incremental overlap components, mirrored into each epoch's grouping.
  DynamicGrouping dyn_grouping_;
  IssuanceMetrics owned_metrics_;
  IssuanceMetrics* metrics_;  // == options_.metrics or &owned_metrics_.
  std::atomic<int64_t> issue_sequence_{0};

  // Write-ahead journal. `has_journal_` gates the accept path so services
  // without a journal never touch `journal_mutex_` (the sharded fast path
  // stays lock-disjoint across groups). Lock order: shard mutex(es), then
  // journal_mutex_ — AdmitLocked, Reconfigure and WriteCheckpoint all
  // follow it.
  std::atomic<bool> has_journal_{false};
  mutable std::mutex journal_mutex_;
  std::unique_ptr<JournalWriter> journal_;  // Guarded by journal_mutex_.
  uint64_t journal_seq_ = 0;                // Guarded by journal_mutex_.
};

}  // namespace geolic

#endif  // GEOLIC_SERVICE_ISSUANCE_SERVICE_H_
