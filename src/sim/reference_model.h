#ifndef GEOLIC_SIM_REFERENCE_MODEL_H_
#define GEOLIC_SIM_REFERENCE_MODEL_H_

#include <cstdint>
#include <map>
#include <vector>

#include "licensing/license_catalog.h"
#include "util/license_set.h"
#include "util/status.h"

namespace geolic {

// Executable specification of online admission, straight from the paper's
// definitions and nothing else: a map from satisfying set to issued count,
// with every query answered by brute force. No validation tree, no
// grouping, no pruning, no sharding — eq. 1 (`C⟨S⟩ ≤ A[S]` for every
// subset S) evaluated literally. The simulation harness checks every
// optimized path (geometric instance lookup, grouped equation scoping,
// flat-tree scans, sharded admission, journal recovery) against this model
// after every step; the two may disagree only if one of the optimization
// layers is wrong.
//
// Deliberately small and slow (exponential in N): its value is being
// obviously correct. Keep it free of anything clever.
class ReferenceModel {
 public:
  // Mirror of OnlineDecision, recomputed from first principles.
  struct Decision {
    bool instance_valid = false;
    bool aggregate_valid = false;
    LicenseSet satisfying_set;
    // First violated equation in ascending-extension enumeration order
    // (meaningful only when aggregate_valid is false).
    LicenseSet limiting_set;
    int64_t limiting_lhs = 0;
    int64_t limiting_rhs = 0;

    bool accepted() const { return instance_valid && aggregate_valid; }
  };

  // `licenses` must outlive the model. Overlap components of the license
  // geometry are computed here once, from first principles (pairwise
  // rectangle overlap + union-find) — deliberately NOT from the production
  // grouping code, whose equivalence is among the things on trial.
  explicit ReferenceModel(const LicenseCatalog* licenses);

  // Decides `issued` against the current counts without recording it.
  // Definitionally: S = every redistribution license whose region contains
  // the request; accept iff for ALL T with S ⊆ T ⊆ the full license set,
  // C⟨T⟩ + count ≤ A[T]. (No grouping: Theorem 2 says scoping T to S's
  // overlap group decides identically — that equivalence is exactly what
  // conformance checking puts on trial.)
  Decision TryIssue(const License& issued) const;

  // Records an accepted issuance.
  void Apply(const LicenseSet& set, int64_t count);

  // C⟨T⟩: total count over every recorded set that is a subset of `t`,
  // by linear scan of the map.
  int64_t SumSubsets(const LicenseSet& t) const;

  // Verifies eq. 1 for EVERY subset of the license set (2^N equations —
  // keep N small). The safety property proper: if this ever fails after
  // the model mirrored only service-accepted issuances, the service
  // over-issued.
  Status CheckInvariant() const;

  // Number of Apply calls so far — lets the harness detect whether other
  // tasks interleaved with a multi-step operation.
  uint64_t version() const { return version_; }

  const std::map<LicenseSet, int64_t>& counts() const { return counts_; }

  // The geometric overlap components (disjoint, covering all licenses).
  // Exposed so exhaustive external sweeps can factor the same way the
  // model's own enumeration does.
  const std::vector<LicenseSet>& components() const { return components_; }

 private:
  // The overlap component containing `set` (every satisfying set lies in
  // one component: its licenses all contain the request, so they pairwise
  // overlap).
  LicenseSet ComponentOf(const LicenseSet& set) const;

  const LicenseCatalog* licenses_;
  // Geometric overlap components; equation enumeration factors across
  // them (see the lemma in reference_model.cc), which is what keeps the
  // brute force feasible past a few dozen licenses.
  std::vector<LicenseSet> components_;
  std::map<LicenseSet, int64_t> counts_;
  uint64_t version_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_SIM_REFERENCE_MODEL_H_
