#ifndef GEOLIC_SIM_REFERENCE_MODEL_H_
#define GEOLIC_SIM_REFERENCE_MODEL_H_

#include <cstdint>
#include <map>

#include "licensing/license_set.h"
#include "util/bits.h"
#include "util/status.h"

namespace geolic {

// Executable specification of online admission, straight from the paper's
// definitions and nothing else: a map from satisfying set to issued count,
// with every query answered by brute force. No validation tree, no
// grouping, no pruning, no sharding — eq. 1 (`C⟨S⟩ ≤ A[S]` for every
// subset S) evaluated literally. The simulation harness checks every
// optimized path (geometric instance lookup, grouped equation scoping,
// flat-tree scans, sharded admission, journal recovery) against this model
// after every step; the two may disagree only if one of the optimization
// layers is wrong.
//
// Deliberately small and slow (exponential in N): its value is being
// obviously correct. Keep it free of anything clever.
class ReferenceModel {
 public:
  // Mirror of OnlineDecision, recomputed from first principles.
  struct Decision {
    bool instance_valid = false;
    bool aggregate_valid = false;
    LicenseMask satisfying_set = 0;
    // First violated equation in ascending-extension enumeration order
    // (meaningful only when aggregate_valid is false).
    LicenseMask limiting_set = 0;
    int64_t limiting_lhs = 0;
    int64_t limiting_rhs = 0;

    bool accepted() const { return instance_valid && aggregate_valid; }
  };

  // `licenses` must outlive the model.
  explicit ReferenceModel(const LicenseSet* licenses);

  // Decides `issued` against the current counts without recording it.
  // Definitionally: S = every redistribution license whose region contains
  // the request; accept iff for ALL T with S ⊆ T ⊆ the full license set,
  // C⟨T⟩ + count ≤ A[T]. (No grouping: Theorem 2 says scoping T to S's
  // overlap group decides identically — that equivalence is exactly what
  // conformance checking puts on trial.)
  Decision TryIssue(const License& issued) const;

  // Records an accepted issuance.
  void Apply(LicenseMask set, int64_t count);

  // C⟨T⟩: total count over every recorded set that is a subset of `t`,
  // by linear scan of the map.
  int64_t SumSubsets(LicenseMask t) const;

  // Verifies eq. 1 for EVERY subset of the license set (2^N equations —
  // keep N small). The safety property proper: if this ever fails after
  // the model mirrored only service-accepted issuances, the service
  // over-issued.
  Status CheckInvariant() const;

  // Number of Apply calls so far — lets the harness detect whether other
  // tasks interleaved with a multi-step operation.
  uint64_t version() const { return version_; }

  const std::map<LicenseMask, int64_t>& counts() const { return counts_; }

 private:
  const LicenseSet* licenses_;
  std::map<LicenseMask, int64_t> counts_;
  uint64_t version_ = 0;
};

}  // namespace geolic

#endif  // GEOLIC_SIM_REFERENCE_MODEL_H_
