#include "sim/catalog_sim.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog_service.h"
#include "catalog/tenant_source.h"
#include "persist/faulty_file.h"
#include "persist/sync_file.h"
#include "sim/reference_model.h"
#include "util/license_set.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/multi_tenant.h"

namespace geolic {
namespace {

// Live per-tenant oracle: the tenant's immutable baseline plus a
// ReferenceModel mirroring every accepted issuance. One maybe-persisted op
// at most — the journal writer poisons itself after its first I/O error
// and the catalog fail-stops, so only the faulted append itself can have
// reached the platter.
struct TenantOracle {
  std::unique_ptr<Workload> baseline;
  std::unique_ptr<ReferenceModel> model;
  uint64_t accepted = 0;
  bool maybe_pending = false;
  bool maybe_would_accept = false;
};

std::string TenantTag(uint64_t tenant) {
  return "t" + std::to_string(tenant);
}

// Compares one live decision against the model's verdict. Returns a
// non-empty description on the first disagreement.
std::string CompareDecision(const OnlineDecision& got,
                            const ReferenceModel::Decision& want,
                            const std::string& where) {
  if (got.instance_valid != want.instance_valid) {
    return where + ": instance_valid " +
           std::to_string(got.instance_valid) + " != model " +
           std::to_string(want.instance_valid);
  }
  if (got.aggregate_valid != want.aggregate_valid) {
    return where + ": aggregate_valid " +
           std::to_string(got.aggregate_valid) + " != model " +
           std::to_string(want.aggregate_valid);
  }
  if (want.instance_valid && !(got.satisfying_set == want.satisfying_set)) {
    return where + ": satisfying set " + got.satisfying_set.ToString() +
           " != model " + want.satisfying_set.ToString();
  }
  if (want.instance_valid && !want.aggregate_valid) {
    if (!(got.limiting.set == want.limiting_set) ||
        got.limiting.lhs != want.limiting_lhs ||
        got.limiting.rhs != want.limiting_rhs) {
      return where + ": limiting equation " + got.limiting.set.ToString() +
             " (" + std::to_string(got.limiting.lhs) + " <= " +
             std::to_string(got.limiting.rhs) + ") != model " +
             want.limiting_set.ToString() + " (" +
             std::to_string(want.limiting_lhs) + " <= " +
             std::to_string(want.limiting_rhs) + ")";
    }
  }
  return "";
}

}  // namespace

CatalogSimResult RunCatalogSimulation(uint64_t seed,
                                      const CatalogSimConfig& config) {
  CatalogSimResult result;
  result.seed = seed;
  const auto fail = [&result](std::string message) {
    result.ok = false;
    result.failure = std::move(message);
    return result;
  };

  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0x5DEECE66Dull);
  const int tenants = static_cast<int>(
      rng.UniformInt(config.min_tenants, config.max_tenants));
  const int total_ops =
      static_cast<int>(rng.UniformInt(config.min_ops, config.max_ops));

  // Small per-tenant geometries keep the brute-force model exponential in
  // a number that stays tiny.
  MultiTenantConfig mt;
  mt.num_tenants = static_cast<uint64_t>(tenants);
  mt.zipf_s = 1.1;
  mt.seed = seed ^ 0xCA7A106ull;
  mt.base.dimensions = 2;
  mt.min_licenses = 2;
  mt.max_licenses = 4;
  const MultiTenantWorkload workload(mt);
  WorkloadTenantSource source(&workload);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("geolic-catalog-sim-" + std::to_string(::getpid()) + "-" +
       std::to_string(seed));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // Seed-chosen fault schedule: one pool writer tears an append or starts
  // failing fsync at a fixed future append, chosen before the run starts.
  int fault_kind = 0;  // 0 = none, 1 = torn append, 2 = failing fsync.
  int fault_writer = 0;
  uint64_t fault_append = 0;
  size_t fault_keep_bytes = 0;
  if (config.force_fault || rng.Bernoulli(config.fault_probability)) {
    fault_kind = rng.Bernoulli(0.5) ? 1 : 2;
    fault_writer =
        static_cast<int>(rng.UniformIndex(
            static_cast<size_t>(config.journal_writers)));
    fault_append = static_cast<uint64_t>(
        rng.UniformInt(1, std::max(1, total_ops / 2)));
    fault_keep_bytes = static_cast<size_t>(rng.UniformInt(0, 96));
  }

  CatalogOptions options;
  options.dir = dir.string();
  options.memory_budget_bytes = config.memory_budget_bytes;
  options.lru_shards = config.lru_shards;
  options.journal_writers = config.journal_writers;
  options.fsync_interval = 1;
  options.sim_misroute_frames = config.inject_misroute;
  std::vector<FaultyFile*> faulty(
      static_cast<size_t>(config.journal_writers), nullptr);
  options.journal_file_factory =
      [&faulty](const std::string& path,
                int writer_index) -> Result<std::unique_ptr<SyncFile>> {
    GEOLIC_ASSIGN_OR_RETURN(std::unique_ptr<PosixSyncFile> base,
                            PosixSyncFile::Create(path));
    auto file = std::make_unique<FaultyFile>(std::move(base));
    faulty[static_cast<size_t>(writer_index)] = file.get();
    return std::unique_ptr<SyncFile>(std::move(file));
  };

  Result<std::unique_ptr<CatalogService>> created =
      CatalogService::Create(&source, options);
  if (!created.ok()) {
    return fail("catalog Create failed: " + created.status().message());
  }
  std::unique_ptr<CatalogService> catalog = std::move(*created);
  // Arm the schedule only now: Create's own journal-header appends must
  // not consume it — the fault belongs to the op stream.
  if (fault_kind == 1) {
    faulty[static_cast<size_t>(fault_writer)]->ScheduleTearAppend(
        fault_append, fault_keep_bytes);
  } else if (fault_kind == 2) {
    faulty[static_cast<size_t>(fault_writer)]->ScheduleFailSyncAfterAppend(
        fault_append);
  }

  std::map<uint64_t, TenantOracle> oracles;
  // Set at the first op failure: the faulted append poisons its writer and
  // the catalog fail-stops, so every later mutating op must be rejected.
  bool catalog_failed = false;

  const auto oracle_for = [&](uint64_t tenant) -> Result<TenantOracle*> {
    auto it = oracles.find(tenant);
    if (it == oracles.end()) {
      GEOLIC_ASSIGN_OR_RETURN(Workload baseline,
                              workload.MakeTenant(tenant));
      TenantOracle oracle;
      oracle.baseline = std::make_unique<Workload>(std::move(baseline));
      oracle.model =
          std::make_unique<ReferenceModel>(oracle.baseline->licenses.get());
      it = oracles.emplace(tenant, std::move(oracle)).first;
    }
    return &it->second;
  };

  for (int op = 0; op < total_ops; ++op) {
    const uint64_t tenant = workload.DrawTenant(&rng);
    Result<TenantOracle*> oracle_or = oracle_for(tenant);
    if (!oracle_or.ok()) {
      return fail("tenant baseline failed: " + oracle_or.status().message());
    }
    TenantOracle& oracle = **oracle_or;
    const double action = rng.UniformDouble();
    if (action < config.spill_probability) {
      const Status spilled = catalog->SpillTenant(tenant);
      if (!spilled.ok()) {
        return fail(TenantTag(tenant) +
                    " spill failed: " + spilled.message());
      }
      result.op_trace.push_back(TenantTag(tenant) + " spill");
      ++result.ops_executed;
      continue;
    }
    if (action < config.spill_probability + config.sync_probability) {
      // May legitimately fail once the faulted writer is dead.
      const Status synced = catalog->SyncJournals();
      result.op_trace.push_back(std::string("sync journals ") +
                                (synced.ok() ? "ok" : "FAIL"));
      ++result.ops_executed;
      continue;
    }

    const License request =
        workload.DrawRequest(*oracle.baseline, &rng, op);
    const ReferenceModel::Decision want = oracle.model->TryIssue(request);
    Result<OnlineDecision> got = catalog->TryIssue(tenant, request);
    ++result.ops_executed;
    if (!got.ok()) {
      if (fault_kind == 0) {
        return fail(TenantTag(tenant) + " issue failed with no fault "
                    "scheduled: " + got.status().message());
      }
      if (!catalog_failed) {
        // The first failure is the faulted append itself — only it is
        // maybe-persisted, and it must have hit the scheduled writer. It
        // poisons that writer, so the catalog fail-stops.
        catalog_failed = true;
        const int writer = catalog->WriterIndexForTenant(tenant);
        if (writer != fault_writer) {
          return fail(TenantTag(tenant) + " issue failed on writer " +
                      std::to_string(writer) + " but the fault was " +
                      "scheduled on writer " + std::to_string(fault_writer) +
                      ": " + got.status().message());
        }
        oracle.maybe_pending = true;
        oracle.maybe_would_accept = want.accepted();
        result.op_trace.push_back(TenantTag(tenant) +
                                  " issue FAIL (writer " +
                                  std::to_string(writer) +
                                  " dead, catalog fail-stopped)");
      } else {
        result.op_trace.push_back(TenantTag(tenant) +
                                  " issue FAIL (fail-stopped)");
      }
      continue;
    }
    if (catalog_failed) {
      return fail(TenantTag(tenant) + " op " + std::to_string(op) +
                  " succeeded after the catalog fail-stopped — mutations "
                  "must be rejected once a pool writer is poisoned");
    }
    const std::string mismatch =
        CompareDecision(*got, want, TenantTag(tenant) + " op " +
                        std::to_string(op));
    if (!mismatch.empty()) {
      return fail(mismatch);
    }
    if (got->catalog_epoch != 0) {
      return fail(TenantTag(tenant) + ": catalog_epoch drifted to " +
                  std::to_string(got->catalog_epoch) +
                  " without any reconfiguration");
    }
    if (got->accepted()) {
      oracle.model->Apply(want.satisfying_set, request.aggregate_count());
      ++oracle.accepted;
    }
    result.op_trace.push_back(
        TenantTag(tenant) + " issue " +
        (got->accepted()
             ? "accept |S|=" + std::to_string(got->satisfying_set.Size())
             : (got->instance_valid ? "reject-aggregate"
                                    : "reject-instance")));
  }

  // Crash: drop the live catalog without any orderly spill, then recover
  // from the journal pool + whatever spills eviction left behind.
  catalog.reset();

  CatalogOptions recover_options = options;
  recover_options.journal_file_factory = nullptr;
  recover_options.sim_misroute_frames = false;
  CatalogRecoveryStats rstats;
  Result<std::unique_ptr<CatalogService>> recovered =
      CatalogService::Recover(&source, recover_options, &rstats);
  if (!recovered.ok()) {
    // The catch path for the planted misrouting bug — and a real failure
    // for a clean run.
    std::filesystem::remove_all(dir, ec);
    return fail("recovery failed: " + recovered.status().message());
  }

  for (auto& [tenant, oracle] : oracles) {
    const std::string tag = TenantTag(tenant);
    Result<CatalogService::TenantSnapshot> snap =
        (*recovered)->SnapshotTenant(tenant);
    if (!snap.ok()) {
      std::filesystem::remove_all(dir, ec);
      return fail(tag + " snapshot after recovery failed: " +
                  snap.status().message());
    }
    // Accepted-log length: exact, modulo the one maybe-persisted op.
    const uint64_t expected = oracle.accepted;
    const uint64_t with_maybe =
        expected +
        ((oracle.maybe_pending && oracle.maybe_would_accept) ? 1 : 0);
    const uint64_t got_n = snap->log.size();
    if (got_n != expected && got_n != with_maybe) {
      std::filesystem::remove_all(dir, ec);
      return fail(tag + " recovered " + std::to_string(got_n) +
                  " accepted records, model expected " +
                  std::to_string(expected) +
                  (with_maybe != expected
                       ? " (or " + std::to_string(with_maybe) +
                             " with the maybe-persisted op)"
                       : ""));
    }
    if (snap->epoch != 0) {
      std::filesystem::remove_all(dir, ec);
      return fail(tag + " recovered at cumulative epoch " +
                  std::to_string(snap->epoch) +
                  " without any reconfiguration");
    }
    // Safety: a model rebuilt from the recovered log must still satisfy
    // eq. 1 for every subset — recovery never over-issues.
    ReferenceModel fresh(oracle.baseline->licenses.get());
    for (const LogRecord& record : snap->log.records()) {
      fresh.Apply(record.set, record.count);
    }
    const Status invariant = fresh.CheckInvariant();
    if (!invariant.ok()) {
      std::filesystem::remove_all(dir, ec);
      return fail(tag + " recovered state violates eq. 1: " +
                  invariant.message());
    }
    // Liveness: post-recovery decisions keep agreeing with the rebuilt
    // model (geometry, counts, and epoch all came back).
    for (int probe = 0; probe < 3; ++probe) {
      const License request = workload.DrawRequest(
          *oracle.baseline, &rng, total_ops + probe);
      const ReferenceModel::Decision want = fresh.TryIssue(request);
      Result<OnlineDecision> got = (*recovered)->TryIssue(tenant, request);
      ++result.ops_executed;
      if (!got.ok()) {
        std::filesystem::remove_all(dir, ec);
        return fail(tag + " post-recovery issue failed: " +
                    got.status().message());
      }
      const std::string mismatch = CompareDecision(
          *got, want, tag + " post-recovery probe " + std::to_string(probe));
      if (!mismatch.empty()) {
        std::filesystem::remove_all(dir, ec);
        return fail(mismatch);
      }
      if (got->accepted()) {
        fresh.Apply(want.satisfying_set, request.aggregate_count());
      }
      result.op_trace.push_back(tag + " post-recovery issue " +
                                (got->accepted() ? "accept" : "reject"));
    }
  }

  (void)(*recovered)->Close();
  recovered->reset();
  std::filesystem::remove_all(dir, ec);
  return result;
}

}  // namespace geolic
