#ifndef GEOLIC_SIM_CATALOG_SIM_H_
#define GEOLIC_SIM_CATALOG_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace geolic {

// Deterministic simulation of the multi-tenant catalog layer
// (catalog/catalog_service.h): a seed-driven stream of tenant-addressed
// issues, forced spills and journal syncs runs against a CatalogService
// squeezed under a tiny memory budget (so eviction/reload churns
// constantly), with every decision checked against a per-tenant
// ReferenceModel. A scheduled FaultyFile fault kills one of the shared
// pool journals mid-run — torn append or failing fsync — after which the
// run crashes the catalog and drives CatalogService::Recover, then checks
// per-tenant recovery conformance:
//
//  * every tenant's recovered accepted-log length matches the model,
//    modulo the one maybe-persisted op the faulted append is allowed to
//    contribute (intent logging's documented allowance);
//  * a reference model rebuilt from the recovered log still satisfies
//    eq. 1 for every subset — recovery never over-issues;
//  * post-recovery issues keep agreeing with the rebuilt model, decision
//    for decision.
//
// Mutation mode (inject_misroute) plants the cross-tenant frame
// misrouting bug (CatalogOptions::sim_misroute_frames): every few ops a
// journal frame is stamped with a sibling tenant's id. A correct harness
// must FAIL such runs — recovery either rejects the pool loudly (routing
// or per-tenant sequence check) or the replayed-into-the-wrong-tenant
// state trips the conformance checks.
struct CatalogSimConfig {
  // Tenant population for the run (inclusive draw). sim_runner --tenants=T
  // pins both to T.
  int min_tenants = 3;
  int max_tenants = 6;
  // Total tenant-addressed ops (inclusive draw).
  int min_ops = 24;
  int max_ops = 80;
  // Per-op chance the op is a forced SpillTenant / SyncJournals instead of
  // an issue.
  double spill_probability = 0.10;
  double sync_probability = 0.05;
  // Chance a journal fault is scheduled for the run; force_fault pins 1.
  double fault_probability = 0.5;
  bool force_fault = false;
  // Shared-journal pool shape. Two writers is the smallest pool where
  // misrouting across journals is possible at all.
  int journal_writers = 2;
  int lru_shards = 2;
  // Tiny budget = constant eviction pressure (the per-shard floor keeps
  // one tenant resident per shard).
  size_t memory_budget_bytes = 1;
  // Plant the cross-tenant misrouting bug; see above.
  bool inject_misroute = false;
};

struct CatalogSimResult {
  bool ok = true;
  uint64_t seed = 0;
  std::string failure;  // First conformance violation, empty when ok.
  // Human-readable record of every executed op, for failure traces.
  std::vector<std::string> op_trace;
  size_t ops_executed = 0;
};

// Generate + execute one seed. Single-threaded and deterministic in
// (seed, config): same inputs, same trace, same verdict.
CatalogSimResult RunCatalogSimulation(uint64_t seed,
                                      const CatalogSimConfig& config);

}  // namespace geolic

#endif  // GEOLIC_SIM_CATALOG_SIM_H_
