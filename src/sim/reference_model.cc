#include "sim/reference_model.h"

#include <string>

#include "licensing/license.h"

namespace geolic {

ReferenceModel::ReferenceModel(const LicenseSet* licenses)
    : licenses_(licenses) {}

ReferenceModel::Decision ReferenceModel::TryIssue(
    const License& issued) const {
  Decision decision;
  // S by definition: every redistribution license containing the request.
  for (int i = 0; i < licenses_->size(); ++i) {
    if (licenses_->at(i).InstanceContains(issued)) {
      decision.satisfying_set |= SingletonMask(i);
    }
  }
  if (decision.satisfying_set == 0) {
    return decision;
  }
  decision.instance_valid = true;

  // Eq. 1 over every T ⊇ S, no scoping: accept iff all hold. Enumeration
  // walks extensions of S in ascending numeric order, the same total order
  // the optimized scans use, so "first violated equation" is comparable.
  const int64_t count = issued.aggregate_count();
  const LicenseMask extension = licenses_->AllMask() & ~decision.satisfying_set;
  decision.aggregate_valid = true;
  LicenseMask x = 0;
  while (true) {
    const LicenseMask t = decision.satisfying_set | x;
    const int64_t lhs = SumSubsets(t) + count;
    const int64_t rhs = licenses_->AggregateSum(t);
    if (lhs > rhs) {
      decision.aggregate_valid = false;
      decision.limiting_set = t;
      decision.limiting_lhs = lhs;
      decision.limiting_rhs = rhs;
      break;
    }
    if (x == extension) {
      break;
    }
    x = (x - extension) & extension;
  }
  return decision;
}

void ReferenceModel::Apply(LicenseMask set, int64_t count) {
  counts_[set] += count;
  ++version_;
}

int64_t ReferenceModel::SumSubsets(LicenseMask t) const {
  int64_t sum = 0;
  for (const auto& [set, count] : counts_) {
    if (IsSubsetOf(set, t)) {
      sum += count;
    }
  }
  return sum;
}

Status ReferenceModel::CheckInvariant() const {
  const LicenseMask all = licenses_->AllMask();
  // Every non-empty T ⊆ all; subset enumeration via the decrement trick.
  LicenseMask t = all;
  while (t != 0) {
    const int64_t lhs = SumSubsets(t);
    const int64_t rhs = licenses_->AggregateSum(t);
    if (lhs > rhs) {
      return Status::Internal("eq. 1 violated: C<mask " + std::to_string(t) +
                              "> = " + std::to_string(lhs) + " > A[T] = " +
                              std::to_string(rhs));
    }
    t = (t - 1) & all;
  }
  return Status::Ok();
}

}  // namespace geolic
