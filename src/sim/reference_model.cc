#include "sim/reference_model.h"

#include <map>
#include <string>
#include <vector>

#include "licensing/license.h"
#include "util/check.h"

namespace geolic {

// Factoring lemma (why scoping equation checks to one geometric overlap
// component is still the literal brute force, not an optimization on
// trial): every recorded set lies inside a single component, so for any T
// the sum C<T> splits as sum_c C<T ∩ c> and the budget A[T] as
// sum_c A[T ∩ c]. If every within-component equation holds, every
// cross-component equation is a sum of satisfied inequalities; and a
// violated T implies its projection onto the new issuance's component is a
// violated within-component equation that ascending enumeration reaches
// first (it is a numerically smaller subset of T). Hence both the verdict
// and the first-violation witness are unchanged — only the enumeration
// domain shrinks from 2^N to 2^{component size}.
ReferenceModel::ReferenceModel(const LicenseCatalog* licenses)
    : licenses_(licenses) {
  // Union-find over pairwise rectangle overlap, transcribed directly.
  const int n = licenses_->size();
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    parent[static_cast<size_t>(i)] = i;
  }
  const auto find = [&parent](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (licenses_->at(i).rect().Overlaps(licenses_->at(j).rect())) {
        parent[static_cast<size_t>(find(i))] = find(j);
      }
    }
  }
  std::map<int, LicenseSet> by_root;
  for (int i = 0; i < n; ++i) {
    by_root[find(i)] |= LicenseSet::Singleton(i);
  }
  for (const auto& [root, component] : by_root) {
    components_.push_back(component);
  }
}

LicenseSet ReferenceModel::ComponentOf(const LicenseSet& set) const {
  for (const LicenseSet& component : components_) {
    if (set.Intersects(component)) {
      // A satisfying set never spans components.
      GEOLIC_CHECK(set.IsSubsetOf(component));
      return component;
    }
  }
  GEOLIC_CHECK(false);  // set must be non-empty and within the catalog.
  return LicenseSet();
}

ReferenceModel::Decision ReferenceModel::TryIssue(
    const License& issued) const {
  Decision decision;
  // S by definition: every redistribution license containing the request.
  for (int i = 0; i < licenses_->size(); ++i) {
    if (licenses_->at(i).InstanceContains(issued)) {
      decision.satisfying_set |= LicenseSet::Singleton(i);
    }
  }
  if (decision.satisfying_set.Empty()) {
    return decision;
  }
  decision.instance_valid = true;

  // Eq. 1 over every T ⊇ S, no scoping: accept iff all hold. Enumeration
  // walks extensions of S in ascending numeric order, the same total order
  // the optimized scans use, so "first violated equation" is comparable.
  const int64_t count = issued.aggregate_count();
  decision.aggregate_valid = true;
  for (AscendingSubsetIterator it(ComponentOf(decision.satisfying_set) -
                                  decision.satisfying_set);
       !it.Done(); it.Next()) {
    const LicenseSet t = decision.satisfying_set | it.subset();
    const int64_t lhs = SumSubsets(t) + count;
    const int64_t rhs = licenses_->AggregateSum(t);
    if (lhs > rhs) {
      decision.aggregate_valid = false;
      decision.limiting_set = t;
      decision.limiting_lhs = lhs;
      decision.limiting_rhs = rhs;
      break;
    }
  }
  return decision;
}

void ReferenceModel::Apply(const LicenseSet& set, int64_t count) {
  counts_[set] += count;
  ++version_;
}

int64_t ReferenceModel::SumSubsets(const LicenseSet& t) const {
  int64_t sum = 0;
  for (const auto& [set, count] : counts_) {
    if (set.IsSubsetOf(t)) {
      sum += count;
    }
  }
  return sum;
}

Status ReferenceModel::CheckInvariant() const {
  // Every non-empty within-component T; cross-component equations follow
  // by the factoring lemma above.
  for (const LicenseSet& component : components_) {
    for (SubsetIterator it(component); !it.Done(); it.Next()) {
      const LicenseSet t = it.subset();
      const int64_t lhs = SumSubsets(t);
      const int64_t rhs = licenses_->AggregateSum(t);
      if (lhs > rhs) {
        return Status::Internal("eq. 1 violated: C<" + t.ToHex() +
                                "> = " + std::to_string(lhs) + " > A[T] = " +
                                std::to_string(rhs));
      }
    }
  }
  return Status::Ok();
}

}  // namespace geolic
