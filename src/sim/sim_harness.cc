#include "sim/sim_harness.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "persist/faulty_file.h"
#include "persist/journal.h"
#include "persist/sync_file.h"
#include "service/issuance_service.h"
#include "sim/reference_model.h"
#include "sim/sim_environment.h"
#include "sim/sim_scheduler.h"
#include "util/check.h"

namespace geolic {
namespace {

// Largest per-request count the generator emits; the recovery diff uses it
// to bound how big an unobserved in-flight admission can be.
constexpr int64_t kMaxRequestCount = 3;

std::string MaskText(const LicenseSet& mask) { return mask.ToHex(); }

std::string DescribeOp(const SimOp& op) {
  switch (op.kind) {
    case SimOpKind::kTryIssue:
      return "issue " + op.requests[0].id() + " count=" +
             std::to_string(op.requests[0].aggregate_count());
    case SimOpKind::kTryIssueBatch: {
      std::string text = "batch[";
      for (size_t i = 0; i < op.requests.size(); ++i) {
        if (i > 0) {
          text += ",";
        }
        text += op.requests[i].id();
      }
      return text + "]";
    }
    case SimOpKind::kWriteCheckpoint:
      return "checkpoint";
    case SimOpKind::kSyncJournal:
      return "sync";
  }
  return "?";
}

// Everything the cooperatively scheduled tasks share. No locking: the
// scheduler guarantees exactly one task thread runs at a time, and every
// handoff goes through its mutex, so accesses are ordered (TSan-visibly)
// by construction.
struct SimState {
  const SimWorkload* workload = nullptr;
  IssuanceService* service = nullptr;
  ReferenceModel model;
  InMemorySyncFile* disk = nullptr;  // The journal's platter.
  SimScheduler* scheduler = nullptr;
  std::string scratch_dir;

  std::string checkpoint_path;  // Latest durable checkpoint, "" = none.
  int checkpoints_written = 0;

  bool journal_error_seen = false;
  // The admission whose journal append hit the fault: its frame may or may
  // not have fully reached the platter, so recovery is allowed to contain
  // exactly this one record beyond the model.
  bool have_maybe_persisted = false;
  LicenseSet maybe_persisted_set;
  int64_t maybe_persisted_count = 0;
  // A batch died on the fault: the in-flight admission is unknown, so the
  // recovery diff falls back to a bounded one-record allowance.
  bool batch_error = false;
  int batches_in_flight = 0;

  std::string failure;  // First conformance violation; empty = clean.
  std::vector<std::string> op_trace;
  size_t ops_executed = 0;

  explicit SimState(const LicenseCatalog* licenses) : model(licenses) {}
};

void Fail(SimState* state, const std::string& what) {
  if (state->failure.empty()) {
    state->failure = what;
  }
}

// Compares one service decision against the reference model. `strong`
// demands exact agreement (accept/reject and the full limiting equation);
// the weak form — used while another task's batch is mid-flight, when the
// model legitimately lags the service — still pins the immutable geometry
// and requires any rejection to cite a genuinely coherent equation.
std::string CompareDecision(const LicenseCatalog& licenses,
                            const ReferenceModel& model,
                            const License& request,
                            const OnlineDecision& got, bool strong) {
  const ReferenceModel::Decision want = model.TryIssue(request);
  if (got.instance_valid != want.instance_valid ||
      got.satisfying_set != want.satisfying_set) {
    return "satisfying set mismatch for " + request.id() + ": service " +
           MaskText(got.satisfying_set) + ", brute force " +
           MaskText(want.satisfying_set);
  }
  if (!want.instance_valid) {
    return "";
  }
  if (strong) {
    if (got.aggregate_valid != want.aggregate_valid) {
      return std::string("decision mismatch for ") + request.id() +
             ": service " + (got.aggregate_valid ? "accepted" : "rejected") +
             ", brute-force eq. 1 says " +
             (want.aggregate_valid ? "accept" : "reject");
    }
    if (!want.aggregate_valid &&
        (got.limiting.set != want.limiting_set ||
         got.limiting.lhs != want.limiting_lhs ||
         got.limiting.rhs != want.limiting_rhs)) {
      return "limiting equation mismatch for " + request.id() + ": service " +
             MaskText(got.limiting.set) + " (" +
             std::to_string(got.limiting.lhs) + " > " +
             std::to_string(got.limiting.rhs) + "), brute force " +
             MaskText(want.limiting_set) + " (" +
             std::to_string(want.limiting_lhs) + " > " +
             std::to_string(want.limiting_rhs) + ")";
    }
    return "";
  }
  if (!got.aggregate_valid) {
    if (got.limiting.lhs <= got.limiting.rhs) {
      return "rejection for " + request.id() +
             " cites a non-violated equation";
    }
    if (got.limiting.rhs != licenses.AggregateSum(got.limiting.set)) {
      return "rejection for " + request.id() +
             " cites a wrong aggregate budget for " +
             MaskText(got.limiting.set);
    }
    if (!(got.satisfying_set).IsSubsetOf(got.limiting.set)) {
      return "limiting set for " + request.id() +
             " does not contain the satisfying set";
    }
  }
  return "";
}

// The service hit a journal I/O error while admitting `request`. The first
// such error is the faulted append: that admission's frame may have fully
// persisted even though the caller saw a failure.
void NoteJournalError(SimState* state, const License& request) {
  if (state->workload->fault_kind == 0) {
    Fail(state, "journal error without a scheduled fault");
    return;
  }
  if (state->journal_error_seen) {
    return;  // Poisoned writer: nothing further reaches the platter.
  }
  state->journal_error_seen = true;
  state->have_maybe_persisted = true;
  state->maybe_persisted_set = state->model.TryIssue(request).satisfying_set;
  state->maybe_persisted_count = request.aggregate_count();
}

// Raises the model to the service's merged log counts after a mid-batch
// journal failure left admissions the caller could not observe. The
// service may only ever be AHEAD of the model — a missing record means an
// acknowledged admission vanished.
void ReconcileModelFromServiceLog(SimState* state) {
  const std::unordered_map<LicenseSet, int64_t> merged =
      state->service->CollectLog().MergedCounts();
  for (const auto& [set, count] : state->model.counts()) {
    const auto it = merged.find(set);
    const int64_t service_count = it == merged.end() ? 0 : it->second;
    if (service_count < count) {
      Fail(state, "service log lost records for set " + MaskText(set));
      return;
    }
  }
  for (const auto& [set, count] : merged) {
    const auto it = state->model.counts().find(set);
    const int64_t model_count =
        it == state->model.counts().end() ? 0 : it->second;
    if (count > model_count) {
      state->model.Apply(set, count - model_count);
    }
  }
  const Status invariant = state->model.CheckInvariant();
  if (!invariant.ok()) {
    Fail(state, std::string("after batch reconcile: ") + invariant.message());
  }
}

void RunInvariantSweep(SimState* state, const char* when) {
  const Status invariant = state->model.CheckInvariant();
  if (!invariant.ok()) {
    Fail(state, std::string(when) + ": " + invariant.message());
  }
}

void ExecuteTryIssue(SimState* state, const SimOp& op) {
  const License& request = op.requests[0];
  const Result<OnlineDecision> got = state->service->TryIssue(request);
  if (!got.ok()) {
    NoteJournalError(state, request);
    return;
  }
  const bool strong = state->batches_in_flight == 0;
  const std::string mismatch = CompareDecision(
      *state->workload->licenses, state->model, request, *got, strong);
  if (!mismatch.empty()) {
    Fail(state, mismatch);
    return;
  }
  if (got->accepted()) {
    state->model.Apply(got->satisfying_set, request.aggregate_count());
  }
  RunInvariantSweep(state, "after issue");
}

void ExecuteBatch(SimState* state, const SimOp& op) {
  ++state->batches_in_flight;
  const uint64_t version_before = state->model.version();
  const Result<std::vector<OnlineDecision>> got =
      state->service->TryIssueBatch(op.requests);
  --state->batches_in_flight;
  if (!got.ok()) {
    if (state->workload->fault_kind == 0) {
      Fail(state, "batch error without a scheduled fault");
      return;
    }
    // The faulted append belongs to an unknown request inside the batch.
    state->journal_error_seen = true;
    state->batch_error = true;
    ReconcileModelFromServiceLog(state);
    return;
  }
  // Exact sequential semantics are checkable only when nothing else
  // admitted during the batch: no model change, and no other batch still
  // parked mid-flight with unobserved admissions.
  const bool strong = state->model.version() == version_before &&
                      state->batches_in_flight == 0;
  for (size_t i = 0; i < op.requests.size(); ++i) {
    const std::string mismatch =
        CompareDecision(*state->workload->licenses, state->model,
                        op.requests[i], (*got)[i], strong);
    if (!mismatch.empty()) {
      Fail(state, "batch[" + std::to_string(i) + "]: " + mismatch);
      return;
    }
    if ((*got)[i].accepted()) {
      state->model.Apply((*got)[i].satisfying_set,
                         op.requests[i].aggregate_count());
    }
  }
  RunInvariantSweep(state, "after batch");
}

void ExecuteCheckpoint(SimState* state) {
  const std::string path =
      state->scratch_dir + "/ckpt_" +
      std::to_string(++state->checkpoints_written) + ".gck";
  const Status written = state->service->WriteCheckpoint(path);
  if (!written.ok()) {
    Fail(state, std::string("checkpoint write failed: ") + written.message());
    return;
  }
  state->checkpoint_path = path;
}

void ExecuteSync(SimState* state) {
  const Status synced = state->service->SyncJournal();
  if (!synced.ok() && state->workload->fault_kind == 0) {
    Fail(state, std::string("sync failed without a scheduled fault: ") +
                    synced.message());
  }
}

void ExecuteOp(SimState* state, const SimOp& op) {
  ++state->ops_executed;
  state->op_trace.push_back(DescribeOp(op));
  switch (op.kind) {
    case SimOpKind::kTryIssue:
      ExecuteTryIssue(state, op);
      return;
    case SimOpKind::kTryIssueBatch:
      ExecuteBatch(state, op);
      return;
    case SimOpKind::kWriteCheckpoint:
      ExecuteCheckpoint(state);
      return;
    case SimOpKind::kSyncJournal:
      ExecuteSync(state);
      return;
  }
}

// Recovered state may exceed the model by AT MOST the one in-flight
// admission whose journal append hit the fault; anything else — a missing
// acknowledged record, a phantom record, more than one extra — is a
// durability bug. Adopts the allowed extra into the model.
void CheckRecoveredCounts(
    SimState* state, const std::unordered_map<LicenseSet, int64_t>& recovered) {
  std::map<LicenseSet, int64_t> extras;
  for (const auto& [set, count] : state->model.counts()) {
    const auto it = recovered.find(set);
    const int64_t have = it == recovered.end() ? 0 : it->second;
    if (have < count) {
      Fail(state, "recovery lost acknowledged records for set " +
                      MaskText(set) + ": " + std::to_string(have) + " < " +
                      std::to_string(count));
      return;
    }
  }
  for (const auto& [set, count] : recovered) {
    const auto it = state->model.counts().find(set);
    const int64_t have =
        it == state->model.counts().end() ? 0 : it->second;
    if (count > have) {
      extras[set] = count - have;
    }
  }
  if (extras.empty()) {
    return;
  }
  if (extras.size() > 1) {
    Fail(state, "recovery produced " + std::to_string(extras.size()) +
                    " phantom record sets");
    return;
  }
  const auto& [extra_set, extra_count] = *extras.begin();
  if (state->have_maybe_persisted) {
    if (extra_set != state->maybe_persisted_set ||
        extra_count != state->maybe_persisted_count) {
      Fail(state, "recovery extra record " + MaskText(extra_set) + " x" +
                      std::to_string(extra_count) +
                      " does not match the in-flight admission " +
                      MaskText(state->maybe_persisted_set) + " x" +
                      std::to_string(state->maybe_persisted_count));
      return;
    }
  } else if (state->batch_error) {
    if (extra_count > kMaxRequestCount) {
      Fail(state, "recovery extra record exceeds any single request: " +
                      MaskText(extra_set) + " x" +
                      std::to_string(extra_count));
      return;
    }
  } else {
    Fail(state, "phantom record after recovery: " + MaskText(extra_set) +
                    " x" + std::to_string(extra_count));
    return;
  }
  state->model.Apply(extra_set, extra_count);
  RunInvariantSweep(state, "after adopting recovered in-flight record");
}

// Final conformance: service snapshots (log, tree, flat tree) against the
// model, then a full crash-recovery round trip from the journal platter
// plus the newest checkpoint, then a short single-threaded continuation on
// the recovered service.
void FinalChecks(SimState* state, const SimConfig& config,
                 const OnlineValidatorOptions& options) {
  const LicenseCatalog& licenses = *state->workload->licenses;
  if (state->failure.empty() && !state->batch_error) {
    const std::unordered_map<LicenseSet, int64_t> merged =
        state->service->CollectLog().MergedCounts();
    if (merged.size() != state->model.counts().size()) {
      Fail(state, "final log has " + std::to_string(merged.size()) +
                      " distinct sets, model has " +
                      std::to_string(state->model.counts().size()));
    }
    for (const auto& [set, count] : state->model.counts()) {
      const auto it = merged.find(set);
      if (it == merged.end() || it->second != count) {
        Fail(state, "final log count mismatch for set " + MaskText(set));
        break;
      }
    }
  }
  if (state->failure.empty()) {
    const Result<FlatValidationTree> flat = state->service->CollectFlatTree();
    if (!flat.ok()) {
      Fail(state, std::string("flat tree compile failed: ") +
                      flat.status().message());
    } else {
      // Every equation LHS, flat pruned scan vs. brute force. Recorded
      // sets lie within one overlap component, so C<T> factors across
      // components; sweeping each component exhaustively covers every
      // distinct per-component sum (2^slab per slab instead of 2^N).
      const std::vector<LicenseSet>& components = state->model.components();
      for (const LicenseSet& component : components) {
        for (SubsetIterator it(component); !it.Done() && state->failure.empty();
             it.Next()) {
          const LicenseSet t = it.subset();
          if (flat->SumSubsets(t) != state->model.SumSubsets(t)) {
            Fail(state, "flat tree C<S> diverges from brute force at " +
                            MaskText(t));
          }
        }
      }
      // Cross-component probes: full pairwise unions and the all-mask,
      // so the factored path through the flat tree is exercised on
      // spanning equations too (bounded: O(components^2) probes).
      if (state->failure.empty()) {
        std::vector<LicenseSet> spanning;
        for (size_t a = 0; a < components.size(); ++a) {
          for (size_t b = a + 1; b < components.size(); ++b) {
            spanning.push_back(components[a] | components[b]);
          }
        }
        spanning.push_back(licenses.AllMask());
        for (const LicenseSet& t : spanning) {
          if (flat->SumSubsets(t) != state->model.SumSubsets(t)) {
            Fail(state, "flat tree C<S> diverges from brute force at " +
                            MaskText(t));
            break;
          }
        }
      }
    }
  }
  RunInvariantSweep(state, "final");
  if (!state->failure.empty()) {
    return;
  }

  // Crash-recovery round trip: the platter contents are exactly what a
  // recovery pass would find after the process died here.
  const std::string journal_path = state->scratch_dir + "/journal.gjl";
  {
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    GEOLIC_CHECK(out.good());
    const std::string& bytes = state->disk->contents();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    GEOLIC_CHECK(out.good());
  }
  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered = IssuanceService::Recover(
      &licenses, options, state->checkpoint_path, journal_path, &stats);
  if (!recovered.ok()) {
    Fail(state, std::string("recovery failed: ") +
                    recovered.status().message());
    return;
  }
  CheckRecoveredCounts(state,
                       (*recovered)->CollectLog().MergedCounts());
  if (!state->failure.empty()) {
    return;
  }

  // Continuation: the recovered service must keep deciding exactly like
  // the (now synchronized) model.
  IssuanceService* service = recovered->get();
  auto fresh = std::make_unique<InMemorySyncFile>();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(fresh));
  GEOLIC_CHECK(writer.ok());
  GEOLIC_CHECK(service->AttachJournal(std::move(*writer)).ok());
  for (const SimOp& op : state->workload->post_recovery_ops) {
    const License& request = op.requests[0];
    const Result<OnlineDecision> got = service->TryIssue(request);
    if (!got.ok()) {
      Fail(state, std::string("post-recovery issue failed: ") +
                      got.status().message());
      return;
    }
    state->op_trace.push_back("post-recovery " + DescribeOp(op));
    ++state->ops_executed;
    const std::string mismatch =
        CompareDecision(licenses, state->model, request, *got, true);
    if (!mismatch.empty()) {
      Fail(state, "post-recovery: " + mismatch);
      return;
    }
    if (got->accepted()) {
      state->model.Apply(got->satisfying_set, request.aggregate_count());
    }
  }
  (void)config;
}

std::string MakeScratchDir(uint64_t seed) {
  static std::atomic<uint64_t> counter{0};
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("geolic_sim_" + std::to_string(::getpid()) + "_" +
        std::to_string(seed) + "_" +
        std::to_string(counter.fetch_add(1))))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

SimWorkload GenerateWorkload(uint64_t seed, const SimConfig& config) {
  SimEnvironment env(seed);
  Rng& rng = env.workload_rng();
  SimWorkload workload;

  const int dims = static_cast<int>(rng.UniformInt(1, 2));
  workload.schema = std::make_unique<ConstraintSchema>();
  for (int d = 0; d < dims; ++d) {
    GEOLIC_CHECK(workload.schema
                     ->AddIntervalDimension("C" + std::to_string(d + 1))
                     .ok());
  }
  workload.licenses = std::make_unique<LicenseCatalog>(workload.schema.get());
  const int license_count = static_cast<int>(
      rng.UniformInt(config.min_licenses, config.max_licenses));
  constexpr int64_t kDomain = 24;
  // Slabs are 2*kDomain apart so a license's interval (max hi offset
  // kDomain - 6 + 10 = 28) can never reach the next slab: components stay
  // within one slab by construction.
  constexpr int64_t kSlabStride = 2 * kDomain;
  const int slabs = config.cluster_slabs < 1 ? 1 : config.cluster_slabs;
  for (int i = 0; i < license_count; ++i) {
    const int64_t slab_lo = (i % slabs) * kSlabStride;
    LicenseBuilder builder(workload.schema.get());
    builder.SetId("L" + std::to_string(i + 1))
        .SetContentKey("K")
        .SetType(LicenseType::kRedistribution)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(rng.UniformInt(2, 10));
    for (int d = 0; d < dims; ++d) {
      const int64_t lo = slab_lo + rng.UniformInt(0, kDomain - 6);
      const int64_t hi = lo + rng.UniformInt(3, 10);
      builder.SetInterval("C" + std::to_string(d + 1), lo, hi);
    }
    const Result<License> license = builder.Build();
    GEOLIC_CHECK(license.ok());
    GEOLIC_CHECK(workload.licenses->Add(*license).ok());
  }

  int request_counter = 0;
  const auto make_request = [&]() {
    LicenseBuilder builder(workload.schema.get());
    builder.SetId("U" + std::to_string(++request_counter))
        .SetContentKey("K")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(rng.UniformInt(1, kMaxRequestCount));
    if (rng.Bernoulli(0.15)) {
      // Anywhere in a random slab: often instance-invalid — the lock-free
      // fast-reject path.
      const int64_t slab_lo =
          rng.UniformInt(0, static_cast<int64_t>(slabs) - 1) * kSlabStride;
      for (int d = 0; d < dims; ++d) {
        const int64_t lo = slab_lo + rng.UniformInt(0, kDomain - 1);
        builder.SetInterval("C" + std::to_string(d + 1), lo,
                            lo + rng.UniformInt(0, 4));
      }
    } else {
      // A sub-rectangle of one license, so the satisfying set is
      // non-empty and the aggregate path runs.
      const int target =
          static_cast<int>(rng.UniformIndex(
              static_cast<size_t>(workload.licenses->size())));
      const License& inside = workload.licenses->at(target);
      for (int d = 0; d < dims; ++d) {
        const Interval& range = inside.rect().dim(d).interval();
        const int64_t lo = rng.UniformInt(range.lo(), range.hi());
        const int64_t hi = rng.UniformInt(lo, range.hi());
        builder.SetInterval("C" + std::to_string(d + 1), lo, hi);
      }
    }
    const Result<License> license = builder.Build();
    GEOLIC_CHECK(license.ok());
    return *license;
  };

  const int clients = static_cast<int>(
      rng.UniformInt(config.min_clients, config.max_clients));
  workload.client_ops.resize(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    const int ops = static_cast<int>(rng.UniformInt(
        config.min_ops_per_client, config.max_ops_per_client));
    for (int i = 0; i < ops; ++i) {
      SimOp op;
      const double kind = rng.UniformDouble();
      if (kind < 0.72) {
        op.kind = SimOpKind::kTryIssue;
        op.requests.push_back(make_request());
      } else if (kind < 0.84) {
        op.kind = SimOpKind::kTryIssueBatch;
        const int batch = static_cast<int>(rng.UniformInt(2, 4));
        for (int b = 0; b < batch; ++b) {
          op.requests.push_back(make_request());
        }
      } else if (kind < 0.92) {
        op.kind = SimOpKind::kWriteCheckpoint;
      } else {
        op.kind = SimOpKind::kSyncJournal;
      }
      workload.client_ops[static_cast<size_t>(c)].push_back(std::move(op));
    }
  }

  if (config.force_fault || rng.Bernoulli(config.fault_probability)) {
    workload.fault_kind = static_cast<int>(rng.UniformInt(1, 2));
    workload.fault_append = static_cast<uint64_t>(rng.UniformInt(1, 12));
    workload.fault_keep_bytes =
        static_cast<size_t>(rng.UniformInt(0, 64));
  }

  for (int i = 0; i < 4; ++i) {
    SimOp op;
    op.kind = SimOpKind::kTryIssue;
    op.requests.push_back(make_request());
    workload.post_recovery_ops.push_back(std::move(op));
  }
  return workload;
}

SimResult RunWorkload(const SimWorkload& workload, uint64_t seed,
                      const SimConfig& config, const SimOpMask* enabled) {
  SimResult result;
  result.seed = seed;

  SimEnvironment env(seed);
  SimScheduler scheduler(&env);

  OnlineValidatorOptions options;
  options.use_grouping = true;
  options.sim_hooks = &scheduler;
  options.sim_skip_last_equation = config.inject_equation_skip;

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(workload.licenses.get(), options);
  GEOLIC_CHECK(service.ok());

  SimState state(workload.licenses.get());
  state.workload = &workload;
  state.service = service->get();
  state.scheduler = &scheduler;
  state.scratch_dir = MakeScratchDir(seed);

  auto platter = std::make_unique<InMemorySyncFile>();
  state.disk = platter.get();
  auto faulty = std::make_unique<FaultyFile>(std::move(platter));
  FaultyFile* fault = faulty.get();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(faulty));
  GEOLIC_CHECK(writer.ok());
  GEOLIC_CHECK((*service)->AttachJournal(std::move(*writer)).ok());
  // Scheduled after the magic write, so the countdown counts record
  // frames: fault_append = 1 tears the first journaled admission.
  if (workload.fault_kind == 1) {
    fault->ScheduleTearAppend(workload.fault_append,
                              workload.fault_keep_bytes);
  } else if (workload.fault_kind == 2) {
    fault->ScheduleFailSyncAfterAppend(workload.fault_append);
  }

  for (size_t c = 0; c < workload.client_ops.size(); ++c) {
    const std::vector<SimOp>* ops = &workload.client_ops[c];
    const std::vector<bool>* mask =
        enabled != nullptr ? &(*enabled)[c] : nullptr;
    scheduler.AddTask("client" + std::to_string(c),
                      [&state, ops, mask] {
                        for (size_t i = 0; i < ops->size(); ++i) {
                          state.scheduler->Yield("op_boundary");
                          if (!state.failure.empty()) {
                            return;
                          }
                          if (mask != nullptr && !(*mask)[i]) {
                            continue;
                          }
                          ExecuteOp(&state, (*ops)[i]);
                        }
                      });
  }
  scheduler.Run();

  if (state.failure.empty()) {
    FinalChecks(&state, config, options);
  }

  std::error_code discard;
  std::filesystem::remove_all(state.scratch_dir, discard);

  result.ok = state.failure.empty();
  result.failure = state.failure;
  result.op_trace = std::move(state.op_trace);
  result.ops_executed = state.ops_executed;
  return result;
}

SimResult RunSimulation(uint64_t seed, const SimConfig& config) {
  const SimWorkload workload = GenerateWorkload(seed, config);
  return RunWorkload(workload, seed, config, nullptr);
}

ShrinkOutcome ShrinkFailure(uint64_t seed, const SimConfig& config) {
  const SimWorkload workload = GenerateWorkload(seed, config);
  ShrinkOutcome outcome;
  SimOpMask mask;
  for (const std::vector<SimOp>& ops : workload.client_ops) {
    mask.emplace_back(ops.size(), true);
    outcome.original_ops += ops.size();
  }
  SimResult current = RunWorkload(workload, seed, config, &mask);
  ++outcome.runs_used;
  outcome.failure = current.failure;
  if (current.ok) {
    return outcome;  // Caller contract violated; nothing to shrink.
  }
  // Greedy 1-minimal pass: keep dropping single ops while the run still
  // fails (any failure — the minimal trace may surface a crisper symptom
  // of the same bug).
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t c = 0; c < mask.size(); ++c) {
      for (size_t i = 0; i < mask[c].size(); ++i) {
        if (!mask[c][i]) {
          continue;
        }
        mask[c][i] = false;
        const SimResult attempt = RunWorkload(workload, seed, config, &mask);
        ++outcome.runs_used;
        if (attempt.ok) {
          mask[c][i] = true;  // Needed for the failure; keep it.
        } else {
          outcome.failure = attempt.failure;
          progress = true;
        }
      }
    }
  }
  for (size_t c = 0; c < mask.size(); ++c) {
    for (size_t i = 0; i < mask[c].size(); ++i) {
      if (mask[c][i]) {
        outcome.minimal_ops.push_back(
            "client" + std::to_string(c) + "#" + std::to_string(i) + " " +
            DescribeOp(workload.client_ops[c][i]));
      }
    }
  }
  return outcome;
}

}  // namespace geolic
