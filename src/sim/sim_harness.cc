#include "sim/sim_harness.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "persist/faulty_file.h"
#include "persist/journal.h"
#include "persist/sync_file.h"
#include "service/issuance_service.h"
#include "sim/reference_model.h"
#include "sim/sim_environment.h"
#include "sim/sim_scheduler.h"
#include "util/check.h"

namespace geolic {
namespace {

// Largest per-request count the generator emits; the recovery diff uses it
// to bound how big an unobserved in-flight admission can be.
constexpr int64_t kMaxRequestCount = 3;

std::string MaskText(const LicenseSet& mask) { return mask.ToHex(); }

std::string DescribeOp(const SimOp& op) {
  switch (op.kind) {
    case SimOpKind::kTryIssue:
      return "issue " + op.requests[0].id() + " count=" +
             std::to_string(op.requests[0].aggregate_count());
    case SimOpKind::kTryIssueBatch: {
      std::string text = "batch[";
      for (size_t i = 0; i < op.requests.size(); ++i) {
        if (i > 0) {
          text += ",";
        }
        text += op.requests[i].id();
      }
      return text + "]";
    }
    case SimOpKind::kWriteCheckpoint:
      return "checkpoint";
    case SimOpKind::kSyncJournal:
      return "sync";
    case SimOpKind::kAcquireLicense:
      return "acquire " + op.requests[0].id();
    case SimOpKind::kRevokeLicense:
      return "revoke " + op.revoke_id;
    case SimOpKind::kExpireBefore:
      return "expire<" + std::to_string(op.expire_cutoff);
  }
  return "?";
}

// A reconfiguration whose journal frame append hit the scheduled fault:
// the service aborted (nothing published), but the frame may still have
// fully reached the platter, so recovery is allowed to replay it.
struct PendingReconfig {
  bool is_acquire = false;
  License acquired;    // Valid when is_acquire.
  LicenseSet removed;  // Old-epoch-space removal mask otherwise.
};

// Everything the cooperatively scheduled tasks share. No locking: the
// scheduler guarantees exactly one task thread runs at a time, and every
// handoff goes through its mutex, so accesses are ordered (TSan-visibly)
// by construction.
struct SimState {
  const SimWorkload* workload = nullptr;
  IssuanceService* service = nullptr;
  // The reference model always tracks the service's CURRENT catalog
  // epoch: each successful reconfiguration rebuilds it around an owned
  // copy of the evolved catalog, replaying surviving counts through the
  // same cascade-drop + dense renumbering the service performs.
  const LicenseCatalog* model_catalog = nullptr;
  std::unique_ptr<LicenseCatalog> model_catalog_owner;
  std::unique_ptr<ReferenceModel> model;
  uint64_t model_epoch = 0;
  // One old→new index map per reconfiguration (-1 = removed), so batch
  // decisions pinned to an older epoch can be translated forward.
  std::vector<std::vector<int>> remap_chain;
  InMemorySyncFile* disk = nullptr;  // The journal's platter.
  SimScheduler* scheduler = nullptr;
  std::string scratch_dir;

  std::string checkpoint_path;  // Latest durable checkpoint, "" = none.
  int checkpoints_written = 0;

  bool journal_error_seen = false;
  // The admission whose journal append hit the fault: its frame may or may
  // not have fully reached the platter, so recovery is allowed to contain
  // exactly this one record beyond the model.
  bool have_maybe_persisted = false;
  LicenseSet maybe_persisted_set;
  int64_t maybe_persisted_count = 0;
  // The reconfiguration whose frame append hit the fault (same ambiguity:
  // recovery may or may not see one reconfig record beyond the model).
  bool have_maybe_reconfig = false;
  PendingReconfig maybe_reconfig;
  // A batch died on the fault: the in-flight admission is unknown, so the
  // recovery diff falls back to a bounded one-record allowance.
  bool batch_error = false;
  int batches_in_flight = 0;

  std::string failure;  // First conformance violation; empty = clean.
  std::vector<std::string> op_trace;
  size_t ops_executed = 0;

  explicit SimState(const LicenseCatalog* licenses)
      : model_catalog(licenses),
        model(std::make_unique<ReferenceModel>(licenses)) {}
};

void Fail(SimState* state, const std::string& what) {
  if (state->failure.empty()) {
    state->failure = what;
  }
}

// Translates `set` from the index space of `from_epoch` into the current
// model epoch's space by walking the remap chain. Returns false when any
// member was removed along the way — the service cascade-drops such
// records during the reconfiguration, so the model must too.
bool TranslateSet(const SimState& state, uint64_t from_epoch,
                  LicenseSet* set) {
  for (uint64_t e = from_epoch; e < state.model_epoch; ++e) {
    const std::vector<int>& map = state.remap_chain[static_cast<size_t>(e)];
    LicenseSet out;
    for (int i : set->Indexes()) {
      if (i >= static_cast<int>(map.size()) ||
          map[static_cast<size_t>(i)] < 0) {
        return false;
      }
      out.Add(map[static_cast<size_t>(i)]);
    }
    *set = out;
  }
  return true;
}

// Rebuilds the reference model around the catalog that results from
// `pending` — dropped licenses removed, surviving licenses renumbered
// densely, an acquired license appended — and replays every surviving
// count through the renumbering (records intersecting the removal are
// cascade-dropped, exactly the live reconfiguration semantics).
void ApplyReconfigToModel(SimState* state, const PendingReconfig& pending) {
  const LicenseCatalog& old_catalog = *state->model_catalog;
  auto next = std::make_unique<LicenseCatalog>(&old_catalog.schema());
  std::vector<int> old_to_new;
  old_to_new.reserve(static_cast<size_t>(old_catalog.size()));
  int next_index = 0;
  for (int i = 0; i < old_catalog.size(); ++i) {
    if (pending.removed.Contains(i)) {
      old_to_new.push_back(-1);
      continue;
    }
    GEOLIC_CHECK(next->Add(old_catalog.at(i)).ok());
    old_to_new.push_back(next_index++);
  }
  if (pending.is_acquire) {
    GEOLIC_CHECK(next->Add(pending.acquired).ok());
  }
  auto fresh = std::make_unique<ReferenceModel>(next.get());
  for (const auto& [set, count] : state->model->counts()) {
    if (set.Intersects(pending.removed)) {
      continue;
    }
    LicenseSet remapped;
    for (int i : set.Indexes()) {
      remapped.Add(old_to_new[static_cast<size_t>(i)]);
    }
    fresh->Apply(remapped, count);
  }
  state->remap_chain.push_back(std::move(old_to_new));
  state->model = std::move(fresh);  // Old model dies before its catalog.
  state->model_catalog_owner = std::move(next);
  state->model_catalog = state->model_catalog_owner.get();
  ++state->model_epoch;
}

// The service and the model must agree on the epoch number after every
// lifecycle op — they advance in lockstep because the executor updates
// the model without yielding after the service call returns.
void CheckEpochLockstep(SimState* state, const char* when) {
  const uint64_t service_epoch = state->service->catalog_epoch();
  if (service_epoch != state->model_epoch) {
    Fail(state, std::string(when) + ": service catalog epoch " +
                    std::to_string(service_epoch) + " != model epoch " +
                    std::to_string(state->model_epoch));
  }
}

// Compares one service decision against the reference model. `strong`
// demands exact agreement (accept/reject and the full limiting equation);
// the weak form — used while another task's batch is mid-flight, when the
// model legitimately lags the service — still pins the immutable geometry
// and requires any rejection to cite a genuinely coherent equation.
std::string CompareDecision(const LicenseCatalog& licenses,
                            const ReferenceModel& model,
                            const License& request,
                            const OnlineDecision& got, bool strong) {
  const ReferenceModel::Decision want = model.TryIssue(request);
  if (got.instance_valid != want.instance_valid ||
      got.satisfying_set != want.satisfying_set) {
    return "satisfying set mismatch for " + request.id() + ": service " +
           MaskText(got.satisfying_set) + ", brute force " +
           MaskText(want.satisfying_set);
  }
  if (!want.instance_valid) {
    return "";
  }
  if (strong) {
    if (got.aggregate_valid != want.aggregate_valid) {
      return std::string("decision mismatch for ") + request.id() +
             ": service " + (got.aggregate_valid ? "accepted" : "rejected") +
             ", brute-force eq. 1 says " +
             (want.aggregate_valid ? "accept" : "reject");
    }
    if (!want.aggregate_valid &&
        (got.limiting.set != want.limiting_set ||
         got.limiting.lhs != want.limiting_lhs ||
         got.limiting.rhs != want.limiting_rhs)) {
      return "limiting equation mismatch for " + request.id() + ": service " +
             MaskText(got.limiting.set) + " (" +
             std::to_string(got.limiting.lhs) + " > " +
             std::to_string(got.limiting.rhs) + "), brute force " +
             MaskText(want.limiting_set) + " (" +
             std::to_string(want.limiting_lhs) + " > " +
             std::to_string(want.limiting_rhs) + ")";
    }
    return "";
  }
  if (!got.aggregate_valid) {
    if (got.limiting.lhs <= got.limiting.rhs) {
      return "rejection for " + request.id() +
             " cites a non-violated equation";
    }
    if (got.limiting.rhs != licenses.AggregateSum(got.limiting.set)) {
      return "rejection for " + request.id() +
             " cites a wrong aggregate budget for " +
             MaskText(got.limiting.set);
    }
    if (!(got.satisfying_set).IsSubsetOf(got.limiting.set)) {
      return "limiting set for " + request.id() +
             " does not contain the satisfying set";
    }
  }
  return "";
}

// The service hit a journal I/O error while admitting `request`. The first
// such error is the faulted append: that admission's frame may have fully
// persisted even though the caller saw a failure.
void NoteJournalError(SimState* state, const License& request) {
  if (state->workload->fault_kind == 0) {
    Fail(state, "journal error without a scheduled fault");
    return;
  }
  if (state->journal_error_seen) {
    return;  // Poisoned writer: nothing further reaches the platter.
  }
  state->journal_error_seen = true;
  state->have_maybe_persisted = true;
  state->maybe_persisted_set = state->model->TryIssue(request).satisfying_set;
  state->maybe_persisted_count = request.aggregate_count();
}

// A reconfiguration failed. Without a scheduled fault that is a service
// bug; with one, the first failure is the faulted frame append — the
// service aborted, but the frame itself may have reached the platter.
void NoteReconfigFailure(SimState* state, PendingReconfig pending,
                         const Status& status) {
  if (state->workload->fault_kind == 0) {
    Fail(state,
         std::string("reconfiguration failed without a scheduled fault: ") +
             status.message());
    return;
  }
  if (state->journal_error_seen) {
    return;  // Poisoned writer: the frame never reached the platter.
  }
  state->journal_error_seen = true;
  state->have_maybe_reconfig = true;
  state->maybe_reconfig = std::move(pending);
}

// Raises the model to the service's merged log counts after a mid-batch
// journal failure left admissions the caller could not observe. The
// service may only ever be AHEAD of the model — a missing record means an
// acknowledged admission vanished.
void ReconcileModelFromServiceLog(SimState* state) {
  const std::unordered_map<LicenseSet, int64_t> merged =
      state->service->CollectLog().MergedCounts();
  for (const auto& [set, count] : state->model->counts()) {
    const auto it = merged.find(set);
    const int64_t service_count = it == merged.end() ? 0 : it->second;
    if (service_count < count) {
      Fail(state, "service log lost records for set " + MaskText(set));
      return;
    }
  }
  for (const auto& [set, count] : merged) {
    const auto it = state->model->counts().find(set);
    const int64_t model_count =
        it == state->model->counts().end() ? 0 : it->second;
    if (count > model_count) {
      state->model->Apply(set, count - model_count);
    }
  }
  const Status invariant = state->model->CheckInvariant();
  if (!invariant.ok()) {
    Fail(state, std::string("after batch reconcile: ") + invariant.message());
  }
}

void RunInvariantSweep(SimState* state, const char* when) {
  const Status invariant = state->model->CheckInvariant();
  if (!invariant.ok()) {
    Fail(state, std::string(when) + ": " + invariant.message());
  }
}

// Cross-checks the wire codec against the request the harness is about to
// admit: every generated license must survive encode -> decode -> encode
// byte-identically, so the sim sweep exercises the network payload format
// on every admission path, not just in the dedicated wire tests.
bool CheckWireRoundTrip(SimState* state, const License& request) {
  std::string payload;
  const Status encoded = net::EncodeIssueRequest(request, &payload);
  if (!encoded.ok()) {
    Fail(state, "wire encode failed for " + request.id() + ": " +
                    std::string(encoded.message()));
    return false;
  }
  const Result<License> decoded = net::DecodeIssueRequest(payload);
  if (!decoded.ok()) {
    Fail(state, "wire decode failed for " + request.id() + ": " +
                    std::string(decoded.status().message()));
    return false;
  }
  std::string again;
  if (!net::EncodeIssueRequest(*decoded, &again).ok() || again != payload) {
    Fail(state, "wire round-trip not byte-identical for " + request.id());
    return false;
  }
  return true;
}

void ExecuteTryIssue(SimState* state, const SimOp& op) {
  const License& request = op.requests[0];
  if (!CheckWireRoundTrip(state, request)) {
    return;
  }
  const Result<OnlineDecision> got = state->service->TryIssue(request);
  if (!got.ok()) {
    NoteJournalError(state, request);
    return;
  }
  // A single issue retries internally until it admits (or rejects) in the
  // epoch that is current at return, and nothing can run between that and
  // this comparison, so the decision is always in the model's space.
  if (got->catalog_epoch != state->model_epoch) {
    Fail(state, "issue " + request.id() + " decided in epoch " +
                    std::to_string(got->catalog_epoch) + ", model at " +
                    std::to_string(state->model_epoch));
    return;
  }
  const bool strong = state->batches_in_flight == 0;
  const std::string mismatch = CompareDecision(
      *state->model_catalog, *state->model, request, *got, strong);
  if (!mismatch.empty()) {
    Fail(state, mismatch);
    return;
  }
  if (got->accepted()) {
    state->model->Apply(got->satisfying_set, request.aggregate_count());
  }
  RunInvariantSweep(state, "after issue");
}

void ExecuteBatch(SimState* state, const SimOp& op) {
  for (const License& request : op.requests) {
    if (!CheckWireRoundTrip(state, request)) {
      return;
    }
  }
  ++state->batches_in_flight;
  const uint64_t version_before = state->model->version();
  const uint64_t epoch_before = state->model_epoch;
  const Result<std::vector<OnlineDecision>> got =
      state->service->TryIssueBatch(op.requests);
  --state->batches_in_flight;
  if (!got.ok()) {
    if (state->workload->fault_kind == 0) {
      Fail(state, "batch error without a scheduled fault");
      return;
    }
    // The faulted append belongs to an unknown request inside the batch.
    state->journal_error_seen = true;
    state->batch_error = true;
    ReconcileModelFromServiceLog(state);
    return;
  }
  // Exact sequential semantics are checkable only when nothing else
  // admitted during the batch: no model change, no reconfiguration, and no
  // other batch still parked mid-flight with unobserved admissions.
  const bool strong = state->model->version() == version_before &&
                      state->model_epoch == epoch_before &&
                      state->batches_in_flight == 0;
  for (size_t i = 0; i < op.requests.size(); ++i) {
    const OnlineDecision& decision = (*got)[i];
    if (decision.catalog_epoch > state->model_epoch) {
      Fail(state, "batch[" + std::to_string(i) + "] decided in future epoch " +
                      std::to_string(decision.catalog_epoch));
      return;
    }
    if (decision.catalog_epoch < state->model_epoch) {
      // Admitted before a reconfiguration that landed mid-batch: the
      // satisfying set lives in an older index space. Translate it
      // forward; a record the reconfiguration cascade-dropped must not be
      // counted (the service dropped it too).
      if (decision.accepted()) {
        LicenseSet set = decision.satisfying_set;
        if (TranslateSet(*state, decision.catalog_epoch, &set)) {
          state->model->Apply(set, op.requests[i].aggregate_count());
        }
      }
      continue;
    }
    const std::string mismatch =
        CompareDecision(*state->model_catalog, *state->model, op.requests[i],
                        decision, strong);
    if (!mismatch.empty()) {
      Fail(state, "batch[" + std::to_string(i) + "]: " + mismatch);
      return;
    }
    if (decision.accepted()) {
      state->model->Apply(decision.satisfying_set,
                          op.requests[i].aggregate_count());
    }
  }
  RunInvariantSweep(state, "after batch");
}

void ExecuteCheckpoint(SimState* state) {
  const std::string path =
      state->scratch_dir + "/ckpt_" +
      std::to_string(++state->checkpoints_written) + ".gck";
  const Status written = state->service->WriteCheckpoint(path);
  if (!written.ok()) {
    Fail(state, std::string("checkpoint write failed: ") + written.message());
    return;
  }
  state->checkpoint_path = path;
}

void ExecuteSync(SimState* state) {
  const Status synced = state->service->SyncJournal();
  if (!synced.ok() && state->workload->fault_kind == 0) {
    Fail(state, std::string("sync failed without a scheduled fault: ") +
                    synced.message());
  }
}

void ExecuteAcquire(SimState* state, const SimOp& op) {
  const License& license = op.requests[0];
  PendingReconfig pending;
  pending.is_acquire = true;
  pending.acquired = license;
  const Result<int> got = state->service->AcquireLicense(license);
  if (!got.ok()) {
    NoteReconfigFailure(state, std::move(pending), got.status());
    CheckEpochLockstep(state, "after failed acquire");
    return;
  }
  // Checked against the model catalog AFTER the call: reconfigurations by
  // other tasks can land inside this call's yield, and the model tracks
  // them — so at return the model size IS the service's pre-acquire size.
  if (*got != state->model_catalog->size()) {
    Fail(state, "acquire " + license.id() + " returned index " +
                    std::to_string(*got) + ", expected " +
                    std::to_string(state->model_catalog->size()));
    return;
  }
  ApplyReconfigToModel(state, pending);
  CheckEpochLockstep(state, "after acquire");
  RunInvariantSweep(state, "after acquire");
}

void ExecuteRevoke(SimState* state, const SimOp& op) {
  // Revoke by id: a reconfiguration by another task can renumber indexes
  // inside this call's yield, so the service resolves the id under its
  // own reconfiguration lock. The model resolves AFTER the call returns —
  // nothing can run in between, so both resolve in the same epoch.
  const Status got = state->service->RevokeLicenseById(op.revoke_id);
  const Result<int> index = state->model_catalog->IndexOfId(op.revoke_id);
  if (!index.ok()) {
    // Never acquired, or already revoked/expired: the service must have
    // refused without side effects.
    if (got.ok()) {
      Fail(state, "revoke of absent id " + op.revoke_id + " succeeded");
    }
    CheckEpochLockstep(state, "after refused revoke");
    return;
  }
  if (state->model_catalog->size() == 1) {
    if (got.ok()) {
      Fail(state, "revoking the last license succeeded");
    }
    CheckEpochLockstep(state, "after refused revoke");
    return;
  }
  PendingReconfig pending;
  pending.removed.Add(*index);
  if (!got.ok()) {
    NoteReconfigFailure(state, std::move(pending), got);
    CheckEpochLockstep(state, "after failed revoke");
    return;
  }
  ApplyReconfigToModel(state, pending);
  CheckEpochLockstep(state, "after revoke");
  RunInvariantSweep(state, "after revoke");
}

void ExecuteExpire(SimState* state, const SimOp& op) {
  const Result<int> got =
      state->service->ExpireDimensionBelow(0, op.expire_cutoff);
  // The expected removal is evaluated on the model catalog AFTER the call:
  // the service computed against the epoch current at execution, no other
  // task has run since, and the model has not applied yet — so both see
  // the same pre-expiry catalog.
  PendingReconfig pending;
  for (int i = 0; i < state->model_catalog->size(); ++i) {
    const Interval& range =
        state->model_catalog->at(i).rect().dim(0).interval();
    if (range.hi() < op.expire_cutoff) {
      pending.removed.Add(i);
    }
  }
  const int expected = pending.removed.Size();
  if (expected == state->model_catalog->size()) {
    // Expiring everything must be refused without side effects.
    if (got.ok()) {
      Fail(state, "expiring every license succeeded");
    }
    CheckEpochLockstep(state, "after refused expire");
    return;
  }
  if (!got.ok()) {
    NoteReconfigFailure(state, std::move(pending), got.status());
    CheckEpochLockstep(state, "after failed expire");
    return;
  }
  if (*got != expected) {
    Fail(state, "expire<" + std::to_string(op.expire_cutoff) + " removed " +
                    std::to_string(*got) + " licenses, brute force expects " +
                    std::to_string(expected));
    return;
  }
  if (expected == 0) {
    CheckEpochLockstep(state, "after no-op expire");
    return;  // No removal: no epoch change on either side.
  }
  ApplyReconfigToModel(state, pending);
  CheckEpochLockstep(state, "after expire");
  RunInvariantSweep(state, "after expire");
}

void ExecuteOp(SimState* state, const SimOp& op) {
  ++state->ops_executed;
  state->op_trace.push_back(DescribeOp(op));
  switch (op.kind) {
    case SimOpKind::kTryIssue:
      ExecuteTryIssue(state, op);
      return;
    case SimOpKind::kTryIssueBatch:
      ExecuteBatch(state, op);
      return;
    case SimOpKind::kWriteCheckpoint:
      ExecuteCheckpoint(state);
      return;
    case SimOpKind::kSyncJournal:
      ExecuteSync(state);
      return;
    case SimOpKind::kAcquireLicense:
      ExecuteAcquire(state, op);
      return;
    case SimOpKind::kRevokeLicense:
      ExecuteRevoke(state, op);
      return;
    case SimOpKind::kExpireBefore:
      ExecuteExpire(state, op);
      return;
  }
}

// Recovered state may exceed the model by AT MOST the one in-flight
// admission whose journal append hit the fault; anything else — a missing
// acknowledged record, a phantom record, more than one extra — is a
// durability bug. Adopts the allowed extra into the model. Reconfiguration
// frames are checked first: recovery must have replayed exactly the
// reconfigurations the model saw, plus at most the one whose own frame
// append hit the fault (adopted into the model before diffing counts).
void CheckRecoveredCounts(
    SimState* state, const RecoveryStats& stats,
    const std::unordered_map<LicenseSet, int64_t>& recovered) {
  if (state->have_maybe_reconfig &&
      stats.reconfig_records_replayed == state->model_epoch + 1) {
    ApplyReconfigToModel(state, state->maybe_reconfig);
  } else if (stats.reconfig_records_replayed != state->model_epoch) {
    Fail(state, "recovery replayed " +
                    std::to_string(stats.reconfig_records_replayed) +
                    " reconfiguration records, model saw " +
                    std::to_string(state->model_epoch));
    return;
  }
  if (stats.recovered_catalog_epoch != state->model_epoch) {
    Fail(state, "recovered catalog epoch " +
                    std::to_string(stats.recovered_catalog_epoch) +
                    " != model epoch " + std::to_string(state->model_epoch));
    return;
  }
  std::map<LicenseSet, int64_t> extras;
  for (const auto& [set, count] : state->model->counts()) {
    const auto it = recovered.find(set);
    const int64_t have = it == recovered.end() ? 0 : it->second;
    if (have < count) {
      Fail(state, "recovery lost acknowledged records for set " +
                      MaskText(set) + ": " + std::to_string(have) + " < " +
                      std::to_string(count));
      return;
    }
  }
  for (const auto& [set, count] : recovered) {
    const auto it = state->model->counts().find(set);
    const int64_t have =
        it == state->model->counts().end() ? 0 : it->second;
    if (count > have) {
      extras[set] = count - have;
    }
  }
  if (extras.empty()) {
    return;
  }
  if (extras.size() > 1) {
    Fail(state, "recovery produced " + std::to_string(extras.size()) +
                    " phantom record sets");
    return;
  }
  const auto& [extra_set, extra_count] = *extras.begin();
  if (state->have_maybe_persisted) {
    if (extra_set != state->maybe_persisted_set ||
        extra_count != state->maybe_persisted_count) {
      Fail(state, "recovery extra record " + MaskText(extra_set) + " x" +
                      std::to_string(extra_count) +
                      " does not match the in-flight admission " +
                      MaskText(state->maybe_persisted_set) + " x" +
                      std::to_string(state->maybe_persisted_count));
      return;
    }
  } else if (state->batch_error) {
    if (extra_count > kMaxRequestCount) {
      Fail(state, "recovery extra record exceeds any single request: " +
                      MaskText(extra_set) + " x" +
                      std::to_string(extra_count));
      return;
    }
  } else {
    Fail(state, "phantom record after recovery: " + MaskText(extra_set) +
                    " x" + std::to_string(extra_count));
    return;
  }
  state->model->Apply(extra_set, extra_count);
  RunInvariantSweep(state, "after adopting recovered in-flight record");
}

// Final conformance: service snapshots (log, tree, flat tree) against the
// model, then a full crash-recovery round trip from the journal platter
// plus the newest checkpoint, then a short single-threaded continuation on
// the recovered service.
void FinalChecks(SimState* state, const SimConfig& config,
                 const OnlineValidatorOptions& options) {
  if (state->failure.empty() && !state->batch_error) {
    const std::unordered_map<LicenseSet, int64_t> merged =
        state->service->CollectLog().MergedCounts();
    if (merged.size() != state->model->counts().size()) {
      Fail(state, "final log has " + std::to_string(merged.size()) +
                      " distinct sets, model has " +
                      std::to_string(state->model->counts().size()));
    }
    for (const auto& [set, count] : state->model->counts()) {
      const auto it = merged.find(set);
      if (it == merged.end() || it->second != count) {
        Fail(state, "final log count mismatch for set " + MaskText(set));
        break;
      }
    }
  }
  if (state->failure.empty()) {
    const Result<FlatValidationTree> flat = state->service->CollectFlatTree();
    if (!flat.ok()) {
      Fail(state, std::string("flat tree compile failed: ") +
                      flat.status().message());
    } else {
      // Every equation LHS, flat pruned scan vs. brute force. Recorded
      // sets lie within one overlap component, so C<T> factors across
      // components; sweeping each component exhaustively covers every
      // distinct per-component sum (2^slab per slab instead of 2^N).
      const std::vector<LicenseSet>& components = state->model->components();
      for (const LicenseSet& component : components) {
        for (SubsetIterator it(component); !it.Done() && state->failure.empty();
             it.Next()) {
          const LicenseSet t = it.subset();
          if (flat->SumSubsets(t) != state->model->SumSubsets(t)) {
            Fail(state, "flat tree C<S> diverges from brute force at " +
                            MaskText(t));
          }
        }
      }
      // Cross-component probes: full pairwise unions and the all-mask,
      // so the factored path through the flat tree is exercised on
      // spanning equations too (bounded: O(components^2) probes).
      if (state->failure.empty()) {
        std::vector<LicenseSet> spanning;
        for (size_t a = 0; a < components.size(); ++a) {
          for (size_t b = a + 1; b < components.size(); ++b) {
            spanning.push_back(components[a] | components[b]);
          }
        }
        spanning.push_back(state->model_catalog->AllMask());
        for (const LicenseSet& t : spanning) {
          if (flat->SumSubsets(t) != state->model->SumSubsets(t)) {
            Fail(state, "flat tree C<S> diverges from brute force at " +
                            MaskText(t));
            break;
          }
        }
      }
    }
  }
  RunInvariantSweep(state, "final");
  if (!state->failure.empty()) {
    return;
  }

  // Crash-recovery round trip: the platter contents are exactly what a
  // recovery pass would find after the process died here. Recovery always
  // starts from the EPOCH-0 catalog — the journal's reconfiguration
  // records must re-derive the final catalog on their own.
  const std::string journal_path = state->scratch_dir + "/journal.gjl";
  {
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    GEOLIC_CHECK(out.good());
    const std::string& bytes = state->disk->contents();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    GEOLIC_CHECK(out.good());
  }
  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered = IssuanceService::Recover(
      state->workload->licenses.get(), options, state->checkpoint_path,
      journal_path, &stats);
  if (!recovered.ok()) {
    Fail(state, std::string("recovery failed: ") +
                    recovered.status().message());
    return;
  }
  CheckRecoveredCounts(state, stats,
                       (*recovered)->CollectLog().MergedCounts());
  if (!state->failure.empty()) {
    return;
  }

  // Continuation: the recovered service must keep deciding exactly like
  // the (now synchronized) model. Both sit in the final epoch's index
  // space — the recovered service merely numbers it as its own epoch 0.
  IssuanceService* service = recovered->get();
  auto fresh = std::make_unique<InMemorySyncFile>();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(fresh));
  GEOLIC_CHECK(writer.ok());
  GEOLIC_CHECK(service->AttachJournal(std::move(*writer)).ok());
  for (const SimOp& op : state->workload->post_recovery_ops) {
    const License& request = op.requests[0];
    const Result<OnlineDecision> got = service->TryIssue(request);
    if (!got.ok()) {
      Fail(state, std::string("post-recovery issue failed: ") +
                      got.status().message());
      return;
    }
    state->op_trace.push_back("post-recovery " + DescribeOp(op));
    ++state->ops_executed;
    const std::string mismatch = CompareDecision(
        *state->model_catalog, *state->model, request, *got, true);
    if (!mismatch.empty()) {
      Fail(state, "post-recovery: " + mismatch);
      return;
    }
    if (got->accepted()) {
      state->model->Apply(got->satisfying_set, request.aggregate_count());
    }
  }
  (void)config;
}

std::string MakeScratchDir(uint64_t seed) {
  static std::atomic<uint64_t> counter{0};
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("geolic_sim_" + std::to_string(::getpid()) + "_" +
        std::to_string(seed) + "_" +
        std::to_string(counter.fetch_add(1))))
          .string();
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

SimWorkload GenerateWorkload(uint64_t seed, const SimConfig& config) {
  SimEnvironment env(seed);
  Rng& rng = env.workload_rng();
  SimWorkload workload;

  const int dims = static_cast<int>(rng.UniformInt(1, 2));
  workload.schema = std::make_unique<ConstraintSchema>();
  for (int d = 0; d < dims; ++d) {
    GEOLIC_CHECK(workload.schema
                     ->AddIntervalDimension("C" + std::to_string(d + 1))
                     .ok());
  }
  workload.licenses = std::make_unique<LicenseCatalog>(workload.schema.get());
  const int license_count = static_cast<int>(
      rng.UniformInt(config.min_licenses, config.max_licenses));
  constexpr int64_t kDomain = 24;
  // Slabs are 2*kDomain apart so a license's interval (max hi offset
  // kDomain - 6 + 10 = 28) can never reach the next slab: components stay
  // within one slab by construction.
  constexpr int64_t kSlabStride = 2 * kDomain;
  const int slabs = config.cluster_slabs < 1 ? 1 : config.cluster_slabs;
  const auto make_redistribution = [&](const std::string& id,
                                       int64_t slab_lo) {
    LicenseBuilder builder(workload.schema.get());
    builder.SetId(id)
        .SetContentKey("K")
        .SetType(LicenseType::kRedistribution)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(rng.UniformInt(2, 10));
    for (int d = 0; d < dims; ++d) {
      const int64_t lo = slab_lo + rng.UniformInt(0, kDomain - 6);
      const int64_t hi = lo + rng.UniformInt(3, 10);
      builder.SetInterval("C" + std::to_string(d + 1), lo, hi);
    }
    const Result<License> license = builder.Build();
    GEOLIC_CHECK(license.ok());
    return *license;
  };
  std::vector<std::string> known_ids;
  for (int i = 0; i < license_count; ++i) {
    const int64_t slab_lo = (i % slabs) * kSlabStride;
    known_ids.push_back("L" + std::to_string(i + 1));
    GEOLIC_CHECK(
        workload.licenses->Add(make_redistribution(known_ids.back(), slab_lo))
            .ok());
  }

  int request_counter = 0;
  const auto make_request = [&]() {
    LicenseBuilder builder(workload.schema.get());
    builder.SetId("U" + std::to_string(++request_counter))
        .SetContentKey("K")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(rng.UniformInt(1, kMaxRequestCount));
    if (rng.Bernoulli(0.15)) {
      // Anywhere in a random slab: often instance-invalid — the lock-free
      // fast-reject path.
      const int64_t slab_lo =
          rng.UniformInt(0, static_cast<int64_t>(slabs) - 1) * kSlabStride;
      for (int d = 0; d < dims; ++d) {
        const int64_t lo = slab_lo + rng.UniformInt(0, kDomain - 1);
        builder.SetInterval("C" + std::to_string(d + 1), lo,
                            lo + rng.UniformInt(0, 4));
      }
    } else {
      // A sub-rectangle of one license, so the satisfying set is
      // non-empty and the aggregate path runs.
      const int target =
          static_cast<int>(rng.UniformIndex(
              static_cast<size_t>(workload.licenses->size())));
      const License& inside = workload.licenses->at(target);
      for (int d = 0; d < dims; ++d) {
        const Interval& range = inside.rect().dim(d).interval();
        const int64_t lo = rng.UniformInt(range.lo(), range.hi());
        const int64_t hi = rng.UniformInt(lo, range.hi());
        builder.SetInterval("C" + std::to_string(d + 1), lo, hi);
      }
    }
    const Result<License> license = builder.Build();
    GEOLIC_CHECK(license.ok());
    return *license;
  };

  int acquire_counter = 0;
  const int clients = static_cast<int>(
      rng.UniformInt(config.min_clients, config.max_clients));
  workload.client_ops.resize(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    const int ops = static_cast<int>(rng.UniformInt(
        config.min_ops_per_client, config.max_ops_per_client));
    for (int i = 0; i < ops; ++i) {
      SimOp op;
      const double kind = rng.UniformDouble();
      if (config.lifecycle_ops) {
        if (kind < 0.58) {
          op.kind = SimOpKind::kTryIssue;
          op.requests.push_back(make_request());
        } else if (kind < 0.70) {
          op.kind = SimOpKind::kTryIssueBatch;
          const int batch = static_cast<int>(rng.UniformInt(2, 4));
          for (int b = 0; b < batch; ++b) {
            op.requests.push_back(make_request());
          }
        } else if (kind < 0.76) {
          op.kind = SimOpKind::kWriteCheckpoint;
        } else if (kind < 0.82) {
          op.kind = SimOpKind::kSyncJournal;
        } else if (kind < 0.90) {
          op.kind = SimOpKind::kAcquireLicense;
          const int64_t slab_lo =
              rng.UniformInt(0, static_cast<int64_t>(slabs) - 1) *
              kSlabStride;
          const std::string id = "A" + std::to_string(++acquire_counter);
          op.requests.push_back(make_redistribution(id, slab_lo));
          known_ids.push_back(id);
        } else if (kind < 0.96) {
          op.kind = SimOpKind::kRevokeLicense;
          op.revoke_id = known_ids[rng.UniformIndex(known_ids.size())];
        } else {
          op.kind = SimOpKind::kExpireBefore;
          op.expire_cutoff = rng.UniformInt(1, kDomain);
        }
      } else if (kind < 0.72) {
        op.kind = SimOpKind::kTryIssue;
        op.requests.push_back(make_request());
      } else if (kind < 0.84) {
        op.kind = SimOpKind::kTryIssueBatch;
        const int batch = static_cast<int>(rng.UniformInt(2, 4));
        for (int b = 0; b < batch; ++b) {
          op.requests.push_back(make_request());
        }
      } else if (kind < 0.92) {
        op.kind = SimOpKind::kWriteCheckpoint;
      } else {
        op.kind = SimOpKind::kSyncJournal;
      }
      workload.client_ops[static_cast<size_t>(c)].push_back(std::move(op));
    }
  }

  if (config.force_fault || rng.Bernoulli(config.fault_probability)) {
    workload.fault_kind = static_cast<int>(rng.UniformInt(1, 2));
    workload.fault_append = static_cast<uint64_t>(rng.UniformInt(1, 12));
    workload.fault_keep_bytes =
        static_cast<size_t>(rng.UniformInt(0, 64));
  }

  for (int i = 0; i < 4; ++i) {
    SimOp op;
    op.kind = SimOpKind::kTryIssue;
    op.requests.push_back(make_request());
    workload.post_recovery_ops.push_back(std::move(op));
  }
  return workload;
}

SimResult RunWorkload(const SimWorkload& workload, uint64_t seed,
                      const SimConfig& config, const SimOpMask* enabled) {
  SimResult result;
  result.seed = seed;

  SimEnvironment env(seed);
  SimScheduler scheduler(&env);

  OnlineValidatorOptions options;
  options.use_grouping = true;
  options.sim_hooks = &scheduler;
  options.sim_skip_last_equation = config.inject_equation_skip;
  options.sim_skip_renumbering = config.inject_skip_renumbering;

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(workload.licenses.get(), options);
  GEOLIC_CHECK(service.ok());

  SimState state(workload.licenses.get());
  state.workload = &workload;
  state.service = service->get();
  state.scheduler = &scheduler;
  state.scratch_dir = MakeScratchDir(seed);

  auto platter = std::make_unique<InMemorySyncFile>();
  state.disk = platter.get();
  auto faulty = std::make_unique<FaultyFile>(std::move(platter));
  FaultyFile* fault = faulty.get();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(faulty));
  GEOLIC_CHECK(writer.ok());
  GEOLIC_CHECK((*service)->AttachJournal(std::move(*writer)).ok());
  // Scheduled after the magic write, so the countdown counts record
  // frames: fault_append = 1 tears the first journaled admission.
  if (workload.fault_kind == 1) {
    fault->ScheduleTearAppend(workload.fault_append,
                              workload.fault_keep_bytes);
  } else if (workload.fault_kind == 2) {
    fault->ScheduleFailSyncAfterAppend(workload.fault_append);
  }

  for (size_t c = 0; c < workload.client_ops.size(); ++c) {
    const std::vector<SimOp>* ops = &workload.client_ops[c];
    const std::vector<bool>* mask =
        enabled != nullptr ? &(*enabled)[c] : nullptr;
    scheduler.AddTask("client" + std::to_string(c),
                      [&state, ops, mask] {
                        for (size_t i = 0; i < ops->size(); ++i) {
                          state.scheduler->Yield("op_boundary");
                          if (!state.failure.empty()) {
                            return;
                          }
                          if (mask != nullptr && !(*mask)[i]) {
                            continue;
                          }
                          ExecuteOp(&state, (*ops)[i]);
                        }
                      });
  }
  scheduler.Run();

  if (state.failure.empty()) {
    FinalChecks(&state, config, options);
  }

  std::error_code discard;
  std::filesystem::remove_all(state.scratch_dir, discard);

  result.ok = state.failure.empty();
  result.failure = state.failure;
  result.op_trace = std::move(state.op_trace);
  result.ops_executed = state.ops_executed;
  return result;
}

SimResult RunSimulation(uint64_t seed, const SimConfig& config) {
  const SimWorkload workload = GenerateWorkload(seed, config);
  return RunWorkload(workload, seed, config, nullptr);
}

ShrinkOutcome ShrinkFailure(uint64_t seed, const SimConfig& config) {
  const SimWorkload workload = GenerateWorkload(seed, config);
  ShrinkOutcome outcome;
  SimOpMask mask;
  for (const std::vector<SimOp>& ops : workload.client_ops) {
    mask.emplace_back(ops.size(), true);
    outcome.original_ops += ops.size();
  }
  SimResult current = RunWorkload(workload, seed, config, &mask);
  ++outcome.runs_used;
  outcome.failure = current.failure;
  if (current.ok) {
    return outcome;  // Caller contract violated; nothing to shrink.
  }
  // Greedy 1-minimal pass: keep dropping single ops while the run still
  // fails (any failure — the minimal trace may surface a crisper symptom
  // of the same bug).
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t c = 0; c < mask.size(); ++c) {
      for (size_t i = 0; i < mask[c].size(); ++i) {
        if (!mask[c][i]) {
          continue;
        }
        mask[c][i] = false;
        const SimResult attempt = RunWorkload(workload, seed, config, &mask);
        ++outcome.runs_used;
        if (attempt.ok) {
          mask[c][i] = true;  // Needed for the failure; keep it.
        } else {
          outcome.failure = attempt.failure;
          progress = true;
        }
      }
    }
  }
  for (size_t c = 0; c < mask.size(); ++c) {
    for (size_t i = 0; i < mask[c].size(); ++i) {
      if (mask[c][i]) {
        outcome.minimal_ops.push_back(
            "client" + std::to_string(c) + "#" + std::to_string(i) + " " +
            DescribeOp(workload.client_ops[c][i]));
      }
    }
  }
  return outcome;
}

}  // namespace geolic
