#ifndef GEOLIC_SIM_SIM_SCHEDULER_H_
#define GEOLIC_SIM_SIM_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/sim_environment.h"
#include "util/sim_hooks.h"

namespace geolic {

// One scheduling decision: which task ran, and the yield point (or
// lifecycle event) that ended its segment.
struct SchedulerStep {
  int task = -1;
  std::string point;  // Yield point name, "start", or "finish".
};

// Deterministic cooperative scheduler, FoundationDB-style: tasks run on
// real threads, but exactly one thread holds the run token at any moment,
// and every handoff happens at a named yield point. The next runnable task
// is drawn from the environment's schedule RNG, so the full interleaving
// is a pure function of the seed — re-running with the same seed replays
// the same interleaving, byte for byte.
//
// Tasks reach yield points two ways: the harness calls Yield between
// operations, and the service under test calls it at the lock-free seams
// of its request path (OnlineValidatorOptions::sim_hooks). Because only
// yield-free segments hold locks, a parked task never owns a mutex and the
// single-token design cannot deadlock.
//
// The scheduler is also the SimHooks implementation handed to the service:
// Yield parks the calling task thread; NowNanos reads the virtual clock.
// Calls from threads the scheduler did not spawn (e.g. harness code
// running before or after Run) fall through: Yield is a no-op, NowNanos
// still ticks the clock.
class SimScheduler : public SimHooks {
 public:
  explicit SimScheduler(SimEnvironment* env) : env_(env) {}
  ~SimScheduler() override;

  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  // Registers a task before Run. `body` executes on a dedicated thread,
  // suspended/resumed at yield points.
  void AddTask(std::string name, std::function<void()> body);

  // Runs every task to completion, interleaving at yield points in
  // seed-determined order. Must be called at most once.
  void Run();

  // SimHooks:
  void Yield(const char* point) override;
  uint64_t NowNanos() override { return env_->NowNanos(); }

  // The interleaving that ran, for failure traces.
  const std::vector<SchedulerStep>& steps() const { return steps_; }
  const std::string& task_name(int task) const { return tasks_[static_cast<size_t>(task)]->name; }

 private:
  enum class TaskState { kParked, kGranted, kFinished };

  struct Task {
    std::string name;
    std::function<void()> body;
    std::thread thread;
    TaskState state = TaskState::kParked;
  };

  SimEnvironment* env_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<SchedulerStep> steps_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool ran_ = false;
};

}  // namespace geolic

#endif  // GEOLIC_SIM_SIM_SCHEDULER_H_
