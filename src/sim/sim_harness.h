#ifndef GEOLIC_SIM_SIM_HARNESS_H_
#define GEOLIC_SIM_SIM_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "licensing/license.h"
#include "licensing/license_catalog.h"

namespace geolic {

// Knobs for one simulated run. The defaults define the standard sweep
// shape; tests pin individual knobs to force specific scenarios.
struct SimConfig {
  // Workload shape (all ranges inclusive; drawn from the workload RNG).
  int min_licenses = 3;
  int max_licenses = 8;
  int min_clients = 2;
  int max_clients = 4;
  int min_ops_per_client = 6;
  int max_ops_per_client = 14;
  // Probability that a journal fault (torn write or failing fsync) is
  // scheduled at a seed-chosen future append; force_fault pins it to 1.
  double fault_probability = 0.5;
  bool force_fault = false;
  // Mutation smoke mode: plant the equation-skip accounting bug in the
  // service under test (OnlineValidatorOptions::sim_skip_last_equation).
  // The harness itself is unchanged — a correct harness must now FAIL.
  bool inject_equation_skip = false;
  // Lifecycle mode: mix live acquire/revoke/expire reconfigurations into
  // the client op streams, racing them against issuance, batches,
  // checkpoints and journal faults.
  bool lifecycle_ops = false;
  // Second mutation smoke: plant the skipped-renumbering reconfiguration
  // bug (OnlineValidatorOptions::sim_skip_renumbering). Only meaningful
  // together with lifecycle_ops — without revocations the mutated code
  // never runs.
  bool inject_skip_renumbering = false;
  // Wide-N mode: scatter licenses round-robin into this many disjoint
  // domain slabs (1 = the legacy single-arena shape). Overlap components
  // then stay slab-sized, which keeps the brute-force reference feasible
  // with licenses in the hundreds (multi-word LicenseSet territory).
  int cluster_slabs = 1;
};

// One client-visible operation against the service.
enum class SimOpKind {
  kTryIssue,
  kTryIssueBatch,
  kWriteCheckpoint,
  kSyncJournal,
  kAcquireLicense,  // requests[0] carries the new redistribution license.
  kRevokeLicense,   // revoke_id names the target; an absent id is a no-op.
  kExpireBefore,    // Expire dimension 0 strictly below expire_cutoff.
};

struct SimOp {
  SimOpKind kind = SimOpKind::kTryIssue;
  std::vector<License> requests;  // 1 for kTryIssue, ≥ 1 for a batch.
  std::string revoke_id;          // kRevokeLicense only.
  int64_t expire_cutoff = 0;      // kExpireBefore only.
};

// A fully materialized workload: the license geometry plus every client's
// op list, the fault schedule, and the post-recovery continuation ops —
// everything the executor needs, precomputed so the shrinker can replay
// subsets of the ops without touching the rest. Heap-owned schema/licenses
// keep internal pointers stable across moves.
struct SimWorkload {
  std::unique_ptr<ConstraintSchema> schema;
  std::unique_ptr<LicenseCatalog> licenses;
  std::vector<std::vector<SimOp>> client_ops;
  // Fault schedule (fault_kind 0 = none, 1 = torn append, 2 = fsync
  // failure after an append).
  int fault_kind = 0;
  uint64_t fault_append = 0;  // 1-based index of the faulted append.
  size_t fault_keep_bytes = 0;
  // Single-threaded ops replayed against the recovered service.
  std::vector<SimOp> post_recovery_ops;
};

// Opt-out mask for the shrinker: enabled[c][i] == false drops client c's
// i-th op. Empty = run everything.
using SimOpMask = std::vector<std::vector<bool>>;

struct SimResult {
  bool ok = true;
  uint64_t seed = 0;
  std::string failure;  // First conformance violation, empty when ok.
  // Human-readable record of every executed operation, in the scheduler's
  // linearization order, for failure traces.
  std::vector<std::string> op_trace;
  size_t ops_executed = 0;
};

// Deterministically generates the workload for `seed`.
SimWorkload GenerateWorkload(uint64_t seed, const SimConfig& config);

// Executes `workload` under the cooperative scheduler with model-based
// conformance checking after every step. `enabled` masks ops for the
// shrinker (pass nullptr to run all). Deterministic in (workload, seed).
SimResult RunWorkload(const SimWorkload& workload, uint64_t seed,
                      const SimConfig& config, const SimOpMask* enabled);

// Generate + execute: the one-command repro unit. `sim_runner --seed=N`
// is exactly RunSimulation(N, config).
SimResult RunSimulation(uint64_t seed, const SimConfig& config);

// Greedily removes ops from a failing seed's workload while the failure
// reproduces, returning the minimal failing trace (the surviving ops, in
// client order) plus the final failure text. Call only when
// RunSimulation(seed, config) fails.
struct ShrinkOutcome {
  std::vector<std::string> minimal_ops;
  std::string failure;
  size_t original_ops = 0;
  size_t runs_used = 0;
};
ShrinkOutcome ShrinkFailure(uint64_t seed, const SimConfig& config);

}  // namespace geolic

#endif  // GEOLIC_SIM_SIM_HARNESS_H_
