#ifndef GEOLIC_SIM_SIM_ENVIRONMENT_H_
#define GEOLIC_SIM_SIM_ENVIRONMENT_H_

#include <atomic>
#include <cstdint>

#include "util/random.h"

namespace geolic {

// Root of determinism for one simulation run: a virtual clock and the two
// PRNG streams every random choice flows through. Given the same master
// seed, a simulation makes byte-identical decisions — workload shape,
// interleaving, fault schedule — which is what makes any failure a
// one-command repro (`sim_runner --seed=N`).
//
// The two streams are split so a change in how the workload is generated
// does not silently reshuffle scheduling choices for the same seed (and
// vice versa): `workload_rng` is drained during setup, `schedule_rng`
// during the cooperative run.
class SimEnvironment {
 public:
  explicit SimEnvironment(uint64_t seed)
      : seed_(seed),
        workload_rng_(seed),
        // Distinct stream: same generator family, decorrelated seed.
        schedule_rng_(seed ^ 0x9e3779b97f4a7c15ull) {}

  uint64_t seed() const { return seed_; }
  Rng& workload_rng() { return workload_rng_; }
  Rng& schedule_rng() { return schedule_rng_; }

  // Virtual time. Reads advance the clock by one tick so time moves even
  // in a busy loop; all ordering comes from the cooperative scheduler, so
  // the only requirements are determinism and monotonicity. Thread-safe
  // (tasks read it while the scheduler owns the run).
  uint64_t NowNanos() { return now_nanos_.fetch_add(1) + 1; }
  void AdvanceNanos(uint64_t nanos) { now_nanos_.fetch_add(nanos); }

 private:
  uint64_t seed_;
  Rng workload_rng_;
  Rng schedule_rng_;
  std::atomic<uint64_t> now_nanos_{0};
};

}  // namespace geolic

#endif  // GEOLIC_SIM_SIM_ENVIRONMENT_H_
