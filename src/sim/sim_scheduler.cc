#include "sim/sim_scheduler.h"

#include <utility>

#include "util/check.h"

namespace geolic {
namespace {

// Which task slot the current thread belongs to; null on threads the
// scheduler did not spawn (harness setup/teardown code), where Yield is a
// no-op.
thread_local void* current_task = nullptr;

}  // namespace

SimScheduler::~SimScheduler() {
  // Run joins every thread; an unrun scheduler never started any.
  for (const std::unique_ptr<Task>& task : tasks_) {
    GEOLIC_CHECK(!task->thread.joinable());
  }
}

void SimScheduler::AddTask(std::string name, std::function<void()> body) {
  GEOLIC_CHECK(!ran_);
  auto task = std::make_unique<Task>();
  task->name = std::move(name);
  task->body = std::move(body);
  tasks_.push_back(std::move(task));
}

void SimScheduler::Yield(const char* point) {
  Task* self = static_cast<Task*>(current_task);
  if (self == nullptr) {
    return;  // Not a scheduled task thread (setup/recovery phase code).
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].get() == self) {
      steps_.push_back({static_cast<int>(i), point});
      break;
    }
  }
  self->state = TaskState::kParked;
  cv_.notify_all();
  cv_.wait(lock, [self] { return self->state == TaskState::kGranted; });
}

void SimScheduler::Run() {
  GEOLIC_CHECK(!ran_);
  ran_ = true;
  if (tasks_.empty()) {
    return;
  }
  // Every thread starts parked, waiting for its first grant; the token is
  // handed out by the chooser loop below, so exactly one task thread runs
  // between scheduling decisions.
  for (const std::unique_ptr<Task>& task : tasks_) {
    Task* t = task.get();
    t->thread = std::thread([this, t] {
      current_task = t;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [t] { return t->state == TaskState::kGranted; });
      }
      t->body();
      std::lock_guard<std::mutex> lock(mutex_);
      t->state = TaskState::kFinished;
      cv_.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    std::vector<size_t> runnable;
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i]->state == TaskState::kParked) {
        runnable.push_back(i);
      }
    }
    if (runnable.empty()) {
      break;  // Everything finished.
    }
    const size_t pick =
        runnable[env_->schedule_rng().UniformIndex(runnable.size())];
    Task* chosen = tasks_[pick].get();
    chosen->state = TaskState::kGranted;
    cv_.notify_all();
    // Wait until the granted task parks at its next yield point or
    // finishes — the single-token invariant.
    cv_.wait(lock, [chosen] { return chosen->state != TaskState::kGranted; });
    if (chosen->state == TaskState::kFinished) {
      steps_.push_back({static_cast<int>(pick), "finish"});
    }
  }
  lock.unlock();
  for (const std::unique_ptr<Task>& task : tasks_) {
    task->thread.join();
  }
}

}  // namespace geolic
