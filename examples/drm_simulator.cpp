// drm_simulator: randomized multi-level DRM network simulation.
//
// Builds a distribution network (owner → N distributors → sub-distributors
// and consumers), drives a random issuance workload through online
// validation, optionally injects rogue over-issues, then runs the offline
// grouped audit and prints portfolio/log statistics.
//
// A second phase replays the same issuance load through a service-backed
// ValidationAuthority from several threads at once: distributors' licenses
// live in disjoint Z bands, so they form independent overlap groups and the
// sharded IssuanceService admits them concurrently. The phase checks that
// the concurrent state matches a single-threaded replay and prints the
// service's metrics block.
//
// Usage: drm_simulator [--seed=N] [--distributors=N] [--issues=N]
//                      [--rogues=N] [--threads=N] [--metrics_out=PATH]
//
// --metrics_out= writes the authority service's metrics — counters, the
// request-latency histogram, and the per-stage trace profile — to PATH:
// JSON when it ends in ".json", Prometheus text exposition otherwise.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/online_validator.h"
#include "drm/distribution_network.h"
#include "drm/validation_authority.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "workload/stats.h"
#include "util/random.h"

namespace {

using namespace geolic;  // NOLINT

int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoi(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

std::string StringFlag(int argc, char** argv, const char* name,
                       const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed =
      static_cast<uint64_t>(IntFlag(argc, argv, "seed", 2026));
  const int num_distributors = IntFlag(argc, argv, "distributors", 4);
  const int num_issues = IntFlag(argc, argv, "issues", 500);
  const int num_rogues = IntFlag(argc, argv, "rogues", 2);
  const int num_threads = std::max(1, IntFlag(argc, argv, "threads", 4));
  Rng rng(seed);

  // One interval dimension pair: time window and region code band.
  ConstraintSchema schema;
  GEOLIC_CHECK(schema.AddIntervalDimension("T").ok());
  GEOLIC_CHECK(schema.AddIntervalDimension("Z").ok());

  DistributionNetwork network(&schema, "asset-7", Permission::kStream);
  const int owner = *network.AddOwner("Owner");

  std::vector<int> distributors;
  std::vector<int> consumers;
  for (int d = 0; d < num_distributors; ++d) {
    const int distributor =
        *network.AddDistributor("dist-" + std::to_string(d), owner);
    distributors.push_back(distributor);
    consumers.push_back(
        *network.AddConsumer("consumer-" + std::to_string(d), distributor));
    // Each distributor receives 2-5 redistribution licenses in a private
    // band of the Z axis, with overlapping time windows.
    const int licenses = static_cast<int>(rng.UniformInt(2, 5));
    for (int l = 0; l < licenses; ++l) {
      LicenseBuilder builder(&schema);
      const int64_t t_lo = rng.UniformInt(0, 600);
      const int64_t z_lo = d * 1000 + rng.UniformInt(0, 400);
      builder.SetId("LD-" + std::to_string(d) + "-" + std::to_string(l))
          .SetContentKey("asset-7")
          .SetType(LicenseType::kRedistribution)
          .SetPermission(Permission::kStream)
          .SetAggregateCount(rng.UniformInt(500, 2000))
          .SetInterval("T", t_lo, t_lo + rng.UniformInt(100, 400))
          .SetInterval("Z", z_lo, z_lo + rng.UniformInt(100, 500));
      GEOLIC_CHECK(
          network.GrantFromOwner(distributor, *builder.Build()).ok());
    }
  }

  // Random usage issuance through online validation.
  int accepted = 0;
  int rejected_instance = 0;
  int rejected_aggregate = 0;
  for (int i = 0; i < num_issues; ++i) {
    const size_t d = rng.UniformIndex(distributors.size());
    LicenseBuilder builder(&schema);
    const int64_t t_lo = rng.UniformInt(0, 900);
    const int64_t z_lo =
        static_cast<int64_t>(d) * 1000 + rng.UniformInt(0, 800);
    builder.SetId("LU-" + std::to_string(i))
        .SetContentKey("asset-7")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kStream)
        .SetAggregateCount(rng.UniformInt(5, 60))
        .SetInterval("T", t_lo, t_lo + rng.UniformInt(0, 80))
        .SetInterval("Z", z_lo, z_lo + rng.UniformInt(0, 80));
    const Result<OnlineDecision> decision =
        network.Issue(distributors[d], consumers[d], *builder.Build());
    GEOLIC_CHECK(decision.ok());
    if (decision->accepted()) {
      ++accepted;
    } else if (!decision->instance_valid) {
      ++rejected_instance;
    } else {
      ++rejected_aggregate;
    }
  }

  // Rogue distributors bypass validation for a few oversized issues.
  int rogues_landed = 0;
  for (int r = 0; r < num_rogues; ++r) {
    const size_t d = rng.UniformIndex(distributors.size());
    const LicenseCatalog& received = network.ReceivedLicenses(distributors[d]);
    const License& target =
        received.at(static_cast<int>(rng.UniformIndex(
            static_cast<size_t>(received.size()))));
    LicenseBuilder builder(&schema);
    // Entirely inside one received license, but with a huge count.
    const Interval t_range = target.rect().dim(0).interval();
    const Interval z_range = target.rect().dim(1).interval();
    builder.SetId("ROGUE-" + std::to_string(r))
        .SetContentKey("asset-7")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kStream)
        .SetAggregateCount(target.aggregate_count() * 2)
        .SetInterval("T", t_range.lo(), t_range.lo())
        .SetInterval("Z", z_range.lo(), z_range.lo());
    if (network.IssueUnchecked(distributors[d], consumers[d],
                               *builder.Build())
            .ok()) {
      ++rogues_landed;
    }
  }

  std::printf("Simulation (seed %llu): %d distributors, %d issues\n",
              static_cast<unsigned long long>(seed), num_distributors,
              num_issues);
  std::printf("  online: %d accepted, %d instance-rejected, %d "
              "aggregate-rejected, %d rogue issues forced\n",
              accepted, rejected_instance, rejected_aggregate,
              rogues_landed);

  // Per-distributor statistics + offline audit.
  const Result<NetworkAudit> audit = network.AuditAll();
  GEOLIC_CHECK(audit.ok());
  std::printf("\nOffline audit:\n");
  for (const DistributorAudit& entry : audit->distributors) {
    const LicensePortfolioStats portfolio =
        LicensePortfolioStats::Compute(
            network.ReceivedLicenses(entry.party_id));
    const LogStats log_stats =
        LogStats::Compute(network.IssuanceLog(entry.party_id));
    std::printf("== %s ==\n%s%s", entry.party_name.c_str(),
                portfolio.ToString().c_str(), log_stats.ToString().c_str());
    if (entry.result.report.all_valid()) {
      std::printf("  audit: clean (%llu equations)\n",
                  static_cast<unsigned long long>(
                      entry.result.report.equations_evaluated));
    } else {
      std::printf("  audit: %zu VIOLATION(S)\n",
                  entry.result.report.violations.size());
      for (const EquationResult& violation :
           entry.result.report.violations) {
        std::printf("    C<%s> = %lld > %lld\n",
                    (violation.set).ToString().c_str(),
                    static_cast<long long>(violation.lhs),
                    static_cast<long long>(violation.rhs));
      }
    }
  }
  // Concurrent issuance through the validation authority: one content
  // domain holding every distributor's licenses. The Z bands never overlap
  // across distributors, so the domain splits into per-band overlap groups
  // and the sharded service validates the threads' requests in parallel.
  // Full (unsampled) tracing: the simulator's load is small, and the stage
  // profile in --metrics_out should cover every admission.
  Tracer tracer;
  OnlineValidatorOptions service_options;
  service_options.tracer = &tracer;
  ValidationAuthority authority(&schema, service_options);
  for (const int distributor : distributors) {
    const LicenseCatalog& received = network.ReceivedLicenses(distributor);
    for (int l = 0; l < received.size(); ++l) {
      GEOLIC_CHECK(authority.RegisterRedistribution(received.at(l)).ok());
    }
  }
  // Pre-generate the load (the Rng is single-threaded).
  std::vector<License> requests;
  requests.reserve(static_cast<size_t>(num_issues));
  for (int i = 0; i < num_issues; ++i) {
    const size_t d = rng.UniformIndex(distributors.size());
    LicenseBuilder builder(&schema);
    const int64_t t_lo = rng.UniformInt(0, 900);
    const int64_t z_lo =
        static_cast<int64_t>(d) * 1000 + rng.UniformInt(0, 800);
    builder.SetId("CU-" + std::to_string(i))
        .SetContentKey("asset-7")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kStream)
        .SetAggregateCount(rng.UniformInt(5, 60))
        .SetInterval("T", t_lo, t_lo + rng.UniformInt(0, 80))
        .SetInterval("Z", z_lo, z_lo + rng.UniformInt(0, 80));
    requests.push_back(*builder.Build());
  }
  std::atomic<int> concurrent_accepted{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&authority, &requests, &concurrent_accepted,
                          num_threads, t] {
      for (size_t i = static_cast<size_t>(t); i < requests.size();
           i += static_cast<size_t>(num_threads)) {
        const Result<OnlineDecision> decision =
            authority.ValidateIssue(requests[i]);
        GEOLIC_CHECK(decision.ok());
        if (decision->accepted()) {
          concurrent_accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  const ValidationAuthority::ContentKey key{"asset-7", Permission::kStream};
  const Result<const IssuanceService*> service = authority.ServiceFor(key);
  GEOLIC_CHECK(service.ok());
  // The concurrent tree must equal a single-threaded replay of what was
  // accepted — the sharding theorem at work.
  const Result<const LicenseCatalog*> domain_licenses = authority.LicensesFor(key);
  GEOLIC_CHECK(domain_licenses.ok());
  const LogStore concurrent_log = (*service)->CollectLog();
  const Result<OnlineValidator> replay = OnlineValidator::CreateWithHistory(
      *domain_licenses, OnlineValidatorOptions(), concurrent_log);
  GEOLIC_CHECK(replay.ok());
  const Result<ValidationTree> concurrent_tree = (*service)->CollectTree();
  GEOLIC_CHECK(concurrent_tree.ok());
  GEOLIC_CHECK(concurrent_tree->ToString() == replay->tree().ToString());

  std::printf("\nConcurrent authority (%d threads, %d overlap groups, "
              "%d lock shards): %d of %d accepted\n",
              num_threads, (*service)->grouping().group_count(),
              (*service)->shard_count(), concurrent_accepted.load(),
              num_issues);
  std::printf("  service metrics: %s\n",
              (*service)->metrics().Snap().ToString().c_str());
  std::printf("  concurrent state == serial replay: yes\n");

  const std::string metrics_out = StringFlag(argc, argv, "metrics_out", "");
  if (!metrics_out.empty()) {
    GEOLIC_CHECK(WriteMetricsFile((*service)->Snap(), metrics_out).ok());
    std::printf("  metrics written to %s (%llu spans, %llu slow requests)\n",
                metrics_out.c_str(),
                static_cast<unsigned long long>(tracer.spans_recorded()),
                static_cast<unsigned long long>(tracer.slow_requests()));
  }

  const bool caught = !audit->clean();
  std::printf("\n%s\n", caught ? "Rights violations detected."
                               : "Network is clean.");
  // Success for the demo = rogues (if any) were caught.
  return (rogues_landed > 0) == caught ? 0 : 1;
}
