// license_audit: a small CLI that audits an issuance log against a license
// file, the way a validation authority would run periodic offline checks.
//
// Usage:
//   license_audit [--licenses=FILE] [--log=FILE] [--json]
//
// The license file format is one license per line:
//   # comment
//   schema: C1, C2, C3         (interval dimensions, declared once, first)
//   LD1 (K; Play; C1=[0, 10]; C2=[5, 20]; C3=[0, 4]; A=1000)
//
// The log file is the LogStore text format ("id mask count", hex mask).
// Without arguments the tool writes a demo pair under /tmp and audits it.
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "core/gain.h"
#include "core/grouped_validator.h"
#include "licensing/license_parser.h"
#include "validation/report_json.h"
#include "validation/validation_tree.h"
#include "workload/workload.h"
#include "util/str_util.h"

namespace {

using namespace geolic;  // NOLINT

// Loads "schema:" + license lines; fills `schema` first, then licenses.
Status LoadLicenseFile(const std::string& path, ConstraintSchema* schema,
                       std::unique_ptr<LicenseCatalog>* licenses) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open license file: " + path);
  }
  std::string line;
  bool schema_seen = false;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    if (StartsWith(stripped, "schema:")) {
      if (schema_seen) {
        return Status::ParseError("duplicate schema line");
      }
      for (std::string_view name :
           SplitAndTrim(stripped.substr(7), ',')) {
        if (!name.empty()) {
          GEOLIC_RETURN_IF_ERROR(schema->AddIntervalDimension(name));
        }
      }
      schema_seen = true;
      *licenses = std::make_unique<LicenseCatalog>(schema);
      continue;
    }
    if (!schema_seen) {
      return Status::ParseError("license before schema line at " + path +
                                ":" + std::to_string(line_number));
    }
    const size_t space = stripped.find(' ');
    if (space == std::string_view::npos) {
      return Status::ParseError("expected '<id> (license)' at " + path + ":" +
                                std::to_string(line_number));
    }
    const std::string id(StripWhitespace(stripped.substr(0, space)));
    GEOLIC_ASSIGN_OR_RETURN(
        License license,
        ParseLicense(stripped.substr(space + 1), *schema,
                     LicenseType::kRedistribution, id));
    const Result<int> added = (*licenses)->Add(std::move(license));
    if (!added.ok()) {
      return added.status();
    }
  }
  if (!schema_seen) {
    return Status::ParseError("no schema line in " + path);
  }
  return Status::Ok();
}

// Writes a generated demo license/log pair.
Status WriteDemoFiles(const std::string& license_path,
                      const std::string& log_path) {
  WorkloadConfig config;
  config.num_licenses = 14;
  config.num_records = 4000;
  config.seed = 77;
  WorkloadGenerator generator(config);
  GEOLIC_ASSIGN_OR_RETURN(Workload workload, generator.Generate());

  std::ofstream out(license_path);
  if (!out) {
    return Status::IoError("cannot write " + license_path);
  }
  out << "# geolic demo licenses\n";
  out << "schema:";
  for (int d = 0; d < workload.schema->dimensions(); ++d) {
    out << (d == 0 ? " " : ", ") << workload.schema->name(d);
  }
  out << "\n";
  for (int i = 0; i < workload.licenses->size(); ++i) {
    const License& license = workload.licenses->at(i);
    out << license.id() << " " << license.ToString(*workload.schema) << "\n";
  }
  out.close();
  return workload.log.SaveText(log_path);
}

std::string StringFlag(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bool json_output = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json_output = true;
    }
  }
  std::string license_path = StringFlag(argc, argv, "licenses", "");
  std::string log_path = StringFlag(argc, argv, "log", "");
  if (license_path.empty() || log_path.empty()) {
    license_path = "/tmp/geolic_audit_licenses.txt";
    log_path = "/tmp/geolic_audit.log";
    const Status demo = WriteDemoFiles(license_path, log_path);
    if (!demo.ok()) {
      std::fprintf(stderr, "demo generation failed: %s\n",
                   demo.ToString().c_str());
      return 1;
    }
    std::printf("No inputs given; generated demo files:\n  %s\n  %s\n\n",
                license_path.c_str(), log_path.c_str());
  }

  ConstraintSchema schema;
  std::unique_ptr<LicenseCatalog> licenses;
  const Status loaded = LoadLicenseFile(license_path, &schema, &licenses);
  if (!loaded.ok()) {
    std::fprintf(stderr, "license file: %s\n", loaded.ToString().c_str());
    return 1;
  }
  Result<LogStore> log = LogStore::LoadText(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "log file: %s\n", log.status().ToString().c_str());
    return 1;
  }
  Result<GroupedValidationResult> result =
      ValidateGroupedFromLog(*licenses, *log);
  if (!result.ok()) {
    std::fprintf(stderr, "validation: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (json_output) {
    std::printf("%s\n", ReportToJson(result->report).c_str());
    return result->report.all_valid() ? 0 : 2;
  }
  std::printf("Loaded %d redistribution licenses, %zu log records\n",
              licenses->size(), log->size());
  std::printf("Groups: %d (sizes", result->group_count);
  for (int size : result->group_sizes) {
    std::printf(" %d", size);
  }
  std::printf("), equations evaluated: %llu (exhaustive would need %llu, "
              "gain %.1fx)\n",
              static_cast<unsigned long long>(
                  result->report.equations_evaluated),
              static_cast<unsigned long long>(EquationCount(licenses->size())),
              TheoreticalGain(result->group_sizes));
  std::printf("\nAudit result: %s\n", result->report.ToString().c_str());
  return result->report.all_valid() ? 0 : 2;
}
