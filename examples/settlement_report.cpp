// settlement_report: period-close accounting for a distributor.
//
// Runs a quarter of online-validated issuance, then (1) quotes remaining
// capacity per region via RemainingCapacity, (2) computes the explicit
// count-to-license settlement via max-flow, and (3) cross-checks the books:
// every count billed to exactly one license, no budget exceeded, and the
// offline audit agrees (JSON emitted for tooling).
//
// Build & run:  ./build/examples/settlement_report
#include <cstdio>

#include "core/assignment.h"
#include "core/capacity.h"
#include "core/grouped_validator.h"
#include "core/online_validator.h"
#include "validation/report_json.h"
#include "workload/workload.h"

int main() {
  using namespace geolic;  // NOLINT

  // A distributor with 8 redistribution licenses over 4 constraint dims.
  WorkloadConfig config;
  config.num_licenses = 8;
  config.num_clusters = 2;
  config.num_records = 0;
  config.aggregate_min = 500;
  config.aggregate_max = 2000;
  config.seed = 321;
  WorkloadGenerator generator(config);
  Result<Workload> workload = generator.GenerateLicensesOnly();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  // A quarter of validated trade.
  Result<OnlineValidator> online =
      OnlineValidator::Create(workload->licenses.get());
  if (!online.ok()) {
    return 1;
  }
  Rng rng(9);
  int accepted = 0;
  for (int i = 0; i < 3000; ++i) {
    const int parent = static_cast<int>(
        rng.UniformInt(0, workload->licenses->size() - 1));
    const License usage =
        generator.DrawUsageLicense(*workload, parent, &rng, i);
    const Result<OnlineDecision> decision = online->TryIssue(usage);
    if (decision.ok() && decision->accepted()) {
      ++accepted;
    }
  }
  std::printf("Quarter closed: %d issuances accepted, %lld counts sold\n",
              accepted,
              static_cast<long long>(online->log().TotalCount()));

  // Capacity quotes for each single-license "region".
  std::printf("\nRemaining capacity quotes:\n");
  for (int i = 0; i < workload->licenses->size(); ++i) {
    const Result<CapacityQuote> quote =
        RemainingCapacity(*workload->licenses, online->grouping(),
                          online->tree(), LicenseSet::Singleton(i));
    if (!quote.ok()) {
      return 1;
    }
    std::printf("  L%-2d: %6lld more counts (binding equation %s, slack "
                "%lld)\n",
                i + 1, static_cast<long long>(quote->remaining),
                (quote->binding_set).ToString().c_str(),
                static_cast<long long>(quote->binding_slack));
  }

  // Settlement: bill every sold count to a concrete license.
  const Result<SettlementAssignment> settlement =
      ComputeSettlement(*workload->licenses, online->log());
  if (!settlement.ok()) {
    std::fprintf(stderr, "settlement failed: %s\n",
                 settlement.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSettlement (counts billed per license):\n");
  for (int i = 0; i < workload->licenses->size(); ++i) {
    std::printf("  L%-2d: %6lld billed / %6lld budget (%lld left)\n", i + 1,
                static_cast<long long>(
                    settlement->charged[static_cast<size_t>(i)]),
                static_cast<long long>(
                    workload->licenses->at(i).aggregate_count()),
                static_cast<long long>(
                    settlement->remaining[static_cast<size_t>(i)]));
  }
  std::printf("\nShared-set splits:\n");
  for (const auto& [set, rows] : settlement->allocation) {
    if (rows.size() < 2) {
      continue;
    }
    std::printf("  C[%s] split:", (set).ToString().c_str());
    for (const auto& [license, amount] : rows) {
      std::printf(" L%d:%lld", license + 1,
                  static_cast<long long>(amount));
    }
    std::printf("\n");
  }

  // Offline audit confirms the books, exported as JSON for tooling.
  const Result<GroupedValidationResult> audit =
      ValidateGroupedFromLog(*workload->licenses, online->log());
  if (!audit.ok()) {
    return 1;
  }
  std::printf("\nAudit JSON: %s\n", ReportToJson(audit->report).c_str());
  return audit->report.all_valid() ? 0 : 2;
}
