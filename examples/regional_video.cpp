// Regional-video scenario: a VOD distributor holding twenty redistribution
// licenses for one title, validated offline at scale.
//
// Demonstrates the full offline pipeline on a generated season of issuance
// logs: build the validation tree, identify overlap groups geometrically,
// divide the tree, validate each group, and compare the equation counts and
// wall-clock against the exhaustive baseline. Also persists the log to disk
// (text + binary) and reloads it, as a validation authority would.
//
// Build & run:  ./build/examples/regional_video
#include <cstdio>
#include <utility>

#include "validation/validate.h"
#include "core/gain.h"
#include "core/grouped_validator.h"
#include "workload/workload.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

}  // namespace
}  // namespace geolic

int main() {
  using namespace geolic;  // NOLINT

  // A season of activity: 20 redistribution licenses across 5 disjoint
  // regions/launch-windows, ~12k issued licenses.
  WorkloadConfig config;
  config.num_licenses = 20;
  config.dimensions = 4;  // window, region code, resolution, device class.
  config.num_clusters = 5;
  config.num_records = 12000;
  config.seed = 1234;
  WorkloadGenerator generator(config);
  Result<Workload> workload = generator.Generate();
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated %zu issuance records over %d redistribution "
              "licenses\n",
              workload->log.size(), workload->licenses->size());

  // Persist and reload the log as the validation authority would.
  const std::string text_path = "/tmp/geolic_regional_video.log";
  const std::string binary_path = "/tmp/geolic_regional_video.bin";
  if (!workload->log.SaveText(text_path).ok() ||
      !workload->log.SaveBinary(binary_path).ok()) {
    return 1;
  }
  Result<LogStore> reloaded = LogStore::LoadBinary(binary_path);
  if (!reloaded.ok() || reloaded->size() != workload->log.size()) {
    std::fprintf(stderr, "log round-trip failed\n");
    return 1;
  }
  std::printf("Log persisted to %s (text) and %s (binary), reloaded OK\n",
              text_path.c_str(), binary_path.c_str());

  // Exhaustive baseline: 2^20 - 1 equations.
  Result<ValidationTree> baseline_tree =
      ValidationTree::BuildFromLog(*reloaded);
  if (!baseline_tree.ok()) {
    return 1;
  }
  Stopwatch baseline_timer;
  Result<ValidationReport> baseline = RunExhaustive(
      *baseline_tree, workload->licenses->AggregateCounts());
  const double baseline_ms = baseline_timer.ElapsedMillis();
  if (!baseline.ok()) {
    return 1;
  }
  std::printf("\nExhaustive baseline: %llu equations in %.2f ms — %s\n",
              static_cast<unsigned long long>(baseline->equations_evaluated),
              baseline_ms,
              baseline->all_valid()
                  ? "no violations"
                  : (std::to_string(baseline->violations.size()) +
                     " violations")
                        .c_str());

  // Proposed grouped validation.
  Result<ValidationTree> grouped_tree =
      ValidationTree::BuildFromLog(*reloaded);
  if (!grouped_tree.ok()) {
    return 1;
  }
  Result<GroupedValidationResult> grouped =
      ValidateGrouped(*workload->licenses, *std::move(grouped_tree));
  if (!grouped.ok()) {
    return 1;
  }
  std::printf("Grouped validation:  %llu equations in %.2f ms "
              "(+%.2f ms division) across %d groups — %s\n",
              static_cast<unsigned long long>(
                  grouped->report.equations_evaluated),
              grouped->validation_micros / 1000.0,
              grouped->division_micros / 1000.0, grouped->group_count,
              grouped->report.all_valid()
                  ? "no violations"
                  : (std::to_string(grouped->report.violations.size()) +
                     " violations")
                        .c_str());
  std::printf("Theoretical gain %.1fx; measured %.1fx\n",
              TheoreticalGain(grouped->group_sizes),
              baseline_ms > 0
                  ? baseline_ms / ((grouped->validation_micros +
                                    grouped->division_micros) /
                                   1000.0)
                  : 0.0);

  // Violation sets (if any) agree between the two validators on
  // group-internal equations; print whichever the grouped run found.
  for (const EquationResult& violation : grouped->report.violations) {
    std::printf("  violated: C<%s> = %lld > %lld\n",
                (violation.set).ToString().c_str(),
                static_cast<long long>(violation.lhs),
                static_cast<long long>(violation.rhs));
  }
  return 0;
}
