// Music-store scenario: a multi-level DRM distribution network with a
// rights violation detected by the offline audit.
//
// A label (owner) licenses a track to two regional distributors; the Asia
// distributor sub-licenses a reseller; everyone issues usage licenses to
// consumers through online validation — except the reseller, which goes
// rogue and over-issues past its aggregate budget. The validation
// authority's offline grouped audit pinpoints the violated equation.
//
// Build & run:  ./build/examples/music_store
#include <cstdio>

#include "drm/distribution_network.h"
#include "licensing/license_parser.h"

namespace {

using namespace geolic;  // NOLINT

// Issues `count` play-counts to a consumer, reporting the decision.
bool IssueUsage(DistributionNetwork* network, int distributor, int consumer,
                const ConstraintSchema& schema, const std::string& id,
                const std::string& period, const std::string& region,
                int64_t count) {
  Result<License> usage = ParseLicense(
      "(track-42; Play; T=" + period + "; R={" + region + "}; A=" +
          std::to_string(count) + ")",
      schema, LicenseType::kUsage, id);
  if (!usage.ok()) {
    std::fprintf(stderr, "bad usage license: %s\n",
                 usage.status().ToString().c_str());
    return false;
  }
  const Result<OnlineDecision> decision =
      network->Issue(distributor, consumer, *usage);
  if (!decision.ok()) {
    std::fprintf(stderr, "issue failed: %s\n",
                 decision.status().ToString().c_str());
    return false;
  }
  std::printf("  %-6s -> consumer: %4lld counts in %-9s : %s\n", id.c_str(),
              static_cast<long long>(count), region.c_str(),
              decision->accepted() ? "accepted" : "REJECTED");
  return true;
}

}  // namespace

int main() {
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  DistributionNetwork network(&schema, "track-42", Permission::kPlay);

  // Parties.
  const int label = *network.AddOwner("HarmonyLabel");
  const int asia = *network.AddDistributor("AsiaMusic", label);
  const int europe = *network.AddDistributor("EuroTunes", label);
  const int reseller = *network.AddDistributor("BudgetBeats", asia);
  const int consumer_in = *network.AddConsumer("listener-in", asia);
  const int consumer_eu = *network.AddConsumer("listener-eu", europe);
  const int consumer_jp = *network.AddConsumer("listener-jp", reseller);

  // Owner grants: Asia rights (10k plays, H1 2026) and Europe rights.
  auto grant = [&](int to, const char* text, const std::string& id) {
    Result<License> license =
        ParseLicense(text, schema, LicenseType::kRedistribution, id);
    GEOLIC_CHECK(license.ok());
    GEOLIC_CHECK(network.GrantFromOwner(to, *std::move(license)).ok());
  };
  grant(asia,
        "(track-42; Play; T=[2026-01-01, 2026-06-30]; R={Asia}; A=10000)",
        "ASIA-1");
  grant(europe,
        "(track-42; Play; T=[2026-01-01, 2026-12-31]; R={Europe}; A=8000)",
        "EU-1");

  // AsiaMusic sub-licenses BudgetBeats for Japan with a 500-play budget.
  Result<License> sublicense = ParseLicense(
      "(track-42; Play; T=[2026-02-01, 2026-04-30]; R={Japan}; A=500)",
      schema, LicenseType::kRedistribution, "ASIA-1.1");
  GEOLIC_CHECK(sublicense.ok());
  const Result<OnlineDecision> sub_decision =
      network.Issue(asia, reseller, *sublicense);
  GEOLIC_CHECK(sub_decision.ok());
  std::printf("Sub-license ASIA-1.1 (Japan, 500 plays) to BudgetBeats: %s\n",
              sub_decision->accepted() ? "accepted" : "REJECTED");

  // Normal trade, all validated online.
  std::printf("\nOnline-validated usage issues:\n");
  IssueUsage(&network, asia, consumer_in, schema, "LU-A1",
             "[2026-03-01, 2026-03-31]", "India", 3000);
  IssueUsage(&network, europe, consumer_eu, schema, "LU-E1",
             "[2026-05-01, 2026-05-31]", "Germany", 2500);
  IssueUsage(&network, reseller, consumer_jp, schema, "LU-B1",
             "[2026-03-01, 2026-03-15]", "Japan", 400);
  // This one would blow BudgetBeats' 500 budget — online validation stops
  // it.
  IssueUsage(&network, reseller, consumer_jp, schema, "LU-B2",
             "[2026-03-16, 2026-03-31]", "Japan", 200);

  // BudgetBeats goes rogue: bypasses validation and over-issues anyway.
  Result<License> rogue = ParseLicense(
      "(track-42; Play; T=[2026-04-01, 2026-04-15]; R={Japan}; A=350)",
      schema, LicenseType::kUsage, "LU-B3");
  GEOLIC_CHECK(rogue.ok());
  const Result<LicenseSet> rogue_set =
      network.IssueUnchecked(reseller, consumer_jp, *rogue);
  GEOLIC_CHECK(rogue_set.ok());
  std::printf("\nBudgetBeats ROGUE issue LU-B3: 350 counts logged against "
              "%s without validation\n",
              (*rogue_set).ToString().c_str());

  // The validation authority audits the whole network offline.
  const Result<NetworkAudit> audit = network.AuditAll();
  GEOLIC_CHECK(audit.ok());
  std::printf("\nOffline audit (paper's grouped validation):\n");
  for (const DistributorAudit& entry : audit->distributors) {
    std::printf("  %-12s groups=%d equations=%llu : %s",
                entry.party_name.c_str(), entry.result.group_count,
                static_cast<unsigned long long>(
                    entry.result.report.equations_evaluated),
                entry.result.report.all_valid() ? "clean\n" : "VIOLATIONS\n");
    for (const EquationResult& violation : entry.result.report.violations) {
      std::printf("      C<%s> = %lld > A[%s] = %lld\n",
                  (violation.set).ToString().c_str(),
                  static_cast<long long>(violation.lhs),
                  (violation.set).ToString().c_str(),
                  static_cast<long long>(violation.rhs));
    }
  }
  std::printf("\nNetwork %s\n",
              audit->clean() ? "is clean" : "has rights violations");
  return audit->clean() ? 1 : 0;  // The demo *expects* to catch the rogue.
}
