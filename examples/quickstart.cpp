// Quickstart: the paper's Example 1 end to end.
//
// Parses the five redistribution licenses, instance-validates two usage
// licenses geometrically, runs equation-based online validation (both usage
// licenses are accepted — no greedy license picking), builds the validation
// tree from the Table 2 log, and runs the efficient grouped offline
// validation (10 equations instead of 31, the 3.1x gain of Section 4.2).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <utility>

#include "core/gain.h"
#include "core/grouped_validator.h"
#include "core/grouping.h"
#include "core/instance_validator.h"
#include "core/online_validator.h"
#include "licensing/license_parser.h"
#include "validation/validation_tree.h"

int main() {
  using namespace geolic;  // NOLINT

  // 1. The distributor's five redistribution licenses (paper Example 1).
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  LicenseCatalog licenses(&schema);
  const char* license_texts[] = {
      "(K; Play; T=[10/03/09, 20/03/09]; R=[Asia, Europe]; A=2000)",
      "(K; Play; T=[15/03/09, 25/03/09]; R=[Asia]; A=1000)",
      "(K; Play; T=[15/03/09, 30/03/09]; R=[America]; A=3000)",
      "(K; Play; T=[15/03/09, 15/04/09]; R=[Europe]; A=4000)",
      "(K; Play; T=[25/03/09, 10/04/09]; R=[America]; A=2000)",
  };
  std::printf("Redistribution licenses:\n");
  for (int i = 0; i < 5; ++i) {
    Result<License> license =
        ParseLicense(license_texts[i], schema, LicenseType::kRedistribution,
                     "LD" + std::to_string(i + 1));
    if (!license.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   license.status().ToString().c_str());
      return 1;
    }
    std::printf("  L_D^%d = %s\n", i + 1,
                license->ToString(schema).c_str());
    if (!licenses.Add(*std::move(license)).ok()) {
      return 1;
    }
  }

  // 2. Geometric instance-based validation: which redistribution licenses
  //    fully contain each usage license's hyper-rectangle?
  const LinearInstanceValidator instance_validator(&licenses);
  Result<License> lu1 =
      ParseLicense("(K; Play; T=[15/03/09, 19/03/09]; R=[India]; A=800)",
                   schema, LicenseType::kUsage, "LU1");
  Result<License> lu2 =
      ParseLicense("(K; Play; T=[21/03/09, 24/03/09]; R=[Japan]; A=400)",
                   schema, LicenseType::kUsage, "LU2");
  if (!lu1.ok() || !lu2.ok()) {
    return 1;
  }
  std::printf("\nInstance-based validation (geometric containment):\n");
  std::printf("  LU1 satisfies %s\n",
              instance_validator.SatisfyingSet(*lu1).ToString().c_str());
  std::printf("  LU2 satisfies %s\n",
              instance_validator.SatisfyingSet(*lu2).ToString().c_str());

  // 3. Online aggregate validation with validation equations: both usage
  //    licenses are valid (a random pick of L_D^2 for LU1 would have
  //    wrongly exhausted it and rejected LU2).
  Result<OnlineValidator> online = OnlineValidator::Create(&licenses);
  if (!online.ok()) {
    return 1;
  }
  for (const License* usage : {&*lu1, &*lu2}) {
    const Result<OnlineDecision> decision = online->TryIssue(*usage);
    if (!decision.ok()) {
      return 1;
    }
    std::printf("  issue %s (count %lld): %s\n", usage->id().c_str(),
                static_cast<long long>(usage->aggregate_count()),
                decision->accepted() ? "ACCEPTED" : "REJECTED");
  }

  // 4. Offline validation from the paper's Table 2 log.
  LogStore log;
  struct Row {
    const char* id;
    uint64_t mask;
    int64_t count;
  };
  const Row kTable2[] = {
      {"LU1", 0b00011, 800}, {"LU2", 0b00010, 400}, {"LU3", 0b00011, 40},
      {"LU4", 0b01011, 30},  {"LU5", 0b10100, 800}, {"LU6", 0b10000, 20},
  };
  for (const Row& row : kTable2) {
    if (!log.Append(LogRecord{row.id, LicenseSet::FromWord(row.mask), row.count}).ok()) {
      return 1;
    }
  }
  Result<ValidationTree> tree = ValidationTree::BuildFromLog(log);
  if (!tree.ok()) {
    return 1;
  }
  std::printf("\nValidation tree (paper figure 1):\n%s",
              tree->ToString().c_str());

  // 5. Grouped validation: overlap graph → groups → divided trees.
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(licenses);
  std::printf("\nOverlap groups:\n");
  for (int k = 0; k < grouping.group_count(); ++k) {
    std::printf("  group %d: %s\n", k + 1,
                grouping.GroupMask(k).ToString().c_str());
  }
  Result<GroupedValidationResult> result =
      ValidateGrouped(licenses, *std::move(tree));
  if (!result.ok()) {
    return 1;
  }
  std::printf("\nGrouped offline validation: %s\n",
              result->report.ToString().c_str());
  std::printf("Equations: %llu grouped vs %llu exhaustive (theoretical gain "
              "%.1fx)\n",
              static_cast<unsigned long long>(
                  result->report.equations_evaluated),
              static_cast<unsigned long long>(
                  EquationCount(licenses.size())),
              TheoreticalGain(result->group_sizes));
  return 0;
}
