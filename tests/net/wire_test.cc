#include "net/wire.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/crc32c.h"

namespace geolic::net {
namespace {

using geolic::testing::IntervalSchema;
using geolic::testing::MakeUsage;

TEST(WireTest, FrameRoundTripsAllKinds) {
  const FrameKind kinds[] = {FrameKind::kIssueRequest, FrameKind::kPing,
                             FrameKind::kIssueResult,  FrameKind::kPong,
                             FrameKind::kShed,         FrameKind::kError};
  uint64_t request_id = 1;
  for (const FrameKind kind : kinds) {
    std::string bytes;
    const std::string payload = "payload-" + std::to_string(request_id);
    EncodeFrame(kind, request_id, payload, &bytes);
    EXPECT_EQ(bytes.size(), kWireHeaderBytes + payload.size());

    Frame frame;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(TryDecodeFrame(bytes, &frame, &consumed, &error),
              DecodeResult::kFrame)
        << error;
    EXPECT_EQ(frame.kind, kind);
    EXPECT_EQ(frame.request_id, request_id);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(consumed, bytes.size());
    ++request_id;
  }
}

TEST(WireTest, DecodeWalksConcatenatedFrames) {
  std::string bytes;
  EncodeFrame(FrameKind::kPing, 7, "", &bytes);
  EncodeFrame(FrameKind::kIssueRequest, 8, "abc", &bytes);
  EncodeFrame(FrameKind::kError, 0, "oops", &bytes);

  std::string_view rest = bytes;
  Frame frame;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(rest, &frame, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.kind, FrameKind::kPing);
  EXPECT_EQ(frame.request_id, 7u);
  rest.remove_prefix(consumed);

  ASSERT_EQ(TryDecodeFrame(rest, &frame, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.kind, FrameKind::kIssueRequest);
  EXPECT_EQ(frame.payload, "abc");
  rest.remove_prefix(consumed);

  ASSERT_EQ(TryDecodeFrame(rest, &frame, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(frame.kind, FrameKind::kError);
  rest.remove_prefix(consumed);
  EXPECT_TRUE(rest.empty());

  EXPECT_EQ(TryDecodeFrame(rest, &frame, &consumed, &error),
            DecodeResult::kNeedMore);
}

TEST(WireTest, EveryProperPrefixNeedsMore) {
  std::string bytes;
  EncodeFrame(FrameKind::kIssueRequest, 42, "some payload bytes", &bytes);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(TryDecodeFrame(std::string_view(bytes).substr(0, len), &frame,
                             &consumed, &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireTest, UnknownKindIsBadEvenWithValidCrcs) {
  // Hand-rolled frame with a kind no dialect defines: the encoder refuses
  // to emit it, so splice a valid frame and rewrite kind + header CRC.
  std::string bytes;
  EncodeFrame(FrameKind::kPing, 1, "", &bytes);
  const uint32_t alien_kind = 0x7777;
  bytes[4] = static_cast<char>(alien_kind & 0xff);
  bytes[5] = static_cast<char>((alien_kind >> 8) & 0xff);
  bytes[6] = 0;
  bytes[7] = 0;
  const uint32_t fixed_crc = Crc32c(std::string_view(bytes).substr(0, 16));
  for (size_t i = 0; i < 4; ++i) {
    bytes[16 + i] = static_cast<char>((fixed_crc >> (8 * i)) & 0xff);
  }
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(bytes, &frame, &consumed, &error),
            DecodeResult::kBad);
  EXPECT_NE(error.find("unknown frame kind"), std::string::npos) << error;
}

TEST(WireTest, ImplausiblePayloadLengthIsBad) {
  // Same splice: oversized length with a recomputed (valid) header CRC.
  std::string bytes;
  EncodeFrame(FrameKind::kPing, 1, "", &bytes);
  const uint32_t huge = kWireMaxPayloadBytes + 1;
  for (size_t i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  const uint32_t fixed_crc = Crc32c(std::string_view(bytes).substr(0, 16));
  for (size_t i = 0; i < 4; ++i) {
    bytes[16 + i] = static_cast<char>((fixed_crc >> (8 * i)) & 0xff);
  }
  Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(bytes, &frame, &consumed, &error),
            DecodeResult::kBad);
  EXPECT_NE(error.find("implausible payload length"), std::string::npos)
      << error;
}

TEST(WireTest, IssueRequestRoundTripsALicense) {
  const ConstraintSchema schema = IntervalSchema(2);
  const License license =
      MakeUsage(schema, "U1", {{10, 20}, {5, 7}}, 3);

  std::string payload;
  ASSERT_TRUE(EncodeIssueRequest(license, &payload).ok());
  const Result<License> decoded = DecodeIssueRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->id(), "U1");
  EXPECT_EQ(decoded->aggregate_count(), 3);
  EXPECT_EQ(decoded->type(), LicenseType::kUsage);

  // Round-tripping the decoded license must be byte-identical — the sim
  // harness leans on this to cross-check the codec against the service.
  std::string again;
  ASSERT_TRUE(EncodeIssueRequest(*decoded, &again).ok());
  EXPECT_EQ(again, payload);
}

TEST(WireTest, IssueRequestRejectsTrailingBytes) {
  const ConstraintSchema schema = IntervalSchema(1);
  std::string payload;
  ASSERT_TRUE(
      EncodeIssueRequest(MakeUsage(schema, "U1", {{0, 1}}, 1), &payload)
          .ok());
  payload.push_back('\0');
  EXPECT_FALSE(DecodeIssueRequest(payload).ok());
}

TEST(WireTest, IssueRequestRejectsGarbage) {
  EXPECT_FALSE(DecodeIssueRequest("").ok());
  EXPECT_FALSE(DecodeIssueRequest("not a license").ok());
}

TEST(WireTest, IssueResultRoundTrips) {
  for (const auto outcome : {IssueResult::Outcome::kAccepted,
                             IssueResult::Outcome::kRejectedInstance,
                             IssueResult::Outcome::kRejectedAggregate}) {
    IssueResult result;
    result.outcome = outcome;
    result.catalog_epoch = 17;
    result.equations_checked = 123456;
    std::string payload;
    EncodeIssueResult(result, &payload);

    IssueResult decoded;
    ASSERT_TRUE(DecodeIssueResult(payload, &decoded).ok());
    EXPECT_EQ(decoded.outcome, outcome);
    EXPECT_EQ(decoded.catalog_epoch, 17u);
    EXPECT_EQ(decoded.equations_checked, 123456u);
  }
}

TEST(WireTest, IssueResultRejectsMalformedPayloads) {
  IssueResult result;
  EXPECT_FALSE(DecodeIssueResult("", &result).ok());
  EXPECT_FALSE(DecodeIssueResult("short", &result).ok());

  std::string payload;
  EncodeIssueResult(IssueResult{}, &payload);
  payload[0] = 9;  // Unknown outcome.
  EXPECT_FALSE(DecodeIssueResult(payload, &result).ok());

  payload[0] = 0;
  payload.push_back('x');  // Trailing byte.
  EXPECT_FALSE(DecodeIssueResult(payload, &result).ok());
}

}  // namespace
}  // namespace geolic::net
