#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "test_util.h"
#include "util/random.h"

namespace geolic::net {
namespace {

using geolic::testing::IntervalSchema;
using geolic::testing::MakeUsage;
using geolic::testing::TestSeed;

// Representative frames for the corruption sweeps: empty payload, text
// payload, and a real serialized license.
std::vector<std::string> SampleFrames() {
  std::vector<std::string> frames;
  {
    std::string bytes;
    EncodeFrame(FrameKind::kPing, 1, "", &bytes);
    frames.push_back(std::move(bytes));
  }
  {
    std::string bytes;
    EncodeFrame(FrameKind::kError, 0, "connection going away", &bytes);
    frames.push_back(std::move(bytes));
  }
  {
    const ConstraintSchema schema = IntervalSchema(2);
    std::string payload;
    EXPECT_TRUE(EncodeIssueRequest(
                    MakeUsage(schema, "U-fuzz", {{3, 9}, {100, 200}}, 2),
                    &payload)
                    .ok());
    std::string bytes;
    EncodeFrame(FrameKind::kIssueRequest, 0xdeadbeef, payload, &bytes);
    frames.push_back(std::move(bytes));
  }
  return frames;
}

// The CRC pair makes corruption detection exhaustive at the bit level:
// the header CRC covers (len, kind, request_id), the payload CRC covers
// the payload, and a flip inside either CRC field mismatches its own
// check. So EVERY single-bit flip anywhere in a frame must decode as
// kBad — never a mangled kFrame, never a crash.
TEST(WireFuzzTest, EverySingleBitFlipIsRejected) {
  for (const std::string& original : SampleFrames()) {
    for (size_t byte = 0; byte < original.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = original;
        mutated[byte] = static_cast<char>(
            static_cast<unsigned char>(mutated[byte]) ^ (1u << bit));
        Frame frame;
        size_t consumed = 0;
        std::string error;
        EXPECT_EQ(TryDecodeFrame(mutated, &frame, &consumed, &error),
                  DecodeResult::kBad)
            << "frame size " << original.size() << " byte " << byte
            << " bit " << bit;
        EXPECT_FALSE(error.empty());
      }
    }
  }
}

// A split recv() is indistinguishable from a frame in flight, so every
// proper prefix of a valid frame must report kNeedMore — truncation is
// never a hard error and never a crash.
TEST(WireFuzzTest, EveryTruncationNeedsMore) {
  for (const std::string& original : SampleFrames()) {
    for (size_t len = 0; len < original.size(); ++len) {
      Frame frame;
      size_t consumed = 0;
      std::string error;
      EXPECT_EQ(
          TryDecodeFrame(std::string_view(original).substr(0, len), &frame,
                         &consumed, &error),
          DecodeResult::kNeedMore)
          << "frame size " << original.size() << " prefix " << len;
    }
  }
}

// Heavier random corruption (multi-byte, inserts, random garbage): the
// decoder must always terminate with a classified result and in-bounds
// `consumed`; under ASan/UBSan this doubles as a memory-safety sweep.
TEST(WireFuzzTest, RandomCorruptionNeverCrashes) {
  Rng rng(TestSeed(20260808));
  const std::vector<std::string> frames = SampleFrames();
  for (int iter = 0; iter < 20000; ++iter) {
    std::string bytes = frames[rng.UniformIndex(frames.size())];
    const int edits = 1 + static_cast<int>(rng.UniformIndex(8));
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformIndex(3)) {
        case 0:  // Overwrite a byte.
          bytes[rng.UniformIndex(bytes.size())] =
              static_cast<char>(rng.UniformIndex(256));
          break;
        case 1:  // Truncate.
          bytes.resize(rng.UniformIndex(bytes.size() + 1));
          break;
        default:  // Append garbage.
          bytes.push_back(static_cast<char>(rng.UniformIndex(256)));
          break;
      }
      if (bytes.empty()) {
        bytes.push_back(static_cast<char>(rng.UniformIndex(256)));
      }
    }
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const DecodeResult result =
        TryDecodeFrame(bytes, &frame, &consumed, &error);
    if (result == DecodeResult::kFrame) {
      EXPECT_LE(consumed, bytes.size());
      EXPECT_GE(consumed, kWireHeaderBytes);
    } else if (result == DecodeResult::kBad) {
      EXPECT_FALSE(error.empty());
    }
    // Whatever survived the frame layer must also never crash the
    // payload decoders.
    if (result == DecodeResult::kFrame &&
        frame.kind == FrameKind::kIssueRequest) {
      (void)DecodeIssueRequest(frame.payload);
    }
    if (result == DecodeResult::kFrame &&
        frame.kind == FrameKind::kIssueResult) {
      IssueResult decoded;
      (void)DecodeIssueResult(frame.payload, &decoded);
    }
  }
}

// Raw noise straight at the decoder (no valid frame as a starting point):
// same guarantees.
TEST(WireFuzzTest, PureGarbageIsClassifiedNotCrashed) {
  Rng rng(TestSeed(444));
  for (int iter = 0; iter < 20000; ++iter) {
    std::string bytes(rng.UniformIndex(96), '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.UniformIndex(256));
    }
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const DecodeResult result =
        TryDecodeFrame(bytes, &frame, &consumed, &error);
    if (bytes.size() < kWireHeaderBytes) {
      EXPECT_EQ(result, DecodeResult::kNeedMore);
    }
    if (result == DecodeResult::kFrame) {
      EXPECT_LE(consumed, bytes.size());
    }
  }
}

}  // namespace
}  // namespace geolic::net
