#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "obs/exposition.h"
#include "test_util.h"
#include "util/check.h"

namespace geolic::net {
namespace {

using geolic::testing::IntervalSchema;
using geolic::testing::MakeRedistribution;
using geolic::testing::MakeUsage;

// Minimal blocking client for loopback tests: connect, push bytes,
// decode response frames off a local ring.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    GEOLIC_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    GEOLIC_CHECK(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    GEOLIC_CHECK(connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0);
    timeval timeout{};
    timeout.tv_sec = 20;  // Bounds every recv so a server bug cannot hang.
    (void)setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
  }

  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

  void SendMagic() {
    SendRaw(std::string_view(kWireMagic, sizeof(kWireMagic)));
  }

  void SendRaw(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      GEOLIC_CHECK(n > 0);
      off += static_cast<size_t>(n);
    }
  }

  void SendFrame(FrameKind kind, uint64_t request_id,
                 std::string_view payload) {
    std::string bytes;
    EncodeFrame(kind, request_id, payload, &bytes);
    SendRaw(bytes);
  }

  // Blocks until one frame decodes; false on clean EOF.
  bool ReadFrame(Frame* frame) {
    for (;;) {
      size_t consumed = 0;
      std::string error;
      const DecodeResult result =
          TryDecodeFrame(buffer_, frame, &consumed, &error);
      if (result == DecodeResult::kFrame) {
        buffer_.erase(0, consumed);
        return true;
      }
      GEOLIC_CHECK(result == DecodeResult::kNeedMore);
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) {
        return false;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      GEOLIC_CHECK(n > 0);
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // True once the server closes the connection (drains any last frames).
  bool ReadEof() {
    for (;;) {
      char chunk[256];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) {
        return true;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0) {
        return false;  // Timeout or error: the peer never closed.
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// One redistribution license [0,20] with the given budget; requests
// inside it share the single satisfying set {L1}.
struct Fixture {
  explicit Fixture(int64_t budget,
                   const ServerOptions& options = ServerOptions())
      : schema(IntervalSchema(1)), licenses(&schema) {
    GEOLIC_CHECK(
        licenses.Add(MakeRedistribution(schema, "L1", {{0, 20}}, budget))
            .ok());
    Result<std::unique_ptr<IssuanceService>> created =
        IssuanceService::Create(&licenses);
    GEOLIC_CHECK(created.ok());
    service = *std::move(created);
    Result<std::unique_ptr<Server>> started =
        Server::Start(service.get(), options);
    GEOLIC_CHECK(started.ok());
    server = *std::move(started);
  }

  License Inside(int i, int64_t count = 1) const {
    return MakeUsage(schema, "U" + std::to_string(i), {{5, 10}}, count);
  }

  License Outside(int i) const {
    return MakeUsage(schema, "U" + std::to_string(i), {{500, 510}}, 1);
  }

  std::string IssuePayload(const License& license) const {
    std::string payload;
    GEOLIC_CHECK(EncodeIssueRequest(license, &payload).ok());
    return payload;
  }

  ConstraintSchema schema;
  LicenseCatalog licenses;
  std::unique_ptr<IssuanceService> service;
  std::unique_ptr<Server> server;
};

TEST(ServerTest, PingPongEchoesRequestId) {
  Fixture fx(5);
  TestClient client(fx.server->port());
  client.SendMagic();
  client.SendFrame(FrameKind::kPing, 77, {});
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kPong);
  EXPECT_EQ(frame.request_id, 77u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(ServerTest, IssueAcceptsThenRejectsOnBudgetAndGeometry) {
  Fixture fx(2);
  TestClient client(fx.server->port());
  client.SendMagic();

  const auto issue = [&](uint64_t id, const License& license) {
    client.SendFrame(FrameKind::kIssueRequest, id, fx.IssuePayload(license));
    Frame frame;
    GEOLIC_CHECK(client.ReadFrame(&frame));
    EXPECT_EQ(frame.kind, FrameKind::kIssueResult);
    EXPECT_EQ(frame.request_id, id);
    IssueResult result;
    GEOLIC_CHECK(DecodeIssueResult(frame.payload, &result).ok());
    return result;
  };

  EXPECT_EQ(issue(1, fx.Inside(1)).outcome, IssueResult::Outcome::kAccepted);
  EXPECT_EQ(issue(2, fx.Inside(2)).outcome, IssueResult::Outcome::kAccepted);
  // Budget of 2 exhausted: aggregate reject, with the work receipt.
  const IssueResult third = issue(3, fx.Inside(3));
  EXPECT_EQ(third.outcome, IssueResult::Outcome::kRejectedAggregate);
  EXPECT_GT(third.equations_checked, 0u);
  // Outside every license: instance reject.
  EXPECT_EQ(issue(4, fx.Outside(4)).outcome,
            IssueResult::Outcome::kRejectedInstance);
}

TEST(ServerTest, PipelinedBurstAnswersEveryRequest) {
  Fixture fx(1000);
  TestClient client(fx.server->port());

  // Magic + 48 requests in a single write: the server must decode them
  // incrementally and answer each one exactly once.
  std::string burst(kWireMagic, sizeof(kWireMagic));
  constexpr uint64_t kRequests = 48;
  for (uint64_t id = 1; id <= kRequests; ++id) {
    EncodeFrame(FrameKind::kIssueRequest, id,
                fx.IssuePayload(fx.Inside(static_cast<int>(id))), &burst);
  }
  client.SendRaw(burst);

  std::set<uint64_t> answered;
  for (uint64_t i = 0; i < kRequests; ++i) {
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    ASSERT_EQ(frame.kind, FrameKind::kIssueResult);
    IssueResult result;
    ASSERT_TRUE(DecodeIssueResult(frame.payload, &result).ok());
    EXPECT_EQ(result.outcome, IssueResult::Outcome::kAccepted);
    EXPECT_TRUE(answered.insert(frame.request_id).second)
        << "duplicate response for " << frame.request_id;
  }
  EXPECT_EQ(answered.size(), kRequests);
  EXPECT_EQ(*answered.begin(), 1u);
  EXPECT_EQ(*answered.rbegin(), kRequests);

  const NetStats stats = fx.server->Stats();
  EXPECT_EQ(stats.requests_enqueued, kRequests);
  EXPECT_EQ(stats.batch_requests_dispatched, kRequests);
  EXPECT_GE(stats.batches_dispatched, 1u);
  EXPECT_LE(stats.batches_dispatched, kRequests);
  EXPECT_EQ(stats.requests_shed, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServerTest, BadMagicGetsStreamErrorAndClose) {
  Fixture fx(5);
  TestClient client(fx.server->port());
  client.SendRaw("NOTMAGIC");
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kError);
  EXPECT_EQ(frame.request_id, 0u);  // Stream-level: no request to blame.
  EXPECT_NE(frame.payload.find("magic"), std::string::npos);
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(fx.server->Stats().protocol_errors, 1u);
}

TEST(ServerTest, CorruptFrameGetsStreamErrorAndClose) {
  Fixture fx(5);
  TestClient client(fx.server->port());
  client.SendMagic();
  std::string bytes;
  EncodeFrame(FrameKind::kPing, 5, {}, &bytes);
  bytes[2] = static_cast<char>(bytes[2] ^ 0x10);  // Flip a length bit.
  client.SendRaw(bytes);
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kError);
  EXPECT_EQ(frame.request_id, 0u);
  EXPECT_NE(frame.payload.find("crc"), std::string::npos);
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(fx.server->Stats().protocol_errors, 1u);
}

TEST(ServerTest, MalformedLicensePayloadKeepsConnectionAlive) {
  Fixture fx(5);
  TestClient client(fx.server->port());
  client.SendMagic();
  // The framing is sound, only the payload is garbage: a request-scoped
  // kError, and the connection keeps serving.
  client.SendFrame(FrameKind::kIssueRequest, 9, "not a license");
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kError);
  EXPECT_EQ(frame.request_id, 9u);

  client.SendFrame(FrameKind::kPing, 10, {});
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kPong);
  EXPECT_EQ(frame.request_id, 10u);
  EXPECT_EQ(fx.server->Stats().protocol_errors, 0u);
}

TEST(ServerTest, ResponseKindFromClientIsAProtocolError) {
  Fixture fx(5);
  TestClient client(fx.server->port());
  client.SendMagic();
  client.SendFrame(FrameKind::kPong, 3, {});
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kError);
  EXPECT_EQ(frame.request_id, 0u);
  EXPECT_TRUE(client.ReadEof());
}

TEST(ServerTest, FullAdmissionQueueShedsExplicitly) {
  ServerOptions options;
  options.queue_capacity = 0;  // Every issue request finds a full queue.
  Fixture fx(5, options);
  TestClient client(fx.server->port());
  client.SendMagic();
  for (uint64_t id = 1; id <= 3; ++id) {
    client.SendFrame(FrameKind::kIssueRequest, id,
                     fx.IssuePayload(fx.Inside(static_cast<int>(id))));
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    EXPECT_EQ(frame.kind, FrameKind::kShed);
    EXPECT_EQ(frame.request_id, id);
  }
  // Shed is an explicit response, not a drop: the connection still works.
  client.SendFrame(FrameKind::kPing, 99, {});
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kPong);

  const NetStats stats = fx.server->Stats();
  EXPECT_EQ(stats.requests_shed, 3u);
  EXPECT_EQ(stats.requests_enqueued, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(ServerTest, DrainFlushesAndStopsAcceptingIdempotently) {
  Fixture fx(100);
  TestClient client(fx.server->port());
  client.SendMagic();
  client.SendFrame(FrameKind::kIssueRequest, 1,
                   fx.IssuePayload(fx.Inside(1)));
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame));
  EXPECT_EQ(frame.kind, FrameKind::kIssueResult);

  fx.server->Drain();
  fx.server->Drain();  // Idempotent.
  EXPECT_TRUE(client.ReadEof());  // Outstanding connections are closed.

  const NetStats stats = fx.server->Stats();
  EXPECT_EQ(stats.connections_closed, stats.connections_opened);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServerTest, SnapExposesTheNetSectionInBothFormats) {
  Tracer tracer(TracerOptions{.slow_request_nanos = 0});
  ServerOptions options;
  options.tracer = &tracer;
  Fixture fx(100, options);
  TestClient client(fx.server->port());
  client.SendMagic();
  for (uint64_t id = 1; id <= 8; ++id) {
    client.SendFrame(FrameKind::kIssueRequest, id,
                     fx.IssuePayload(fx.Inside(static_cast<int>(id))));
    Frame frame;
    ASSERT_TRUE(client.ReadFrame(&frame));
    ASSERT_EQ(frame.kind, FrameKind::kIssueResult);
  }

  ExpositionInput input = fx.server->Snap();
  ASSERT_TRUE(input.has_net);
  EXPECT_EQ(input.net.requests_enqueued, 8u);
  input.has_stages = true;
  input.stages = tracer.ProfileSnapshot();

  const std::string text = RenderPrometheusText(input);
  EXPECT_NE(text.find("geolic_net_requests_total{service=\"geolic\","
                      "event=\"enqueued\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("geolic_net_connections_total"), std::string::npos);
  EXPECT_NE(text.find("stage=\"net_read\""), std::string::npos);
  EXPECT_NE(text.find("stage=\"net_batch_wait\""), std::string::npos);
  EXPECT_NE(text.find("stage=\"net_write\""), std::string::npos);

  const std::string json = RenderJson(input);
  EXPECT_NE(json.find("\"net\":{\"connections\""), std::string::npos);
  EXPECT_NE(json.find("\"net_read\""), std::string::npos);
  EXPECT_NE(json.find("\"net_batch_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"net_write\""), std::string::npos);

#ifndef GEOLIC_DISABLE_TRACING
  // The three wire stages must have recorded real spans, not just exist
  // as empty families.
  const auto stage_count = [&input](TraceStage stage) {
    return input.stages.stage(stage).total_count;
  };
  EXPECT_GT(stage_count(TraceStage::kNetRead), 0u);
  EXPECT_GT(stage_count(TraceStage::kNetBatchWait), 0u);
  EXPECT_GT(stage_count(TraceStage::kNetWrite), 0u);
#endif
}

}  // namespace
}  // namespace geolic::net
